"""Multi-property scheduler vs per-property BatchedVerifier loops.

Not a paper figure: this bench pins the performance contract of the
cross-property scheduler (``repro.sched``; see ``scripts/sched_baseline.py``
for the full-suite trajectory run that writes ``BENCH_sched.json``).
Shape checked here:

- every job's outcome and witness is identical between per-property solo
  runs and one fused scheduler run (the reproducibility contract);
- cross-property scheduling beats the per-property loop by >= 1.5x work
  throughput at equal ``batch_size`` — the fused sweeps keep GEMM batch
  slots full where solo frontiers run half-empty;
- a warm persistent cache serves every decided job without spawning any
  PGD/Analyze work (zero fused sweeps, zero fresh kernel calls).

The workload is deterministic on purpose: no wall-clock timeout, bounded
by the split depth cap, whose timeouts are scheduling-independent — so
the total work is fixed and the ratio is pure batching benefit.  It uses
many properties of *one* network, the regime the scheduler targets (fused
kernel groups are per network, so a mixed-network manifest fuses less —
each network's slice of it behaves like this bench).
"""

import os

import numpy as np
from conftest import load_problems, one_shot

from repro.abstract.domains import DEEPPOLY, bounded_zonotopes
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.exec import ProcessExecutor
from repro.sched import ResultCache, Scheduler, VerificationJob

NETWORKS = ("mnist_3x100",)


def _build_jobs(config):
    networks, problems = load_problems(NETWORKS, count=24)
    policy = BisectionPolicy(domain=DEEPPOLY)
    return [
        VerificationJob(
            networks[problem.network_name],
            problem.prop,
            config=config,
            policy=policy,
            seed=0,
            name=problem.prop.name,
        )
        for problem in problems
    ]


def test_cross_property_scheduling_throughput(benchmark):
    config = VerifierConfig(timeout=None, max_depth=10, batch_size=16)
    jobs = _build_jobs(config)

    # Warm caches (lazy network op lowering, BLAS threads) outside the
    # measured comparison so neither engine pays them.
    Scheduler(jobs[:4], engine="sequential").run()
    Scheduler(jobs[:4], frontier="priority").run()

    def run():
        seq = Scheduler(jobs, engine="sequential").run()
        bat = Scheduler(jobs, frontier="priority").run()
        return seq, bat

    seq, bat = one_shot(benchmark, run)

    # Identical outcomes, witnesses, and counters per job.
    for solo, fused in zip(seq.results, bat.results):
        assert solo.outcome.kind == fused.outcome.kind
        if solo.outcome.kind == "falsified":
            np.testing.assert_array_equal(
                solo.outcome.counterexample, fused.outcome.counterexample
            )
        assert solo.outcome.stats.pgd_calls == fused.outcome.stats.pgd_calls
        assert (
            solo.outcome.stats.analyze_calls
            == fused.outcome.stats.analyze_calls
        )

    ratio = bat.throughput() / seq.throughput()
    print()
    print(
        f"throughput: per-property {seq.throughput():.0f}/s "
        f"({seq.wall_clock:.2f}s), cross-property {bat.throughput():.0f}/s "
        f"({bat.wall_clock:.2f}s) -> {ratio:.2f}x"
    )
    # The contract: fused cross-property sweeps must beat per-property
    # loops at equal batch_size (full baseline shows ~1.7-1.9x).
    assert ratio >= 1.5


def test_cache_hits_spawn_no_work(benchmark, tmp_path):
    config = VerifierConfig(timeout=None, max_depth=10, batch_size=16)
    jobs = _build_jobs(config)
    cache = ResultCache(tmp_path / "cache")

    def run():
        first = Scheduler(jobs, cache=cache).run()
        second = Scheduler(jobs, cache=cache).run()
        return first, second

    first, second = one_shot(benchmark, run)

    decided = [
        r for r in first.results if r.outcome.kind in ("verified", "falsified")
    ]
    assert decided, "workload must decide something for the cache to serve"
    # The workload is deterministic (no wall clock, depth-capped), so
    # every outcome is cacheable — depth-cap timeouts included — and the
    # second run must be served entirely from the cache.
    assert second.cache_hits == len(jobs)
    assert second.sweeps == 0
    assert second.fresh_calls() == 0
    for a, b in zip(first.results, second.results):
        assert a.outcome.kind == b.outcome.kind
        if a.outcome.kind == "falsified":
            np.testing.assert_array_equal(
                a.outcome.counterexample, b.outcome.counterexample
            )
        if b.cached:
            assert b.elapsed == 0.0
    print()
    print(
        f"cache: {second.cache_hits}/{len(jobs)} served, "
        f"{second.sweeps} fused sweeps on the second run"
    )


def test_pooled_executor_contract(benchmark):
    """Pooled fused-group execution: bitwise-equal always, faster when the
    host has cores to use.

    A multi-network manifest gives each scheduler round several
    independent kernel groups (one fused PGD + one fused Analyze group
    per network), which is the shape the pool parallelizes.  Equivalence
    is asserted unconditionally.  The wall-clock floor is a *single*
    measurement of thread scaling — a quantity that depends on granted
    cores and co-tenant noise — so it gates only under
    ``REPRO_BENCH_STRICT=1`` on hosts with >= 4 cores; the tracked
    worker-scaling trajectory lives in BENCH_sched.json
    (``scripts/sched_baseline.py``), which also records the core counts
    that make the ratios comparable.
    """
    config = VerifierConfig(timeout=None, max_depth=8, batch_size=16)
    networks, problems = load_problems(
        ("mnist_3x100", "mnist_6x100", "cifar_3x100"), count=8
    )
    policy = BisectionPolicy(domain=DEEPPOLY)
    jobs = [
        VerificationJob(
            networks[p.network_name], p.prop, config=config,
            policy=policy, seed=0, name=p.prop.name,
        )
        for p in problems
    ]

    # Warm lazy per-network op lowering outside the measured comparison.
    Scheduler(jobs[:3], workers=2).run()

    def run():
        serial = Scheduler(jobs, workers=1).run()
        pooled = Scheduler(jobs, workers=4).run()
        return serial, pooled

    serial, pooled = one_shot(benchmark, run)
    assert serial.executor == "serial" and pooled.executor == "pooled"
    _assert_outcomes_bitwise_equal(serial, pooled)

    cores = _granted_cores()
    ratio = serial.wall_clock / max(pooled.wall_clock, 1e-9)
    print()
    print(
        f"pooled x4 vs serial: {serial.wall_clock:.2f}s -> "
        f"{pooled.wall_clock:.2f}s ({ratio:.2f}x) on {cores} cores "
        f"[executors: {serial.executor} -> {pooled.executor}]"
    )
    if os.environ.get("REPRO_BENCH_STRICT", "") == "1" and cores >= 4:
        assert ratio >= 1.3


def _granted_cores() -> int:
    """Cores actually granted to this run (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _assert_outcomes_bitwise_equal(serial, candidate):
    for a, b in zip(serial.results, candidate.results):
        assert a.outcome.kind == b.outcome.kind
        if a.outcome.kind == "falsified":
            np.testing.assert_array_equal(
                a.outcome.counterexample, b.outcome.counterexample
            )
        assert a.outcome.stats.pgd_calls == b.outcome.stats.pgd_calls
        assert a.outcome.stats.analyze_calls == b.outcome.stats.analyze_calls
        assert a.outcome.stats.splits == b.outcome.stats.splits


def test_process_executor_contract(benchmark):
    """Process-pool fused-group execution on the powerset-heavy suite,
    with shared-memory operand transport forced on: bitwise-equal
    always, >= 1.3x over serial at 4 workers when the host grants >= 4
    cores.

    ``shm_threshold=0`` routes every descriptor operand through
    ``multiprocessing.shared_memory`` (repro.exec.shm) rather than
    pickle — this suite's operands are below the production cutover, so
    forcing the transport is what makes the contract cover it.

    This is the workload the process pool exists for.  The zonotope
    powerset split+join contraction is Python-loop-heavy, so thread
    pools measured ~1.0x here (the GIL serializes the loop) while
    GEMM-shaped DeepPoly sweeps scaled fine.  Spawn-based workers
    sidestep the GIL; the floor asserts they actually do whenever the
    physics allows (>= 4 granted cores), not only under
    ``REPRO_BENCH_STRICT`` — a regression that serializes the process
    path would otherwise hide behind the thread measurements.  Startup
    costs stay out of the measurement: the pool is spawned and warmed
    before the clock starts, matching how the scheduler amortizes one
    pool across a long manifest.
    """
    config = VerifierConfig(timeout=None, max_depth=6, batch_size=16)
    networks, problems = load_problems(
        ("mnist_3x100", "mnist_6x100", "cifar_3x100", "cifar_6x100"),
        count=4,
    )
    policy = BisectionPolicy(domain=bounded_zonotopes(2))
    jobs = [
        VerificationJob(
            networks[p.network_name], p.prop, config=config,
            policy=policy, seed=0, name=p.prop.name,
        )
        for p in problems
    ]

    # One warm-up job per network: jobs are grouped per network, so a
    # head slice would warm only the first network's deserialization and
    # op lowering, leaving the rest inside the measured region.
    warm_jobs = []
    seen_networks: set[int] = set()
    for job in jobs:
        if id(job.network) not in seen_networks:
            seen_networks.add(id(job.network))
            warm_jobs.append(job)
    assert len(warm_jobs) == 4

    with ProcessExecutor(4, shm_threshold=0) as executor:
        # Warm the pool (spawn + numpy import + per-worker network
        # deserialization) and the lazy per-network op lowering.
        Scheduler(warm_jobs, executor=executor).run()
        Scheduler(warm_jobs, workers=1).run()

        def run():
            serial = Scheduler(jobs, workers=1).run()
            process = Scheduler(jobs, executor=executor).run()
            return serial, process

        serial, process = one_shot(benchmark, run)

    assert serial.executor == "serial" and process.executor == "process"
    _assert_outcomes_bitwise_equal(serial, process)

    cores = _granted_cores()
    ratio = serial.wall_clock / max(process.wall_clock, 1e-9)
    print()
    print(
        f"process x4 vs serial (powerset suite): {serial.wall_clock:.2f}s "
        f"-> {process.wall_clock:.2f}s ({ratio:.2f}x) on {cores} cores "
        f"[executors: {serial.executor} -> {process.executor}]"
    )
    if cores >= 4:
        assert ratio >= 1.3
