"""Batched engine vs sequential Algorithm 1 on the fig06 MLP workload.

Not a paper figure: this bench pins the performance contract of the
batched verification engine (this repo's first perf deliverable; see
``scripts/perf_baseline.py`` for the full-suite trajectory run that writes
``BENCH_batched.json``).  Shape checked here:

- the engines agree on every problem both decide;
- the batched engine's work-item throughput (PGD + analyze calls per
  second) beats the sequential engine's on the same budget — the honest
  ratio on budget-bounded runs, since timed-out problems burn identical
  wall-clock in both engines by construction;
- the fixed-workload batched kernels beat their per-region loops outright.
"""

import time

import numpy as np
from conftest import TIMEOUT, load_problems, one_shot

from repro.abstract.analyzer import analyze, analyze_batch
from repro.abstract.domains import DEEPPOLY
from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize, pgd_minimize_batch
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.core.verifier import BatchedVerifier, Verifier

NETWORKS = ("mnist_3x100", "mnist_6x100")


def _run_engine(engine_cls, problems, networks, policy, config):
    outcomes = []
    calls = 0
    start = time.perf_counter()
    for problem in problems:
        outcome = engine_cls(
            networks[problem.network_name], policy, config, rng=0
        ).verify(problem.prop)
        outcomes.append(outcome.kind)
        calls += outcome.stats.pgd_calls + outcome.stats.analyze_calls
    return outcomes, calls, time.perf_counter() - start


def test_batched_engine_throughput(benchmark):
    networks, problems = load_problems(NETWORKS)
    policy = BisectionPolicy(domain=DEEPPOLY)
    config = VerifierConfig(timeout=TIMEOUT)

    def run():
        seq = _run_engine(Verifier, problems, networks, policy, config)
        bat = _run_engine(BatchedVerifier, problems, networks, policy, config)
        return seq, bat

    (seq_kinds, seq_calls, seq_s), (bat_kinds, bat_calls, bat_s) = one_shot(
        benchmark, run
    )

    decided_agree = sum(
        a == b
        for a, b in zip(seq_kinds, bat_kinds)
        if "timeout" not in (a, b)
    )
    decided = sum(
        1 for a, b in zip(seq_kinds, bat_kinds) if "timeout" not in (a, b)
    )
    print()
    print(f"decided in both engines: {decided}/{len(problems)}, agree: {decided_agree}")
    seq_rate = seq_calls / seq_s
    bat_rate = bat_calls / bat_s
    print(f"throughput: sequential {seq_rate:.0f}/s, batched {bat_rate:.0f}/s "
          f"({bat_rate / seq_rate:.1f}x)")

    # The engines are the same decision procedure: decided problems agree.
    assert decided_agree == decided
    # The batched frontier must process work strictly faster than the
    # one-region-at-a-time loop (full baseline shows ~4.5x; the floor here
    # is conservative for noisy CI boxes).
    assert bat_rate >= 1.5 * seq_rate


def test_batched_kernels_beat_loops(benchmark):
    networks, problems = load_problems(NETWORKS, count=4)
    # A fixed frontier workload: every root region bisected to 16 pieces.
    workload = []
    for problem in problems:
        regions = [problem.prop.region]
        while len(regions) < 16:
            regions = [half for r in regions for half in r.bisect()]
        workload.append(
            (networks[problem.network_name], problem.prop.label, regions)
        )

    def run():
        config = PGDConfig(steps=40, restarts=2, stop_below=-np.inf)
        t0 = time.perf_counter()
        for network, label, regions in workload:
            objective = MarginObjective(network, label)
            for i, region in enumerate(regions):
                pgd_minimize(objective, region, config, np.random.default_rng(i))
            for region in regions:
                analyze(network, region, label, DEEPPOLY)
        loop_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for network, label, regions in workload:
            objective = MarginObjective(network, label)
            pgd_minimize_batch(
                objective,
                regions,
                config,
                [np.random.default_rng(i) for i in range(len(regions))],
            )
            analyze_batch(network, regions, label, DEEPPOLY)
        batch_s = time.perf_counter() - t0
        return loop_s, batch_s

    loop_s, batch_s = one_shot(benchmark, run)
    print()
    print(f"fixed workload: loop {loop_s:.2f}s, batched {batch_s:.2f}s "
          f"({loop_s / batch_s:.1f}x)")
    assert batch_s < loop_s  # batching must never lose on a full frontier
