"""Figure 14: Charon vs the complete tools ReluVal and Reluplex.

Paper's shape: across the MLP networks (the conv net is excluded because
neither baseline supports it), Charon solves 2.6x more benchmarks than
ReluVal and 16.6x more than Reluplex, and Charon's solved set is a strict
superset of ReluVal's.  Our scaled-down networks soften the ratios but the
ordering Charon >= ReluVal >= Reluplex must hold.
"""

from conftest import MLP_NETWORKS, TIMEOUT, load_problems, one_shot

from repro.bench.harness import (
    charon_adapter,
    reluplex_adapter,
    reluval_adapter,
    run_suite,
)
from repro.bench.report import format_cactus, format_counts, solved_counts


def test_fig14_complete_tools(benchmark, charon_policy):
    networks, problems = load_problems(MLP_NETWORKS)
    tools = [
        charon_adapter(TIMEOUT, policy=charon_policy),
        reluval_adapter(TIMEOUT),
        reluplex_adapter(TIMEOUT),
    ]
    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    print()
    print(format_cactus(table, title=f"Figure 14 ({len(problems)} benchmarks)"))
    counts = solved_counts(table)
    print(format_counts(counts, "Solved"))
    if counts["ReluVal"]:
        print(f"Charon/ReluVal solved ratio: {counts['Charon'] / counts['ReluVal']:.2f}x")
    if counts["Reluplex"]:
        print(f"Charon/Reluplex solved ratio: {counts['Charon'] / counts['Reluplex']:.2f}x")

    assert counts["Charon"] >= counts["ReluVal"]
    assert counts["Charon"] >= counts["Reluplex"]
