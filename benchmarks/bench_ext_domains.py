"""Extension ablation (§9 future work): the widened domain menu.

The paper's §9 proposes treating more precise, solver-like analyses as
additional abstract domains the policy can choose.  This bench compares all
four implemented bases — intervals, zonotopes, ReluVal-style symbolic
intervals, and DeepPoly-style back-substitution — as one-shot analyzers,
then runs Charon with the :class:`SolverAwareLinearPolicy` whose menu
includes the symbolic domain.
"""

import time

from conftest import TIMEOUT, load_problems, one_shot

from repro.abstract.analyzer import analyze
from repro.abstract.domains import DEEPPOLY, DomainSpec, INTERVAL, SYMBOLIC, ZONOTOPE
from repro.bench.harness import charon_adapter, run_suite
from repro.bench.report import solved_counts
from repro.ext.solver_policy import SolverAwareLinearPolicy
from repro.learn.pretrained import pretrained_policy
from repro.utils.timing import Deadline

ONE_SHOT_DOMAINS = [INTERVAL, ZONOTOPE, DomainSpec("zonotope", 8), SYMBOLIC, DEEPPOLY]


def test_ext_domains(benchmark):
    networks, problems = load_problems(["mnist_6x100"])
    network = networks["mnist_6x100"]

    def sweep():
        rows = []
        for spec in ONE_SHOT_DOMAINS:
            verified = 0
            total = 0.0
            for problem in problems:
                start = time.perf_counter()
                try:
                    result = analyze(
                        network,
                        problem.prop.region,
                        problem.prop.label,
                        spec,
                        Deadline(TIMEOUT),
                    )
                    verified += int(result.verified)
                except TimeoutError:
                    pass
                total += time.perf_counter() - start
            rows.append((spec, verified, total))
        charon_table = run_suite(
            [
                charon_adapter(TIMEOUT, policy=pretrained_policy()),
                charon_adapter(
                    TIMEOUT,
                    policy=SolverAwareLinearPolicy.default(),
                    name="Charon-solver",
                ),
            ],
            problems,
            networks,
        )
        return rows, charon_table

    rows, charon_table = one_shot(benchmark, sweep)

    print()
    print("Extended domain menu on mnist_6x100 (one-shot analysis)")
    for spec, verified, total in rows:
        print(f"  {str(spec):>8}: verified {verified}/{len(problems)} in {total:.2f}s")
    counts = solved_counts(charon_table)
    print(f"Charon (paper menu) vs Charon-solver (§9 menu): {counts}")

    by_name = {str(s): v for s, v, _ in rows}
    # The precise relational domains must dominate plain intervals.
    assert by_name["(S, 1)"] >= by_name["(I, 1)"]
    assert by_name["(D, 1)"] >= by_name["(I, 1)"]
    # The solver-aware Charon stays a sound decision procedure.
    assert counts["Charon-solver"] >= 0
