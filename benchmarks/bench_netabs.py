"""Network-abstraction CEGAR contract: merged networks must pay less.

Not a paper figure: this bench pins the perf contract of the
``repro.abstract.netabs`` pre-pass.  On a fig09-scale suite (the paper's
9x200 shape — nine hidden layers of width 200, built with reproducible
4-fold neuron redundancy) the scheduler with ``abstraction="syntactic"``
must

- reach **identical job outcomes** to the concrete run (any accepted
  FALSIFIED carries a float64-validated witness by construction — the
  scheduler only accepts falsifications after
  :func:`repro.abstract.netabs.witness_margin` confirms them);
- finish the suite at least **1.5x faster** end-to-end;
- spend a measurably smaller fraction of full-network kernel work,
  reported via ``kernel.analyze_rows`` weighted by network width (an
  abstract row sweeps ~1/dup of the concrete neurons).

The workload mirrors how netabs wins in practice: a wide redundant
network whose duplicate groups cluster at tiny error bounds, properties
far enough from the decision boundary that the abstract margin check
verifies at the root.  The full trajectory lives in ``BENCH_netabs.json``
via ``scripts/perf_baseline.py --netabs-bench``.
"""

import time

import numpy as np
from conftest import one_shot

from repro.abstract.netabs import abstraction_for
from repro.core.config import VerifierConfig
from repro.core.property import linf_property
from repro.nn.builders import redundant_mlp
from repro.obs.metrics import registry
from repro.sched import Scheduler, VerificationJob

#: End-to-end speedup floor of the abstraction pre-pass (ISSUE 9).
FLOOR = 1.5


def netabs_workload(jobs=24, epsilon=0.0005, timeout=30.0):
    """A fig09-scale redundant suite: 9 hidden layers, width 200 = 50x4.

    Centers are screened by concrete point margin so every property is
    decidable at the root — the regime where the abstract network's
    cheaper sweeps dominate the wall clock (64-input L∞ splitting is
    all-or-nothing at this scale, so a splitting-heavy suite would only
    measure timeout behaviour).
    """
    net = redundant_mlp(64, [50] * 9, 10, dup=4, noise=1e-12, rng=3)
    rng = np.random.default_rng(11)
    centers = []
    while len(centers) < jobs:
        x = rng.uniform(0.2, 0.8, size=64)
        logits = net.forward(x)
        margin = logits.max() - np.partition(logits, -2)[-2]
        if margin > 0.15:
            centers.append(x)
    config = VerifierConfig(timeout=timeout)
    return net, [
        VerificationJob(
            net,
            linf_property(net, x, epsilon),
            config=config,
            seed=i,
            name=f"j{i}",
        )
        for i, x in enumerate(centers)
    ]


def run_suite(jobs, abstraction):
    """One scheduler run; returns (report, wall_s, counter delta)."""
    obs = registry()
    before = obs.counters_snapshot()
    start = time.perf_counter()
    report = Scheduler(jobs, abstraction=abstraction).run()
    wall = time.perf_counter() - start
    return report, wall, obs.counters_since(before)


def kernel_work(net, abstract, delta):
    """Width-weighted analyze-row work of one run's counter delta.

    ``kernel.analyze_rows`` counts rows regardless of network size; a
    row against the merged network sweeps ``hidden_abstract`` neurons
    instead of ``hidden_concrete``, so the work comparison weights each
    run's rows by the widest network it could have swept.
    """
    rows = delta.get("kernel.analyze_rows", 0)
    width = abstract.hidden_abstract if abstract is not None else None
    per_row = width if width is not None else net.num_relu_units()
    return rows, rows * per_row


def test_netabs_speedup(benchmark):
    """Syntactic abstraction: identical outcomes, >= 1.5x end-to-end."""
    net, jobs = netabs_workload()

    def measure():
        # Warm both paths once (BLAS thread spin-up, digest memoization,
        # suite caches), then time a clean run of each.
        run_suite(jobs, "off")
        run_suite(jobs, "syntactic")
        off = run_suite(jobs, "off")
        merged = run_suite(jobs, "syntactic")
        return off, merged

    (off_report, t_off, off_delta), (abs_report, t_abs, abs_delta) = one_shot(
        benchmark, measure
    )

    ratio = t_off / t_abs
    abstraction = abstraction_for(net, "syntactic", 2)
    rows_off, work_off = kernel_work(net, None, off_delta)
    rows_abs, work_abs = kernel_work(net, abstraction, abs_delta)
    print()
    print(
        f"netabs fig09-scale: off {t_off * 1e3:.0f}ms "
        f"({rows_off} rows, {work_off} row-neurons), "
        f"syntactic {t_abs * 1e3:.0f}ms "
        f"({rows_abs} rows, {work_abs} row-neurons) -> {ratio:.2f}x"
    )
    print(
        f"merged ratio {abstraction.merged_ratio:.3f} "
        f"({abstraction.hidden_abstract}/{abstraction.hidden_concrete} "
        f"hidden), accepted {abs_report.netabs_accepted}, "
        f"rounds {abs_report.netabs_rounds}"
    )

    # Identical job outcomes — the soundness contract of the pre-pass.
    assert [r.outcome.kind for r in abs_report.results] == [
        r.outcome.kind for r in off_report.results
    ]
    # Every job rode the abstraction (none fell back to concrete).
    assert abs_report.netabs_accepted == len(jobs)
    assert abs_delta.get("sched.netabs.verified", 0) == len(jobs)
    # The merged network genuinely sweeps fewer neurons per row.
    assert work_abs < work_off
    assert ratio >= FLOOR, (
        f"netabs only {ratio:.2f}x vs concrete (floor {FLOOR}x)"
    )
