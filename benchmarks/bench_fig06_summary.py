"""Figure 6: outcome summary for Charon vs AI2-Zonotope vs AI2-Bounded64.

Paper's shape: Charon verifies or falsifies benchmarks with *no unknown*
results (δ-completeness); AI2 variants verify some benchmarks but can never
falsify, leaving unknown/timeout bars; Charon solves more overall.
"""

from conftest import ALL_NETWORKS, TIMEOUT, load_problems, one_shot

from repro.bench.harness import ai2_adapter, charon_adapter, run_suite
from repro.bench.report import (
    format_counts,
    format_summary,
    solved_counts,
    summary_percentages,
)


def test_fig06_summary(benchmark, charon_policy):
    networks, problems = load_problems(ALL_NETWORKS)
    tools = [
        charon_adapter(TIMEOUT, policy=charon_policy),
        ai2_adapter(TIMEOUT, bounded=False),
        ai2_adapter(TIMEOUT, bounded=True),
    ]

    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    print()
    print(format_summary(table, title=f"Figure 6 ({len(problems)} benchmarks)"))
    print(format_counts(solved_counts(table), "Solved (verified+falsified)"))

    summary = summary_percentages(table)
    # Charon is δ-complete: no unknown bar (Figure 6).
    assert summary["Charon"]["unknown"] == 0.0
    # AI2 cannot falsify: no falsified bar for either variant.
    assert summary["AI2-Zonotope"]["falsified"] == 0.0
    assert summary["AI2-Bounded64"]["falsified"] == 0.0
    # Charon solves at least as many benchmarks as the stronger AI2.
    counts = solved_counts(table)
    assert counts["Charon"] >= counts["AI2-Bounded64"]
