"""§6 training phase: Bayesian optimization of the verification policy.

The paper trains on 12 ACAS Xu properties with a per-benchmark limit of
700 s and penalty p=2.  This bench runs the same loop at laptop scale and
reports the cost trajectory: the learned policy's suite cost must not
exceed the hand-initialized default's (the default is seeded into the
optimizer, so learning can only improve).
"""

from conftest import one_shot

from repro.data.acas import acas_network, acas_training_properties
from repro.learn.objective import TrainingProblem
from repro.learn.trainer import train_policy


def test_training_policy(benchmark):
    net = acas_network(hidden=(16, 16, 16), epochs=15, rng=7)
    props = acas_training_properties(net, count=6, radii=(0.03, 0.08), rng=11)
    problems = [TrainingProblem(net, p) for p in props]

    trained = one_shot(
        benchmark,
        lambda: train_policy(
            problems, iterations=6, time_limit=0.5, penalty=2.0, rng=0
        ),
    )

    default_score = trained.history.observations[0].y
    print()
    print(f"default policy suite cost: {-default_score:.3f}s")
    print(f"learned policy suite cost: {-trained.best_score:.3f}s")
    print(f"BO evaluations: {len(trained.history.observations)}")
    assert trained.best_score >= default_score
