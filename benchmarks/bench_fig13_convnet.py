"""Figure 13: cactus plot for the convolutional network.

The paper's standout observation here: AI2-Bounded64 times out on *every*
benchmark of the conv net (it does not appear in the figure), while Charon
still solves most of the suite.  The powerset domain's case splits explode
on convolutional layers; the learned policy avoids that regime.
"""

from conftest import TIMEOUT, load_problems, one_shot

from repro.bench.harness import ai2_adapter, charon_adapter, run_suite
from repro.bench.report import format_cactus, solved_counts, summary_percentages


def test_fig13_convnet(benchmark, charon_policy):
    networks, problems = load_problems(["mnist_conv"])
    tools = [
        charon_adapter(TIMEOUT, policy=charon_policy),
        ai2_adapter(TIMEOUT, bounded=False),
        ai2_adapter(TIMEOUT, bounded=True),
    ]
    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    print()
    print(format_cactus(table, title="Figure 13: mnist_conv"))
    counts = solved_counts(table)
    summary = summary_percentages(table)
    print(f"solved: {counts}")
    print(
        "AI2-Bounded64 timeout rate: "
        f"{summary['AI2-Bounded64']['timeout']:.0f}%"
    )
    assert counts["Charon"] >= counts["AI2-Bounded64"]
