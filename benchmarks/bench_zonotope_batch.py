"""Batched zonotope/powerset engine contract on the fig06 workload.

Not a paper figure: this bench pins the performance and exactness
contract of the ``ZonotopeBatch`` / ``PowersetBatch`` kernels — the
paper's headline domain made a first-class batched engine (see
``repro.abstract.zonotope_batch``; the full-suite trajectory lives in
``BENCH_batched.json`` via ``scripts/perf_baseline.py``).  Shape checked
here:

- the batched kernels are **bitwise identical** to the per-region
  sequential elements on a fixed frontier workload, and strictly faster;
- the batched engine beats the sequential engine's work-item throughput
  by >= 1.5x on the fig06 powerset workload (the learned policy, which
  mostly selects bounded zonotope powersets — the ROADMAP's "part 2"
  gap this PR closes);
- the fused sign-split dense rewrite in `DeepPolyBatch` (one
  (B, rows, 2n) GEMM against a relation stack built at layer
  construction) never loses to the unfused two-GEMM rewrite it replaced
  on a wider-input maxpool workload;
- the fused split+join contraction (``repro.abstract.fused``) beats the
  pre-fusion kernel structure by >= 1.4x on a powerset-frontier-shaped
  workload at bitwise-equal results, and its steady state neither
  allocates scratch nor re-introduces per-branch ``(S, k, n)``
  temporaries (the structural pass-counting guard).
"""

import time
import tracemalloc

import numpy as np
from conftest import TIMEOUT, load_problems, one_shot

from repro.abstract import fused
from repro.abstract.analyzer import analyze, analyze_batch
from repro.abstract.deeppoly import DeepPolyBatch, _DiagBounds, _split_signs
from repro.abstract.domains import DEEPPOLY, ZONOTOPE, bounded_zonotopes
from repro.bench.fusedref import prefused_stacked_relu, promotion_stack
from repro.core.config import VerifierConfig
from repro.core.verifier import BatchedVerifier, Verifier
from repro.learn.pretrained import pretrained_policy
from repro.nn.builders import lenet_conv
from repro.utils.boxes import Box

NETWORKS = ("mnist_3x100",)


def test_powerset_workload_throughput(benchmark):
    """The acceptance contract: >= 1.5x engine throughput with the
    pretrained (powerset-heavy) policy on a fig06 network."""
    networks, problems = load_problems(NETWORKS)
    policy = pretrained_policy()
    config = VerifierConfig(timeout=TIMEOUT)

    def run_engine(engine_cls):
        kinds = []
        calls = 0
        start = time.perf_counter()
        for problem in problems:
            outcome = engine_cls(
                networks[problem.network_name], policy, config, rng=0
            ).verify(problem.prop)
            kinds.append(outcome.kind)
            calls += outcome.stats.pgd_calls + outcome.stats.analyze_calls
        return kinds, calls, time.perf_counter() - start

    (seq_kinds, seq_calls, seq_s), (bat_kinds, bat_calls, bat_s) = one_shot(
        benchmark, lambda: (run_engine(Verifier), run_engine(BatchedVerifier))
    )

    decided = [
        (a, b) for a, b in zip(seq_kinds, bat_kinds) if "timeout" not in (a, b)
    ]
    ratio = (bat_calls / bat_s) / (seq_calls / seq_s)
    print()
    print(
        f"powerset workload: sequential {seq_calls / seq_s:.0f}/s, "
        f"batched {bat_calls / bat_s:.0f}/s -> {ratio:.2f}x "
        f"({len(decided)}/{len(problems)} decided in both)"
    )
    # Decided problems agree (same decision procedure, batched shape).
    assert all(a == b for a, b in decided)
    # The contract floor (full baseline shows ~2x; conservative for CI).
    assert ratio >= 1.5


def test_batched_kernels_exact_and_faster(benchmark):
    """Fixed frontier workload: bitwise equality and an outright win."""
    networks, problems = load_problems(NETWORKS, count=4)
    workload = []
    for problem in problems:
        regions = [problem.prop.region]
        while len(regions) < 16:
            regions = [half for r in regions for half in r.bisect()]
        workload.append(
            (networks[problem.network_name], problem.prop.label, regions)
        )

    def run():
        times = {}
        for domain_name, domain in (
            ("zonotope", ZONOTOPE),
            ("powerset", bounded_zonotopes(2)),
        ):
            start = time.perf_counter()
            singles = [
                [analyze(net, region, label, domain) for region in regions]
                for net, label, regions in workload
            ]
            loop_s = time.perf_counter() - start
            start = time.perf_counter()
            batches = [
                analyze_batch(net, regions, label, domain)
                for net, label, regions in workload
            ]
            batch_s = time.perf_counter() - start
            times[domain_name] = (loop_s, batch_s, singles, batches)
        return times

    times = one_shot(benchmark, run)
    print()
    for domain_name, (loop_s, batch_s, singles, batches) in times.items():
        print(
            f"{domain_name} kernel: loop {loop_s:.2f}s, batched {batch_s:.2f}s "
            f"({loop_s / batch_s:.1f}x)"
        )
        for per_loop, per_batch in zip(singles, batches):
            for single, batched in zip(per_loop, per_batch):
                # Bitwise: the kernels are batch-height-stable.
                assert (
                    batched.margin_lower_bound == single.margin_lower_bound
                )
        assert batch_s < loop_s  # batching must never lose on a frontier


def _unfused_bound_expr(self, a, lower):
    """The pre-fusion dense rewrite (two half-width GEMMs plus adds),
    kept verbatim as the reference the fused path is measured against."""
    batch = self.batch_size
    a = np.atleast_2d(a)
    b = 0.0

    def _promote(arr):
        if arr.ndim == 2:
            return np.broadcast_to(arr, (batch, *arr.shape))
        return arr

    def _dot_rows(arr, vec):
        return (arr @ vec[:, :, None])[:, :, 0]

    for layer in reversed(self.layers):
        if isinstance(layer, _DiagBounds):
            a = _promote(a)
            pos, neg = _split_signs(a)
            b = b + _dot_rows(neg if lower else pos, layer.bu)
            if lower:
                a = pos * layer.dl[:, None, :] + neg * layer.du[:, None, :]
            else:
                a = pos * layer.du[:, None, :] + neg * layer.dl[:, None, :]
        elif layer.al.ndim == 3:
            a = _promote(a)
            pos, neg = _split_signs(a)
            if lower:
                b = b + _dot_rows(pos, layer.bl) + _dot_rows(neg, layer.bu)
                a = pos @ layer.al + neg @ layer.au
            else:
                b = b + _dot_rows(pos, layer.bu) + _dot_rows(neg, layer.bl)
                a = pos @ layer.au + neg @ layer.al
        else:
            b = b + a @ layer.bl
            if a.ndim == 3:
                rows = a.shape[1]
                a = (a.reshape(batch * rows, -1) @ layer.al).reshape(
                    batch, rows, -1
                )
            else:
                a = a @ layer.al
    a = _promote(a)
    pos, neg = _split_signs(a)
    if lower:
        return _dot_rows(pos, self.box_low) + _dot_rows(neg, self.box_high) + b
    return _dot_rows(pos, self.box_high) + _dot_rows(neg, self.box_low) + b


def test_fused_dense_backsub_wider_inputs(benchmark):
    """The DeepPoly sign-split fusion satellite: rewrites through dense
    maxpool relations run as one (B, rows, 2n) GEMM against a relation
    stack built once at layer construction."""
    net = lenet_conv(input_shape=(1, 12, 12), num_classes=10, rng=1)
    rng = np.random.default_rng(0)
    regions = [
        Box.from_center_radius(rng.uniform(0.3, 0.7, net.input_size), 0.03)
        for _ in range(6)
    ]
    fused_impl = DeepPolyBatch._bound_expr

    def run_once():
        return analyze_batch(net, regions, 1, DEEPPOLY)

    def run():
        run_once()  # warm caches outside the comparison
        fused_s, unfused_s = 9e9, 9e9
        for _ in range(2):
            start = time.perf_counter()
            fused_results = run_once()
            fused_s = min(fused_s, time.perf_counter() - start)
            DeepPolyBatch._bound_expr = _unfused_bound_expr
            try:
                start = time.perf_counter()
                unfused_results = run_once()
                unfused_s = min(unfused_s, time.perf_counter() - start)
            finally:
                DeepPolyBatch._bound_expr = fused_impl
        return fused_results, unfused_results, fused_s, unfused_s

    fused_results, unfused_results, fused_s, unfused_s = one_shot(
        benchmark, run
    )
    for got, want in zip(fused_results, unfused_results):
        # Same bound up to the reassociated reduction's round-off.
        assert abs(got.margin_lower_bound - want.margin_lower_bound) < 1e-9
    print()
    print(
        f"wider-input dense back-substitution: unfused {unfused_s:.3f}s, "
        f"fused {fused_s:.3f}s ({unfused_s / fused_s:.2f}x)"
    )
    # Fusing must not lose (the GEMM flops are identical; the win is the
    # saved add pass and kernel launches).  The expected edge is a few
    # percent, so the guard is deliberately loose: it exists to catch a
    # structural regression (e.g. re-stacking relations per rewrite,
    # which measured ~2x slower), not to flake on noisy shared runners.
    assert fused_s <= unfused_s * 1.35


# One powerset-frontier-sized stacked-ReLU workload shared by the fused
# throughput floor and the structural guard: 48 disjunct rows, 160 noise
# symbols of which ~45% are promotion-dead (see promotion_stack), 96
# dims.  Measured locally: the pre-fusion kernel runs ~1.16x slower on a
# fully dense stack (pure fusion win) and ~2x slower here, where
# compaction also skips the dead rows every round.
_FUSED_WORKLOAD = dict(seed=11, rows=48, k=160, n=96, dead_rows=0.45)


def test_fused_relu_kernel_throughput(benchmark):
    """The tentpole contract: the fused split+join contraction is
    >= 1.4x the pre-fusion kernel at **bitwise-equal** results on the
    powerset-heavy workload."""
    args = promotion_stack(**_FUSED_WORKLOAD)

    # Bitwise pin first: identical (center, gens, err) triples.  The
    # reference runs without compaction (it has none); equality across
    # that divide is exactly the compaction invariant.
    fused.reset_counters()
    got = fused.stacked_relu(*args)
    want = prefused_stacked_relu(*args)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)
    assert fused.FUSED_COUNTERS["compacted_rows"] > 0, (
        "workload must engage compaction for the measured ratio to "
        "reflect the shipped configuration"
    )

    def best_of(fn, rounds=3):
        fn(*args)  # warm (arena allocation, first-touch paging)
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        return best_of(prefused_stacked_relu), best_of(fused.stacked_relu)

    prefused_s, fused_s = one_shot(benchmark, run)
    ratio = prefused_s / fused_s
    print()
    print(
        f"fused split+join contraction: pre-fusion {prefused_s * 1e3:.0f}ms, "
        f"fused {fused_s * 1e3:.0f}ms ({ratio:.2f}x)"
    )
    assert ratio >= 1.4


def test_fused_kernel_structural_guard(benchmark):
    """Pass-counting guard: a future edit that re-introduces per-branch
    temporaries (or per-round scratch allocation) fails structurally,
    not just slowly.

    Two instruments: the arena counters must show zero allocations in
    the steady state (every scratch request served by reuse), and
    tracemalloc must see less than one ``(S, k, n)`` tensor of fresh
    allocation inside a steady-state fused round — a single rematerialized
    branch tensor (let alone the pre-fusion dozen) trips the bound.
    """
    centers, gens, errs, skips = promotion_stack(**_FUSED_WORKLOAD)
    rows = np.arange(centers.shape[0])
    # One representative contraction round: every row splits on its
    # widest crossing dim (promotion_stack centers straddle zero).
    radius = np.abs(gens).sum(axis=1) + errs
    dims = np.argmax(
        np.where((centers - radius < 0) & (centers + radius > 0), radius, -1),
        axis=1,
    )

    def steady_state_round():
        return fused.fused_split_join(centers, gens, errs, rows, dims)

    def run():
        steady_state_round()  # warm the thread's arena
        fused.reset_counters()
        steady_state_round()
        counters = dict(fused.FUSED_COUNTERS)
        tracemalloc.start()
        steady_state_round()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return counters, peak

    counters, peak = one_shot(benchmark, run)
    print()
    print(f"steady-state fused round: {counters}, tracemalloc peak {peak}B")
    assert counters["calls"] == 1
    assert counters["arena_allocs"] == 0, (
        "steady-state fused rounds must serve every scratch request from "
        "the arena; an allocation here means a buffer was dropped"
    )
    assert counters["arena_reuses"] > 0
    branch_tensor_bytes = rows.size * gens.shape[1] * gens.shape[2] * 8
    assert peak < branch_tensor_bytes, (
        f"a steady-state fused round allocated {peak}B (>= one "
        f"{rows.size}x{gens.shape[1]}x{gens.shape[2]} branch tensor of "
        f"{branch_tensor_bytes}B): per-branch temporaries are back"
    )
