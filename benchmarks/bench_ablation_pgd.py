"""Ablation: counterexample-search strength (RQ2's mechanism).

§7.3 attributes Charon's falsification power to gradient-based search.
This ablation varies the PGD budget inside Charon — from a single step
(nearly "no search") to the full configuration — and reports how many
properties each variant falsifies and how fast.  The paper's claim implies
falsifications should grow with search strength.
"""

from conftest import TIMEOUT, load_problems, one_shot

from repro.attack.pgd import PGDConfig
from repro.bench.harness import charon_adapter, run_suite
from repro.bench.report import falsification_counts, format_counts
from repro.core.config import VerifierConfig
from repro.core.verifier import Verifier
from repro.bench.harness import BenchRecord, ToolAdapter
from repro.learn.pretrained import pretrained_policy

PGD_BUDGETS = {
    "pgd-1x1": PGDConfig(steps=1, restarts=1),
    "pgd-10x1": PGDConfig(steps=10, restarts=1),
    "pgd-40x2": PGDConfig(steps=40, restarts=2),
    "pgd-80x4": PGDConfig(steps=80, restarts=4),
}


def charon_with_pgd(name: str, pgd: PGDConfig) -> ToolAdapter:
    policy = pretrained_policy()

    def run(network, prop):
        config = VerifierConfig(timeout=TIMEOUT, pgd=pgd)
        outcome = Verifier(network, policy, config, rng=0).verify(prop)
        return BenchRecord(outcome.kind, outcome.stats.time_seconds)

    return ToolAdapter(name, run)


def test_ablation_pgd(benchmark):
    networks, problems = load_problems(["mnist_3x100", "mnist_6x100"])
    tools = [charon_with_pgd(name, pgd) for name, pgd in PGD_BUDGETS.items()]

    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    counts = falsification_counts(table)
    print()
    print(format_counts(counts, f"Falsified by PGD budget (of {len(problems)})"))
    # The strongest budget must falsify at least as much as the weakest.
    assert counts["pgd-80x4"] >= counts["pgd-1x1"]
