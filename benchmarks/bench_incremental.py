"""Incremental re-verification contract: suffix runs must pay less.

Not a paper figure: this bench pins the perf contract of the prefix
checkpoint seam (``repro.abstract.checkpoint`` + ``--incremental``).  On
a fig09-scale suite (nine hidden layers of width 200) whose network is
fine-tuned in its **last two layers**, an incremental run seeded from a
previous run's checkpoints must

- reach **identical job outcomes** to a cold run of the fine-tuned
  network (the resumed analyzer is bitwise-identical to cold — pinned
  by ``tests/abstract/test_checkpoint.py`` — so this can never fail for
  soundness reasons, only for plumbing ones);
- finish the suite at least **2x faster** end-to-end, because DeepPoly
  back-substitution is triangular in depth and the unchanged 16-layer
  prefix is served from the cache;
- degrade gracefully on a **whole-network** change: zero prefix hits,
  and no overhead beyond digest chaining and checkpoint emission over
  a plain cold run.

The full trajectory lives in ``BENCH_incremental.json`` via
``scripts/perf_baseline.py --incremental-bench``.
"""

import tempfile
import time

import numpy as np
from conftest import one_shot

from repro.abstract.domains import DEEPPOLY
from repro.attack.pgd import PGDConfig
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.core.property import linf_property
from repro.nn.builders import mlp
from repro.nn.serialize import common_prefix_layers, load_network, save_network
from repro.sched import Scheduler, VerificationJob
from repro.sched.cache import ResultCache

#: End-to-end speedup floor of the last-2-layer fine-tune scenario.
FLOOR = 2.0

#: Overhead ceiling of the zero-reuse (whole-network change) scenario:
#: an incremental run that hits nothing may pay digest chaining and
#: checkpoint writes, but must stay within this factor of plain cold.
DEGRADE_CEILING = 1.5


def workload(jobs=12, epsilon=5e-4, timeout=60.0):
    """A fig09-scale suite: 9 hidden layers of width 200, DeepPoly.

    Centers are screened by concrete point margin so every property is
    decidable at the root — the regime where the fused Analyze group is
    one whole-suite DeepPoly batch and the prefix either reuses or not.
    The domain is pinned (checkpoints need a single-disjunct base); the
    PGD budget is tiny so the analyzer dominates the wall clock, which
    is what this bench is measuring.
    """
    net = mlp(64, [200] * 9, 10, rng=3)
    rng = np.random.default_rng(11)
    centers = []
    while len(centers) < jobs:
        x = rng.uniform(0.2, 0.8, size=64)
        logits = net.forward(x)
        if logits.max() - np.partition(logits, -2)[-2] > 0.15:
            centers.append(x)
    return net, centers, epsilon, timeout


def suite(net, centers, epsilon, timeout):
    config = VerifierConfig(
        timeout=timeout, pgd=PGDConfig(steps=8, restarts=1)
    )
    policy = BisectionPolicy(domain=DEEPPOLY)
    return [
        VerificationJob(
            net,
            linf_property(net, x, epsilon),
            config=config,
            policy=policy,
            seed=i,
            name=f"j{i}",
        )
        for i, x in enumerate(centers)
    ]


def perturbed(net, tmpdir, layer_indices, scale=1e-6, rng=7):
    """A fine-tuned copy of ``net``: noise added to the given layers."""
    path = f"{tmpdir}/perturbed.npz"
    save_network(net, path)
    copy = load_network(path)
    copy.thaw_params()
    gen = np.random.default_rng(rng)
    for index in layer_indices:
        layer = copy.layers[index]
        layer.weight += gen.normal(0.0, scale, layer.weight.shape)
    copy.invalidate_ops()
    return copy


def timed_run(jobs, cache=None, incremental=False):
    start = time.perf_counter()
    report = Scheduler(jobs, cache=cache, incremental=incremental).run()
    return report, time.perf_counter() - start


def test_incremental_fine_tune_speedup(benchmark):
    """Last-2-of-9-layers fine-tune: identical outcomes, >= 2x."""
    net, centers, epsilon, timeout = workload()

    def measure():
        with tempfile.TemporaryDirectory() as tmpdir:
            # Dense layers sit at even indices ([D,R]*9,D); the last two
            # are the output layer and the ninth hidden layer.
            tuned = perturbed(net, tmpdir, [-1, -3])
            assert common_prefix_layers(net, tuned) == 16
            cache = ResultCache(f"{tmpdir}/cache")
            # Warm run on the original network records the checkpoints
            # (and spins up BLAS); an un-timed cold run on the tuned
            # network warms its op lowering.
            warm, _ = timed_run(
                suite(net, centers, epsilon, timeout),
                cache=cache, incremental=True,
            )
            timed_run(suite(tuned, centers, epsilon, timeout))
            cold, t_cold = timed_run(suite(tuned, centers, epsilon, timeout))
            inc, t_inc = timed_run(
                suite(tuned, centers, epsilon, timeout),
                cache=cache, incremental=True,
            )
            return warm, cold, t_cold, inc, t_inc

    warm, cold, t_cold, inc, t_inc = one_shot(benchmark, measure)
    ratio = t_cold / t_inc
    print()
    print(
        f"incremental fig09-scale: cold {t_cold * 1e3:.0f}ms, "
        f"resume {t_inc * 1e3:.0f}ms -> {ratio:.2f}x "
        f"({inc.prefix_hits} prefix hits, "
        f"{inc.prefix_layers_skipped} layers skipped)"
    )

    # Identical job outcomes — resume equals cold, decision for decision.
    assert [r.outcome.kind for r in inc.results] == [
        r.outcome.kind for r in cold.results
    ]
    # The run genuinely resumed (no job-level cache hit shortcuts: the
    # tuned network's digest differs, so every result record missed).
    assert inc.cache_hits == 0
    assert inc.prefix_hits > 0
    assert inc.prefix_layers_skipped >= 16
    assert warm.outcome_counts() == cold.outcome_counts()
    assert ratio >= FLOOR, (
        f"incremental only {ratio:.2f}x vs cold (floor {FLOOR}x)"
    )


def test_incremental_whole_network_change_degrades_gracefully(benchmark):
    """Every layer changed: zero hits, bounded overhead over cold."""
    net, centers, epsilon, timeout = workload(jobs=6)

    def measure():
        with tempfile.TemporaryDirectory() as tmpdir:
            changed = perturbed(
                net, tmpdir, [i for i in range(0, 19, 2)]
            )
            assert common_prefix_layers(net, changed) == 0
            cache = ResultCache(f"{tmpdir}/cache")
            timed_run(
                suite(net, centers, epsilon, timeout),
                cache=cache, incremental=True,
            )
            timed_run(suite(changed, centers, epsilon, timeout))
            cold, t_cold = timed_run(
                suite(changed, centers, epsilon, timeout)
            )
            inc, t_inc = timed_run(
                suite(changed, centers, epsilon, timeout),
                cache=cache, incremental=True,
            )
            return cold, t_cold, inc, t_inc

    cold, t_cold, inc, t_inc = one_shot(benchmark, measure)
    overhead = t_inc / t_cold
    print()
    print(
        f"zero-reuse: cold {t_cold * 1e3:.0f}ms, "
        f"incremental {t_inc * 1e3:.0f}ms ({overhead:.2f}x, "
        f"{inc.prefix_hits} hits)"
    )
    assert inc.prefix_hits == 0
    assert [r.outcome.kind for r in inc.results] == [
        r.outcome.kind for r in cold.results
    ]
    assert overhead <= DEGRADE_CEILING, (
        f"zero-reuse incremental run cost {overhead:.2f}x cold "
        f"(ceiling {DEGRADE_CEILING}x)"
    )
