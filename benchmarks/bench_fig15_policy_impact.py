"""Figure 15 (RQ3): value of the learned verification policy.

The paper compares Charon against ReluVal *on the subset of benchmarks
where the property holds* — this isolates the refinement strategy, since
falsification plays no role on verified instances.  ReluVal's hand-crafted
strategy solves only 35-70% of what Charon solves per network.

We additionally run Charon with the hand-crafted ``BisectionPolicy`` (same
algorithm, no learning) so the learning effect is measured within one code
base as well as against ReluVal.
"""

from conftest import MLP_NETWORKS, TIMEOUT, load_problems, one_shot

from repro.bench.harness import charon_adapter, reluval_adapter, run_suite
from repro.bench.report import verified_subset_solved
from repro.core.policy import BisectionPolicy


def test_fig15_policy_impact(benchmark, charon_policy):
    networks, problems = load_problems(MLP_NETWORKS)
    tools = [
        charon_adapter(TIMEOUT, policy=charon_policy),
        charon_adapter(
            TIMEOUT, policy=BisectionPolicy(), name="Charon-static"
        ),
        reluval_adapter(TIMEOUT),
    ]
    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    print()
    for other in ("ReluVal", "Charon-static"):
        solved, reference = verified_subset_solved(table, "Charon", other)
        pct = 100.0 * solved / reference if reference else float("nan")
        print(
            f"Figure 15: {other} solves {solved}/{reference} "
            f"({pct:.0f}%) of Charon-verified benchmarks"
        )
    solved, reference = verified_subset_solved(table, "Charon", "ReluVal")
    # ReluVal must not dominate the learned policy on verified instances.
    assert solved <= reference
