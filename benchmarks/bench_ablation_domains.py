"""Ablation: the abstract-domain menu (DESIGN.md design choice).

Charon's domain policy chooses among intervals and bounded powersets of
zonotopes.  This ablation fixes the domain (no policy, no splitting beyond
the default bisection) and measures how each choice trades precision
against time on one network's suite — the trade-off Example 2.3 and §2.3
of the paper motivate.
"""

import time

from conftest import TIMEOUT, load_problems, one_shot

from repro.abstract.analyzer import analyze
from repro.abstract.domains import DomainSpec
from repro.utils.timing import Deadline

DOMAINS = [
    DomainSpec("interval", 1),
    DomainSpec("zonotope", 1),
    DomainSpec("zonotope", 4),
    DomainSpec("zonotope", 16),
    DomainSpec("zonotope", 64),
]


def test_ablation_domains(benchmark):
    networks, problems = load_problems(["mnist_6x100"])
    network = networks["mnist_6x100"]

    def sweep():
        rows = []
        for spec in DOMAINS:
            verified = 0
            total_time = 0.0
            for problem in problems:
                start = time.perf_counter()
                try:
                    result = analyze(
                        network,
                        problem.prop.region,
                        problem.prop.label,
                        spec,
                        Deadline(TIMEOUT),
                    )
                    verified += int(result.verified)
                except TimeoutError:
                    pass
                total_time += time.perf_counter() - start
            rows.append((spec, verified, total_time))
        return rows

    rows = one_shot(benchmark, sweep)

    print()
    print("Domain ablation on mnist_6x100 (one-shot analysis, no refinement)")
    for spec, verified, total_time in rows:
        print(f"  {str(spec):>8}: verified {verified}/{len(problems)} in {total_time:.2f}s")

    # Monotone precision: more disjuncts never verify fewer benchmarks.
    zonotope_rows = [(s.disjuncts, v) for s, v, _ in rows if s.base == "zonotope"]
    for (k1, v1), (k2, v2) in zip(zonotope_rows, zonotope_rows[1:]):
        assert v2 >= v1 - 1, f"Z{k2} verified far fewer than Z{k1}"
    # Zonotopes dominate intervals at equal disjunct count.
    interval_verified = rows[0][1]
    zonotope_verified = rows[1][1]
    assert zonotope_verified >= interval_verified
