"""Shared fixtures for the figure-reproduction benchmarks.

Every bench file regenerates one table or figure from §7 of the paper (see
DESIGN.md §3 for the index).  Networks are trained once per pytest session
and shared across bench files through the in-process suite cache.

Scaling: paper budgets (1000 s timeout, 100 properties/network on 28x28
inputs) are replaced by the laptop-scale defaults below.  Set the
environment variable ``REPRO_BENCH_FULL=1`` for a heavier run (more
properties, longer timeouts).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.suites import SuiteScale, build_network, build_problems
from repro.learn.pretrained import pretrained_policy

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Per-benchmark timeout shared by every tool (the paper's 1000 s, scaled).
TIMEOUT = 10.0 if FULL else 2.0

#: Brightening-attack properties per network (the paper uses ~86).
PROBLEMS_PER_NETWORK = 24 if FULL else 8

SCALE = SuiteScale()

MLP_NETWORKS = (
    "mnist_3x100",
    "mnist_6x100",
    "mnist_9x200",
    "cifar_3x100",
    "cifar_6x100",
    "cifar_9x100",
)
ALL_NETWORKS = MLP_NETWORKS + ("mnist_conv",)


@pytest.fixture(scope="session")
def charon_policy():
    """The learned policy — 'Charon' in every figure means this."""
    return pretrained_policy()


def load_problems(names, count=PROBLEMS_PER_NETWORK, seed=13):
    """Train the named networks and build their benchmark problems."""
    networks = {}
    problems = []
    for name in names:
        bench_net = build_network(name, SCALE, seed=0)
        networks[name] = bench_net.network
        problems.extend(build_problems(bench_net, count=count, rng=seed))
    return networks, problems


def one_shot(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    Figure benches measure a whole tool-by-suite sweep; repeating it for
    statistical rounds would multiply minutes of work for no insight.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


def cactus_figure(benchmark, policy, network_name, figure):
    """Shared driver for Figures 7–13: one network, AI2 variants vs Charon.

    Prints the cumulative-time-vs-solved series of the figure and checks
    the paper's qualitative shape (Charon solves at least as much as the
    bounded-powerset AI2 under the shared timeout).
    """
    from repro.bench.harness import ai2_adapter, charon_adapter, run_suite
    from repro.bench.report import cactus_series, format_cactus, solved_counts

    networks, problems = load_problems([network_name])
    tools = [
        charon_adapter(TIMEOUT, policy=policy),
        ai2_adapter(TIMEOUT, bounded=False),
        ai2_adapter(TIMEOUT, bounded=True),
    ]
    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    print()
    print(format_cactus(table, title=f"{figure}: {network_name}"))
    counts = solved_counts(table)
    print(f"solved: {counts}")
    assert counts["Charon"] >= counts["AI2-Bounded64"]
    # The series is what the figure plots; it must be well-formed.
    for tool in table.tools():
        series = cactus_series(table, tool)
        assert all(b >= a for (_, a), (_, b) in zip(series, series[1:]))
    return table
