"""Observability overhead guard: tracing off must cost (almost) nothing.

Not a paper figure: this bench pins the zero-cost-when-disabled contract
of ``repro.obs`` (DESIGN.md §11).  Two claims:

- **Disabled-path budget.**  The instrumentation a scheduler run touches
  with tracing off — ``span()`` fast-path checks, counter-group dict
  increments, locked registry ops at executor submission — must cost
  under 2% of the sched engine suite's wall clock.  Wall-clock A/B of
  on-vs-off runs is hopelessly noisy at this magnitude, so the guard is
  computed: microbench each primitive's per-call cost, count how often a
  real run invokes each (from the run's own counter delta), and bound
  the product.  A regression that puts an allocation or a lock on the
  disabled ``span()`` path inflates the per-call cost ~10-100x and trips
  the 2% line immediately.
- **Tracing must not perturb outcomes.**  The same manifest re-run with
  the tracer enabled must produce bitwise-identical outcomes, and the
  dump it writes must pass ``validate_trace``.
"""

import time

from conftest import load_problems, one_shot

from repro.abstract.domains import DEEPPOLY
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.obs.metrics import registry
from repro.obs.stats import validate_trace
from repro.obs.trace import span, tracer
from repro.sched import Scheduler, VerificationJob

#: The disabled-path budget: instrumentation cost / suite wall clock.
OVERHEAD_BUDGET = 0.02

#: Registry ops per executor submission with tracing off: submitted inc,
#: queue-depth adjust up/down, completed inc, latency observe, wait
#: observe (pooled/serial paths; the process path adds a merge, counted
#: separately below via its own delta keys).
_OPS_PER_SUBMISSION = 6


def _build_jobs():
    config = VerifierConfig(timeout=None, max_depth=8, batch_size=16)
    networks, problems = load_problems(("mnist_3x100",), count=8)
    policy = BisectionPolicy(domain=DEEPPOLY)
    return [
        VerificationJob(
            networks[p.network_name], p.prop, config=config,
            policy=policy, seed=0, name=p.prop.name,
        )
        for p in problems
    ]


def _per_call(func, calls=200_000):
    started = time.perf_counter()
    for _ in range(calls):
        func()
    return (time.perf_counter() - started) / calls


def test_disabled_span_is_shared_noop():
    # The structural half of the zero-cost story: with tracing off the
    # module-level span() returns one shared stateless singleton — no
    # allocation, no tracer touch.
    assert not tracer().enabled
    assert span("a", cat="sched", rows=4) is span("b")


def test_disabled_overhead_under_budget(benchmark):
    assert not tracer().enabled
    jobs = _build_jobs()
    Scheduler(jobs[:2]).run()  # warm lazy op lowering + BLAS pools

    obs = registry()
    before = obs.counters_snapshot()
    started = time.perf_counter()
    report = one_shot(benchmark, lambda: Scheduler(jobs).run())
    wall = time.perf_counter() - started
    delta = obs.counters_since(before)

    # Microbench each primitive the disabled path actually executes.
    group = obs.group("bench_overhead", ("calls",))
    cost_span = _per_call(lambda: span("sched.round", cat="sched"))
    cost_inc = _per_call(lambda: obs.inc("bench_overhead.scalar"))
    cost_group = _per_call(lambda: group.__setitem__(
        "calls", group["calls"] + 1
    ))

    # How often a real run hits each primitive, from its own delta.
    submissions = sum(
        value for name, value in delta.items()
        if name.startswith("exec.") and name.endswith(".submitted")
    )
    kernel_batches = delta.get("kernel.pgd_batches", 0) + delta.get(
        "kernel.analyze_batches", 0
    )
    cache_ops = sum(
        value for name, value in delta.items() if name.startswith("cache.")
    )
    rounds = delta.get("sched.rounds", 0)
    # span() fast-path checks: one per round, one per fused group result
    # consumption, one per cache touch.
    span_calls = rounds + kernel_batches + cache_ops
    # Locked registry ops: executor submission bookkeeping plus the
    # per-round counter and three phase-timer adds.
    inc_calls = _OPS_PER_SUBMISSION * submissions + 4 * rounds
    # Lock-free group increments: two per kernel batch (batches + rows)
    # plus the fused kernels' own counters.
    group_calls = 2 * kernel_batches + 2 * delta.get("fused.calls", 0)

    estimated = (
        cost_span * span_calls
        + cost_inc * inc_calls
        + cost_group * group_calls
    )
    fraction = estimated / wall
    print()
    print(
        f"disabled-path overhead: span {cost_span * 1e9:.0f}ns x"
        f"{span_calls:.0f}, inc {cost_inc * 1e9:.0f}ns x{inc_calls:.0f}, "
        f"group {cost_group * 1e9:.0f}ns x{group_calls:.0f} -> "
        f"{estimated * 1e3:.3f}ms of {wall:.2f}s wall "
        f"({fraction * 100:.4f}%)"
    )
    assert report.sweeps > 0 and submissions > 0, "workload did no work"
    assert fraction < OVERHEAD_BUDGET


def test_tracing_does_not_perturb_outcomes(benchmark, tmp_path):
    jobs = _build_jobs()
    Scheduler(jobs[:2]).run()  # warm outside the comparison

    def run():
        baseline = Scheduler(jobs).run()
        tracer().enable()
        try:
            traced = Scheduler(jobs).run()
        finally:
            path = tmp_path / "trace.json"
            tracer().write(str(path), metrics=registry().snapshot())
            tracer().disable()
        return baseline, traced, path

    baseline, traced, path = one_shot(benchmark, run)

    import json

    import numpy as np

    for a, b in zip(baseline.results, traced.results):
        assert a.outcome.kind == b.outcome.kind
        if a.outcome.kind == "falsified":
            np.testing.assert_array_equal(
                a.outcome.counterexample, b.outcome.counterexample
            )
            assert a.outcome.margin == b.outcome.margin
        assert a.outcome.stats.pgd_calls == b.outcome.stats.pgd_calls
        assert a.outcome.stats.analyze_calls == b.outcome.stats.analyze_calls
        assert a.outcome.stats.splits == b.outcome.stats.splits

    dump = json.loads(path.read_text())
    assert validate_trace(dump) == []
    names = {event["name"] for event in dump["traceEvents"]}
    assert "sched.round" in names and "sched.pgd_group" in names
    print()
    print(
        f"traced run: {len(dump['traceEvents'])} events, outcomes bitwise "
        f"equal across {len(jobs)} jobs"
    )
