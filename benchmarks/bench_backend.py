"""Mixed-precision backend contract: numpy32 makes the hot kernels pay
GEMM/bandwidth prices, not promotion prices.

Not a paper figure: this bench pins the perf contract of the pluggable
array-backend layer (``repro.backend``).  The float32 backend exists to
screen jobs cheaply under precision escalation, so it must actually be
fast where the work is:

- the batched zonotope propagation (``ZonotopeBatch`` + the fused
  split+join contraction) runs >= 1.6x faster under ``numpy32`` than the
  ``numpy64`` reference on a refinement-frontier-shaped workload;
- DeepPoly back-substitution (the stacked-GEMM rewrite chain in
  ``DeepPolyBatch``) runs >= 1.6x faster under ``numpy32``;
- both at **identical per-region decisions**; the DeepPoly leg also
  asserts every float32 margin bound stays below its float64 reference
  (the outward-rounding containment the backend's soundness argument
  rests on — the zonotope leg's split heuristic makes discrete choices
  from float32 bounds, so only its decisions are comparable).

The workloads are sized so the measured ratio reflects the shipped
regime: wide-enough layers that BLAS dominates, small-enough radii that
the generator stacks stay frontier-shaped.  The full trajectory lives in
``BENCH_backend.json`` via ``scripts/perf_baseline.py --backend-bench``.
"""

import time

import numpy as np
from conftest import one_shot

from repro.abstract.analyzer import analyze_batch
from repro.abstract.domains import DEEPPOLY, ZONOTOPE
from repro.backend import use_backend
from repro.nn.builders import mlp
from repro.utils.boxes import Box

#: Containment tolerance for comparing float32 margins against float64.
_TOL = 1e-9


def _workload(n_in, hidden, batch, radius, seed=3):
    net = mlp(n_in, hidden, 10, rng=seed)
    rng = np.random.default_rng(7)
    regions = [
        Box.from_center_radius(rng.uniform(0.3, 0.7, n_in), radius)
        for _ in range(batch)
    ]
    return net, regions


def _run_backends(net, regions, domain, rounds):
    """Best-of-``rounds`` wall clock plus the decisions, per backend."""
    measured = {}
    for name in ("numpy64", "numpy32"):
        with use_backend(name):
            results = analyze_batch(net, regions, 1, domain)  # warm + decide
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                analyze_batch(net, regions, 1, domain)
                best = min(best, time.perf_counter() - start)
        measured[name] = (results, best)
    return measured


def _check_contract(measured, label, floor=1.6, containment=True):
    """``containment=False`` for domains whose refinement heuristics make
    discrete choices from the float32 bounds (the zonotope split+join
    picks crossing dims per round): a divergent split yields a different
    — still sound, sometimes tighter — abstraction, so only the
    per-region decisions are comparable there.  DeepPoly's relaxation is
    elementwise, so its float32 bounds stay below the float64 reference.
    """
    (ref, t64), (scr, t32) = measured["numpy64"], measured["numpy32"]
    ratio = t64 / t32
    print()
    print(
        f"{label}: numpy64 {t64 * 1e3:.0f}ms, numpy32 {t32 * 1e3:.0f}ms "
        f"-> {ratio:.2f}x"
    )
    # Identical per-region decisions: the screen never flips an outcome
    # on this workload (margins sit far from zero by construction).
    assert [r.verified for r in scr] == [r.verified for r in ref]
    if containment:
        for r32, r64 in zip(scr, ref):
            assert r32.margin_lower_bound <= r64.margin_lower_bound + _TOL
    assert ratio >= floor, (
        f"{label}: numpy32 only {ratio:.2f}x vs numpy64 (floor {floor}x)"
    )


def test_zonotope_batch_numpy32_speedup(benchmark):
    """Batched zonotope propagation: >= 1.6x under numpy32."""
    net, regions = _workload(128, [256, 256], batch=48, radius=0.005)
    measured = one_shot(
        benchmark, lambda: _run_backends(net, regions, ZONOTOPE, rounds=1)
    )
    _check_contract(measured, "zonotope batch", containment=False)


def test_deeppoly_backsub_numpy32_speedup(benchmark):
    """DeepPoly back-substitution: >= 1.6x under numpy32."""
    net, regions = _workload(128, [256] * 4, batch=48, radius=0.01)
    measured = one_shot(
        benchmark, lambda: _run_backends(net, regions, DEEPPOLY, rounds=2)
    )
    _check_contract(measured, "deeppoly backsub")
