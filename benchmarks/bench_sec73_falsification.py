"""§7.3 (RQ2): impact of counterexample search — falsification counts.

Paper's numbers: of 585 benchmarks, Charon falsifies 123, Reluplex 1,
ReluVal 0.  The shape to reproduce: gradient-based search lets Charon
falsify far more properties than either complete tool, because PGD finds
adversarial inputs in seconds where LP branch-and-bound (Reluplex) or
midpoint sampling (ReluVal) rarely do before the timeout.
"""

from conftest import MLP_NETWORKS, TIMEOUT, load_problems, one_shot

from repro.bench.harness import (
    charon_adapter,
    reluplex_adapter,
    reluval_adapter,
    run_suite,
)
from repro.bench.report import falsification_counts, format_counts


def test_sec73_falsification(benchmark, charon_policy):
    networks, problems = load_problems(MLP_NETWORKS)
    tools = [
        charon_adapter(TIMEOUT, policy=charon_policy),
        reluval_adapter(TIMEOUT),
        reluplex_adapter(TIMEOUT),
    ]
    table = one_shot(benchmark, lambda: run_suite(tools, problems, networks))

    counts = falsification_counts(table)
    print()
    print(format_counts(counts, f"Falsified (of {len(problems)})"))
    # The paper's ordering: Charon >> Reluplex >= ReluVal in falsifications.
    assert counts["Charon"] >= counts["ReluVal"]
