"""Figure 09: cactus plot for the mnist_9x200 network (Charon vs AI2).

The paper plots cumulative solve time against the number of benchmarks
solved; lower and further right is better.  The qualitative claim: Charon
solves at least as many benchmarks as AI2-Bounded64 and solves them faster.
"""

from conftest import cactus_figure


def test_fig09_mnist_9x200(benchmark, charon_policy):
    cactus_figure(benchmark, charon_policy, "mnist_9x200", "Figure 09")
