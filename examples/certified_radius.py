"""Certified-radius curves: the downstream use of a robustness verifier.

For a handful of test images, binary-search the largest L∞ radius the
verifier can *prove* robust and the smallest radius PGD can *break* —
the undecided band between them is where more verification effort would
go.  Also prints a small certified-accuracy table.

Run with::

    python examples/certified_radius.py
"""

import numpy as np

from repro.core.config import VerifierConfig
from repro.core.radius import certified_accuracy, certified_radius
from repro.data.synthetic import mnist_like
from repro.nn.builders import mlp
from repro.nn.training import TrainConfig, train_classifier


def main() -> None:
    print("training a small classifier on the MNIST-like dataset...")
    dataset = mnist_like(num_samples=800, image_size=6, rng=0)
    flat = dataset.inputs.reshape(len(dataset), -1)
    network = mlp(flat.shape[1], [20, 20], dataset.num_classes, rng=0)
    train_classifier(
        network, flat, dataset.labels,
        TrainConfig(epochs=8, learning_rate=0.01), rng=0,
    )

    config = VerifierConfig(timeout=1.0)
    print("\nper-image robustness frontier (L-infinity):")
    print(f"{'image':>5} {'label':>5} {'certified':>10} {'falsified':>10} {'gap':>8}")
    shown = 0
    for i in range(len(dataset)):
        if shown >= 5:
            break
        if network.classify(flat[i]) != dataset.labels[i]:
            continue
        result = certified_radius(
            network, flat[i], max_radius=0.3, tolerance=0.005,
            config=config, rng=0,
        )
        falsified = (
            f"{result.falsified:.3f}" if np.isfinite(result.falsified) else ">0.3"
        )
        gap = f"{result.gap:.3f}" if np.isfinite(result.gap) else "-"
        print(
            f"{i:>5} {dataset.labels[i]:>5} {result.certified:>10.3f} "
            f"{falsified:>10} {gap:>8}"
        )
        shown += 1

    print("\ncertified accuracy at fixed budgets (30 test images):")
    subset = dataset.subset(np.arange(30))
    for eps in (0.01, 0.05, 0.1):
        certified, correct = certified_accuracy(
            network,
            subset.inputs.reshape(len(subset), -1),
            subset.labels,
            epsilon=eps,
            config=config,
            rng=0,
        )
        print(f"  eps={eps:.2f}: certified {certified:.0%} (clean accuracy {correct:.0%})")


if __name__ == "__main__":
    main()
