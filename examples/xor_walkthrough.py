"""Walkthrough of the paper's worked examples (2.2, 2.3, and 3.1).

Reproduces, with live numbers:

- Example 2.2 — a 1-input network robust on [-1, 1] but not on [-1, 2];
- Example 2.3 — a property that plain zonotopes cannot verify but a
  powerset of two zonotopes can (Figure 4);
- Example 3.1 — Algorithm 1's split-and-choose-domain trace on the XOR
  network (Figure 5).

Run with::

    python examples/xor_walkthrough.py
"""

import numpy as np

from repro import Box, DomainSpec, RobustnessProperty, VerifierConfig, analyze, verify
from repro.core.policy import BisectionPolicy
from repro.nn.builders import example_2_2_network, example_2_3_network, xor_network


def example_2_2() -> None:
    print("=== Example 2.2 ===")
    net = example_2_2_network()
    print(f"N(0) = {net.logits(np.array([0.0]))} -> class {net.classify(np.array([0.0]))}")
    print(f"N(2) = {net.logits(np.array([2.0]))} -> class {net.classify(np.array([2.0]))}")

    robust = RobustnessProperty(Box(np.array([-1.0]), np.array([1.0])), 1)
    print(f"robust on [-1, 1]: {verify(net, robust, rng=0).kind}")
    extended = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
    outcome = verify(net, extended, rng=0)
    print(f"robust on [-1, 2]: {outcome.kind} (witness x = {outcome.counterexample})")


def example_2_3() -> None:
    print("\n=== Example 2.3 (Figure 4) ===")
    net = example_2_3_network()
    box = Box(np.zeros(2), np.ones(2))
    for spec in (
        DomainSpec("interval", 1),
        DomainSpec("zonotope", 1),
        DomainSpec("zonotope", 2),
    ):
        result = analyze(net, box, 1, spec)
        status = "verified" if result.verified else "cannot verify"
        print(
            f"  domain {spec}: {status} "
            f"(margin lower bound {result.margin_lower_bound:+.2f})"
        )
    print("  -> the powerset of two zonotopes keeps the ReLU case split")
    print("     that the plain zonotope join throws away.")


def example_3_1() -> None:
    print("\n=== Example 3.1 (Figure 5) ===")
    net = xor_network()
    prop = RobustnessProperty(Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1)
    # Force plain zonotopes, as in the paper's trace: splitting is required.
    policy = BisectionPolicy(domain=DomainSpec("zonotope", 1))
    outcome = verify(net, prop, policy=policy, config=VerifierConfig(timeout=10), rng=0)
    print(f"  with plain zonotopes + bisection: {outcome.kind}")
    print(f"  region splits performed: {outcome.stats.splits}")
    print(f"  abstract-interpreter calls: {outcome.stats.analyze_calls}")
    # With the richer default policy no split is needed at all.
    outcome = verify(net, prop, config=VerifierConfig(timeout=10), rng=0)
    print(
        f"  with the policy's (Z, 2) choice: {outcome.kind} "
        f"after {outcome.stats.splits} splits"
    )


def main() -> None:
    example_2_2()
    example_2_3()
    example_3_1()


if __name__ == "__main__":
    main()
