"""Parallel verification (§6): sub-regions analyzed on worker threads.

The recursion of Algorithm 1 is independent across sub-regions, so the
original Charon runs abstract-interpreter calls on as many threads as the
host provides.  This example verifies a split-heavy property with 1, 2, and
4 workers and reports the wall-clock effect.

Run with::

    python examples/parallel_verification.py
"""

import numpy as np

from repro import Box, DomainSpec, RobustnessProperty, VerifierConfig
from repro.core.parallel import verify_parallel
from repro.core.policy import BisectionPolicy
from repro.data.synthetic import mnist_like
from repro.nn.builders import mlp
from repro.nn.training import TrainConfig, train_classifier


def main() -> None:
    print("training a classifier whose properties need many splits...")
    dataset = mnist_like(num_samples=800, image_size=6, rng=0)
    flat = dataset.inputs.reshape(len(dataset), -1)
    network = mlp(flat.shape[1], [20, 20], dataset.num_classes, rng=0)
    train_classifier(
        network, flat, dataset.labels,
        TrainConfig(epochs=8, learning_rate=0.01), rng=0,
    )
    sample = next(
        flat[i] for i in range(len(dataset))
        if network.classify(flat[i]) == dataset.labels[i]
    )
    prop = RobustnessProperty(
        Box.linf_ball(sample, 0.01, clip_low=0.0, clip_high=1.0),
        network.classify(sample),
    )
    # A deliberately weak domain (intervals) forces the splitting that the
    # worker pool parallelizes; zonotopes would verify this in one shot.
    policy = BisectionPolicy(domain=DomainSpec("interval", 1))
    config = VerifierConfig(timeout=30)

    print("\nworkers  outcome    splits  wall-clock")
    for workers in (1, 2, 4):
        outcome = verify_parallel(
            network, prop, policy=policy, config=config,
            workers=workers, rng=0,
        )
        print(
            f"{workers:>7}  {outcome.kind:<9} {outcome.stats.splits:>6}  "
            f"{outcome.stats.time_seconds:>8.3f}s"
        )
    print("\nVerdicts are identical across pool sizes (the point of the")
    print("correctness argument: sub-regions are independent).  On these")
    print("scaled-down networks each analyzer call costs microseconds, so")
    print("thread overhead dominates and more workers run *slower* — the")
    print("paper's parallel speedups need ELINA-scale per-region costs.")


if __name__ == "__main__":
    main()
