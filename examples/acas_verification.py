"""Collision-avoidance robustness: Charon vs the complete tools.

Verifies robustness properties of the ACAS-style advisory network (the
paper's training domain, §6) with all four tools — Charon, AI2, ReluVal,
and the Reluplex-style LP solver — and prints a per-property comparison.

Run with::

    python examples/acas_verification.py
"""

import numpy as np

from repro.baselines.ai2 import AI2, AI2_BOUNDED64
from repro.baselines.reluplex import Reluplex, ReluplexConfig
from repro.baselines.reluval import ReluVal, ReluValConfig
from repro.core.config import VerifierConfig
from repro.core.property import RobustnessProperty
from repro.core.verifier import Verifier
from repro.data.acas import acas_network, acas_training_properties
from repro.learn.pretrained import pretrained_policy
from repro.utils.boxes import Box

TIMEOUT = 3.0

ADVISORIES = ["clear", "weak-left", "weak-right", "strong-left", "strong-right"]


def main() -> None:
    print("training the ACAS-style advisory network...")
    network = acas_network(hidden=(24, 24, 24), epochs=20, rng=7)

    properties = acas_training_properties(
        network, count=6, radii=(0.05, 0.12), rng=3
    )
    # Add one deliberately-false property: a region straddling the
    # clear-of-conflict boundary labelled with a single advisory.
    center = np.array([0.62, 0.3, 0.5, 0.5, 0.55])
    label = network.classify(center)
    properties.append(
        RobustnessProperty(
            Box.linf_ball(center, 0.3, clip_low=0.0, clip_high=1.0),
            label,
            name="boundary-straddle",
        )
    )

    charon = Verifier(
        network, pretrained_policy(), VerifierConfig(timeout=TIMEOUT), rng=0
    )
    ai2 = AI2(AI2_BOUNDED64, timeout=TIMEOUT)
    reluval = ReluVal(ReluValConfig(timeout=TIMEOUT))
    reluplex = Reluplex(ReluplexConfig(timeout=TIMEOUT))

    print()
    header = f"{'property':<20} {'advisory':<12} {'Charon':<10} {'AI2-B64':<10} {'ReluVal':<10} {'Reluplex':<10}"
    print(header)
    print("-" * len(header))
    for prop in properties:
        row = [
            charon.verify(prop).kind,
            ai2.verify(network, prop).kind,
            reluval.verify(network, prop).kind,
            reluplex.verify(network, prop).kind,
        ]
        print(
            f"{prop.name:<20} {ADVISORIES[prop.label]:<12} "
            + " ".join(f"{r:<10}" for r in row)
        )

    print()
    print("Charon decides every property (verified or a δ-counterexample);")
    print("AI2 cannot falsify, and the complete tools pay for precision in time.")


if __name__ == "__main__":
    main()
