"""The training phase (§4.2, §6): learn a verification policy on ACAS.

Builds the ACAS-style advisory network, samples 12 training properties
(mirroring the paper's 12 ACAS Xu properties), and runs Bayesian
optimization over the policy parameters θ.  Prints the cost trajectory and
the learned feature weights.

Run with::

    python examples/policy_training.py        # a few minutes
"""

import numpy as np

from repro.core.features import FEATURE_NAMES
from repro.data.acas import acas_network, acas_training_properties
from repro.learn.objective import TrainingProblem
from repro.learn.trainer import train_policy


def main() -> None:
    print("training the ACAS-style advisory network...")
    network = acas_network(hidden=(24, 24, 24, 24), epochs=25, rng=7)

    properties = acas_training_properties(
        network, count=12, radii=(0.03, 0.08, 0.15), rng=11
    )
    problems = [TrainingProblem(network, p) for p in properties]
    print(f"  {len(problems)} training properties "
          f"(labels {[p.label for p in properties]})")

    print("running Bayesian optimization over policy parameters...")
    trained = train_policy(
        problems, iterations=15, time_limit=1.0, penalty=2.0, rng=0, verbose=True
    )

    default_cost = -trained.history.observations[0].y
    learned_cost = -trained.best_score
    print()
    print(f"hand-initialized policy: total suite cost {default_cost:.2f}s")
    print(f"learned policy:          total suite cost {learned_cost:.2f}s")
    print(f"improvement:             {100 * (1 - learned_cost / default_cost):.1f}%")

    print("\nlearned θ (rows: domain base, disjuncts, split-longest,")
    print("split-influence, split-offset; columns: features + bias):")
    theta = trained.policy.theta
    header = [name[:18] for name in FEATURE_NAMES] + ["bias"]
    print("  " + "  ".join(f"{h:>18}" for h in header))
    for row in theta:
        print("  " + "  ".join(f"{v:>18.3f}" for v in row))


if __name__ == "__main__":
    main()
