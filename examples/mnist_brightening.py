"""Brightening-attack robustness on an MNIST-like classifier (§7.1).

Trains a small image classifier on the synthetic MNIST-like dataset, builds
brightening-attack properties (every pixel above a threshold may brighten
toward 1), and compares Charon against both AI2 configurations — a
miniature of the paper's Figure 6 pipeline.

Run with::

    python examples/mnist_brightening.py
"""

from repro.bench.harness import ai2_adapter, charon_adapter, run_suite
from repro.bench.report import (
    falsification_counts,
    format_summary,
    solved_counts,
    speedup_on_common,
)
from repro.bench.suites import SuiteScale, build_network, build_problems
from repro.learn.pretrained import pretrained_policy

TIMEOUT = 2.0


def main() -> None:
    print("training the mnist_3x100 benchmark network (scaled)...")
    bench_net = build_network("mnist_3x100", SuiteScale())
    print(f"  train accuracy: {bench_net.accuracy:.2%}")

    problems = build_problems(bench_net, count=12, tau=0.55)
    print(f"  built {len(problems)} brightening-attack properties")

    tools = [
        charon_adapter(TIMEOUT, policy=pretrained_policy()),
        ai2_adapter(TIMEOUT, bounded=False),
        ai2_adapter(TIMEOUT, bounded=True),
    ]
    table = run_suite(tools, problems, {bench_net.name: bench_net.network})

    print()
    print(format_summary(table, title="Outcome summary (cf. Figure 6)"))
    print()
    print(f"solved:    {solved_counts(table)}")
    print(f"falsified: {falsification_counts(table)}")
    ratio = speedup_on_common(table, "Charon", "AI2-Bounded64")
    if ratio is not None:
        print(f"Charon vs AI2-Bounded64 on commonly-solved: {ratio:.2f}x")
    print()
    print("note: AI2 rows show no falsifications (it cannot produce")
    print("counterexamples) and Charon shows no unknowns (δ-completeness).")


if __name__ == "__main__":
    main()
