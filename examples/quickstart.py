"""Quickstart: verify and falsify robustness properties in a few lines.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import Box, RobustnessProperty, VerifierConfig, verify
from repro.nn import xor_network


def main() -> None:
    # The XOR network from Figure 3 of the paper: classifies [0,1] and
    # [1,0] as class 1, [0,0] and [1,1] as class 0.
    network = xor_network()

    # Example 3.1: every input in [0.3, 0.7]^2 should be classified 1.
    robust = RobustnessProperty(
        Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), label=1
    )
    outcome = verify(network, robust, config=VerifierConfig(timeout=10), rng=0)
    print(f"[0.3, 0.7]^2 -> class 1: {outcome.kind}")
    print(f"  abstract domains used: {dict(outcome.stats.domains_used)}")
    print(f"  region splits: {outcome.stats.splits}")

    # A property that is false: the whole unit square labelled 0.
    broken = RobustnessProperty(Box(np.zeros(2), np.ones(2)), label=0)
    outcome = verify(network, broken, config=VerifierConfig(timeout=10), rng=0)
    print(f"[0, 1]^2 -> class 0: {outcome.kind}")
    if outcome.kind == "falsified":
        x = outcome.counterexample
        print(f"  counterexample: {x} classified as {network.classify(x)}")
        print(f"  margin F(x*) = {outcome.margin:.4f} (<= 0 means a true violation)")


if __name__ == "__main__":
    main()
