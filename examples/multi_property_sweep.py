"""Verify all 8 fig06 properties of one MLP in a single scheduler run.

The bench harness's classic route decides one property at a time, leaving
the batched engine's GEMM slots mostly empty.  This example builds the
mnist_3x100 suite network, derives its 8 brightening-attack properties,
and drives them through the multi-property scheduler's shared frontier —
then re-runs them per property to show (a) identical outcomes and
(b) the cross-property throughput gain, and finally replays the manifest
against the persistent result cache, which serves every decided job
without spawning any PGD/Analyze work.

Run with ``PYTHONPATH=src python examples/multi_property_sweep.py``.
"""

import tempfile

from repro.abstract.domains import DEEPPOLY
from repro.bench.suites import SuiteScale, build_network, build_problems
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.sched import ResultCache, Scheduler, VerificationJob


def main() -> None:
    print("training mnist_3x100 (scaled) ...")
    bench_net = build_network("mnist_3x100", SuiteScale(), seed=0)
    problems = build_problems(bench_net, count=8, rng=13)

    # Deterministic workload: no wall-clock timeout, bounded by the split
    # depth cap (whose timeouts are scheduling-independent), so the two
    # engines below do identical work and the comparison is pure batching.
    config = VerifierConfig(timeout=None, max_depth=10, batch_size=16)
    policy = BisectionPolicy(domain=DEEPPOLY)
    jobs = [
        VerificationJob(
            bench_net.network,
            problem.prop,
            config=config,
            policy=policy,
            seed=0,
            name=problem.prop.name,
        )
        for problem in problems
    ]

    print(f"\n--- one property at a time ({len(jobs)} solo runs) ---")
    solo = Scheduler(jobs, engine="sequential").run()
    for result in solo.results:
        print(f"  {result.job.name:<16} {result.outcome.kind}")
    print(f"  wall clock {solo.wall_clock:.2f}s, "
          f"{solo.throughput():.0f} work items/s")

    print("\n--- one shared frontier (hardest-first) ---")
    fused = Scheduler(jobs, frontier="priority").run()
    for result, ref in zip(fused.results, solo.results):
        marker = "==" if result.outcome.kind == ref.outcome.kind else "!!"
        print(f"  {result.job.name:<16} {result.outcome.kind} {marker}")
    print(f"  wall clock {fused.wall_clock:.2f}s, "
          f"{fused.throughput():.0f} work items/s, "
          f"{fused.sweeps} fused sweeps")
    print(f"  cross-property speedup: "
          f"{fused.throughput() / solo.throughput():.2f}x")

    print("\n--- replay against a persistent cache ---")
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        Scheduler(jobs, cache=cache).run()
        replay = Scheduler(jobs, cache=cache).run()
        print(f"  {replay.cache_hits}/{len(jobs)} jobs served from cache, "
              f"{replay.sweeps} fused sweeps, "
              f"{replay.wall_clock:.3f}s wall clock")


if __name__ == "__main__":
    main()
