"""Generate the tiny assets the CI smoke commands run against.

Writes into the target directory:

- ``net.npz``       — the XOR network (2 inputs, 2 classes).
- ``tuned.npz``     — the same network with its **output layer**
  fine-tuned by tiny noise: 2 of 3 layers share the digest chain with
  ``net.npz``, so an incremental re-verification resumes past the one
  checkpoint boundary (the ``diff-verify`` smoke gates on that).
- ``manifest.json`` — four quickly-*verifiable* jobs (the ``schedule``
  smoke gates on exit code 0, which means "everything proven").
- ``manifest_tuned.json`` — the same jobs against ``tuned.npz`` (the
  cold side of the incremental outcome-equality check).
- ``suite.json``    — two training problems for the ``train`` smoke.

Usage::

    PYTHONPATH=src python scripts/ci_smoke_assets.py OUTDIR
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.nn.builders import xor_network
from repro.nn.serialize import common_prefix_layers, save_network


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__)
        return 2
    out = Path(argv[0])
    out.mkdir(parents=True, exist_ok=True)

    net = xor_network()
    net_path = out / "net.npz"
    save_network(net, net_path)

    # Fine-tuned copy: noise far below the jobs' decision margins on the
    # output layer only, so outcomes stay identical while the Dense/ReLU
    # prefix (layers 0-1) keeps its digests and the incremental smoke's
    # one checkpoint boundary stays reusable.
    tuned = xor_network()
    tuned.thaw_params()
    tuned.layers[-1].weight += np.random.default_rng(7).normal(
        0.0, 1e-6, tuned.layers[-1].weight.shape
    )
    tuned.invalidate_ops()
    assert common_prefix_layers(net, tuned) == 2
    save_network(tuned, out / "tuned.npz")

    # Centers well inside the XOR decision regions: every job verifies
    # fast, so the schedule smoke's exit code 0 is a real assertion.
    jobs = [
        {"center": "0.5,0.88", "name": "hi-y"},
        {"center": "0.88,0.5", "name": "hi-x"},
        {"center": "0.12,0.5", "name": "lo-x"},
        {"center": "0.5,0.12", "name": "lo-y"},
    ]
    manifest = {
        "defaults": {"network": "net.npz", "epsilon": 0.04, "timeout": 30.0},
        "jobs": jobs,
    }
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")
    manifest_tuned = {
        "defaults": {"network": "tuned.npz", "epsilon": 0.04, "timeout": 30.0},
        "jobs": jobs,
    }
    (out / "manifest_tuned.json").write_text(
        json.dumps(manifest_tuned, indent=2) + "\n"
    )

    suite = {
        "defaults": {"network": "net.npz", "epsilon": 0.08},
        "jobs": [
            {"center": "0.5,0.8", "name": "train-a"},
            {"center": "0.8,0.5", "name": "train-b"},
        ],
    }
    (out / "suite.json").write_text(json.dumps(suite, indent=2) + "\n")
    print(f"smoke assets written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
