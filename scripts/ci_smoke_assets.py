"""Generate the tiny assets the CI smoke commands run against.

Writes into the target directory:

- ``net.npz``       — the XOR network (2 inputs, 2 classes).
- ``manifest.json`` — four quickly-*verifiable* jobs (the ``schedule``
  smoke gates on exit code 0, which means "everything proven").
- ``suite.json``    — two training problems for the ``train`` smoke.

Usage::

    PYTHONPATH=src python scripts/ci_smoke_assets.py OUTDIR
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.nn.builders import xor_network
from repro.nn.serialize import save_network


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__)
        return 2
    out = Path(argv[0])
    out.mkdir(parents=True, exist_ok=True)

    net_path = out / "net.npz"
    save_network(xor_network(), net_path)

    # Centers well inside the XOR decision regions: every job verifies
    # fast, so the schedule smoke's exit code 0 is a real assertion.
    manifest = {
        "defaults": {"network": "net.npz", "epsilon": 0.04, "timeout": 30.0},
        "jobs": [
            {"center": "0.5,0.88", "name": "hi-y"},
            {"center": "0.88,0.5", "name": "hi-x"},
            {"center": "0.12,0.5", "name": "lo-x"},
            {"center": "0.5,0.12", "name": "lo-y"},
        ],
    }
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2) + "\n")

    suite = {
        "defaults": {"network": "net.npz", "epsilon": 0.08},
        "jobs": [
            {"center": "0.5,0.8", "name": "train-a"},
            {"center": "0.8,0.5", "name": "train-b"},
        ],
    }
    (out / "suite.json").write_text(json.dumps(suite, indent=2) + "\n")
    print(f"smoke assets written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
