"""Perf baseline for the multi-property scheduler -> BENCH_sched.json.

Measures what the scheduler exists for: the throughput ratio between
**single-property** execution (each fig06 property through its own solo
``BatchedVerifier``, the scheduler's ``sequential`` engine) and
**cross-property** execution (all properties of the suite through one
shared frontier, the ``batched`` engine) at the *same* ``batch_size`` —
so the ratio isolates batch-slot filling, not kernel changes.  Outcomes
are asserted identical per job (the scheduler's reproducibility contract).

The workload is deterministic: no wall-clock timeout, bounded by the split
depth cap instead.  Depth-cap timeouts are scheduling-independent, so the
total work is *fixed* — the ratio is a pure wall-clock comparison and the
trajectory stays comparable across machines and PRs.

Also records the cache round-trip (a second scheduler run against a warm
persistent cache must serve every cacheable job with zero fused sweeps)
and the **worker-scaling suites**: the multi-network manifest through
``PooledExecutor`` *and* ``ProcessExecutor`` runs at workers ∈ {1, 2, 4}
against the ``SerialExecutor`` baseline, plus the powerset-heavy (Z, 2)
suite — whose Python-loop split+join contraction the GIL serializes
under threads (~1.0x) and the spawn-based process pool exists for.
Every row carries its executor kind and the host's core count —
pool speedups are physically bounded by available cores, so a ratio of
~1.0 on a 1-core container and ~2x on a 4-core runner are the *same*
result; record the denominators or the trajectory is gibberish across
machines.  Outcomes are asserted bitwise-identical to serial at every
width for both pool kinds.

Like ``perf_baseline.py``, runs append to a trajectory list in the output
file, accumulating the perf history across PRs.

``--fused-bench`` is a separate fast mode -> ``BENCH_fused.json``: it
measures the fused split+join contraction (``repro.abstract.fused``)
against the pre-fusion kernel structure kept verbatim in
``repro.bench.fusedref`` — bitwise-asserted, on the powerset-frontier
workload — and records the throughput ratio alongside the executor kind
and host core counts, like every other BENCH row.

Usage::

    PYTHONPATH=src python scripts/sched_baseline.py [--quick] [--out PATH]
    PYTHONPATH=src python scripts/sched_baseline.py --fused-bench
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import tempfile
from pathlib import Path

import numpy as np

from perf_baseline import (
    append_trajectory,
    apply_backend_flag,
    backend_info,
    host_info,
)
from repro.abstract.domains import DEEPPOLY, bounded_zonotopes
from repro.backend import BACKEND_CHOICES
from repro.bench.suites import SuiteScale, build_network, build_problems
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.exec import PooledExecutor, ProcessExecutor
from repro.learn.pretrained import pretrained_policy
from repro.sched import ResultCache, Scheduler, VerificationJob

EXECUTOR_POOLS = {"pooled": PooledExecutor, "process": ProcessExecutor}

MLP_NETWORKS = (
    "mnist_3x100",
    "mnist_6x100",
    "mnist_9x200",
    "cifar_3x100",
    "cifar_6x100",
    "cifar_9x100",
)


def build_jobs(problems, networks, policy, config, seed=0):
    """One scheduler job per benchmark problem."""
    return [
        VerificationJob(
            networks[problem.network_name],
            problem.prop,
            config=config,
            policy=policy,
            seed=seed,
            name=problem.prop.name,
        )
        for problem in problems
    ]


#: Phase-timer counters the obs layer accumulates per run, mapped to the
#: BENCH row keys of ``phase_shares``.
PHASES = ("pgd", "analyze", "split_join", "cache")


def phase_shares(report):
    """Per-phase wall-clock shares of one run, from its metrics delta.

    The scheduler times its three sweep stages plus cache traffic into
    ``phase.*_s`` counters (:mod:`repro.obs.metrics`); normalizing by the
    run's wall clock turns them into a where-does-the-time-go breakdown
    each BENCH row carries.  Shares need not sum to 1.0: submission-side
    work and report assembly fall outside the timed phases, and pooled
    stages overlap the wall clock.  Sequential-engine rows report zeros —
    the phases decompose the fused sweep, which solo runs do not execute.
    """
    wall = max(report.wall_clock, 1e-9)
    return {
        phase: round(report.metrics.get(f"phase.{phase}_s", 0.0) / wall, 3)
        for phase in PHASES
    }


def summarize(report):
    counts = report.outcome_counts()
    return {
        "backend": report.backend,
        "escalated": report.escalated if report.escalation else None,
        "wall_clock_s": round(report.wall_clock, 3),
        "outcomes": counts,
        "fresh_calls": report.fresh_calls(),
        "throughput_per_s": round(report.throughput(), 1),
        "sweeps": report.sweeps,
        "swept_items": report.swept_items,
        "final_batch_target": report.final_batch_target,
        "executor": report.executor,
        "workers": report.workers,
        "phase_shares": phase_shares(report),
    }


def run_pool_scaling(jobs, serial, widths, label):
    """One suite through both pool kinds at the given worker widths.

    Returns ``{kind: {workers_N: summary}}``; every summary row carries
    the executor kind, the bitwise-agreement flag against ``serial``,
    and the wall-clock ratio.  A small warm-up run per executor keeps
    one-time pool costs (process spawn, per-worker numpy import and
    network deserialization) out of the measured ratio — the scheduler
    amortizes one pool across a long manifest.
    """
    scaling = {kind: {} for kind in EXECUTOR_POOLS}
    for kind, pool_cls in EXECUTOR_POOLS.items():
        for workers in widths:
            print(f"[{label}] {kind} x{workers} ...", flush=True)
            with pool_cls(workers) as executor:
                Scheduler(jobs[:2], executor=executor).run()
                run = Scheduler(jobs, executor=executor).run()
            summary = summarize(run)
            summary["outcomes_agree"] = outcomes_agree(serial, run)
            summary["wall_clock_ratio_vs_serial"] = round(
                serial.wall_clock / max(run.wall_clock, 1e-9), 2
            )
            scaling[kind][f"workers_{workers}"] = summary
            print(
                f"  x{workers}: {summary['wall_clock_ratio_vs_serial']}x vs "
                f"serial, agree={summary['outcomes_agree']}", flush=True,
            )
    return scaling


def outcomes_agree(a, b) -> bool:
    """Bitwise per-job agreement: outcome kind, witness, and counters."""
    for ra, rb in zip(a.results, b.results):
        if ra.outcome.kind != rb.outcome.kind:
            return False
        if ra.outcome.kind == "falsified" and not np.array_equal(
            ra.outcome.counterexample, rb.outcome.counterexample
        ):
            return False
        sa, sb = ra.outcome.stats, rb.outcome.stats
        if (sa.pgd_calls, sa.analyze_calls, sa.splits) != (
            sb.pgd_calls, sb.analyze_calls, sb.splits
        ):
            return False
    return True


def run_fused_bench(out_path: Path) -> int:
    """The ``--fused-bench`` fast mode -> one ``BENCH_fused.json`` row."""
    import time

    from repro.abstract import fused
    from repro.bench.fusedref import prefused_stacked_relu, promotion_stack

    workload = dict(seed=11, rows=48, k=160, n=96, dead_rows=0.45)
    operands = promotion_stack(**workload)

    fused.reset_counters()
    got = fused.stacked_relu(*operands)
    want = prefused_stacked_relu(*operands)
    bitwise_equal = all(np.array_equal(g, w) for g, w in zip(got, want))
    counters = dict(fused.FUSED_COUNTERS)

    def best_of(fn, rounds=3):
        fn(*operands)  # warm (arena allocation, first-touch paging)
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn(*operands)
            best = min(best, time.perf_counter() - start)
        return best

    prefused_s = best_of(prefused_stacked_relu)
    fused_s = best_of(fused.stacked_relu)
    ratio = prefused_s / max(fused_s, 1e-9)
    report = {
        "bench": "fused_kernel",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_info(),
        **backend_info(),
        "workload": workload,
        "kernel": {
            # The kernel runs in-process on the caller's thread; the row
            # still carries the executor kind and core counts so it stays
            # schema-comparable with the worker-scaling rows.
            "executor": "serial",
            "cpu_count": os.cpu_count(),
            "prefused_ms": round(prefused_s * 1e3, 1),
            "fused_ms": round(fused_s * 1e3, 1),
            "throughput_ratio": round(ratio, 2),
            "bitwise_equal": bitwise_equal,
            "compacted_rows": counters["compacted_rows"],
        },
    }
    print(
        f"fused kernel: pre-fusion {report['kernel']['prefused_ms']}ms, "
        f"fused {report['kernel']['fused_ms']}ms -> {ratio:.2f}x, "
        f"bitwise_equal={bitwise_equal}", flush=True,
    )
    assert bitwise_equal, "fused kernel diverged from the reference path"
    append_trajectory(out_path, "fused_kernel", report)
    print(f"wrote {out_path}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="one network, fewer problems (smoke run; not the baseline)",
    )
    parser.add_argument(
        "--fused-bench", action="store_true",
        help="fast mode: fused vs pre-fused kernel throughput row only "
        "(defaults --out to BENCH_fused.json)",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path"
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="array backend for every kernel in the run (default: active)",
    )
    args = parser.parse_args(argv)
    apply_backend_flag(args)
    if args.fused_bench:
        return run_fused_bench(Path(args.out or "BENCH_fused.json"))
    args.out = args.out or "BENCH_sched.json"

    scale = SuiteScale()
    names = MLP_NETWORKS[:1] if args.quick else MLP_NETWORKS
    count = 4 if args.quick else 8
    config = VerifierConfig(timeout=None, max_depth=10, batch_size=16)
    # The learned policy mostly selects bounded zonotope powersets — now
    # batched (ZonotopeBatch/PowersetBatch) but still far heavier per
    # region than DeepPoly; a lower depth cap keeps its deterministic
    # workload baseline-sized without reintroducing wall-clock
    # nondeterminism.  The explicit (Z, 2) row shares that cap.
    learned_config = VerifierConfig(timeout=None, max_depth=6, batch_size=16)

    print(f"training {len(names)} networks ...", flush=True)
    networks = {}
    problems = []
    for name in names:
        bench_net = build_network(name, scale, seed=0)
        networks[name] = bench_net.network
        problems.extend(build_problems(bench_net, count=count, rng=13))
    print(f"{len(problems)} problems", flush=True)

    report = {
        "bench": "sched_baseline",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_info(),
        **backend_info(),
        # Every scheduler row in this file runs the concrete networks;
        # recorded so rows stay interpretable next to BENCH_netabs.json's
        # abstraction trajectory.
        "abstraction": "off",
        "suite": {
            "networks": list(names),
            "problems": len(problems),
            "max_depth": config.max_depth,
            "batch_size": config.batch_size,
        },
        "engines": {},
    }

    # The learned-policy and (Z, 2) legs run on one network: powerset
    # analyses dominate their wall clock, and single-network manifests
    # are the regime where cross-property fusion fills batch slots.
    learned_problems = [p for p in problems if p.network_name == names[0]]
    policies = {
        "deeppoly_policy": (BisectionPolicy(domain=DEEPPOLY), config, problems),
        "learned_policy": (
            pretrained_policy(), learned_config, learned_problems,
        ),
        # Named to match perf_baseline's (Z, 2) leg so the two trajectory
        # files stay comparable key-by-key.
        "powerset_policy": (
            BisectionPolicy(domain=bounded_zonotopes(2)),
            learned_config,
            learned_problems,
        ),
    }
    for policy_name, (policy, policy_config, policy_problems) in policies.items():
        jobs = build_jobs(policy_problems, networks, policy, policy_config)
        print(f"[{policy_name}] sequential (per-property) ...", flush=True)
        seq = Scheduler(jobs, engine="sequential").run()
        entry = {
            "problems": len(jobs),
            "max_depth": policy_config.max_depth,
            "single_property": summarize(seq),
            "cross_property": {},
        }
        for frontier in ("dfs", "priority", "fifo"):
            print(f"[{policy_name}] batched ({frontier}) ...", flush=True)
            bat = Scheduler(jobs, frontier=frontier).run()
            summary = summarize(bat)
            summary["outcomes_agree"] = outcomes_agree(seq, bat)
            summary["throughput_ratio"] = round(
                bat.throughput() / max(seq.throughput(), 1e-9), 2
            )
            entry["cross_property"][frontier] = summary
            print(
                f"  ratio {summary['throughput_ratio']}x, "
                f"agree={summary['outcomes_agree']}", flush=True,
            )
        report["engines"][policy_name] = entry

    # Worker scaling: the multi-network deeppoly manifest (one fused PGD
    # and one fused Analyze group per network each round — the shape with
    # genuinely independent kernel groups) through both pool kinds.
    # The workload is the deterministic depth-capped one, so pooled and
    # process runs must agree with serial bitwise at every width.  Every
    # row records its executor kind; together with the host core count
    # that is what makes ratios comparable across machines.
    jobs = build_jobs(problems, networks, policies["deeppoly_policy"][0], config)
    print("[workers] serial baseline ...", flush=True)
    serial = Scheduler(jobs, workers=1).run()
    # workers=1 through a real pool measures pure hop overhead (thread
    # hand-off, or pickling + IPC for processes); run_pool_scaling builds
    # the executor explicitly since Scheduler(workers=1) would default to
    # the serial executor.
    scaling = {
        "manifest_networks": len(names),
        "problems": len(jobs),
        "serial": summarize(serial),
        **run_pool_scaling(jobs, serial, (1, 2, 4), "workers"),
    }
    report["worker_scaling"] = scaling

    # The powerset-heavy worker-scaling suite: the (Z, 2) split+join
    # contraction is Python-loop-heavy, so threads measured ~1.0x here at
    # any width — this is the suite the process pool exists for, and the
    # one bench_sched_engine.py::test_process_executor_contract floors at
    # >= 1.3x @ 4 workers on >= 4-core hosts.
    # NOTE: a distinct variable — the cache round-trip below must keep
    # measuring the deeppoly manifest (`jobs`) for trajectory continuity.
    # Problems are grouped per network, so slice 4 *per network* (a head
    # slice of the concatenation would cover only the first networks).
    powerset_names = names[: min(4, len(names))]
    by_network: dict[str, list] = {}
    for problem in problems:
        by_network.setdefault(problem.network_name, []).append(problem)
    powerset_problems = [
        problem
        for name in powerset_names
        for problem in by_network[name][:4]
    ]
    powerset_jobs = build_jobs(
        powerset_problems,
        networks,
        BisectionPolicy(domain=bounded_zonotopes(2)),
        learned_config,
    )
    print("[powerset workers] serial baseline ...", flush=True)
    serial = Scheduler(powerset_jobs, workers=1).run()
    powerset_scaling = {
        "manifest_networks": len(powerset_names),
        "problems": len(powerset_jobs),
        "max_depth": learned_config.max_depth,
        "serial": summarize(serial),
        **run_pool_scaling(powerset_jobs, serial, (2, 4), "powerset workers"),
    }
    report["powerset_worker_scaling"] = powerset_scaling

    # Cache round-trip: the second run must spawn zero fresh work.  On
    # this deterministic workload every job is cacheable (depth-cap
    # timeouts included), so every job must be served.
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        first = Scheduler(jobs, cache=cache).run()
        second = Scheduler(jobs, cache=cache).run()
        report["cache"] = {
            "jobs": len(first.results),
            "second_run_hits": second.cache_hits,
            "second_run_sweeps": second.sweeps,
            "second_run_wall_clock_s": round(second.wall_clock, 3),
            "all_served": second.cache_hits == len(first.results),
        }
    print(f"cache: {report['cache']}", flush=True)

    ratios = [
        entry["cross_property"]["dfs"]["throughput_ratio"]
        for entry in report["engines"].values()
    ]
    report["headline"] = {
        "cross_property_throughput_ratio_dfs": ratios,
        "pooled_wall_clock_ratio_workers_4": scaling["pooled"]["workers_4"][
            "wall_clock_ratio_vs_serial"
        ],
        "process_wall_clock_ratio_workers_4": scaling["process"][
            "workers_4"
        ]["wall_clock_ratio_vs_serial"],
        "powerset_process_wall_clock_ratio_workers_4": powerset_scaling[
            "process"
        ]["workers_4"]["wall_clock_ratio_vs_serial"],
        "cpu_count": os.cpu_count(),
    }

    append_trajectory(Path(args.out), "sched_baseline", report)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
