"""Perf baseline for the batched verification engine -> BENCH_batched.json.

Establishes the benchmark trajectory for perf PRs: runs the fig06 MLP suite
(the paper's six MNIST/CIFAR MLPs at default laptop scale) through the
sequential :class:`Verifier` and the frontier-based :class:`BatchedVerifier`
and records wall-clock, outcome counts, and PGD/analyze throughput per
engine, plus fixed-workload kernel comparisons (identical region sets
through the one-at-a-time and batched kernels).

Metrics and how to read them:

- ``engine_suites.*.speedup.pgd_throughput`` / ``analyze_throughput`` —
  work items processed per second, batched over sequential.  This is the
  honest engine ratio on budget-bounded runs: problems that hit the shared
  per-problem timeout burn identical wall-clock in both engines by
  construction, so completed-work rate is the comparable quantity.
- ``engine_suites.*.speedup.wall_clock_common_solved`` — total time ratio
  restricted to problems both engines decided (the paper's "among
  benchmarks solved by both tools" convention).
- ``kernels.*.speedup`` — same fixed workload (one frontier of sub-regions)
  through the per-region loop vs the batched kernel; pure wall-clock.

The ``deeppoly_policy`` suite exercises the fully-batched DeepPoly path;
``learned_policy`` is figure parity *and* the fig06 powerset workload (the
pretrained policy mostly selects bounded zonotope powersets, which since
the ZonotopeBatch/PowersetBatch kernels run GEMM-shaped and
batch-height-stable across frontier regions — see
``repro.abstract.zonotope_batch``).  ``zonotope_policy`` /
``powerset_policy`` pin the pure (Z, 1) / (Z, 2) suites on the first two
fig06 networks, and the ``analyze_zonotope`` / ``analyze_powerset``
kernel rows compare the stacked kernels against the per-region loops on a
fixed frontier.

Runs *append* to the trajectory list in the output file (legacy
single-report files are wrapped into a one-entry trajectory first), so the
baseline file accumulates the perf history across PRs instead of losing it
on every rerun.  Each entry carries a ``recorded_unix`` timestamp.

Usage::

    PYTHONPATH=src python scripts/perf_baseline.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.abstract.analyzer import analyze, analyze_batch
from repro.abstract.domains import (
    DEEPPOLY,
    INTERVAL,
    ZONOTOPE,
    bounded_zonotopes,
)
from repro.backend import BACKEND_CHOICES, active as active_backend, set_active
from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize, pgd_minimize_batch
from repro.bench.suites import SuiteScale, build_network, build_problems
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.core.verifier import BatchedVerifier, Verifier
from repro.learn.pretrained import pretrained_policy

MLP_NETWORKS = (
    "mnist_3x100",
    "mnist_6x100",
    "mnist_9x200",
    "cifar_3x100",
    "cifar_6x100",
    "cifar_9x100",
)


def backend_info() -> dict:
    """Backend and dtype for every BENCH row.

    Kernel-time ratios are meaningless across precision changes unless
    the row says which backend produced it; both baseline scripts stamp
    every report with this.
    """
    backend = active_backend()
    return {"backend": backend.name, "dtype": backend.dtype.name}


def apply_backend_flag(args) -> None:
    """Honor ``--backend`` before any kernel work starts.

    Also exports ``REPRO_BACKEND`` so spawned executor workers inherit
    the selection (mirrors the CLI's ``_apply_kernel_flags``).
    """
    if getattr(args, "backend", None):
        set_active(args.backend)
        os.environ["REPRO_BACKEND"] = args.backend


def host_info() -> dict:
    """Core counts for every BENCH row.

    Worker-scaling ratios only mean anything relative to the cores the
    run could actually use; ``affinity`` is what the container/cgroup
    grants, which on CI is often less than ``cpu_count``.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        affinity = os.cpu_count()
    return {
        "cpu_count": os.cpu_count(),
        "affinity": affinity,
        "machine": platform.machine(),
    }


def run_engine_suite(problems, networks, policy, config, engine_cls):
    """One engine over the whole suite; returns aggregate measurements."""
    outcomes = {"verified": 0, "falsified": 0, "timeout": 0}
    per_problem = []
    pgd_calls = 0
    analyze_calls = 0
    start = time.perf_counter()
    for problem in problems:
        network = networks[problem.network_name]
        outcome = engine_cls(network, policy, config, rng=0).verify(problem.prop)
        outcomes[outcome.kind] += 1
        per_problem.append((outcome.kind, outcome.stats.time_seconds))
        pgd_calls += outcome.stats.pgd_calls
        analyze_calls += outcome.stats.analyze_calls
    wall = time.perf_counter() - start
    return {
        "wall_clock_s": round(wall, 3),
        "outcomes": outcomes,
        "pgd_calls": pgd_calls,
        "analyze_calls": analyze_calls,
        "pgd_per_s": round(pgd_calls / wall, 1),
        "analyze_per_s": round(analyze_calls / wall, 1),
        "_per_problem": per_problem,
    }


def engine_speedups(seq, bat):
    common_seq = common_bat = 0.0
    common = 0
    for (kind_s, t_s), (kind_b, t_b) in zip(
        seq["_per_problem"], bat["_per_problem"]
    ):
        if kind_s != "timeout" and kind_b != "timeout":
            common += 1
            common_seq += t_s
            common_bat += t_b
    return {
        "pgd_throughput": round(bat["pgd_per_s"] / max(seq["pgd_per_s"], 1e-9), 2),
        "analyze_throughput": round(
            bat["analyze_per_s"] / max(seq["analyze_per_s"], 1e-9), 2
        ),
        "wall_clock_common_solved": (
            round(common_seq / common_bat, 2) if common_bat > 0 else None
        ),
        "common_solved": common,
    }


def frontier_workload(problems, networks, per_problem=8):
    """A fixed refinement frontier: each root region bisected recursively."""
    workload = []
    for problem in problems:
        regions = [problem.prop.region]
        while len(regions) < per_problem:
            regions = [half for r in regions for half in r.bisect()]
        workload.append(
            (networks[problem.network_name], problem.prop.label, regions)
        )
    return workload


def bench_pgd_kernel(workload, batch_size):
    config = PGDConfig(steps=40, restarts=2, stop_below=-np.inf)
    total = 0
    start = time.perf_counter()
    for network, label, regions in workload:
        objective = MarginObjective(network, label)
        for i, region in enumerate(regions):
            pgd_minimize(objective, region, config, np.random.default_rng(i))
        total += len(regions)
    seq_s = time.perf_counter() - start
    start = time.perf_counter()
    for network, label, regions in workload:
        objective = MarginObjective(network, label)
        for i in range(0, len(regions), batch_size):
            chunk = regions[i : i + batch_size]
            pgd_minimize_batch(
                objective,
                chunk,
                config,
                [np.random.default_rng(i + j) for j in range(len(chunk))],
            )
    bat_s = time.perf_counter() - start
    return {
        "regions": total,
        "batch_size": batch_size,
        "sequential_s": round(seq_s, 3),
        "batched_s": round(bat_s, 3),
        "speedup": round(seq_s / bat_s, 2),
    }


def bench_analyze_kernel(workload, domain, batch_size):
    total = 0
    start = time.perf_counter()
    for network, label, regions in workload:
        for region in regions:
            analyze(network, region, label, domain)
        total += len(regions)
    seq_s = time.perf_counter() - start
    start = time.perf_counter()
    for network, label, regions in workload:
        for i in range(0, len(regions), batch_size):
            analyze_batch(network, regions[i : i + batch_size], label, domain)
    bat_s = time.perf_counter() - start
    return {
        "regions": total,
        "batch_size": batch_size,
        "sequential_s": round(seq_s, 3),
        "batched_s": round(bat_s, 3),
        "speedup": round(seq_s / bat_s, 2),
    }


def run_backend_bench(out_path: Path) -> int:
    """The ``--backend-bench`` fast mode -> one ``BENCH_backend.json`` row.

    Mirrors ``benchmarks/bench_backend.py``: the batched zonotope
    propagation and the DeepPoly back-substitution chain, numpy32 vs the
    numpy64 reference, at identical per-region decisions; plus a
    two-phase precision-escalation scheduler run whose job-level
    outcomes must match the straight numpy64 run.
    """
    from repro.backend import use_backend
    from repro.core.property import linf_property
    from repro.nn.builders import mlp
    from repro.sched import Scheduler, VerificationJob
    from repro.utils.boxes import Box

    def leg(n_in, hidden, batch, radius, domain, rounds):
        net = mlp(n_in, hidden, 10, rng=3)
        rng = np.random.default_rng(7)
        regions = [
            Box.from_center_radius(rng.uniform(0.3, 0.7, n_in), radius)
            for _ in range(batch)
        ]
        measured = {}
        for name in ("numpy64", "numpy32"):
            with use_backend(name):
                results = analyze_batch(net, regions, 1, domain)
                best = float("inf")
                for _ in range(rounds):
                    start = time.perf_counter()
                    analyze_batch(net, regions, 1, domain)
                    best = min(best, time.perf_counter() - start)
            measured[name] = (results, best)
        (ref, t64), (scr, t32) = measured["numpy64"], measured["numpy32"]
        return {
            "regions": batch,
            "numpy64_ms": round(t64 * 1e3, 1),
            "numpy32_ms": round(t32 * 1e3, 1),
            "speedup": round(t64 / max(t32, 1e-9), 2),
            "decisions_equal": (
                [r.verified for r in scr] == [r.verified for r in ref]
            ),
        }

    print("zonotope batch leg ...", flush=True)
    zonotope = leg(128, [256, 256], 48, 0.005, ZONOTOPE, rounds=1)
    print(f"  {zonotope['speedup']}x", flush=True)
    print("deeppoly backsub leg ...", flush=True)
    deeppoly = leg(128, [256] * 4, 48, 0.01, DEEPPOLY, rounds=2)
    print(f"  {deeppoly['speedup']}x", flush=True)

    # Escalation smoke: job-level outcomes must match the reference run.
    net = mlp(4, [10, 10], 3, rng=5)
    rng = np.random.default_rng(9)
    config = VerifierConfig(timeout=10.0, batch_size=8, max_depth=6)
    jobs = [
        VerificationJob(
            net,
            linf_property(
                net, rng.uniform(0.2, 0.8, 4), 0.05 + 0.1 * i, name=f"p{i}"
            ),
            config=config,
            seed=i,
        )
        for i in range(6)
    ]
    reference = Scheduler(jobs).run()
    escalated = Scheduler(jobs, precision_escalation=True).run()
    escalation = {
        "jobs": len(jobs),
        "escalated": escalated.escalated,
        "outcomes_equal": (
            [r.outcome.kind for r in escalated.results]
            == [r.outcome.kind for r in reference.results]
        ),
    }
    print(f"escalation: {escalation}", flush=True)

    report = {
        "bench": "backend_mixed_precision",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_info(),
        "reference_backend": "numpy64",
        "screen_backend": "numpy32",
        "kernels": {"zonotope_batch": zonotope, "deeppoly_backsub": deeppoly},
        "escalation": escalation,
        "headline": {
            "zonotope_batch_speedup": zonotope["speedup"],
            "deeppoly_backsub_speedup": deeppoly["speedup"],
        },
    }
    assert zonotope["decisions_equal"] and deeppoly["decisions_equal"], (
        "numpy32 screen flipped a per-region decision"
    )
    assert escalation["outcomes_equal"], (
        "precision escalation diverged from the reference outcomes"
    )
    append_trajectory(out_path, "backend_mixed_precision", report)
    print(f"wrote {out_path}")
    return 0


def run_netabs_bench(out_path: Path) -> int:
    """The ``--netabs-bench`` fast mode -> one ``BENCH_netabs.json`` row.

    Mirrors ``benchmarks/bench_netabs.py``: a fig09-scale redundant suite
    (nine hidden layers of width 200 = 50 base x 4 near-duplicates)
    through the scheduler with ``--abstraction off`` vs ``syntactic``,
    at identical job outcomes.  The row records the abstraction level,
    the merged-neuron ratio, the width-weighted kernel-row work saved,
    and the end-to-end speedup, stamped with the active backend/dtype.
    """
    from repro.abstract.netabs import DEFAULT_LEVEL, abstraction_for
    from repro.core.property import linf_property
    from repro.nn.builders import redundant_mlp
    from repro.obs.metrics import registry
    from repro.sched import Scheduler, VerificationJob

    net = redundant_mlp(64, [50] * 9, 10, dup=4, noise=1e-12, rng=3)
    rng = np.random.default_rng(11)
    centers = []
    while len(centers) < 24:
        x = rng.uniform(0.2, 0.8, size=64)
        logits = net.forward(x)
        if logits.max() - np.partition(logits, -2)[-2] > 0.15:
            centers.append(x)
    config = VerifierConfig(timeout=30.0)
    jobs = [
        VerificationJob(
            net, linf_property(net, x, 0.0005), config=config, seed=i,
            name=f"j{i}",
        )
        for i, x in enumerate(centers)
    ]

    def run(abstraction):
        obs = registry()
        before = obs.counters_snapshot()
        start = time.perf_counter()
        report = Scheduler(jobs, abstraction=abstraction).run()
        wall = time.perf_counter() - start
        return report, wall, obs.counters_since(before)

    print("netabs fig09-scale suite ...", flush=True)
    run("off")  # warm BLAS threads, digests, suite caches
    run("syntactic")
    off_report, t_off, off_delta = run("off")
    abs_report, t_abs, abs_delta = run("syntactic")

    abstraction = abstraction_for(net, "syntactic", DEFAULT_LEVEL)
    rows_off = off_delta.get("kernel.analyze_rows", 0)
    rows_abs = abs_delta.get("kernel.analyze_rows", 0)
    work_off = rows_off * net.num_relu_units()
    work_abs = rows_abs * abstraction.hidden_abstract
    outcomes_equal = [r.outcome.kind for r in abs_report.results] == [
        r.outcome.kind for r in off_report.results
    ]
    speedup = round(t_off / max(t_abs, 1e-9), 2)
    report = {
        "bench": "netabs_cegar",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_info(),
        **backend_info(),
        "suite": {
            "network": "redundant 9x200 (50x4 per layer)",
            "jobs": len(jobs),
            "epsilon": 0.0005,
            "timeout_s": 30.0,
        },
        "abstraction_level": DEFAULT_LEVEL,
        "merged_ratio": round(abstraction.merged_ratio, 4),
        "hidden_concrete": abstraction.hidden_concrete,
        "hidden_abstract": abstraction.hidden_abstract,
        "off_s": round(t_off, 3),
        "syntactic_s": round(t_abs, 3),
        "speedup": speedup,
        "analyze_rows": {"off": rows_off, "syntactic": rows_abs},
        "row_neuron_work": {"off": work_off, "syntactic": work_abs},
        "kernel_rows_saved": round(1.0 - work_abs / max(work_off, 1), 4),
        "netabs_accepted": abs_report.netabs_accepted,
        "netabs_rounds": abs_report.netabs_rounds,
        "outcomes_equal": outcomes_equal,
        "headline": {"netabs_speedup": speedup},
    }
    print(
        f"  off {t_off:.2f}s, syntactic {t_abs:.2f}s -> {speedup}x "
        f"(merged ratio {report['merged_ratio']}, "
        f"work saved {report['kernel_rows_saved']:.1%})",
        flush=True,
    )
    assert outcomes_equal, "abstraction changed a job outcome"
    assert abs_report.netabs_accepted == len(jobs), (
        "not every job was accepted on the abstract network"
    )
    append_trajectory(out_path, "netabs_cegar", report)
    print(f"wrote {out_path}")
    return 0


def run_incremental_bench(out_path: Path) -> int:
    """The ``--incremental-bench`` fast mode -> one ``BENCH_incremental.json`` row.

    Mirrors ``benchmarks/bench_incremental.py``: a fig09-scale DeepPoly
    suite (nine hidden layers of width 200) verified cold and then
    re-verified after a last-2-layers fine-tune with ``incremental=True``
    resuming from the original run's prefix checkpoints, at identical
    job outcomes.  The row records the common-prefix depth, prefix hits,
    layers skipped, and the end-to-end speedup.
    """
    import tempfile

    from repro.abstract.domains import DEEPPOLY as DEEPPOLY_DOMAIN
    from repro.core.property import linf_property
    from repro.nn.builders import mlp
    from repro.nn.serialize import (
        common_prefix_layers,
        load_network,
        save_network,
    )
    from repro.sched import Scheduler, VerificationJob
    from repro.sched.cache import ResultCache

    net = mlp(64, [200] * 9, 10, rng=3)
    rng = np.random.default_rng(11)
    centers = []
    while len(centers) < 12:
        x = rng.uniform(0.2, 0.8, size=64)
        logits = net.forward(x)
        if logits.max() - np.partition(logits, -2)[-2] > 0.15:
            centers.append(x)

    def jobs_for(network):
        config = VerifierConfig(
            timeout=60.0, pgd=PGDConfig(steps=8, restarts=1)
        )
        policy = BisectionPolicy(domain=DEEPPOLY_DOMAIN)
        return [
            VerificationJob(
                network, linf_property(network, x, 0.0005), config=config,
                policy=policy, seed=i, name=f"j{i}",
            )
            for i, x in enumerate(centers)
        ]

    print("incremental fig09-scale suite ...", flush=True)
    with tempfile.TemporaryDirectory() as tmpdir:
        path = f"{tmpdir}/net.npz"
        save_network(net, path)
        tuned = load_network(path)
        tuned.thaw_params()
        gen = np.random.default_rng(7)
        for layer in (tuned.layers[-1], tuned.layers[-3]):
            layer.weight += gen.normal(0.0, 1e-6, layer.weight.shape)
        tuned.invalidate_ops()
        common = common_prefix_layers(net, tuned)

        cache = ResultCache(f"{tmpdir}/cache")
        warm_report = Scheduler(
            jobs_for(net), cache=cache, incremental=True
        ).run()
        Scheduler(jobs_for(tuned)).run()  # warm the tuned net's lowering
        start = time.perf_counter()
        cold_report = Scheduler(jobs_for(tuned)).run()
        t_cold = time.perf_counter() - start
        start = time.perf_counter()
        inc_report = Scheduler(
            jobs_for(tuned), cache=cache, incremental=True
        ).run()
        t_inc = time.perf_counter() - start

    outcomes_equal = [r.outcome.kind for r in inc_report.results] == [
        r.outcome.kind for r in cold_report.results
    ]
    speedup = round(t_cold / max(t_inc, 1e-9), 2)
    report = {
        "bench": "incremental_reverify",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_info(),
        **backend_info(),
        "suite": {
            "network": "9x200 MLP, deeppoly",
            "jobs": len(centers),
            "epsilon": 0.0005,
            "fine_tune": "last 2 layers, sigma 1e-6",
        },
        "common_prefix_layers": common,
        "total_layers": len(net.layers),
        "cold_s": round(t_cold, 3),
        "incremental_s": round(t_inc, 3),
        "speedup": speedup,
        "prefix_hits": inc_report.prefix_hits,
        "prefix_layers_skipped": inc_report.prefix_layers_skipped,
        "warm_outcomes": warm_report.outcome_counts(),
        "outcomes_equal": outcomes_equal,
        "headline": {"incremental_speedup": speedup},
    }
    print(
        f"  cold {t_cold:.2f}s, incremental {t_inc:.2f}s -> {speedup}x "
        f"({inc_report.prefix_hits} hits, "
        f"{inc_report.prefix_layers_skipped} layers skipped, "
        f"common prefix {common}/{len(net.layers)})",
        flush=True,
    )
    assert outcomes_equal, "incremental run changed a job outcome"
    assert inc_report.prefix_hits > 0, "incremental run resumed nothing"
    append_trajectory(out_path, "incremental_reverify", report)
    print(f"wrote {out_path}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="one network, fewer problems (smoke run; not the baseline)",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path"
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="array backend for every kernel in the run (default: active)",
    )
    parser.add_argument(
        "--backend-bench", action="store_true",
        help="fast mode: numpy32 vs numpy64 kernel ratios and an "
        "escalation smoke only (defaults --out to BENCH_backend.json)",
    )
    parser.add_argument(
        "--netabs-bench", action="store_true",
        help="fast mode: scheduler with --abstraction syntactic vs off on "
        "a fig09-scale redundant suite (defaults --out to "
        "BENCH_netabs.json)",
    )
    parser.add_argument(
        "--incremental-bench", action="store_true",
        help="fast mode: cold vs checkpoint-resumed re-verification of a "
        "last-2-layers fine-tune on a fig09-scale suite (defaults --out "
        "to BENCH_incremental.json)",
    )
    args = parser.parse_args(argv)
    apply_backend_flag(args)
    if args.backend_bench:
        return run_backend_bench(Path(args.out or "BENCH_backend.json"))
    if args.netabs_bench:
        return run_netabs_bench(Path(args.out or "BENCH_netabs.json"))
    if args.incremental_bench:
        return run_incremental_bench(Path(args.out or "BENCH_incremental.json"))
    args.out = args.out or "BENCH_batched.json"

    scale = SuiteScale()
    names = MLP_NETWORKS[:1] if args.quick else MLP_NETWORKS
    count = 4 if args.quick else 8
    timeout = 2.0
    batch_size = 16

    print(f"training {len(names)} networks ...", flush=True)
    networks = {}
    problems = []
    for name in names:
        bench_net = build_network(name, scale, seed=0)
        networks[name] = bench_net.network
        problems.extend(build_problems(bench_net, count=count, rng=13))
    print(f"{len(problems)} problems", flush=True)

    config = VerifierConfig(timeout=timeout, batch_size=batch_size)
    report = {
        "bench": "batched_engine_baseline",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_info(),
        **backend_info(),
        # The engine comparison is single-threaded by design; recorded so
        # rows stay interpretable next to sched_baseline's pooled rows.
        "workers": 1,
        "suite": {
            "networks": list(names),
            "problems": len(problems),
            "problems_per_network": count,
            "timeout_s": timeout,
            "batch_size": batch_size,
            "scale": {
                "width_factor": scale.width_factor,
                "image_size": scale.image_size,
            },
        },
        "engine_suites": {},
        "kernels": {},
    }

    # The zonotope legs run on the first two networks' problems: the
    # powerset per-region loop is orders of magnitude slower than the
    # other domains, and two networks bound the suite's wall clock while
    # still mixing MNIST widths.
    zono_problems = [
        p for p in problems if p.network_name in names[: min(2, len(names))]
    ]
    policies = {
        "deeppoly_policy": (BisectionPolicy(domain=DEEPPOLY), problems),
        "learned_policy": (pretrained_policy(), problems),
        "zonotope_policy": (BisectionPolicy(domain=ZONOTOPE), zono_problems),
        "powerset_policy": (
            BisectionPolicy(domain=bounded_zonotopes(2)), zono_problems,
        ),
    }
    for policy_name, (policy, policy_problems) in policies.items():
        print(f"engine suite [{policy_name}] ...", flush=True)
        seq = run_engine_suite(
            policy_problems, networks, policy, config, Verifier
        )
        bat = run_engine_suite(
            policy_problems, networks, policy, config, BatchedVerifier
        )
        speedup = engine_speedups(seq, bat)
        seq.pop("_per_problem")
        bat.pop("_per_problem")
        report["engine_suites"][policy_name] = {
            "problems": len(policy_problems),
            "sequential": seq,
            "batched": bat,
            "speedup": speedup,
        }
        print(f"  speedup: {speedup}", flush=True)

    print("kernel benches ...", flush=True)
    workload = frontier_workload(problems, networks, per_problem=16)
    report["kernels"]["pgd"] = bench_pgd_kernel(workload, batch_size)
    report["kernels"]["analyze_interval"] = bench_analyze_kernel(
        workload, INTERVAL, batch_size
    )
    report["kernels"]["analyze_deeppoly"] = bench_analyze_kernel(
        workload, DEEPPOLY, batch_size
    )
    # Zonotope kernels on a trimmed workload: per-region powerset
    # analysis is the slow side being replaced, so a subset keeps the
    # bench minutes-fast without changing the ratio's meaning.
    zono_workload = frontier_workload(
        zono_problems[:12], networks, per_problem=16
    )
    report["kernels"]["analyze_zonotope"] = bench_analyze_kernel(
        zono_workload, ZONOTOPE, batch_size
    )
    report["kernels"]["analyze_powerset"] = bench_analyze_kernel(
        zono_workload, bounded_zonotopes(2), batch_size
    )
    for name, kernel in report["kernels"].items():
        print(f"  {name}: {kernel['speedup']}x", flush=True)

    deeppoly = report["engine_suites"]["deeppoly_policy"]["speedup"]
    powerset = report["engine_suites"]["powerset_policy"]["speedup"]
    learned = report["engine_suites"]["learned_policy"]["speedup"]
    report["headline"] = {
        "engine_pgd_throughput_speedup": deeppoly["pgd_throughput"],
        "engine_analyze_throughput_speedup": deeppoly["analyze_throughput"],
        "powerset_engine_pgd_throughput_speedup": powerset["pgd_throughput"],
        "learned_engine_pgd_throughput_speedup": learned["pgd_throughput"],
        "kernel_speedups": {
            k: v["speedup"] for k, v in report["kernels"].items()
        },
    }

    out = Path(args.out)
    append_trajectory(out, "batched_engine_baseline", report)
    print(f"wrote {out}")
    return 0


def append_trajectory(out: Path, bench_name: str, report: dict) -> None:
    """Append ``report`` to the trajectory list in ``out``.

    A legacy file holding one bare report becomes the trajectory's first
    entry; an unreadable file is replaced (after all, the trajectory is a
    measurement log, not a source of truth).
    """
    report = dict(report)
    report["recorded_unix"] = round(time.time(), 3)
    trajectory = []
    if out.exists():
        try:
            existing = json.loads(out.read_text())
        except ValueError:
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("trajectory"), list):
                trajectory = existing["trajectory"]
            elif existing.get("bench") == bench_name:
                trajectory = [existing]
    trajectory.append(report)
    out.write_text(
        json.dumps({"bench": bench_name, "trajectory": trajectory}, indent=2)
        + "\n"
    )


if __name__ == "__main__":
    sys.exit(main())
