"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.nn.builders import xor_network
from repro.nn.serialize import save_network


@pytest.fixture()
def xor_path(tmp_path):
    path = tmp_path / "xor.npz"
    save_network(xor_network(), path)
    return str(path)


class TestVerifyCommand:
    def test_verified_exit_zero(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["verify", xor_path, "--center", "0.5,0.5", "--epsilon", "0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified" in out

    def test_falsified_exit_one_and_writes_witness(
        self, xor_path, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        # Around the decision boundary with a big radius: falsifiable.
        code = main(
            ["verify", xor_path, "--center", "0.5,0.9", "--epsilon", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "falsified" in out
        witness = np.load(tmp_path / "counterexample.npy")
        assert witness.shape == (2,)

    def test_center_from_npy(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        center = tmp_path / "center.npy"
        np.save(center, np.array([0.5, 0.5]))
        code = main(
            ["verify", xor_path, "--center", str(center), "--epsilon", "0.01"]
        )
        assert code == 0

    def test_dimension_mismatch_exits(self, xor_path):
        with pytest.raises(SystemExit, match="entries"):
            main(["verify", xor_path, "--center", "0.5", "--epsilon", "0.1"])


class TestScheduleCommand:
    @pytest.fixture()
    def manifest(self, xor_path, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "defaults": {"epsilon": 0.05, "timeout": 5.0},
            "jobs": [
                {"network": xor_path, "center": "0.5,0.5", "name": "safe"},
                {"network": xor_path, "center": "0.5,0.9", "epsilon": 0.5,
                 "name": "unsafe"},
                {"network": xor_path, "center": "0.2,0.2", "epsilon": 0.1,
                 "name": "wrong-label", "label": 0},
            ],
        }))
        return str(path)

    def test_runs_manifest_and_reports(self, manifest, capsys):
        code = main(["schedule", manifest, "--frontier", "priority"])
        out = capsys.readouterr().out
        assert code == 1  # a falsified job exists
        assert "safe" in out and "unsafe" in out
        assert "verified" in out and "falsified" in out
        assert "fused sweeps" in out

    def test_cache_serves_second_run(self, manifest, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["schedule", manifest, "--cache", cache_dir])
        capsys.readouterr()
        code = main(["schedule", manifest, "--cache", cache_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "cache: 3 hits" in out
        assert "[cached]" in out
        assert "0 fused sweeps" in out

    def test_sequential_engine(self, manifest, capsys):
        code = main(["schedule", manifest, "--engine", "sequential"])
        out = capsys.readouterr().out
        assert code == 1
        assert "engine: sequential" in out

    def test_missing_manifest_exits(self):
        with pytest.raises(SystemExit, match="manifest"):
            main(["schedule", "/nonexistent/manifest.json"])

    def test_manifest_without_jobs_exits(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"jobs": []}))
        with pytest.raises(SystemExit, match="no jobs"):
            main(["schedule", str(path)])

    def test_job_missing_center_exits(self, xor_path, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": [{"network": xor_path}]}))
        with pytest.raises(SystemExit, match="center"):
            main(["schedule", str(path)])

    def test_all_timeout_exits_two(self, tmp_path, capsys):
        from repro.nn.builders import mlp

        net_path = tmp_path / "wide.npz"
        save_network(mlp(8, [24, 24, 24], 5, rng=3), net_path)
        manifest = tmp_path / "slow.json"
        manifest.write_text(json.dumps({
            "jobs": [{"network": str(net_path), "center": ",".join(["0.5"] * 8),
                      "epsilon": 0.5, "name": "hard"}],
        }))
        code = main(["schedule", str(manifest), "--timeout", "0.05"])
        out = capsys.readouterr().out
        # Nothing proven must never exit 0 (CI-gate convention of verify).
        if "timeout: 1" in out:
            assert code == 2
        else:
            assert code == 1  # PGD falsified it before the budget ran out

    def test_out_of_range_label_exits(self, xor_path, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "jobs": [
                {"network": xor_path, "center": "0.5,0.5", "label": 99}
            ]
        }))
        with pytest.raises(SystemExit, match="label 99 out of range"):
            main(["schedule", str(path)])


class TestRadiusCommand:
    def test_prints_bracket(self, xor_path, capsys):
        code = main(
            ["radius", xor_path, "--center", "0.0,1.0", "--epsilon", "0.4",
             "--timeout", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "certified radius" in out
        assert "falsified radius" in out


class TestAttackCommand:
    def test_reports_margin(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["attack", xor_path, "--center", "0.5,0.9", "--epsilon", "0.5",
             "--steps", "50", "--restarts", "3"]
        )
        out = capsys.readouterr().out
        assert "best margin found" in out
        assert code in (0, 1)


class TestInfoCommand:
    def test_prints_summary(self, xor_path, capsys):
        code = main(["info", xor_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "Network" in out
        assert "ReLU units" in out
