"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.nn.builders import xor_network
from repro.nn.serialize import save_network


@pytest.fixture()
def xor_path(tmp_path):
    path = tmp_path / "xor.npz"
    save_network(xor_network(), path)
    return str(path)


class TestVerifyCommand:
    def test_verified_exit_zero(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["verify", xor_path, "--center", "0.5,0.5", "--epsilon", "0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified" in out

    def test_falsified_exit_one_and_writes_witness(
        self, xor_path, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        # Around the decision boundary with a big radius: falsifiable.
        code = main(
            ["verify", xor_path, "--center", "0.5,0.9", "--epsilon", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "falsified" in out
        witness = np.load(tmp_path / "counterexample.npy")
        assert witness.shape == (2,)

    def test_center_from_npy(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        center = tmp_path / "center.npy"
        np.save(center, np.array([0.5, 0.5]))
        code = main(
            ["verify", xor_path, "--center", str(center), "--epsilon", "0.01"]
        )
        assert code == 0

    def test_dimension_mismatch_exits(self, xor_path):
        with pytest.raises(SystemExit, match="entries"):
            main(["verify", xor_path, "--center", "0.5", "--epsilon", "0.1"])


class TestScheduleCommand:
    @pytest.fixture()
    def manifest(self, xor_path, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "defaults": {"epsilon": 0.05, "timeout": 5.0},
            "jobs": [
                {"network": xor_path, "center": "0.5,0.5", "name": "safe"},
                {"network": xor_path, "center": "0.5,0.9", "epsilon": 0.5,
                 "name": "unsafe"},
                {"network": xor_path, "center": "0.2,0.2", "epsilon": 0.1,
                 "name": "wrong-label", "label": 0},
            ],
        }))
        return str(path)

    def test_runs_manifest_and_reports(self, manifest, capsys):
        code = main(["schedule", manifest, "--frontier", "priority"])
        out = capsys.readouterr().out
        assert code == 1  # a falsified job exists
        assert "safe" in out and "unsafe" in out
        assert "verified" in out and "falsified" in out
        assert "fused sweeps" in out

    def test_cache_serves_second_run(self, manifest, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["schedule", manifest, "--cache", cache_dir])
        capsys.readouterr()
        code = main(["schedule", manifest, "--cache", cache_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "cache: 3 hits" in out
        assert "[cached]" in out
        assert "0 fused sweeps" in out

    def test_sequential_engine(self, manifest, capsys):
        code = main(["schedule", manifest, "--engine", "sequential"])
        out = capsys.readouterr().out
        assert code == 1
        assert "engine: sequential" in out

    def test_missing_manifest_exits(self):
        with pytest.raises(SystemExit, match="manifest"):
            main(["schedule", "/nonexistent/manifest.json"])

    def test_manifest_without_jobs_exits(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"jobs": []}))
        with pytest.raises(SystemExit, match="no jobs"):
            main(["schedule", str(path)])

    def test_job_missing_center_exits(self, xor_path, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": [{"network": xor_path}]}))
        with pytest.raises(SystemExit, match="center"):
            main(["schedule", str(path)])

    def test_all_timeout_exits_two(self, tmp_path, capsys):
        from repro.nn.builders import mlp

        net_path = tmp_path / "wide.npz"
        save_network(mlp(8, [24, 24, 24], 5, rng=3), net_path)
        manifest = tmp_path / "slow.json"
        manifest.write_text(json.dumps({
            "jobs": [{"network": str(net_path), "center": ",".join(["0.5"] * 8),
                      "epsilon": 0.5, "name": "hard"}],
        }))
        code = main(["schedule", str(manifest), "--timeout", "0.05"])
        out = capsys.readouterr().out
        # Nothing proven must never exit 0 (CI-gate convention of verify).
        if "timeout: 1" in out:
            assert code == 2
        else:
            assert code == 1  # PGD falsified it before the budget ran out

    def test_out_of_range_label_exits(self, xor_path, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "jobs": [
                {"network": xor_path, "center": "0.5,0.5", "label": 99}
            ]
        }))
        with pytest.raises(SystemExit, match="label 99 out of range"):
            main(["schedule", str(path)])


class TestRadiusCommand:
    def test_prints_bracket(self, xor_path, capsys):
        code = main(
            ["radius", xor_path, "--center", "0.0,1.0", "--epsilon", "0.4",
             "--timeout", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "certified radius" in out
        assert "falsified radius" in out


class TestAttackCommand:
    def test_reports_margin(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["attack", xor_path, "--center", "0.5,0.9", "--epsilon", "0.5",
             "--steps", "50", "--restarts", "3"]
        )
        out = capsys.readouterr().out
        assert "best margin found" in out
        assert code in (0, 1)


class TestInfoCommand:
    def test_prints_summary(self, xor_path, capsys):
        code = main(["info", xor_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "Network" in out
        assert "ReLU units" in out


class TestDomainFlags:
    def test_fixed_domain_verifies(self, xor_path, capsys):
        code = main(
            ["verify", xor_path, "--center", "0.5,0.5", "--epsilon", "0.05",
             "--domain", "zonotope", "--disjuncts", "2"]
        )
        assert code == 0
        assert "result: verified" in capsys.readouterr().out

    def test_disjuncts_require_fixed_domain(self, xor_path):
        with pytest.raises(SystemExit):
            main(
                ["verify", xor_path, "--center", "0.5,0.5",
                 "--disjuncts", "2"]
            )

    def test_symbolic_rejects_disjuncts(self, xor_path):
        with pytest.raises(SystemExit):
            main(
                ["verify", xor_path, "--center", "0.5,0.5",
                 "--domain", "symbolic", "--disjuncts", "2"]
            )

    def test_manifest_domain_key(self, xor_path, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "defaults": {"network": xor_path, "timeout": 5.0},
            "jobs": [
                {"center": "0.5,0.5", "name": "zono",
                 "domain": "zonotope", "disjuncts": 2},
                {"center": "0.5,0.5", "name": "dp", "domain": "deeppoly"},
            ],
        }))
        code = main(["schedule", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified: 2" in out


class TestRadiusManifest:
    @pytest.fixture()
    def manifest(self, xor_path, tmp_path):
        path = tmp_path / "radius.json"
        path.write_text(json.dumps({
            "defaults": {"network": xor_path, "timeout": 5.0},
            "jobs": [
                {"center": "0.5,0.5", "epsilon": 0.2, "name": "searched"},
                {"center": "0.2,0.2", "epsilon": 0.1, "name": "pinned",
                 "label": 1},
            ],
        }))
        return str(path)

    def test_manifest_mode_reports_per_center(self, manifest, capsys):
        code = main(["radius", manifest])
        out = capsys.readouterr().out
        assert code == 0
        assert "searched" in out
        assert "skipped (pinned label)" in out
        assert "total probes" in out

    def test_cached_records_bracket_before_probing(
        self, xor_path, manifest, tmp_path, capsys
    ):
        # A schedule run against the same (network, center) populates the
        # cache; the radius manifest must fold it into its bracket.
        sched_manifest = tmp_path / "sched.json"
        sched_manifest.write_text(json.dumps({
            "defaults": {"network": xor_path, "timeout": 5.0},
            "jobs": [{"center": "0.5,0.5", "epsilon": 0.2, "name": "seed"}],
        }))
        cache_dir = str(tmp_path / "cache")
        main(["schedule", str(sched_manifest), "--cache", cache_dir])
        capsys.readouterr()
        code = main(["radius", manifest, "--cache", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "[bracketed]" in out

    def test_center_conflicts_with_manifest(self, manifest):
        with pytest.raises(SystemExit):
            main(["radius", manifest, "--center", "0.5,0.5"])

    def test_single_mode_still_requires_center(self, xor_path):
        with pytest.raises(SystemExit):
            main(["radius", xor_path])


class TestCachePruneCommand:
    def test_prunes_to_budget(self, xor_path, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "defaults": {"network": xor_path, "timeout": 5.0},
            "jobs": [
                {"center": "0.5,0.5", "name": "a"},
                {"center": "0.4,0.6", "name": "b"},
                {"center": "0.6,0.4", "name": "c"},
            ],
        }))
        cache_dir = str(tmp_path / "cache")
        main(["schedule", str(manifest), "--cache", cache_dir])
        capsys.readouterr()
        code = main(["cache", "prune", cache_dir, "--max-entries", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 2 records" in out
        assert "1 records" in out

    def test_requires_a_budget(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", str(tmp_path / "cache")])

    def test_schedule_cache_budget_flags(self, xor_path, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "defaults": {"network": xor_path, "timeout": 5.0},
            "jobs": [
                {"center": "0.5,0.5", "name": "a"},
                {"center": "0.4,0.6", "name": "b"},
            ],
        }))
        cache_dir = tmp_path / "cache"
        code = main(
            ["schedule", str(manifest), "--cache", str(cache_dir),
             "--cache-max-entries", "1"]
        )
        assert code == 0
        assert sum(1 for _ in cache_dir.glob("*/*.json")) == 1


class TestRadiusDuplicateQueries:
    def test_same_center_different_epsilon_both_run(
        self, xor_path, tmp_path, capsys
    ):
        path = tmp_path / "radius.json"
        path.write_text(json.dumps({
            "defaults": {"network": xor_path, "timeout": 5.0},
            "jobs": [
                {"center": "0.5,0.5", "epsilon": 0.1, "name": "narrow"},
                {"center": "0.5,0.5", "epsilon": 0.1, "name": "dup"},
                {"center": "0.5,0.5", "epsilon": 0.3, "name": "wide"},
            ],
        }))
        code = main(["radius", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "narrow" in out
        assert "dup" in out and "skipped (duplicate query)" in out
        # A wider epsilon is a different question — it must still run.
        assert "wide" in out and out.count("certified") >= 2

    def test_zero_budget_flags_exit_cleanly(self, xor_path, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "jobs": [{"network": xor_path, "center": "0.5,0.5"}],
        }))
        with pytest.raises(SystemExit):
            main(["schedule", str(manifest), "--cache", str(tmp_path / "c"),
                  "--cache-max-entries", "0"])
        with pytest.raises(SystemExit):
            main(["cache", "prune", str(tmp_path / "c"), "--max-entries", "0"])

    def test_duplicate_center_with_longer_timeout_still_runs(
        self, xor_path, tmp_path, capsys
    ):
        path = tmp_path / "radius.json"
        path.write_text(json.dumps({
            "defaults": {"network": xor_path, "center": "0.5,0.5",
                         "epsilon": 0.1},
            "jobs": [
                {"timeout": 1.0, "name": "quick"},
                {"timeout": 5.0, "name": "thorough"},
            ],
        }))
        code = main(["radius", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped (duplicate query)" not in out
        assert out.count("certified") >= 2

    def test_inverted_cached_bracket_degrades_with_warning(
        self, xor_path, tmp_path, capsys
    ):
        # Hand-craft records that disagree (possible across δ/seed
        # configs): verified at 0.2 but "falsified" at 0.1.
        import numpy as np

        from repro.nn.serialize import load_network, network_digest
        from repro.sched import CacheRecord, ResultCache, point_digest

        net = load_network(xor_path)
        digest = network_digest(net)
        center = np.array([0.5, 0.5])
        cache = ResultCache(tmp_path / "cache")
        for i, (kind, eps) in enumerate(
            [("verified", 0.2), ("falsified", 0.1)]
        ):
            cache.put(
                f"{i:02x}" + "b" * 62,
                CacheRecord(
                    kind=kind,
                    margin=-0.1 if kind == "falsified" else None,
                    counterexample=[0.0, 0.0] if kind == "falsified" else None,
                    network_digest=digest,
                    metadata={"center_digest": point_digest(center),
                              "epsilon": eps},
                ),
            )
        code = main(
            ["radius", xor_path, "--center", "0.5,0.5", "--epsilon", "0.3",
             "--timeout", "2.0", "--cache", str(tmp_path / "cache")]
        )
        captured = capsys.readouterr()
        assert code == 0  # degraded to a fresh search, no crash
        assert "cached records disagree" in captured.err
        assert "certified radius" in captured.out


class TestTrainCommand:
    @pytest.fixture()
    def suite(self, xor_path, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps({
            "defaults": {"network": xor_path, "epsilon": 0.08},
            "jobs": [
                {"center": "0.5,0.8", "name": "a"},
                {"center": "0.8,0.5", "name": "b"},
            ],
        }))
        return str(path)

    def test_trains_and_writes_artifact(self, suite, tmp_path, capsys):
        out = tmp_path / "theta.json"
        code = main([
            "train", suite, "--iterations", "2", "--candidates", "2",
            "--workers", "2", "--max-depth", "4", "--n-initial", "2",
            "--out", str(out),
        ])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "policy artifact written" in stdout
        payload = json.loads(out.read_text())
        assert len(payload["theta"]) == 25
        # Default-θ seed + 2 evaluations.
        assert len(payload["observations"]) == 3

    def test_bad_executor_combination_exits_cleanly(self, suite, tmp_path):
        # Validated at trainer construction, not rounds into training.
        with pytest.raises(SystemExit, match="serial"):
            main([
                "train", suite, "--iterations", "1", "--workers", "2",
                "--executor", "serial", "--out", str(tmp_path / "t.json"),
            ])

    def test_cached_rerun_spawns_no_work(self, suite, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "train", suite, "--iterations", "2", "--max-depth", "4",
            "--n-initial", "2", "--cache", str(cache),
            "--out", str(tmp_path / "theta.json"),
        ]
        main(argv)
        capsys.readouterr()
        code = main(argv)
        stdout = capsys.readouterr().out
        assert code == 0
        assert "(0 fresh kernel calls" in stdout

    def test_artifact_deploys_via_policy_file(
        self, suite, xor_path, tmp_path, capsys
    ):
        out = tmp_path / "theta.json"
        main([
            "train", suite, "--iterations", "1", "--max-depth", "4",
            "--n-initial", "1", "--out", str(out),
        ])
        capsys.readouterr()
        code = main([
            "verify", xor_path, "--center", "0.5,0.8", "--epsilon", "0.02",
            "--policy-file", str(out),
        ])
        assert code == 0
        assert "verified" in capsys.readouterr().out

    def test_policy_file_conflicts_with_pinned_domain(
        self, xor_path, tmp_path
    ):
        artifact = tmp_path / "theta.json"
        artifact.write_text(json.dumps({"theta": [0.0] * 25}))
        with pytest.raises(SystemExit, match="policy-file"):
            main([
                "verify", xor_path, "--center", "0.5,0.5",
                "--domain", "interval", "--policy-file", str(artifact),
            ])

    def test_policy_file_still_rejects_disjuncts(self, xor_path, tmp_path):
        # --disjuncts is meaningless under a learned policy whether the θ
        # comes from the shipped artifact or a file; it must not be
        # silently dropped.
        artifact = tmp_path / "theta.json"
        artifact.write_text(json.dumps({"theta": [0.0] * 25}))
        with pytest.raises(SystemExit, match="disjuncts"):
            main([
                "verify", xor_path, "--center", "0.5,0.5",
                "--disjuncts", "4", "--policy-file", str(artifact),
            ])

    def test_time_cost_model_refuses_cache(self, suite, tmp_path):
        with pytest.raises(SystemExit, match="work"):
            main([
                "train", suite, "--iterations", "1", "--cost-model", "time",
                "--cache", str(tmp_path / "cache"),
                "--out", str(tmp_path / "theta.json"),
            ])


class TestTraceAndStats:
    @pytest.fixture()
    def manifest(self, xor_path, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({
            "defaults": {"epsilon": 0.05, "timeout": 5.0},
            "jobs": [
                {"network": xor_path, "center": "0.5,0.5", "name": "safe"},
                {"network": xor_path, "center": "0.5,0.9", "epsilon": 0.5,
                 "name": "unsafe"},
            ],
        }))
        return str(path)

    def test_schedule_trace_writes_valid_dump(
        self, manifest, tmp_path, capsys
    ):
        from repro.obs.stats import load_dump, validate_trace
        from repro.obs.trace import tracing_enabled

        trace = tmp_path / "trace.json"
        code = main(["schedule", manifest, "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 1  # the falsified job; tracing must not change it
        assert f"trace written to {trace}" in out
        assert not tracing_enabled()  # tracer turned back off afterwards
        dump = load_dump(str(trace))
        assert validate_trace(dump) == []
        names = {event["name"] for event in dump["traceEvents"]}
        assert "sched.round" in names
        assert "sched.pgd_group" in names
        counters = dump["otherData"]["metrics"]["counters"]
        assert counters["kernel.pgd_rows"] > 0

    def test_verify_trace(self, xor_path, tmp_path, capsys):
        from repro.obs.stats import load_dump, validate_trace

        trace = tmp_path / "trace.json"
        code = main([
            "verify", xor_path, "--center", "0.5,0.5", "--epsilon", "0.05",
            "--trace", str(trace),
        ])
        assert code == 0
        assert validate_trace(load_dump(str(trace))) == []

    def test_stats_summarizes_a_dump(self, manifest, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        main(["schedule", manifest, "--trace", str(trace)])
        capsys.readouterr()
        code = main(["stats", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans (by total time):" in out
        assert "counters:" in out
        assert "kernel.pgd_rows" in out

    def test_stats_diffs_two_dumps(self, manifest, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        main(["schedule", manifest, "--trace", str(first)])
        main(["schedule", manifest, "--trace", str(second)])
        capsys.readouterr()
        code = main(["stats", str(first), str(second)])
        out = capsys.readouterr().out
        assert code == 0
        assert "->" in out

    def test_stats_warns_on_schema_problems(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        code = main(["stats", str(bad)])
        captured = capsys.readouterr()
        assert code == 0  # warnings, not failure — the summary still runs
        assert "warning:" in captured.err

    def test_stats_rejects_unreadable_and_extra_dumps(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["stats", str(tmp_path / "missing.json")])
        dump = tmp_path / "d.json"
        dump.write_text("{}")
        with pytest.raises(SystemExit, match="one dump"):
            main(["stats", str(dump), str(dump), str(dump)])


class TestScheduleWorkers:
    def test_pooled_schedule_matches_serial(self, xor_path, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({
            "defaults": {"network": xor_path, "epsilon": 0.04,
                         "timeout": 30.0},
            "jobs": [
                {"center": "0.5,0.88", "name": "hi-y"},
                {"center": "0.88,0.5", "name": "hi-x"},
            ],
        }))
        code = main(["schedule", str(manifest), "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pooled executor x2" in out
        code = main(["schedule", str(manifest)])
        assert "serial executor x1" in capsys.readouterr().out
        assert code == 0

    def test_executor_flag_selects_the_kind(self, xor_path, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps({
            "defaults": {"network": xor_path, "epsilon": 0.04,
                         "timeout": 30.0},
            "jobs": [
                {"center": "0.5,0.88", "name": "hi-y"},
                {"center": "0.88,0.5", "name": "hi-x"},
            ],
        }))
        code = main([
            "schedule", str(manifest), "--executor", "process",
            "--workers", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "process executor x2" in out
        # Pooled can be forced even at one worker.
        code = main(["schedule", str(manifest), "--executor", "pooled"])
        assert "pooled executor x1" in capsys.readouterr().out
        assert code == 0
        # Serial with several workers is a contradiction, caught eagerly.
        with pytest.raises(SystemExit, match="serial"):
            main([
                "schedule", str(manifest), "--executor", "serial",
                "--workers", "4",
            ])


class TestIncrementalCommands:
    """``schedule --incremental``, ``diff-verify``, and prune families."""

    @pytest.fixture()
    def nets(self, tmp_path):
        net = xor_network()
        old_path = tmp_path / "net.npz"
        save_network(net, old_path)
        tuned = xor_network()
        tuned.layers[-1].weight += np.random.default_rng(7).normal(
            0.0, 1e-6, tuned.layers[-1].weight.shape
        )
        tuned_path = tmp_path / "tuned.npz"
        save_network(tuned, tuned_path)
        return str(old_path), str(tuned_path)

    @pytest.fixture()
    def verifiable_manifest(self, nets, tmp_path):
        old_path, _ = nets
        path = tmp_path / "inc_manifest.json"
        path.write_text(json.dumps({
            "defaults": {
                "network": old_path, "epsilon": 0.04, "timeout": 30.0,
            },
            "jobs": [
                {"center": "0.5,0.88", "name": "hi-y"},
                {"center": "0.88,0.5", "name": "hi-x"},
            ],
        }))
        return str(path)

    def test_incremental_requires_cache(self, verifiable_manifest):
        with pytest.raises(SystemExit, match="requires --cache"):
            main(["schedule", verifiable_manifest, "--incremental"])

    def test_incremental_schedule_prints_prefix_line(
        self, verifiable_manifest, capsys, tmp_path
    ):
        code = main([
            "schedule", verifiable_manifest,
            "--cache", str(tmp_path / "cache"),
            "--incremental", "--domain", "deeppoly",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "prefix: 0 hits, 0 layers skipped" in out

    def test_plain_schedule_has_no_prefix_line(
        self, verifiable_manifest, capsys
    ):
        main(["schedule", verifiable_manifest, "--domain", "deeppoly"])
        assert "prefix:" not in capsys.readouterr().out

    def test_diff_verify_resumes_from_recorded_checkpoints(
        self, nets, verifiable_manifest, capsys, tmp_path
    ):
        old_path, tuned_path = nets
        cache_dir = str(tmp_path / "cache")
        main([
            "schedule", verifiable_manifest, "--cache", cache_dir,
            "--incremental", "--domain", "deeppoly",
        ])
        capsys.readouterr()
        code = main([
            "diff-verify", old_path, tuned_path, verifiable_manifest,
            "--cache", cache_dir, "--domain", "deeppoly",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "common prefix: 2/3 layers unchanged" in out
        assert "prefix: 1 hits, 2 layers skipped" in out
        # Every job still verifies on the fine-tuned network.
        assert out.count("verified") >= 2

    def test_diff_verify_requires_cache_flag(
        self, nets, verifiable_manifest
    ):
        old_path, tuned_path = nets
        with pytest.raises(SystemExit):
            main(["diff-verify", old_path, tuned_path, verifiable_manifest])

    def test_cache_prune_reports_family_counts(
        self, nets, verifiable_manifest, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        main([
            "schedule", verifiable_manifest, "--cache", cache_dir,
            "--incremental", "--domain", "deeppoly",
        ])
        capsys.readouterr()
        code = main(["cache", "prune", cache_dir, "--max-entries", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "families:" in out
        assert "prefix records" in out
