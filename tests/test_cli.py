"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.nn.builders import xor_network
from repro.nn.serialize import save_network


@pytest.fixture()
def xor_path(tmp_path):
    path = tmp_path / "xor.npz"
    save_network(xor_network(), path)
    return str(path)


class TestVerifyCommand:
    def test_verified_exit_zero(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["verify", xor_path, "--center", "0.5,0.5", "--epsilon", "0.05"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified" in out

    def test_falsified_exit_one_and_writes_witness(
        self, xor_path, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        # Around the decision boundary with a big radius: falsifiable.
        code = main(
            ["verify", xor_path, "--center", "0.5,0.9", "--epsilon", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "falsified" in out
        witness = np.load(tmp_path / "counterexample.npy")
        assert witness.shape == (2,)

    def test_center_from_npy(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        center = tmp_path / "center.npy"
        np.save(center, np.array([0.5, 0.5]))
        code = main(
            ["verify", xor_path, "--center", str(center), "--epsilon", "0.01"]
        )
        assert code == 0

    def test_dimension_mismatch_exits(self, xor_path):
        with pytest.raises(SystemExit, match="entries"):
            main(["verify", xor_path, "--center", "0.5", "--epsilon", "0.1"])


class TestRadiusCommand:
    def test_prints_bracket(self, xor_path, capsys):
        code = main(
            ["radius", xor_path, "--center", "0.0,1.0", "--epsilon", "0.4",
             "--timeout", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "certified radius" in out
        assert "falsified radius" in out


class TestAttackCommand:
    def test_reports_margin(self, xor_path, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["attack", xor_path, "--center", "0.5,0.9", "--epsilon", "0.5",
             "--steps", "50", "--restarts", "3"]
        )
        out = capsys.readouterr().out
        assert "best margin found" in out
        assert code in (0, 1)


class TestInfoCommand:
    def test_prints_summary(self, xor_path, capsys):
        code = main(["info", xor_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "Network" in out
        assert "ReLU units" in out
