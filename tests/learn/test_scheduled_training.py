"""Scheduled policy training: the trainer rebuilt on the scheduler.

Pins the ISSUE-4 acceptance contract: batched candidate evaluation through
fused scheduler runs produces the same best-θ trace as the sequential
trainer at ``workers=1``; worker count never changes a trace under the
deterministic ``work`` cost model; and a cached re-run of the same
training command spawns zero fresh PGD/Analyze work.
"""

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer
from repro.core.config import VerifierConfig
from repro.core.policy import LinearPolicy
from repro.core.property import RobustnessProperty
from repro.learn import (
    PolicyCostObjective,
    PolicyTrainer,
    TrainingProblem,
    load_policy,
    pretrained_policy,
)
from repro.nn.builders import xor_network
from repro.sched import ResultCache
from repro.utils.boxes import Box


def tiny_suite():
    net = xor_network()
    props = [
        RobustnessProperty(Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1),
        RobustnessProperty(Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1),
    ]
    return [TrainingProblem(net, p) for p in props]


def work_trainer(**kwargs):
    defaults = dict(
        cost_model="work",
        base_config=VerifierConfig(max_depth=4),
        rng=0,
    )
    defaults.update(kwargs)
    return PolicyTrainer(tiny_suite(), **defaults)


def trace_of(trained):
    return [(tuple(obs.x), obs.y) for obs in trained.history.observations]


class TestWorkCostModel:
    def test_deterministic_across_runs_and_workers(self):
        theta = LinearPolicy.default().to_vector()
        scores = [
            PolicyCostObjective(
                tiny_suite(),
                cost_model="work",
                base_config=VerifierConfig(max_depth=4),
                workers=workers,
            )(theta)
            for workers in (1, 1, 2, 4)
        ]
        assert len(set(scores)) == 1

    def test_batch_evaluation_equals_individual_calls(self):
        rng = np.random.default_rng(11)
        thetas = [
            LinearPolicy.parameter_box(2.0).sample(rng) for _ in range(3)
        ]
        make = lambda: PolicyCostObjective(  # noqa: E731
            tiny_suite(),
            cost_model="work",
            base_config=VerifierConfig(max_depth=4),
        )
        batched = make().evaluate_many(thetas)
        individual = [make()(theta) for theta in thetas]
        assert batched == individual

    def test_cache_refused_for_time_model(self, tmp_path):
        with pytest.raises(ValueError, match="work"):
            PolicyCostObjective(
                tiny_suite(), cost_model="time", cache=ResultCache(tmp_path)
            )

    def test_pooled_workers_refused_for_time_model(self):
        # Pooled jobs contend for the cores whose time the model measures;
        # scores would be contention artifacts, so it is a hard error like
        # the cache, not a footgun.
        with pytest.raises(ValueError, match="workers"):
            PolicyCostObjective(tiny_suite(), cost_model="time", workers=4)
        from repro.exec import PooledExecutor, SerialExecutor

        with PooledExecutor(2) as executor:
            with pytest.raises(ValueError, match="workers"):
                PolicyCostObjective(
                    tiny_suite(), cost_model="time", executor=executor
                )
        # A serial executor measures exactly what workers=1 measures.
        PolicyCostObjective(
            tiny_suite(), cost_model="time", executor=SerialExecutor()
        )

    def test_unknown_cost_model_rejected(self):
        with pytest.raises(ValueError, match="cost_model"):
            PolicyCostObjective(tiny_suite(), cost_model="flops")


class TestTraceEquivalence:
    def test_batched_trainer_matches_sequential_at_q1(self):
        """The acceptance pin: scheduled candidate evaluation at q=1 /
        workers=1 reproduces the classic sequential suggest-evaluate-
        observe loop observation for observation."""
        trained = work_trainer(candidates=1, workers=1).train(iterations=4)

        # Reference: the pre-scheduler trainer loop, hand-rolled.
        objective = PolicyCostObjective(
            tiny_suite(),
            cost_model="work",
            base_config=VerifierConfig(max_depth=4),
        )
        optimizer = BayesianOptimizer(
            LinearPolicy.parameter_box(2.0), n_initial=5, rng=0
        )
        default_vec = LinearPolicy.default().to_vector()
        optimizer.observe(default_vec, objective(default_vec))
        reference = optimizer.maximize(objective, 4)

        assert trace_of(trained) == [
            (tuple(obs.x), obs.y)
            for obs in optimizer.history.observations
        ]
        assert trained.best_score == reference.y

    def test_workers_never_change_the_trace(self):
        serial = work_trainer(candidates=2, workers=1).train(iterations=4)
        pooled = work_trainer(candidates=2, workers=2).train(iterations=4)
        assert trace_of(serial) == trace_of(pooled)

    def test_process_executor_never_changes_the_trace(self):
        # The `--executor process` training path: candidate evaluation
        # crosses the process boundary, the trace must not notice.  The
        # objective builds ONE pool and reuses it across rounds.
        serial = work_trainer(candidates=2, workers=1).train(iterations=3)
        trainer = work_trainer(
            candidates=2, workers=2, executor_kind="process"
        )
        process = trainer.train(iterations=3)
        # train() closes the pool it built on the way out — no leaked
        # worker processes, no lingering BLAS env pins.
        assert trainer.objective._pool is None
        assert trace_of(serial) == trace_of(process)

    def test_iteration_budget_counts_evaluations_not_rounds(self):
        trained = work_trainer(candidates=3, workers=1).train(iterations=5)
        # Default-θ seed observation + exactly 5 evaluations.
        assert len(trained.history.observations) == 6

    def test_rejects_bad_candidates_and_iterations(self):
        with pytest.raises(ValueError, match="candidates"):
            work_trainer(candidates=0)
        with pytest.raises(ValueError, match="iterations"):
            work_trainer().train(iterations=0)


class TestCachedRerun:
    def test_second_run_spawns_no_kernel_work(self, tmp_path):
        first = work_trainer(
            candidates=2, workers=2, cache=ResultCache(tmp_path)
        )
        first_trained = first.train(iterations=3)
        assert first.objective.fresh_calls > 0

        second = work_trainer(
            candidates=2, workers=2, cache=ResultCache(tmp_path)
        )
        second_trained = second.train(iterations=3)
        assert second.objective.fresh_calls == 0
        assert second.objective.cache_hits == second.objective.evaluations * 2
        assert trace_of(first_trained) == trace_of(second_trained)


class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        trained = work_trainer(n_initial=2).train(iterations=2)
        path = trained.save(tmp_path / "theta.json")
        loaded = load_policy(path)
        np.testing.assert_array_equal(
            loaded.to_vector(), trained.policy.to_vector()
        )
        np.testing.assert_array_equal(
            pretrained_policy(path).to_vector(), trained.policy.to_vector()
        )

    def test_pretrained_policy_without_path_is_the_shipped_theta(self):
        from repro.learn import PRETRAINED_THETA

        np.testing.assert_array_equal(
            pretrained_policy().to_vector(), np.array(PRETRAINED_THETA)
        )

    def test_malformed_artifact_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="artifact"):
            load_policy(bad)
        with pytest.raises(ValueError, match="artifact"):
            load_policy(tmp_path / "missing.json")
