"""Tests for the policy-cost objective (§4.2)."""

import numpy as np
import pytest

from repro.core.policy import LinearPolicy
from repro.core.property import RobustnessProperty
from repro.learn.objective import PolicyCostObjective, TrainingProblem
from repro.nn.builders import xor_network
from repro.utils.boxes import Box


def xor_suite():
    net = xor_network()
    props = [
        RobustnessProperty(Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1),
        RobustnessProperty(Box(np.array([0.35, 0.35]), np.array([0.65, 0.65])), 1),
    ]
    return [TrainingProblem(net, p) for p in props]


class TestValidation:
    def test_rejects_empty_suite(self):
        with pytest.raises(ValueError, match="non-empty"):
            PolicyCostObjective([])

    def test_rejects_bad_limits(self):
        suite = xor_suite()
        with pytest.raises(ValueError, match="time_limit"):
            PolicyCostObjective(suite, time_limit=0.0)
        with pytest.raises(ValueError, match="penalty"):
            PolicyCostObjective(suite, penalty=0.5)


class TestCost:
    def test_cost_positive_and_bounded(self):
        objective = PolicyCostObjective(xor_suite(), time_limit=2.0, penalty=2.0)
        theta = LinearPolicy.default().to_vector()
        cost = objective.cost(theta)
        assert 0.0 < cost <= 2 * 2.0 * 2.0  # at most penalty*t per problem

    def test_score_is_negative_cost(self):
        objective = PolicyCostObjective(xor_suite(), time_limit=2.0)
        theta = LinearPolicy.default().to_vector()
        # Both sides are wall-clock measurements of separate runs; the
        # instances verify in well under a millisecond, so allow scheduler
        # jitter via an absolute tolerance alongside the relative one.
        assert objective(theta) == pytest.approx(
            -objective.cost(theta), rel=0.5, abs=0.05
        )

    def test_counts_evaluations(self):
        objective = PolicyCostObjective(xor_suite(), time_limit=1.0)
        theta = LinearPolicy.default().to_vector()
        objective(theta)
        objective(theta)
        assert objective.evaluations == 2

    def test_timeout_costs_penalty(self):
        # A terrible policy (intervals, never split sensibly) on a problem
        # needing precision should hit the limit and pay p*t.
        net = xor_network()
        hard = RobustnessProperty(
            Box(np.array([0.05, 0.05]), np.array([0.95, 0.95])), 0
        )  # wrong label: needs falsification by PGD -> actually solvable
        suite = [TrainingProblem(net, hard)]
        objective = PolicyCostObjective(suite, time_limit=0.001, penalty=3.0)
        theta = LinearPolicy.default().to_vector()
        cost = objective.cost(theta)
        # Either solved extremely fast or paid the penalty; both bounded.
        assert cost <= 3.0 * 0.001 + 1e-6 or cost > 0
