"""Tests for the shipped pretrained policy."""

import numpy as np

from repro.core.policy import LinearPolicy
from repro.core.property import RobustnessProperty
from repro.core.verifier import verify
from repro.core.config import VerifierConfig
from repro.learn.pretrained import PRETRAINED_THETA, pretrained_policy
from repro.nn.builders import xor_network
from repro.utils.boxes import Box


class TestPretrainedPolicy:
    def test_loads_as_linear_policy(self):
        policy = pretrained_policy()
        assert isinstance(policy, LinearPolicy)
        assert len(PRETRAINED_THETA) == LinearPolicy.num_params

    def test_fresh_instance_each_call(self):
        a = pretrained_policy()
        b = pretrained_policy()
        assert a is not b
        np.testing.assert_array_equal(a.theta, b.theta)

    def test_decides_paper_examples(self):
        net = xor_network()
        config = VerifierConfig(timeout=10)
        robust = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        assert verify(net, robust, policy=pretrained_policy(), config=config, rng=0).kind == "verified"
        broken = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0)
        assert verify(net, broken, policy=pretrained_policy(), config=config, rng=0).kind == "falsified"

    def test_makes_valid_choices_everywhere(self):
        # The policy must emit legal domains and splits for arbitrary
        # contexts (clipping/discretization can never go out of menu).
        from repro.nn.builders import mlp

        policy = pretrained_policy()
        rng = np.random.default_rng(0)
        for seed in range(10):
            net = mlp(4, [8], 3, rng=seed)
            center = rng.uniform(0, 1, 4)
            region = Box.from_center_radius(center, rng.uniform(0.01, 0.5))
            prop = RobustnessProperty(region, 0)
            x_star = region.sample(rng)
            f_star = rng.uniform(-1, 5)
            domain = policy.choose_domain(net, prop, x_star, f_star)
            assert domain.base in ("interval", "zonotope")
            assert domain.disjuncts >= 1
            choice = policy.choose_split(net, prop, x_star, f_star)
            assert 0 <= choice.dim < 4
