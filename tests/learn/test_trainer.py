"""Tests for the policy trainer (the paper's training phase)."""

import numpy as np

from repro.core.policy import LinearPolicy
from repro.core.property import RobustnessProperty
from repro.learn.objective import TrainingProblem
from repro.learn.trainer import PolicyTrainer, train_policy
from repro.nn.builders import xor_network
from repro.utils.boxes import Box


def tiny_suite():
    net = xor_network()
    props = [
        RobustnessProperty(Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1),
        RobustnessProperty(Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1),
    ]
    return [TrainingProblem(net, p) for p in props]


class TestTrainer:
    def test_returns_policy_and_history(self):
        trained = train_policy(tiny_suite(), iterations=3, time_limit=1.0, rng=0)
        assert isinstance(trained.policy, LinearPolicy)
        # Default seed observation + 3 BO iterations.
        assert len(trained.history.observations) == 4

    def test_best_score_is_max_of_history(self):
        trained = train_policy(tiny_suite(), iterations=3, time_limit=1.0, rng=1)
        scores = [o.y for o in trained.history.observations]
        assert trained.best_score == max(scores)

    def test_never_worse_than_default_prior(self):
        # The default policy is seeded as observation 0, so the returned
        # policy's score is at least the default's.
        trainer = PolicyTrainer(tiny_suite(), time_limit=1.0, rng=2)
        trained = trainer.train(iterations=3)
        default_score = trained.history.observations[0].y
        assert trained.best_score >= default_score

    def test_trained_policy_usable(self):
        from repro.core.verifier import verify
        from repro.core.config import VerifierConfig

        trained = train_policy(tiny_suite(), iterations=2, time_limit=1.0, rng=3)
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.45, 0.45]), np.array([0.55, 0.55])), 1
        )
        outcome = verify(
            net, prop, policy=trained.policy, config=VerifierConfig(timeout=5), rng=0
        )
        assert outcome.kind == "verified"
