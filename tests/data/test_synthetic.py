"""Tests for the synthetic image datasets."""

import numpy as np
import pytest

from repro.data.synthetic import Dataset, cifar_like, mnist_like


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError, match="labels"):
            Dataset(np.zeros((3, 4)), np.zeros(2, dtype=int), 2)
        with pytest.raises(ValueError, match="out of range"):
            Dataset(np.zeros((2, 4)), np.array([0, 5]), 2)
        with pytest.raises(ValueError, match="num_classes"):
            Dataset(np.zeros((2, 4)), np.zeros(2, dtype=int), 0)

    def test_len_and_shape(self):
        ds = mnist_like(num_samples=50, image_size=6, rng=0)
        assert len(ds) == 50
        assert ds.sample_shape == (1, 6, 6)

    def test_subset(self):
        ds = mnist_like(num_samples=20, rng=0)
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 5, 7]])

    def test_split(self):
        ds = mnist_like(num_samples=100, rng=0)
        train, test = ds.split(0.8, rng=0)
        assert len(train) == 80
        assert len(test) == 20

    def test_split_rejects_bad_fraction(self):
        ds = mnist_like(num_samples=10, rng=0)
        with pytest.raises(ValueError):
            ds.split(1.5)


class TestGenerators:
    def test_mnist_like_range_and_classes(self):
        ds = mnist_like(num_samples=200, image_size=8, rng=0)
        assert ds.inputs.min() >= 0.0
        assert ds.inputs.max() <= 1.0
        assert ds.num_classes == 10
        assert set(np.unique(ds.labels)) <= set(range(10))

    def test_cifar_like_shape(self):
        ds = cifar_like(num_samples=20, image_size=8, rng=0)
        assert ds.sample_shape == (3, 8, 8)

    def test_deterministic(self):
        a = mnist_like(num_samples=10, rng=3)
        b = mnist_like(num_samples=10, rng=3)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = mnist_like(num_samples=10, rng=1)
        b = mnist_like(num_samples=10, rng=2)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_classes_are_separable(self):
        # Same-class samples must be closer to their class prototype than to
        # other prototypes on average — the property that makes training work.
        ds = mnist_like(num_samples=500, image_size=8, rng=0)
        flat = ds.inputs.reshape(len(ds), -1)
        protos = np.stack(
            [flat[ds.labels == k].mean(axis=0) for k in range(10)]
        )
        dists = np.linalg.norm(flat[:, None, :] - protos[None, :, :], axis=2)
        nearest = np.argmin(dists, axis=1)
        assert np.mean(nearest == ds.labels) > 0.9

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            mnist_like(num_samples=0)
        with pytest.raises(ValueError):
            mnist_like(noise=-1.0)
