"""Tests for the ACAS-style substrate."""

import numpy as np
import pytest

from repro.data.acas import (
    COC,
    NUM_ADVISORIES,
    NUM_INPUTS,
    acas_dataset,
    acas_network,
    acas_table,
    acas_training_properties,
)


class TestAdvisoryTable:
    def test_far_away_is_coc(self):
        # Max distance -> severity 0 -> clear of conflict.
        x = np.array([1.0, 0.2, 0.5, 0.5, 1.0])
        assert acas_table(x) == COC

    def test_close_fast_is_strong(self):
        left = np.array([0.0, 0.1, 0.5, 0.5, 1.0])
        right = np.array([0.0, 0.9, 0.5, 0.5, 1.0])
        assert acas_table(left) == 3  # strong left
        assert acas_table(right) == 4  # strong right

    def test_moderate_is_weak(self):
        x = np.array([0.4, 0.2, 0.5, 0.5, 0.5])
        assert acas_table(x) in (1, 2)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(0)
        batch = rng.uniform(size=(50, NUM_INPUTS))
        labels = acas_table(batch)
        for i in range(50):
            assert labels[i] == acas_table(batch[i])

    def test_psi_and_vown_ignored(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.uniform(size=NUM_INPUTS)
            y = x.copy()
            y[2] = rng.uniform()
            y[3] = rng.uniform()
            assert acas_table(x) == acas_table(y)

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValueError):
            acas_table(np.zeros(3))

    def test_all_advisories_reachable(self):
        xs, ys = acas_dataset(num_samples=5000, rng=0)
        assert set(np.unique(ys)) == set(range(NUM_ADVISORIES))


class TestAcasNetwork:
    def test_network_learns_table(self):
        net = acas_network(hidden=(16, 16), epochs=15, rng=0)
        xs, ys = acas_dataset(num_samples=1000, rng=99)
        preds = net.classify_batch(xs)
        assert np.mean(preds == ys) > 0.85

    def test_training_properties(self):
        net = acas_network(hidden=(16, 16), epochs=10, rng=0)
        props = acas_training_properties(net, count=6, rng=0)
        assert len(props) == 6
        for prop in props:
            # Center must be confidently classified as the property label.
            assert net.classify(prop.region.center) == prop.label
            assert prop.region.ndim == NUM_INPUTS

    def test_training_properties_radii_cycle(self):
        net = acas_network(hidden=(16, 16), epochs=10, rng=0)
        props = acas_training_properties(
            net, count=4, radii=(0.01, 0.2), rng=0
        )
        small = props[0].region.widths.max()
        large = props[1].region.widths.max()
        assert small < large

    def test_rejects_bad_count(self):
        net = acas_network(hidden=(8,), epochs=2, rng=0)
        with pytest.raises(ValueError):
            acas_training_properties(net, count=0)
