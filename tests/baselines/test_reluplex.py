"""Tests for the Reluplex-style complete decision procedure."""

import numpy as np
import pytest

from repro.baselines.reluplex import Reluplex, ReluplexConfig, _Encoding
from repro.core.property import RobustnessProperty, linf_property
from repro.core.results import Falsified, Timeout, Verified
from repro.nn.builders import example_2_2_network, lenet_conv, mlp, xor_network
from repro.utils.boxes import Box


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReluplexConfig(timeout=0.0)
        with pytest.raises(ValueError):
            ReluplexConfig(node_limit=0)


class TestEncoding:
    def test_variable_layout(self):
        net = mlp(3, [4], 2, rng=0)
        enc = _Encoding(net, Box.unit(3))
        # Stages: input(3), affine(4), relu(4), affine(2).
        assert enc.num_vars == 3 + 4 + 4 + 2
        assert enc.output_offset == 3 + 4 + 4

    def test_objective_vector(self):
        net = mlp(3, [4], 2, rng=0)
        enc = _Encoding(net, Box.unit(3))
        c = enc.objective(label=0, adversary=1)
        assert c[enc.output_offset] == 1.0
        assert c[enc.output_offset + 1] == -1.0

    def test_conv_rejected(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        with pytest.raises(TypeError, match="max pooling"):
            _Encoding(net, Box.unit(16))

    def test_static_phases_reduce_branching(self):
        # A tiny box fixes most ReLU phases statically.
        net = mlp(3, [8], 2, rng=0)
        x = np.full(3, 0.5)
        tight = _Encoding(net, Box.linf_ball(x, 1e-4))
        wide = _Encoding(net, Box.linf_ball(x, 10.0))
        assert len(tight.branchable) <= len(wide.branchable)


class TestDecisions:
    def test_verifies_xor_region(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        outcome = Reluplex(ReluplexConfig(timeout=20)).verify(net, prop)
        assert isinstance(outcome, Verified)

    def test_falsifies_with_valid_witness(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        outcome = Reluplex(ReluplexConfig(timeout=20)).verify(net, prop)
        assert isinstance(outcome, Falsified)
        assert prop.region.contains(outcome.counterexample)
        assert outcome.margin <= 1e-6

    def test_complete_on_tight_boundary(self):
        # Region that barely satisfies the property: Example 2.3 has true
        # minimum margin exactly 0.1 > 0, so Reluplex must verify.
        from repro.nn.builders import example_2_3_network

        net = example_2_3_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 1)
        outcome = Reluplex(ReluplexConfig(timeout=30)).verify(net, prop)
        assert isinstance(outcome, Verified)

    def test_agreement_with_sampling(self):
        # On random small nets, Reluplex's verdict must match dense sampling:
        # verified -> no sampled cex; falsified -> witness checks out.
        rng = np.random.default_rng(0)
        outcomes = set()
        for seed in range(8):
            net = mlp(3, [6], 3, rng=seed)
            center = rng.uniform(-0.3, 0.3, 3)
            prop = linf_property(net, center, 0.05, clip_low=None, clip_high=None)
            outcome = Reluplex(ReluplexConfig(timeout=20)).verify(net, prop)
            outcomes.add(outcome.kind)
            if isinstance(outcome, Verified):
                preds = net.classify_batch(prop.region.sample(rng, 400))
                assert np.all(preds == prop.label)
            elif isinstance(outcome, Falsified):
                assert prop.margin_at(net, outcome.counterexample) <= 1e-6
        assert "verified" in outcomes  # the fuzz covered the sound direction

    def test_timeout_on_hard_instance(self):
        net = mlp(10, [32, 32], 5, rng=3)
        prop = linf_property(net, np.full(10, 0.5), 0.5)
        outcome = Reluplex(ReluplexConfig(timeout=0.2)).verify(net, prop)
        assert isinstance(outcome, (Timeout, Falsified))

    def test_node_budget(self):
        net = mlp(6, [16, 16], 4, rng=4)
        prop = linf_property(net, np.full(6, 0.5), 0.4)
        outcome = Reluplex(
            ReluplexConfig(timeout=60, node_limit=3)
        ).verify(net, prop)
        assert outcome.kind in ("timeout", "falsified", "verified")

    def test_stats_count_lp_calls(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1
        )
        outcome = Reluplex(ReluplexConfig(timeout=20)).verify(net, prop)
        assert outcome.stats.analyze_calls >= 1
