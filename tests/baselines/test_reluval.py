"""Tests for the ReluVal baseline."""

import numpy as np
import pytest

from repro.baselines.reluval import ReluVal, ReluValConfig
from repro.core.property import RobustnessProperty, linf_property
from repro.core.results import Falsified, Timeout, Verified
from repro.nn.builders import example_2_2_network, lenet_conv, mlp, xor_network
from repro.utils.boxes import Box


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReluValConfig(timeout=0.0)
        with pytest.raises(ValueError):
            ReluValConfig(max_depth=0)


class TestReluVal:
    def test_verifies_xor_region(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        outcome = ReluVal(ReluValConfig(timeout=10)).verify(net, prop)
        assert isinstance(outcome, Verified)

    def test_refinement_helps(self):
        # A region symbolic intervals can't settle in one shot but can with
        # splits: XOR over a wide region.
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.26, 0.26]), np.array([0.74, 0.74])), 1
        )
        outcome = ReluVal(ReluValConfig(timeout=10)).verify(net, prop)
        assert isinstance(outcome, Verified)

    def test_falsifies_via_center_sample(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([1.4]), np.array([2.0])), 1)
        outcome = ReluVal(ReluValConfig(timeout=10)).verify(net, prop)
        assert isinstance(outcome, Falsified)
        assert prop.region.contains(outcome.counterexample)
        assert net.classify(outcome.counterexample) != 1

    def test_soundness_fuzz(self):
        rng = np.random.default_rng(0)
        verified_seen = False
        for seed in range(8):
            net = mlp(3, [8], 3, rng=seed)
            center = rng.uniform(-0.3, 0.3, 3)
            prop = linf_property(net, center, 0.1, clip_low=None, clip_high=None)
            outcome = ReluVal(ReluValConfig(timeout=5)).verify(net, prop)
            if isinstance(outcome, Verified):
                verified_seen = True
                preds = net.classify_batch(prop.region.sample(rng, 300))
                assert np.all(preds == prop.label)
        assert verified_seen

    def test_timeout(self):
        net = mlp(8, [24, 24, 24], 5, rng=1)
        prop = linf_property(net, np.full(8, 0.5), 0.5)
        outcome = ReluVal(ReluValConfig(timeout=0.05)).verify(net, prop)
        assert isinstance(outcome, (Timeout, Falsified))

    def test_depth_cap(self):
        net = mlp(4, [16], 3, rng=2)
        prop = linf_property(net, np.full(4, 0.5), 0.4)
        outcome = ReluVal(ReluValConfig(timeout=30, max_depth=2)).verify(net, prop)
        assert outcome.stats.max_depth_reached <= 2

    def test_conv_unsupported(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        prop = linf_property(net, np.full(16, 0.5), 0.01)
        with pytest.raises(TypeError, match="max pooling"):
            ReluVal().verify(net, prop)

    def test_stats_recorded(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        outcome = ReluVal(ReluValConfig(timeout=10)).verify(net, prop)
        assert outcome.stats.analyze_calls >= 1
        assert outcome.stats.time_seconds > 0
