"""Tests for the AI2 baseline."""

import numpy as np

from repro.abstract.domains import DomainSpec
from repro.baselines.ai2 import AI2, AI2_BOUNDED64, AI2_ZONOTOPE
from repro.core.property import RobustnessProperty
from repro.nn.builders import example_2_3_network, xor_network
from repro.utils.boxes import Box


class TestAI2:
    def test_never_falsifies(self):
        # AI2 has exactly three outcomes: verified / unknown / timeout.
        net = xor_network()
        broken = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0)
        result = AI2(AI2_ZONOTOPE).verify(net, broken)
        assert result.kind == "unknown"

    def test_verifies_easy_property(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.45, 0.45]), np.array([0.55, 0.55])), 1
        )
        result = AI2(AI2_ZONOTOPE).verify(net, prop)
        assert result.kind == "verified"
        assert bool(result)

    def test_bounded64_more_precise_than_zonotope(self):
        # Example 2.3: plain zonotope fails, powerset succeeds.
        net = example_2_3_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 1)
        weak = AI2(AI2_ZONOTOPE).verify(net, prop)
        strong = AI2(AI2_BOUNDED64).verify(net, prop)
        assert weak.kind == "unknown"
        assert strong.kind == "verified"
        assert strong.margin_lower_bound > weak.margin_lower_bound

    def test_timeout(self):
        net = xor_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 1)
        result = AI2(DomainSpec("zonotope", 64), timeout=-1.0).verify(net, prop)
        # Deadline already expired: propagate aborts.
        assert result.kind == "timeout"

    def test_records_time(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1
        )
        result = AI2(AI2_ZONOTOPE).verify(net, prop)
        assert result.time_seconds >= 0.0

    def test_describe(self):
        assert "Zx64" in AI2(AI2_BOUNDED64).describe()
