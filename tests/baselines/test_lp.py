"""Tests for the LP wrapper."""

import numpy as np
import pytest

from repro.baselines.lp import INFEASIBLE, OPTIMAL, UNBOUNDED, LPResult, solve_lp


class TestSolveLP:
    def test_simple_bounded_problem(self):
        # min x + y s.t. x >= 1, y >= 2 (via bounds).
        result = solve_lp(
            np.array([1.0, 1.0]), bounds=[(1.0, None), (2.0, None)]
        )
        assert result.is_optimal
        assert result.value == pytest.approx(3.0)
        np.testing.assert_allclose(result.x, [1.0, 2.0])

    def test_equality_constraints(self):
        # min x s.t. x + y = 4, y <= 1.
        result = solve_lp(
            np.array([1.0, 0.0]),
            a_ub=np.array([[0.0, 1.0]]),
            b_ub=np.array([1.0]),
            a_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([4.0]),
        )
        assert result.is_optimal
        assert result.value == pytest.approx(3.0)

    def test_infeasible(self):
        # x <= -1 and x >= 1 simultaneously.
        result = solve_lp(
            np.array([1.0]),
            a_ub=np.array([[1.0]]),
            b_ub=np.array([-1.0]),
            bounds=[(1.0, None)],
        )
        assert result.status == INFEASIBLE
        assert result.x is None

    def test_unbounded(self):
        result = solve_lp(np.array([-1.0]))
        assert result.status in (UNBOUNDED, "error")

    def test_default_bounds_are_free(self):
        # min x s.t. x >= -5 would be -5 with free vars + constraint;
        # scipy's default x>=0 would wrongly give 0.
        result = solve_lp(
            np.array([1.0]),
            a_ub=np.array([[-1.0]]),
            b_ub=np.array([5.0]),
        )
        assert result.is_optimal
        assert result.value == pytest.approx(-5.0)

    def test_result_flags(self):
        assert LPResult(OPTIMAL, np.zeros(1), 0.0).is_optimal
        assert not LPResult(INFEASIBLE, None, None).is_optimal
