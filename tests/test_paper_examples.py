"""End-to-end regression tests for every worked example in the paper.

These tests pin the reproduction to the paper's text: the XOR network of
Figure 3, Examples 2.1–2.3, the Algorithm 1 trace of Example 3.1/Figure 5,
and the claims of §5 (soundness, termination, δ-completeness) on those
networks.
"""

import numpy as np
import pytest

from repro import (
    Box,
    DomainSpec,
    RobustnessProperty,
    VerifierConfig,
    analyze,
    verify,
)
from repro.core.policy import BisectionPolicy
from repro.nn.builders import example_2_2_network, example_2_3_network, xor_network


class TestExample21:
    """Example 2.1: the XOR network's classification behaviour."""

    def test_forward_trace_of_paper(self):
        net = xor_network()
        # "consider the vector [0 0]^T. After applying the affine
        # transformation from the first layer, we obtain [0 -1]^T."
        hidden = net.layers[0].forward(np.array([[0.0, 0.0]]))[0]
        np.testing.assert_array_equal(hidden, [0.0, -1.0])
        # "After applying ReLU, we get [0 0]^T."
        np.testing.assert_array_equal(np.maximum(hidden, 0), [0.0, 0.0])
        # "we get [1 0]^T ... the network will classify [0 0]^T as a zero."
        np.testing.assert_array_equal(net.logits(np.array([0.0, 0.0])), [1.0, 0.0])

    def test_full_truth_table(self):
        net = xor_network()
        assert net.classify(np.array([0.0, 1.0])) == 1
        assert net.classify(np.array([1.0, 0.0])) == 1
        assert net.classify(np.array([1.0, 1.0])) == 0


class TestExample22:
    """Example 2.2: robustness holds on [-1,1], fails on [-1,2]."""

    def test_paper_arithmetic(self):
        net = example_2_2_network()
        # The paper prints N(0) = [1 3]; the network as defined actually
        # gives [2 3] (the [a+1, a+2] form with a = relu(1) = 1).  Both
        # agree the label is 1; we pin the corrected arithmetic.
        np.testing.assert_allclose(net.logits(np.array([0.0])), [2.0, 3.0])
        np.testing.assert_allclose(net.logits(np.array([2.0])), [8.0, 6.0])

    def test_verifier_decides_both_regions(self):
        net = example_2_2_network()
        config = VerifierConfig(timeout=10)
        ok = verify(
            net, RobustnessProperty(Box(np.array([-1.0]), np.array([1.0])), 1),
            config=config, rng=0,
        )
        assert ok.kind == "verified"
        bad = verify(
            net, RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1),
            config=config, rng=0,
        )
        assert bad.kind == "falsified"
        # Every x > 1.5 flips the label; the witness must be in that zone.
        assert bad.counterexample[0] > 1.0


class TestExample23:
    """Example 2.3 / Figure 4: the domain hierarchy on the 2-2-2 network."""

    def test_zonotope_fails_powerset_succeeds(self):
        net = example_2_3_network()
        box = Box(np.zeros(2), np.ones(2))
        assert not analyze(net, box, 1, DomainSpec("zonotope", 1)).verified
        assert analyze(net, box, 1, DomainSpec("zonotope", 2)).verified

    def test_unsafe_point_of_figure_4(self):
        # The figure marks [1.2, 1.2] as the unsafe output point contained
        # in the joined zonotope; our plain-zonotope margin bound of -0.2
        # corresponds exactly to that spurious output.
        net = example_2_3_network()
        box = Box(np.zeros(2), np.ones(2))
        result = analyze(net, box, 1, DomainSpec("zonotope", 1))
        assert result.margin_lower_bound == pytest.approx(-0.2)
        lo, hi = result.output.bounds()
        assert lo[0] <= 1.2 <= hi[0]
        assert lo[1] <= 1.2 <= hi[1]

    def test_whole_pipeline_verifies(self):
        net = example_2_3_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 1)
        assert verify(net, prop, config=VerifierConfig(timeout=10), rng=0).kind == "verified"


class TestExample31:
    """Example 3.1 / Figure 5: Algorithm 1 on the XOR network."""

    def test_weak_domain_trace_requires_splits(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        policy = BisectionPolicy(domain=DomainSpec("zonotope", 1))
        outcome = verify(net, prop, policy=policy, config=VerifierConfig(timeout=10), rng=0)
        assert outcome.kind == "verified"
        # The paper's trace splits twice (three verified leaves); our
        # split points differ but refinement must occur.
        assert outcome.stats.splits >= 1
        assert outcome.stats.analyze_calls >= 3

    def test_plain_zonotope_cannot_do_it_in_one_shot(self):
        net = xor_network()
        box = Box(np.array([0.3, 0.3]), np.array([0.7, 0.7]))
        assert not analyze(net, box, 1, DomainSpec("zonotope", 1)).verified


class TestSection5Guarantees:
    """Theorems 5.2 and 5.4 exercised on the paper's networks."""

    def test_termination_on_all_paper_networks(self):
        config = VerifierConfig(timeout=30, delta=1e-4)
        cases = [
            (xor_network(), Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1),
            (example_2_2_network(), Box(np.array([-1.0]), np.array([1.0])), 1),
            (example_2_3_network(), Box(np.zeros(2), np.ones(2)), 1),
        ]
        for net, box, label in cases:
            outcome = verify(net, RobustnessProperty(box, label), config=config, rng=0)
            assert outcome.kind in ("verified", "falsified")

    def test_delta_completeness_on_falsification(self):
        net = example_2_2_network()
        config = VerifierConfig(timeout=10, delta=1e-3)
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        outcome = verify(net, prop, config=config, rng=0)
        assert outcome.kind == "falsified"
        assert prop.margin_at(net, outcome.counterexample) <= config.delta
