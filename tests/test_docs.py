"""Documentation guards: every public item must be documented.

These tests keep the documentation deliverable honest: every module under
``repro`` carries a module docstring, every name exported through an
``__all__`` resolves and is documented, and the README's claims about
entry points stay true.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def _walk_modules():
    prefix = repro.__name__ + "."
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestModuleDocs:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_module_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} is missing a module docstring"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_exports_resolve_and_are_documented(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ lists missing name {name!r}"
            )
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module.__name__}.{name} has no docstring"
                )


class TestPublicApiSurface:
    def test_top_level_exports(self):
        for name in ("Box", "RobustnessProperty", "verify", "Verifier",
                     "DomainSpec", "analyze", "VerifierConfig"):
            assert name in repro.__all__

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestRepositoryDocs:
    def test_required_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / doc
            assert path.exists(), f"missing {doc}"
            assert path.stat().st_size > 1000, f"{doc} looks empty"

    def test_readme_examples_exist(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for line in readme.splitlines():
            line = line.strip()
            if line.startswith("python examples/"):
                script = line.split()[1]
                assert (REPO_ROOT / script).exists(), f"README references {script}"

    def test_every_benchmark_file_maps_to_design(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, (
                f"{bench.name} is not indexed in DESIGN.md"
            )

    def test_examples_have_docstrings(self):
        for script in sorted((REPO_ROOT / "examples").glob("*.py")):
            first = script.read_text().lstrip()
            assert first.startswith('"""'), f"{script.name} lacks a docstring"
