"""Backend equivalence matrix: job-level outcomes match across backends.

The mixed-precision contract is *outcome* equality, not bitwise bound
equality: a numpy32 (or torch) scheduler run over the xor and scaled
fig06-style suites must decide every job the same way the numpy64
reference does, falsified witnesses must survive concrete float64
re-evaluation, and the two-phase escalation mode must reproduce the
reference outcomes while keying its cache traffic per backend.
"""

import numpy as np
import pytest

from repro.bench.suites import SuiteScale, build_network, build_problems
from repro.core.config import VerifierConfig
from repro.core.property import RobustnessProperty, linf_property
from repro.exec.shm import ShmArena, resolve_payload
from repro.nn.builders import mlp, xor_network
from repro.sched import ResultCache, Scheduler, VerificationJob
from repro.utils.boxes import Box

TINY = SuiteScale(
    width_factor=0.12, image_size=4, train_samples=500, train_epochs=8
)

BACKENDS = ("numpy64", "numpy32", "torch")


def _torch_or_skip(name):
    if name == "torch":
        pytest.importorskip("torch")


@pytest.fixture(scope="module")
def suite():
    """xor properties plus a scaled-down fig06 (mnist_3x100) slice."""
    config = VerifierConfig(timeout=10.0, batch_size=8, max_depth=6)
    jobs = [
        VerificationJob(
            xor_network(),
            RobustnessProperty(
                Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
            ),
            config=config,
            seed=0,
            name="xor-verified",
        ),
        VerificationJob(
            xor_network(),
            RobustnessProperty(
                Box(np.array([0.1, 0.1]), np.array([0.9, 0.9])), 1
            ),
            config=config,
            seed=1,
            name="xor-falsified",
        ),
    ]
    net = mlp(4, [10, 10], 3, rng=5)
    rng = np.random.default_rng(9)
    for i in range(4):
        center = rng.uniform(0.2, 0.8, 4)
        prop = linf_property(net, center, 0.05 + 0.1 * i, name=f"mlp-{i}")
        jobs.append(
            VerificationJob(net, prop, config=config, seed=i, name=prop.name)
        )
    bench_net = build_network("mnist_3x100", TINY, seed=0)
    fig06_config = VerifierConfig(timeout=5.0, batch_size=8, max_depth=5)
    for problem in build_problems(bench_net, count=3, rng=13):
        jobs.append(
            VerificationJob(
                bench_net.network,
                problem.prop,
                config=fig06_config,
                seed=0,
                name=problem.prop.name,
            )
        )
    return jobs


@pytest.fixture(scope="module")
def reference(suite):
    return Scheduler(suite, engine="batched").run()


def _witness_margin_f64(job, outcome) -> float:
    logits = job.network.forward(
        np.asarray(outcome.counterexample, dtype=np.float64)
    )
    label = job.prop.label
    return float(logits[label] - np.delete(logits, label).max())


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_outcome_matrix(suite, reference, backend_name):
    _torch_or_skip(backend_name)
    report = Scheduler(suite, engine="batched", backend=backend_name).run()
    assert report.backend == backend_name
    kinds = [r.outcome.kind for r in report.results]
    assert kinds == [r.outcome.kind for r in reference.results]
    for result in report.results:
        if result.outcome.kind == "falsified":
            assert (
                _witness_margin_f64(result.job, result.outcome)
                <= result.job.config.delta
            )


@pytest.mark.parametrize("engine", ("batched", "sequential"))
def test_escalation_matches_reference(suite, reference, engine):
    report = Scheduler(
        suite, engine=engine, precision_escalation=True
    ).run()
    assert report.escalation
    assert 0 <= report.escalated <= len(suite)
    assert [r.outcome.kind for r in report.results] == [
        r.outcome.kind for r in reference.results
    ]
    if engine == "sequential":
        # No margin signal: every job the screen did not falsify (a
        # subset of the reference falsifications, since accepted
        # witnesses are float64-validated) must have escalated.
        falsified = sum(
            1 for r in reference.results if r.outcome.kind == "falsified"
        )
        assert report.escalated >= len(suite) - falsified


def test_escalation_env_default(suite, monkeypatch):
    monkeypatch.setenv("REPRO_PRECISION_ESCALATION", "1")
    assert Scheduler(suite).precision_escalation
    monkeypatch.setenv("REPRO_PRECISION_ESCALATION", "0")
    assert not Scheduler(suite).precision_escalation


def test_cache_isolation_between_backends(suite, tmp_path):
    """A numpy32 run never serves (or poisons) numpy64 entries."""
    cache = ResultCache(tmp_path / "cache")
    first = Scheduler(suite, cache=cache).run()
    assert first.cache_hits == 0
    crossed = Scheduler(suite, cache=cache, backend="numpy32").run()
    assert crossed.cache_hits == 0
    again64 = Scheduler(suite, cache=cache).run()
    assert again64.cache_hits == len(suite)
    again32 = Scheduler(suite, cache=cache, backend="numpy32").run()
    assert again32.cache_hits == len(suite)


def test_per_backend_kernel_counters(suite):
    report = Scheduler(suite, backend="numpy32").run()
    by_backend = {
        name: value
        for name, value in report.metrics.items()
        if name.startswith("kernel.by_backend.")
    }
    assert by_backend.get("kernel.by_backend.numpy32.analyze_batches", 0) > 0
    assert not any("numpy64" in name for name in by_backend)


def test_shm_roundtrip_preserves_float32():
    arena = ShmArena(threshold=0)
    try:
        array = np.arange(12, dtype=np.float32).reshape(3, 4) / 7.0
        payload, segments = arena.wrap_payload({"x": array})
        assert segments
        resolved = resolve_payload(payload)
        assert resolved["x"].dtype == np.float32
        assert np.array_equal(resolved["x"], array)
    finally:
        arena.close()
