"""Core tests of the pluggable array-backend layer (:mod:`repro.backend`).

Registry and active-backend management, the outward-rounding helpers'
containment guarantees, the per-dtype network lowering cache, and the
kernel-call descriptor round trip that carries a backend across the
process boundary.
"""

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro import backend
from repro.abstract.analyzer import analyze_batch_multi
from repro.abstract.domains import DomainSpec
from repro.exec.calls import (
    KernelCall,
    NetworkStore,
    marshal_call,
    run_kernel_call,
)
from repro.nn.builders import mlp
from repro.nn.network import AffineOp
from repro.utils.boxes import Box


class TestRegistry:
    def test_numpy_backends_registered(self):
        names = backend.available()
        assert "numpy64" in names
        assert "numpy32" in names

    def test_dtypes(self):
        assert backend.get("numpy64").dtype == np.float64
        assert backend.get("numpy32").dtype == np.float32

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            backend.get("numpy128")

    def test_torch_gated(self):
        try:
            import torch  # noqa: F401
        except ImportError:
            with pytest.raises(KeyError, match="torch"):
                backend.get("torch")
        else:
            assert backend.get("torch").name == "torch"

    def test_numpy_ops_are_numpy(self):
        # The reference backend's ops must be literally numpy's, so
        # routing a kernel through the seam cannot change results.
        bk = backend.get("numpy64")
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(bk.matmul(a, b), a @ b)
        assert np.array_equal(
            bk.einsum("ij,jk->ik", a, b), np.einsum("ij,jk->ik", a, b)
        )


class TestActiveManagement:
    def test_default_is_numpy64(self):
        assert backend.active().name == "numpy64"

    def test_use_backend_nests(self):
        with backend.use_backend("numpy32"):
            assert backend.active().name == "numpy32"
            with backend.use_backend("numpy64"):
                assert backend.active().name == "numpy64"
            assert backend.active().name == "numpy32"
        assert backend.active().name == "numpy64"

    def test_use_backend_is_thread_local(self):
        seen = {}

        def probe():
            seen["name"] = backend.active().name

        with backend.use_backend("numpy32"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["name"] == "numpy64"

    def test_use_default_backend_crosses_threads(self):
        seen = {}

        def probe():
            seen["name"] = backend.active().name

        with backend.use_default_backend("numpy32"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["name"] == "numpy32"
        assert backend.active().name == "numpy64"

    def test_set_active_validates(self):
        with pytest.raises(KeyError):
            backend.set_active("bogus")
        assert backend.active().name == "numpy64"

    def test_env_seeds_default(self):
        # Spawned processes (executor workers) inherit the parent's
        # backend through REPRO_BACKEND.
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.backend import active; print(active().name)",
            ],
            capture_output=True,
            text=True,
            env={
                "REPRO_BACKEND": "numpy32",
                "PYTHONPATH": "src",
                "PATH": "/usr/bin:/bin",
            },
        )
        assert out.stdout.strip() == "numpy32"


class TestRoundingHelpers:
    def test_slack_zero_for_float64(self):
        assert backend.slack_for(np.float64, 10_000) == 0.0
        assert backend.get("numpy64").slack(10_000) == 0.0

    def test_slack_positive_and_monotone_for_float32(self):
        values = [backend.slack_for(np.float32, n) for n in (1, 10, 100, 1000)]
        assert all(v > 0.0 for v in values)
        assert values == sorted(values)

    def test_outward_cast_contains(self):
        rng = np.random.default_rng(0)
        low = rng.normal(scale=10.0, size=256)
        high = low + np.abs(rng.normal(scale=5.0, size=256))
        lo32, hi32 = backend.outward_cast(low, high, np.float32)
        assert lo32.dtype == np.float32
        assert np.all(lo32.astype(np.float64) <= low)
        assert np.all(hi32.astype(np.float64) >= high)

    def test_outward_cast_noop_for_float64(self):
        low = np.array([0.1, -0.2])
        high = np.array([0.3, 0.4])
        lo, hi = backend.outward_cast(low, high, np.float64)
        assert np.array_equal(lo, low) and np.array_equal(hi, high)

    def test_outward_center_radius_contains(self):
        rng = np.random.default_rng(1)
        center = rng.normal(scale=10.0, size=256)
        radius = np.abs(rng.normal(scale=2.0, size=256))
        c32, r32 = backend.outward_center_radius(center, radius, np.float32)
        c = c32.astype(np.float64)
        r = r32.astype(np.float64)
        assert np.all(c - r <= center - radius)
        assert np.all(c + r >= center + radius)


class TestOpsFor:
    def test_float64_is_reference_cache(self):
        net = mlp(4, [6], 3, rng=0)
        assert net.ops_for(np.float64) is net.ops()

    def test_float32_casts_affine_params(self):
        net = mlp(4, [6], 3, rng=0)
        ops32 = net.ops_for(np.float32)
        for op in ops32:
            if isinstance(op, AffineOp):
                assert op.weight.dtype == np.float32
                assert op.bias.dtype == np.float32
        assert net.ops_for(np.float32) is ops32  # cached

    def test_invalidate_drops_typed_cache(self):
        net = mlp(4, [6], 3, rng=0)
        ops32 = net.ops_for(np.float32)
        net.invalidate_ops()
        assert net.ops_for(np.float32) is not ops32


class TestCallDescriptors:
    def test_marshal_stamps_active_backend(self):
        net = mlp(4, [6], 3, rng=1)
        store = NetworkStore()
        try:
            regions = [Box(np.zeros(4), np.ones(4))]
            args = (net, regions, [0], DomainSpec("interval", 1), None)
            call64 = marshal_call(analyze_batch_multi, args, {}, store)
            assert call64.backend == "numpy64"
            with backend.use_backend("numpy32"):
                call32 = marshal_call(analyze_batch_multi, args, {}, store)
            assert call32.backend == "numpy32"

            # run_kernel_call re-enters the stamped backend: the worker-
            # side dispatch must reproduce an in-process numpy32 run.
            envelope = run_kernel_call(call32)
            with backend.use_backend("numpy32"):
                expected = analyze_batch_multi(*args)
            assert [r.margin_lower_bound for r in envelope.value] == [
                r.margin_lower_bound for r in expected
            ]
            assert any(
                name.startswith("kernel.by_backend.numpy32.")
                for name in envelope.counters
            )
        finally:
            store.close()

    def test_default_backend_field(self):
        call = KernelCall("m:f", {})
        assert call.backend == "numpy64"
