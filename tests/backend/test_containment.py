"""Containment fuzz: float32 analyzer bounds always contain float64's.

The numpy32 backend's soundness rests on outward rounding — every lift
and every widening site pads by a directed-rounding slack — so for any
network, region, and domain, the float32 margin lower bound must never
exceed the float64 reference bound (a tighter float32 bound would mean
the float32 abstraction failed to contain the float64 one).
"""

import numpy as np
import pytest

from repro.abstract.analyzer import analyze, analyze_batch_multi
from repro.abstract.domains import DomainSpec
from repro.backend import use_backend
from repro.nn.builders import mlp
from repro.utils.boxes import Box


def random_mlp(seed, hidden=(10, 10)):
    return mlp(4, list(hidden), 3, rng=seed)


def random_box(seed, n=4, max_radius=0.8):
    rng = np.random.default_rng(seed)
    center = rng.uniform(-1.0, 1.0, size=n)
    radius = rng.uniform(0.05, max_radius, size=n)
    return Box(center - radius, center + radius)

DOMAINS = (
    DomainSpec("interval", 1),
    DomainSpec("zonotope", 1),
    DomainSpec("zonotope", 2),
    DomainSpec("deeppoly", 1),
)


@pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.short_name)
@pytest.mark.parametrize("seed", range(12))
def test_margin_bound_containment(domain, seed):
    network = random_mlp(seed)
    region = random_box(seed + 100)
    label = seed % 3
    reference = analyze(network, region, label, domain)
    with use_backend("numpy32"):
        screened = analyze(network, region, label, domain)
    assert (
        screened.margin_lower_bound <= reference.margin_lower_bound + 1e-12
    ), (
        f"float32 margin {screened.margin_lower_bound!r} beats the float64 "
        f"reference {reference.margin_lower_bound!r} (unsound)"
    )


@pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.short_name)
def test_batched_margin_containment(domain):
    network = random_mlp(7, hidden=(12, 12))
    regions = [random_box(200 + i) for i in range(9)]
    labels = [i % 3 for i in range(9)]
    reference = analyze_batch_multi(network, regions, labels, domain)
    with use_backend("numpy32"):
        screened = analyze_batch_multi(network, regions, labels, domain)
    for ref, scr in zip(reference, screened):
        assert scr.margin_lower_bound <= ref.margin_lower_bound + 1e-12


def test_interval_output_bounds_contain():
    """Elementwise: the float32 output box contains the float64 box."""
    domain = DomainSpec("interval", 1)
    for seed in range(8):
        network = random_mlp(seed, hidden=(8, 8))
        region = random_box(300 + seed)
        reference = analyze(network, region, 0, domain).output
        with use_backend("numpy32"):
            screened = analyze(network, region, 0, domain).output
        assert np.all(
            screened.low.astype(np.float64) <= reference.low + 1e-12
        )
        assert np.all(
            screened.high.astype(np.float64) >= reference.high - 1e-12
        )


def test_float64_path_bitwise_through_backend_seam():
    """Routing through the numpy64 backend changes nothing, bit for bit."""
    domain = DomainSpec("zonotope", 2)
    network = random_mlp(3)
    region = random_box(42)
    a = analyze(network, region, 1, domain)
    with use_backend("numpy64"):
        b = analyze(network, region, 1, domain)
    assert a.margin_lower_bound == b.margin_lower_bound
