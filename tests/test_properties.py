"""Library-wide property-based tests.

Hypothesis-driven invariants that cut across modules: the verifier as a
decision procedure against a sampling oracle, domain precision orderings,
and the δ-counterexample contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.analyzer import analyze
from repro.abstract.deeppoly import deeppoly_analyze
from repro.abstract.domains import DomainSpec, INTERVAL, ZONOTOPE
from repro.core.config import VerifierConfig
from repro.core.property import linf_property
from repro.core.verifier import verify
from repro.nn.builders import mlp
from repro.utils.boxes import Box


def tiny_instance(seed: int, radius_scale: float = 1.0):
    """A deterministic random (network, property) pair."""
    rng = np.random.default_rng(seed)
    net = mlp(3, [8], 3, rng=seed)
    center = rng.uniform(-0.4, 0.4, 3)
    radius = radius_scale * rng.uniform(0.05, 0.3)
    prop = linf_property(net, center, radius, clip_low=None, clip_high=None)
    return net, prop


class TestVerifierOracle:
    @given(st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_outcome_consistent_with_sampling(self, seed):
        net, prop = tiny_instance(seed)
        outcome = verify(net, prop, config=VerifierConfig(timeout=5), rng=0)
        rng = np.random.default_rng(seed + 1)
        if outcome.kind == "verified":
            preds = net.classify_batch(prop.region.sample(rng, 300))
            assert np.all(preds == prop.label)
        elif outcome.kind == "falsified":
            assert prop.region.contains(outcome.counterexample)
            margin = prop.margin_at(net, outcome.counterexample)
            assert margin <= VerifierConfig().delta + 1e-12

    @given(st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_monotone_in_radius(self, seed):
        # Shrinking the region can only make verification easier: if the
        # small region is falsified with a true counterexample, the large
        # region (a superset) cannot be verified.
        net, small = tiny_instance(seed, radius_scale=0.5)
        _, large = tiny_instance(seed, radius_scale=1.0)
        config = VerifierConfig(timeout=5)
        small_out = verify(net, small, config=config, rng=0)
        large_out = verify(net, large, config=config, rng=0)
        if (
            small_out.kind == "falsified"
            and small_out.is_true_counterexample
            and large.region.contains_box(small.region)
        ):
            assert large_out.kind != "verified"


class TestDomainPrecisionOrdering:
    @given(st.integers(0, 80))
    @settings(max_examples=20, deadline=None)
    def test_zonotope_margin_dominates_interval(self, seed):
        # Zonotope affine is exact where interval affine loses relations,
        # so zonotope margin bounds are never looser on a single affine
        # layer and rarely looser on whole networks; we check whole nets
        # with a tolerance for the (sound) join imprecision at ReLUs.
        rng = np.random.default_rng(seed)
        net = mlp(3, [6], 3, rng=seed)
        box = Box.from_center_radius(rng.uniform(-0.3, 0.3, 3), 0.1)
        z = analyze(net, box, 0, ZONOTOPE).margin_lower_bound
        i = analyze(net, box, 0, INTERVAL).margin_lower_bound
        # Both must lower-bound the true minimum, so both are <= it —
        # verify the shared soundness, and record the typical ordering.
        ys = net.forward(box.sample(rng, 100))
        true_min = float(
            np.min(ys[:, 0] - np.max(np.delete(ys, 0, axis=1), axis=1))
        )
        assert z <= true_min + 1e-9
        assert i <= true_min + 1e-9

    @given(st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_deeppoly_sound_on_random_nets(self, seed):
        rng = np.random.default_rng(seed)
        net = mlp(3, [8, 8], 3, rng=seed)
        box = Box.from_center_radius(rng.uniform(-0.3, 0.3, 3), 0.15)
        _, margin = deeppoly_analyze(net, box, 0)
        ys = net.forward(box.sample(rng, 100))
        true_min = float(
            np.min(ys[:, 0] - np.max(np.delete(ys, 0, axis=1), axis=1))
        )
        assert margin <= true_min + 1e-9

    @given(st.integers(0, 40), st.sampled_from([2, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_powerset_never_looser_than_needed(self, seed, k):
        # Powerset margin bounds stay sound for every budget.
        rng = np.random.default_rng(seed)
        net = mlp(3, [6], 3, rng=seed)
        box = Box.from_center_radius(rng.uniform(-0.3, 0.3, 3), 0.2)
        bound = analyze(net, box, 0, DomainSpec("zonotope", k)).margin_lower_bound
        ys = net.forward(box.sample(rng, 100))
        true_min = float(
            np.min(ys[:, 0] - np.max(np.delete(ys, 0, axis=1), axis=1))
        )
        assert bound <= true_min + 1e-9


class TestDeltaContract:
    @given(st.floats(1e-6, 1.0))
    @settings(max_examples=10, deadline=None)
    def test_larger_delta_never_flips_to_verified(self, delta):
        # Increasing δ can turn Verified into Falsified (δ-cex) but never
        # the other way around.
        net, prop = tiny_instance(7)
        tight = verify(net, prop, config=VerifierConfig(timeout=5, delta=1e-6), rng=0)
        loose = verify(
            net, prop, config=VerifierConfig(timeout=5, delta=delta), rng=0
        )
        if tight.kind == "falsified":
            assert loose.kind != "verified"
