"""Tests for the training substrate."""

import numpy as np
import pytest

from repro.nn.builders import mlp
from repro.nn.training import (
    TrainConfig,
    accuracy,
    cross_entropy,
    cross_entropy_grad,
    softmax,
    train_classifier,
)


def two_blob_data(n=200, seed=0):
    """Two linearly-separable Gaussian blobs."""
    rng = np.random.default_rng(seed)
    half = n // 2
    xs = np.vstack(
        [
            rng.normal([-1.0, -1.0], 0.3, size=(half, 2)),
            rng.normal([1.0, 1.0], 0.3, size=(half, 2)),
        ]
    )
    ys = np.array([0] * half + [1] * half)
    return xs, ys


class TestLossFunctions:
    def test_softmax_normalizes(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0, 2] > probs[0, 0]

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0]])
        assert cross_entropy(logits, np.array([0])) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((1, 4))
        assert cross_entropy(logits, np.array([2])) == pytest.approx(np.log(4))

    def test_grad_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        grad = cross_entropy_grad(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                up, down = logits.copy(), logits.copy()
                up[i, j] += eps
                down[i, j] -= eps
                num = (cross_entropy(up, labels) - cross_entropy(down, labels)) / (
                    2 * eps
                )
                np.testing.assert_allclose(grad[i, j], num, rtol=1e-4, atol=1e-8)


class TestTrainConfig:
    def test_defaults_valid(self):
        TrainConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": -1},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"momentum": 1.0},
            {"beta2": 1.5},
            {"weight_decay": -0.1},
            {"optimizer": "rmsprop"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)


class TestTraining:
    def test_loss_decreases_on_separable_data(self):
        xs, ys = two_blob_data()
        net = mlp(2, [8], 2, rng=0)
        losses = train_classifier(
            net, xs, ys, TrainConfig(epochs=5, learning_rate=0.01), rng=0
        )
        assert losses[-1] < losses[0]
        assert accuracy(net, xs, ys) > 0.95

    def test_sgd_optimizer_works(self):
        xs, ys = two_blob_data()
        net = mlp(2, [8], 2, rng=0)
        train_classifier(
            net,
            xs,
            ys,
            TrainConfig(epochs=10, learning_rate=0.05, optimizer="sgd"),
            rng=0,
        )
        assert accuracy(net, xs, ys) > 0.9

    def test_weight_decay_shrinks_weights(self):
        xs, ys = two_blob_data()
        net_plain = mlp(2, [8], 2, rng=1)
        net_decay = mlp(2, [8], 2, rng=1)
        config = TrainConfig(epochs=5, learning_rate=0.01)
        decay_config = TrainConfig(epochs=5, learning_rate=0.01, weight_decay=0.1)
        train_classifier(net_plain, xs, ys, config, rng=0)
        train_classifier(net_decay, xs, ys, decay_config, rng=0)
        norm_plain = sum(np.linalg.norm(p) for p in net_plain.params())
        norm_decay = sum(np.linalg.norm(p) for p in net_decay.params())
        assert norm_decay < norm_plain

    def test_zero_epochs_is_noop(self):
        xs, ys = two_blob_data()
        net = mlp(2, [8], 2, rng=0)
        before = [p.copy() for p in net.params()]
        losses = train_classifier(net, xs, ys, TrainConfig(epochs=0), rng=0)
        assert losses == []
        for p, q in zip(net.params(), before):
            np.testing.assert_array_equal(p, q)

    def test_rejects_mismatched_labels(self):
        net = mlp(2, [4], 2, rng=0)
        with pytest.raises(ValueError, match="labels"):
            train_classifier(net, np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_rejects_out_of_range_labels(self):
        net = mlp(2, [4], 2, rng=0)
        with pytest.raises(ValueError, match="out of range"):
            train_classifier(net, np.zeros((3, 2)), np.array([0, 1, 5]))

    def test_training_invalidates_ops_cache(self):
        xs, ys = two_blob_data(n=40)
        net = mlp(2, [4], 2, rng=0)
        ops_before = net.ops()
        train_classifier(net, xs, ys, TrainConfig(epochs=1), rng=0)
        assert net.ops() is not ops_before
        x = np.ones(2)
        np.testing.assert_allclose(net.eval_ops(x), net.logits(x), atol=1e-10)

    def test_deterministic_given_seeds(self):
        xs, ys = two_blob_data()
        net_a = mlp(2, [8], 2, rng=3)
        net_b = mlp(2, [8], 2, rng=3)
        train_classifier(net_a, xs, ys, TrainConfig(epochs=2), rng=5)
        train_classifier(net_b, xs, ys, TrainConfig(epochs=2), rng=5)
        for p, q in zip(net_a.params(), net_b.params()):
            np.testing.assert_array_equal(p, q)
