"""Tests for the layer zoo: forward correctness and gradient checks.

Every layer's backward pass is validated against central finite differences
on random inputs — the canonical compilers-style check that the analytic
adjoint matches the primal.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU


def numerical_input_grad(layer, x, seed_out, eps=1e-6):
    """Central-difference gradient of ``sum(seed_out * layer(x))`` w.r.t. x."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        up = float(np.sum(seed_out * layer.forward(x)))
        flat_x[i] = orig - eps
        down = float(np.sum(seed_out * layer.forward(x)))
        flat_x[i] = orig
        flat_g[i] = (up - down) / (2 * eps)
    return grad


def check_input_gradient(layer, x, rtol=1e-5, atol=1e-6):
    rng = np.random.default_rng(0)
    out, cache = layer.forward_cached(x)
    seed = rng.normal(size=out.shape)
    grad_in, _ = layer.backward(cache, seed)
    expected = numerical_input_grad(layer, x.copy(), seed)
    np.testing.assert_allclose(grad_in, expected, rtol=rtol, atol=atol)


def check_param_gradients(layer, x, rtol=1e-5, atol=1e-6, eps=1e-6):
    rng = np.random.default_rng(1)
    out, cache = layer.forward_cached(x)
    seed = rng.normal(size=out.shape)
    _, param_grads = layer.backward(cache, seed)
    for param, grad in zip(layer.params(), param_grads):
        flat_p = param.reshape(-1)
        flat_g = grad.reshape(-1)
        for i in range(0, flat_p.size, max(1, flat_p.size // 10)):
            orig = flat_p[i]
            flat_p[i] = orig + eps
            up = float(np.sum(seed * layer.forward(x)))
            flat_p[i] = orig - eps
            down = float(np.sum(seed * layer.forward(x)))
            flat_p[i] = orig
            np.testing.assert_allclose(
                flat_g[i], (up - down) / (2 * eps), rtol=rtol, atol=atol
            )


class TestDense:
    def test_forward(self):
        layer = Dense(np.array([[1.0, 2.0], [3.0, 4.0]]), np.array([1.0, -1.0]))
        out = layer.forward(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(out, [[4.0, 6.0]])

    def test_shapes(self):
        layer = Dense.initialize(4, 7, rng=0)
        assert layer.out_shape((4,)) == (7,)
        with pytest.raises(ValueError):
            layer.out_shape((5,))

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError, match="bias"):
            Dense(np.ones((2, 3)), np.ones(3))

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="2-D"):
            Dense(np.ones(3), np.ones(3))

    def test_input_gradient(self):
        layer = Dense.initialize(5, 3, rng=0)
        x = np.random.default_rng(2).normal(size=(4, 5))
        check_input_gradient(layer, x)

    def test_param_gradients(self):
        layer = Dense.initialize(5, 3, rng=0)
        x = np.random.default_rng(3).normal(size=(4, 5))
        check_param_gradients(layer, x)

    def test_set_params_roundtrip(self):
        layer = Dense.initialize(3, 2, rng=0)
        weight, bias = layer.params()
        layer.set_params([weight * 2, bias + 1])
        np.testing.assert_allclose(layer.weight, weight * 2)

    def test_set_params_rejects_wrong_shape(self):
        layer = Dense.initialize(3, 2, rng=0)
        with pytest.raises(ValueError):
            layer.set_params([np.ones((5, 5)), np.ones(2)])

    def test_is_linear(self):
        assert Dense.initialize(2, 2, rng=0).is_linear


class TestReLU:
    def test_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_gradient_masks_negatives(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        out, cache = layer.forward_cached(x)
        grad_in, grads = layer.backward(cache, np.ones_like(out))
        np.testing.assert_array_equal(grad_in, [[0.0, 1.0]])
        assert grads == []

    def test_shape_preserved(self):
        assert ReLU().out_shape((3, 4, 4)) == (3, 4, 4)

    def test_not_linear(self):
        assert not ReLU().is_linear


class TestFlatten:
    def test_forward_and_backward(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out, cache = layer.forward_cached(x)
        assert out.shape == (2, 12)
        grad_in, _ = layer.backward(cache, out)
        np.testing.assert_array_equal(grad_in, x)

    def test_out_shape(self):
        assert Flatten().out_shape((3, 4, 4)) == (48,)


class TestConv2d:
    def test_identity_kernel(self):
        weight = np.zeros((1, 1, 1, 1))
        weight[0, 0, 0, 0] = 1.0
        layer = Conv2d(weight, np.zeros(1))
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_known_convolution(self):
        # 2x2 averaging kernel on a 2x2 image with stride 1 -> single value.
        weight = np.full((1, 1, 2, 2), 0.25)
        layer = Conv2d(weight, np.zeros(1))
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        np.testing.assert_allclose(layer.forward(x), [[[[2.5]]]])

    def test_out_shape_with_padding_stride(self):
        layer = Conv2d.initialize(2, 5, kernel_size=3, stride=2, padding=1, rng=0)
        assert layer.out_shape((2, 8, 8)) == (5, 4, 4)

    def test_rejects_channel_mismatch(self):
        layer = Conv2d.initialize(2, 3, kernel_size=3, rng=0)
        with pytest.raises(ValueError, match="channels"):
            layer.out_shape((4, 8, 8))

    def test_rejects_kernel_too_large(self):
        layer = Conv2d.initialize(1, 1, kernel_size=5, rng=0)
        with pytest.raises(ValueError, match="fit"):
            layer.out_shape((1, 3, 3))

    def test_rejects_bad_stride_padding(self):
        with pytest.raises(ValueError, match="stride"):
            Conv2d(np.ones((1, 1, 2, 2)), np.zeros(1), stride=0)
        with pytest.raises(ValueError, match="padding"):
            Conv2d(np.ones((1, 1, 2, 2)), np.zeros(1), padding=-1)

    def test_input_gradient(self):
        layer = Conv2d.initialize(2, 3, kernel_size=3, padding=1, rng=0)
        x = np.random.default_rng(4).normal(size=(2, 2, 5, 5))
        check_input_gradient(layer, x)

    def test_input_gradient_strided(self):
        layer = Conv2d.initialize(1, 2, kernel_size=2, stride=2, rng=0)
        x = np.random.default_rng(5).normal(size=(1, 1, 6, 6))
        check_input_gradient(layer, x)

    def test_param_gradients(self):
        layer = Conv2d.initialize(2, 2, kernel_size=3, padding=1, rng=0)
        x = np.random.default_rng(6).normal(size=(2, 2, 4, 4))
        check_param_gradients(layer, x)

    def test_is_linear(self):
        assert Conv2d.initialize(1, 1, kernel_size=1, rng=0).is_linear


class TestMaxPool2d:
    def test_forward_known(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0, 5.0, 6.0],
                        [3.0, 4.0, 7.0, 8.0],
                        [1.0, 0.0, 2.0, 1.0],
                        [0.0, 1.0, 1.0, 3.0]]]])
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[[[4.0, 8.0], [1.0, 3.0]]]])

    def test_out_shape(self):
        assert MaxPool2d(2).out_shape((3, 8, 8)) == (3, 4, 4)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out, cache = layer.forward_cached(x)
        grad_in, _ = layer.backward(cache, np.ones_like(out))
        np.testing.assert_array_equal(
            grad_in, [[[[0.0, 0.0], [0.0, 1.0]]]]
        )

    def test_input_gradient_numeric(self):
        # Perturbations must be smaller than gaps between window values for
        # finite differences to be valid on a piecewise-linear max.
        layer = MaxPool2d(2)
        rng = np.random.default_rng(7)
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        check_input_gradient(layer, x)

    def test_window_indices_cover_input(self):
        layer = MaxPool2d(2)
        windows = layer.window_indices((2, 4, 4))
        assert windows.shape == (2 * 2 * 2, 4)
        assert set(windows.reshape(-1).tolist()) == set(range(32))

    def test_window_indices_match_forward(self):
        layer = MaxPool2d(2)
        rng = np.random.default_rng(8)
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer.forward(x).reshape(-1)
        flat = x.reshape(-1)
        windows = layer.window_indices((2, 4, 4))
        np.testing.assert_allclose(out, flat[windows].max(axis=1))

    def test_overlapping_stride(self):
        layer = MaxPool2d(2, stride=1)
        assert layer.out_shape((1, 4, 4)) == (1, 3, 3)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out[0, 0, 0, 0] == 5.0
