"""Tests for network serialization."""

import numpy as np
import pytest

from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.nn.layers import Dense
from repro.nn.network import Network
from repro.nn.serialize import load_network, save_network


class TestRoundtrip:
    def test_mlp(self, tmp_path):
        net = mlp(6, [10, 10], 4, rng=0)
        path = tmp_path / "net.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = np.random.default_rng(0).normal(size=6)
        np.testing.assert_array_equal(loaded.logits(x), net.logits(x))

    def test_conv(self, tmp_path):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        path = tmp_path / "conv.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = np.random.default_rng(1).uniform(size=16)
        np.testing.assert_array_equal(loaded.logits(x), net.logits(x))
        assert loaded.input_shape == (1, 4, 4)

    def test_exact_bit_preservation(self, tmp_path):
        net = xor_network()
        path = tmp_path / "xor.npz"
        save_network(net, path)
        loaded = load_network(path)
        for p, q in zip(net.params(), loaded.params()):
            np.testing.assert_array_equal(p, q)

    def test_conv_hyperparams_preserved(self, tmp_path):
        from repro.nn.layers import Conv2d, Flatten

        conv = Conv2d.initialize(1, 2, kernel_size=3, stride=2, padding=1, rng=0)
        net = Network(
            [conv, Flatten(), Dense(np.ones((2, 8)), np.zeros(2))],
            input_shape=(1, 4, 4),
        )
        path = tmp_path / "c.npz"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.layers[0].stride == 2
        assert loaded.layers[0].padding == 1

    def test_unknown_layer_rejected(self, tmp_path):
        class Weird(Dense):
            pass

        net = Network([Weird(np.ones((2, 2)), np.zeros(2))], input_shape=(2,))
        # Subclasses of Dense serialize as Dense — that is acceptable; a
        # genuinely unknown layer type must raise.
        from repro.nn import serialize

        class Alien:
            def params(self):
                return []

        with pytest.raises(TypeError, match="serialize"):
            serialize._layer_spec(Alien())
