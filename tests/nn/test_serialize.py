"""Tests for network serialization."""

import numpy as np
import pytest

from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.nn.layers import Dense
from repro.nn.network import Network
from repro.nn.serialize import load_network, save_network


class TestRoundtrip:
    def test_mlp(self, tmp_path):
        net = mlp(6, [10, 10], 4, rng=0)
        path = tmp_path / "net.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = np.random.default_rng(0).normal(size=6)
        np.testing.assert_array_equal(loaded.logits(x), net.logits(x))

    def test_conv(self, tmp_path):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        path = tmp_path / "conv.npz"
        save_network(net, path)
        loaded = load_network(path)
        x = np.random.default_rng(1).uniform(size=16)
        np.testing.assert_array_equal(loaded.logits(x), net.logits(x))
        assert loaded.input_shape == (1, 4, 4)

    def test_exact_bit_preservation(self, tmp_path):
        net = xor_network()
        path = tmp_path / "xor.npz"
        save_network(net, path)
        loaded = load_network(path)
        for p, q in zip(net.params(), loaded.params()):
            np.testing.assert_array_equal(p, q)

    def test_conv_hyperparams_preserved(self, tmp_path):
        from repro.nn.layers import Conv2d, Flatten

        conv = Conv2d.initialize(1, 2, kernel_size=3, stride=2, padding=1, rng=0)
        net = Network(
            [conv, Flatten(), Dense(np.ones((2, 8)), np.zeros(2))],
            input_shape=(1, 4, 4),
        )
        path = tmp_path / "c.npz"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.layers[0].stride == 2
        assert loaded.layers[0].padding == 1

    def test_unknown_layer_rejected(self, tmp_path):
        class Weird(Dense):
            pass

        net = Network([Weird(np.ones((2, 2)), np.zeros(2))], input_shape=(2,))
        # Subclasses of Dense serialize as Dense — that is acceptable; a
        # genuinely unknown layer type must raise.
        from repro.nn import serialize

        class Alien:
            def params(self):
                return []

        with pytest.raises(TypeError, match="serialize"):
            serialize._layer_spec(Alien())


class TestDigestChain:
    """layer_digests: one link per layer prefix, last link == digest."""

    def test_last_link_is_network_digest(self):
        from repro.nn.serialize import layer_digests, network_digest

        net = mlp(6, [10, 8], 4, rng=0)
        chain = layer_digests(net)
        assert len(chain) == len(net.layers)
        assert chain[-1] == network_digest(net)

    def test_chain_survives_roundtrip(self, tmp_path):
        from repro.nn.serialize import layer_digests

        net = mlp(6, [10, 8], 4, rng=0)
        save_network(net, tmp_path / "net.npz")
        assert layer_digests(load_network(tmp_path / "net.npz")) == layer_digests(net)

    def test_chain_is_memoized(self):
        from repro.nn.serialize import layer_digests

        net = mlp(4, [6], 3, rng=1)
        first = layer_digests(net)
        assert layer_digests(net) == first
        net.thaw_params()
        net.layers[0].weight += 1.0
        net.invalidate_ops()
        assert layer_digests(net) != first

    def test_fine_tune_shares_prefix_links(self):
        from repro.nn.serialize import common_prefix_layers, layer_digests

        net = mlp(6, [10, 8], 4, rng=0)  # D R D R D: 5 layers
        tuned = mlp(6, [10, 8], 4, rng=0)
        tuned.layers[-1].weight += 1e-6
        chain, chain_t = layer_digests(net), layer_digests(tuned)
        assert chain[:-1] == chain_t[:-1]
        assert chain[-1] != chain_t[-1]
        assert common_prefix_layers(net, tuned) == len(net.layers) - 1

    def test_common_prefix_identical_and_divergent(self):
        from repro.nn.serialize import common_prefix_layers

        a = mlp(6, [10, 8], 4, rng=0)
        b = mlp(6, [10, 8], 4, rng=0)
        assert common_prefix_layers(a, b) == len(a.layers)
        c = mlp(6, [10, 8], 4, rng=1)  # first layer already differs
        assert common_prefix_layers(a, c) == 0
        d = mlp(6, [9, 8], 4, rng=0)  # different architecture
        assert common_prefix_layers(a, d) == 0


class TestFreezeOnDigest:
    def test_mutation_after_digest_raises(self):
        from repro.nn.serialize import network_digest

        net = mlp(4, [6], 3, rng=0)
        network_digest(net)
        with pytest.raises(ValueError, match="read-only"):
            net.layers[0].weight[0, 0] = 5.0

    def test_mutation_after_chain_digest_raises(self):
        from repro.nn.serialize import layer_digests

        net = mlp(4, [6], 3, rng=0)
        layer_digests(net)
        with pytest.raises(ValueError, match="read-only"):
            net.layers[-1].bias += 1.0

    def test_thaw_reopens_and_drops_memo(self):
        from repro.nn.serialize import network_digest

        net = mlp(4, [6], 3, rng=0)
        before = network_digest(net)
        net.thaw_params()
        net.layers[0].weight[0, 0] += 1.0  # must not raise
        net.invalidate_ops()
        assert network_digest(net) != before

    def test_set_params_still_works_after_digest(self):
        from repro.nn.serialize import network_digest

        net = mlp(4, [6], 3, rng=0)
        before = network_digest(net)
        net.set_params([np.array(p) + 1.0 for p in net.params()])
        assert network_digest(net) != before

    def test_training_after_digest_does_not_raise(self):
        from repro.nn.serialize import network_digest
        from repro.nn.training import TrainConfig, train_classifier

        net = mlp(2, [8], 2, rng=0)
        before = network_digest(net)
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(20, 2))
        ys = (xs.sum(axis=1) > 0).astype(int)
        train_classifier(
            net, xs, ys, TrainConfig(epochs=1, batch_size=10), rng=0
        )
        assert network_digest(net) != before
