"""Conv2d analyzer lowering: direct construction, probing fallback, cache."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Flatten, Layer
from repro.nn.network import (
    Network,
    _affine_of_conv,
    _affine_of_linear_layer,
    _conv_affine_cached,
)


@pytest.mark.parametrize(
    "cin,hw,cout,k,stride,padding",
    [
        (1, 8, 4, 3, 1, 0),
        (3, 8, 6, 3, 1, 1),
        (2, 9, 5, 4, 2, 1),
        (1, 6, 2, 5, 1, 2),
        (3, 7, 4, 1, 1, 0),
    ],
)
def test_direct_matches_probed(cin, hw, cout, k, stride, padding):
    layer = Conv2d.initialize(
        cin, cout, k, stride=stride, padding=padding, rng=0
    )
    shape = (cin, hw, hw)
    w_direct, b_direct = _affine_of_conv(layer, shape)
    w_probe, b_probe = _affine_of_linear_layer(layer, shape)
    np.testing.assert_allclose(w_direct, w_probe, atol=1e-12)
    np.testing.assert_allclose(b_direct, b_probe, atol=1e-12)


def test_direct_matches_forward():
    layer = Conv2d.initialize(2, 3, 3, stride=1, padding=1, rng=1)
    shape = (2, 6, 6)
    weight, bias = _affine_of_conv(layer, shape)
    rng = np.random.default_rng(0)
    for _ in range(5):
        x = rng.normal(size=(1, *shape))
        np.testing.assert_allclose(
            weight @ x.reshape(-1) + bias,
            layer.forward(x).reshape(-1),
            atol=1e-10,
        )


class TestMemoization:
    def test_cache_hit_returns_same_arrays(self):
        layer = Conv2d.initialize(1, 2, 3, rng=2)
        a = _conv_affine_cached(layer, (1, 6, 6))
        b = _conv_affine_cached(layer, (1, 6, 6))
        assert a[0] is b[0] and a[1] is b[1]

    def test_parameter_change_invalidates(self):
        layer = Conv2d.initialize(1, 2, 3, rng=3)
        before, _ = _conv_affine_cached(layer, (1, 6, 6))
        layer.set_params([layer.weight * 2.0, layer.bias])
        after, _ = _conv_affine_cached(layer, (1, 6, 6))
        np.testing.assert_allclose(after, before * 2.0, atol=1e-12)

    def test_ops_do_not_alias_the_cache(self):
        # ops() consumers own their arrays; mutating them must not corrupt
        # the process-wide conv cache (or any sibling network's lowering).
        layer = Conv2d.initialize(1, 2, 3, rng=4)
        net = Network([layer, Flatten()], input_shape=(1, 6, 6))
        op = net.ops()[0]
        expected = op.weight.copy()
        op.weight[:] = 0.0
        net.invalidate_ops()
        np.testing.assert_array_equal(net.ops()[0].weight, expected)


def test_generic_linear_layer_falls_back_to_probing():
    class Doubler(Layer):
        """An affine layer the lowering has no special case for."""

        @property
        def is_linear(self):
            return True

        def out_shape(self, in_shape):
            return in_shape

        def forward_cached(self, x):
            return 2.0 * x + 1.0, None

        def backward(self, cache, grad_out):
            return 2.0 * grad_out, []

    net = Network([Doubler()], input_shape=(3,))
    np.testing.assert_allclose(
        net.eval_ops(np.array([1.0, -2.0, 0.5])),
        np.array([3.0, -3.0, 2.0]),
        atol=1e-12,
    )
