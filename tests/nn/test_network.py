"""Tests for the Network container and its analyzer lowering."""

import numpy as np
import pytest

from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.nn.layers import Dense, ReLU
from repro.nn.network import AffineOp, MaxPoolOp, Network, ReluOp


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="Dense expects"):
            Network([Dense(np.ones((2, 3)), np.zeros(2))], input_shape=(5,))

    def test_requires_layers(self):
        with pytest.raises(ValueError, match="at least one layer"):
            Network([], input_shape=(2,))

    def test_output_must_be_vector(self):
        from repro.nn.layers import Conv2d

        conv = Conv2d.initialize(1, 2, kernel_size=3, padding=1, rng=0)
        with pytest.raises(ValueError, match="vector"):
            Network([conv], input_shape=(1, 4, 4))

    def test_introspection(self):
        net = mlp(6, [10, 10], 4, rng=0)
        assert net.input_size == 6
        assert net.output_size == 4
        assert net.num_classes == 4
        assert net.num_relu_units() == 20
        assert not net.has_conv()
        assert net.num_params() == 6 * 10 + 10 + 10 * 10 + 10 + 10 * 4 + 4
        assert "Dense" in net.summary()

    def test_conv_introspection(self):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=4, rng=0)
        assert net.has_conv()
        assert net.num_relu_units() > 0


class TestForward:
    def test_single_and_batch_agree(self):
        net = mlp(4, [8], 3, rng=0)
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(5, 4))
        batch = net.forward(xs)
        for i in range(5):
            np.testing.assert_allclose(net.forward(xs[i]), batch[i])

    def test_flat_input_for_conv_net(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        rng = np.random.default_rng(1)
        img = rng.uniform(size=(1, 4, 4))
        np.testing.assert_allclose(
            net.forward(img.reshape(-1)), net.forward(img)
        )

    def test_rejects_bad_shape(self):
        net = mlp(4, [8], 3, rng=0)
        with pytest.raises(ValueError, match="incompatible"):
            net.forward(np.zeros(7))

    def test_classify(self):
        net = xor_network()
        assert net.classify(np.array([0.0, 1.0])) == 1
        preds = net.classify_batch(np.array([[0.0, 0.0], [1.0, 0.0]]))
        np.testing.assert_array_equal(preds, [0, 1])

    def test_logits_rejects_batch(self):
        net = mlp(4, [8], 3, rng=0)
        with pytest.raises(ValueError, match="single sample"):
            net.logits(np.zeros((2, 4)))


class TestGradients:
    def test_input_gradient_matches_numerical(self):
        net = mlp(5, [12, 12], 4, rng=0)
        rng = np.random.default_rng(2)
        x = rng.normal(size=5)
        seed = rng.normal(size=4)
        grad = net.input_gradient(x, seed)
        eps = 1e-6
        for i in range(5):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            num = (seed @ net.logits(xp) - seed @ net.logits(xm)) / (2 * eps)
            np.testing.assert_allclose(grad[i], num, rtol=1e-4, atol=1e-7)

    def test_input_gradient_conv(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        rng = np.random.default_rng(3)
        x = rng.uniform(0.3, 0.7, size=16)
        seed = np.array([1.0, -1.0, 0.0])
        grad = net.input_gradient(x, seed)
        eps = 1e-6
        for i in range(0, 16, 5):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            num = (seed @ net.logits(xp) - seed @ net.logits(xm)) / (2 * eps)
            np.testing.assert_allclose(grad[i], num, rtol=1e-4, atol=1e-7)

    def test_input_gradient_rejects_bad_seed(self):
        net = mlp(4, [8], 3, rng=0)
        with pytest.raises(ValueError, match="seed"):
            net.input_gradient(np.zeros(4), np.zeros(5))


class TestLowering:
    def test_mlp_ops_structure(self):
        net = mlp(4, [8, 8], 3, rng=0)
        ops = net.ops()
        kinds = [type(op).__name__ for op in ops]
        assert kinds == [
            "AffineOp", "ReluOp", "AffineOp", "ReluOp", "AffineOp"
        ]

    def test_ops_agree_with_forward_mlp(self):
        net = mlp(6, [10, 10], 4, rng=1)
        rng = np.random.default_rng(4)
        for _ in range(10):
            x = rng.normal(size=6)
            np.testing.assert_allclose(net.eval_ops(x), net.logits(x), atol=1e-10)

    def test_ops_agree_with_forward_conv(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=2)
        rng = np.random.default_rng(5)
        for _ in range(5):
            x = rng.uniform(size=16)
            np.testing.assert_allclose(net.eval_ops(x), net.logits(x), atol=1e-9)

    def test_conv_ops_contain_maxpool(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        ops = net.ops()
        assert any(isinstance(op, MaxPoolOp) for op in ops)
        assert any(isinstance(op, AffineOp) for op in ops)
        assert any(isinstance(op, ReluOp) for op in ops)

    def test_ops_cached_and_invalidated(self):
        net = mlp(4, [8], 3, rng=0)
        first = net.ops()
        assert net.ops() is first
        net.invalidate_ops()
        assert net.ops() is not first

    def test_set_params_invalidates(self):
        net = mlp(4, [8], 3, rng=0)
        ops_before = net.ops()
        params = [p.copy() * 0.5 for p in net.params()]
        net.set_params(params)
        assert net.ops() is not ops_before
        # The new lowering must reflect the new parameters.
        x = np.ones(4)
        np.testing.assert_allclose(net.eval_ops(x), net.logits(x), atol=1e-10)

    def test_op_apply_helpers(self):
        affine = AffineOp(np.eye(2) * 2, np.ones(2))
        np.testing.assert_allclose(affine.apply(np.ones(2)), [3.0, 3.0])
        assert affine.in_size == affine.out_size == 2
        relu = ReluOp(size=2)
        np.testing.assert_allclose(relu.apply(np.array([-1.0, 1.0])), [0.0, 1.0])
        pool = MaxPoolOp(windows=np.array([[0, 1], [2, 3]]), in_size=4)
        np.testing.assert_allclose(
            pool.apply(np.array([1.0, 5.0, 2.0, 0.0])), [5.0, 2.0]
        )
        assert pool.out_size == 2
