"""Tests for network constructors, including the paper's worked examples."""

import numpy as np
import pytest

from repro.nn.builders import (
    example_2_2_network,
    example_2_3_network,
    lenet_conv,
    mlp,
    xor_network,
)


class TestMLP:
    def test_paper_sizes(self):
        net = mlp(784, [100] * 3, 10, rng=0)
        assert net.input_size == 784
        assert net.num_relu_units() == 300

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            mlp(0, [10], 10)
        with pytest.raises(ValueError):
            mlp(10, [10], 0)

    def test_no_hidden_layers(self):
        net = mlp(4, [], 3, rng=0)
        assert net.num_relu_units() == 0
        assert net.output_size == 3

    def test_deterministic_given_seed(self):
        a = mlp(4, [8], 3, rng=7)
        b = mlp(4, [8], 3, rng=7)
        x = np.ones(4)
        np.testing.assert_array_equal(a.logits(x), b.logits(x))


class TestLeNet:
    def test_structure(self):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=10, rng=0)
        assert net.has_conv()
        assert net.input_size == 64
        assert net.output_size == 10

    def test_rejects_indivisible_input(self):
        with pytest.raises(ValueError, match="divisible"):
            lenet_conv(input_shape=(1, 6, 6))

    def test_forward_runs(self):
        net = lenet_conv(input_shape=(3, 4, 4), num_classes=5, rng=0)
        out = net.logits(np.random.default_rng(0).uniform(size=48))
        assert out.shape == (5,)


class TestXorNetwork:
    """Figure 3 of the paper."""

    @pytest.mark.parametrize(
        "x, label",
        [([0, 0], 0), ([0, 1], 1), ([1, 0], 1), ([1, 1], 0)],
    )
    def test_truth_table(self, x, label):
        net = xor_network()
        assert net.classify(np.array(x, dtype=float)) == label

    def test_hidden_biases_match_figure(self):
        net = xor_network()
        np.testing.assert_array_equal(net.layers[0].bias, [0.0, -1.0])


class TestExample22:
    """Example 2.2: the network is robust on [-1, 1] but not on [-1, 2]."""

    def test_output_form(self):
        # For x in [-1, 1] the output is [a+1, a+2] with a = relu(2x+1).
        net = example_2_2_network()
        for x in np.linspace(-1.0, 1.0, 21):
            a = max(2 * x + 1, 0.0)
            np.testing.assert_allclose(
                net.logits(np.array([x])), [a + 1.0, a + 2.0], atol=1e-12
            )

    def test_robust_region_classifies_1(self):
        net = example_2_2_network()
        for x in np.linspace(-1.0, 1.0, 21):
            assert net.classify(np.array([x])) == 1

    def test_outside_region_violates(self):
        # N(2) = [8, 6]: class 0, exactly the paper's counterexample.
        net = example_2_2_network()
        np.testing.assert_allclose(net.logits(np.array([2.0])), [8.0, 6.0])
        assert net.classify(np.array([2.0])) == 0


class TestExample23:
    def test_weights_as_printed(self):
        net = example_2_3_network()
        np.testing.assert_array_equal(
            net.layers[0].weight, [[1.0, -3.0], [0.0, 3.0]]
        )
        np.testing.assert_array_equal(
            net.layers[2].weight, [[1.0, 1.1], [-1.0, 1.0]]
        )

    def test_region_truly_classifies_b(self):
        # Dense sampling: every point of [0,1]^2 gets class B (index 1).
        net = example_2_3_network()
        grid = np.linspace(0.0, 1.0, 21)
        for x1 in grid:
            for x2 in grid:
                assert net.classify(np.array([x1, x2])) == 1

    def test_minimum_margin_is_tight(self):
        # The hardest point is (1, 0) with margin exactly 0.1 — the value
        # our powerset-of-2-zonotopes analysis proves (see analyzer tests).
        net = example_2_3_network()
        scores = net.logits(np.array([1.0, 0.0]))
        assert scores[1] - scores[0] == pytest.approx(0.1)
