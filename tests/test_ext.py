"""Tests for the §9 future-work extension: the solver-like symbolic domain."""

import numpy as np
import pytest

from repro.abstract.analyzer import analyze
from repro.abstract.domains import DomainSpec, SYMBOLIC
from repro.core.config import VerifierConfig
from repro.core.property import RobustnessProperty, linf_property
from repro.core.verifier import Verifier, verify
from repro.ext.solver_policy import SolverAwareLinearPolicy
from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.utils.boxes import Box


class TestSymbolicDomainSpec:
    def test_constant_exists(self):
        assert SYMBOLIC.base == "symbolic"
        assert SYMBOLIC.short_name == "S"
        assert str(SYMBOLIC) == "(S, 1)"

    def test_no_disjunctions(self):
        with pytest.raises(ValueError, match="disjunctions"):
            DomainSpec("symbolic", 2)

    def test_analyze_with_symbolic_domain(self):
        net = xor_network()
        box = Box(np.array([0.4, 0.4]), np.array([0.6, 0.6]))
        result = analyze(net, box, 1, SYMBOLIC)
        assert result.verified

    def test_symbolic_matches_standalone_analyzer(self):
        from repro.abstract.symbolic_interval import symbolic_analyze

        net = mlp(4, [10, 10], 3, rng=0)
        box = Box.from_center_radius(np.full(4, 0.2), 0.1)
        via_spec = analyze(net, box, 0, SYMBOLIC)
        verified, margin = symbolic_analyze(net, box, 0)
        assert via_spec.verified == verified
        assert via_spec.margin_lower_bound == pytest.approx(margin)

    def test_symbolic_rejects_conv(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        with pytest.raises(TypeError, match="max pooling"):
            analyze(net, Box.unit(16), 0, SYMBOLIC)

    def test_symbolic_sound(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            net = mlp(3, [8], 3, rng=seed)
            box = Box.from_center_radius(rng.uniform(-0.3, 0.3, 3), 0.15)
            result = analyze(net, box, 0, SYMBOLIC)
            ys = net.forward(box.sample(rng, 200))
            margins = ys[:, 0] - np.max(np.delete(ys, 0, axis=1), axis=1)
            assert result.margin_lower_bound <= margins.min() + 1e-9


class TestSolverAwarePolicy:
    def test_default_picks_symbolic(self):
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        policy = SolverAwareLinearPolicy.default()
        domain = policy.choose_domain(net, prop, prop.region.center, 1.0)
        assert domain == SYMBOLIC

    def test_conv_falls_back_to_zonotope(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        prop = RobustnessProperty(Box.unit(16), 0)
        policy = SolverAwareLinearPolicy.default()
        domain = policy.choose_domain(net, prop, prop.region.center, 1.0)
        assert domain.base == "zonotope"

    def test_menu_thirds(self):
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        seen = set()
        for frac in np.linspace(0.0, 1.0, 31):
            theta = np.zeros_like(SolverAwareLinearPolicy.default().theta)
            theta[0, -1] = frac
            policy = SolverAwareLinearPolicy(theta)
            seen.add(policy.choose_domain(net, prop, prop.region.center, 1.0).base)
        assert seen == {"interval", "zonotope", "symbolic"}

    def test_verifier_end_to_end(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        outcome = verify(
            net,
            prop,
            policy=SolverAwareLinearPolicy.default(),
            config=VerifierConfig(timeout=10),
            rng=0,
        )
        assert outcome.kind == "verified"
        assert "S" in outcome.stats.domains_used

    def test_trainable_with_existing_machinery(self):
        # The θ space is unchanged, so vector round-trips work and the
        # policy slots into the verifier/trainer stack.
        policy = SolverAwareLinearPolicy.default()
        vec = policy.to_vector()
        again = SolverAwareLinearPolicy(vec.reshape(policy.theta.shape))
        np.testing.assert_array_equal(again.theta, policy.theta)

    def test_falsification_still_works(self):
        net = xor_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0)
        outcome = verify(
            net,
            prop,
            policy=SolverAwareLinearPolicy.default(),
            config=VerifierConfig(timeout=10),
            rng=0,
        )
        assert outcome.kind == "falsified"
