"""Tests for trace-dump validation, summaries, and diffs."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import (
    diff_dumps,
    load_dump,
    span_totals,
    summarize_dump,
    validate_trace,
)
from repro.obs.trace import Tracer


def make_dump(counters=None, histograms=None, spans=()):
    owner = Tracer()
    owner.enable()
    for name, duration_s in spans:
        owner.add_complete(name, "test", owner._origin, duration_s)
    return owner.to_payload(
        metrics={
            "counters": dict(counters or {}),
            "gauges": {},
            "histograms": dict(histograms or {}),
        }
    )


class TestValidate:
    def test_real_dump_validates_clean(self):
        dump = make_dump(counters={"a": 1}, spans=[("work", 0.01)])
        assert validate_trace(dump) == []

    def test_registry_snapshot_validates_clean(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits")
        reg.observe("lat", 0.5)
        owner = Tracer()
        owner.enable()
        with owner.span("work"):
            pass
        assert validate_trace(owner.to_payload(metrics=reg.snapshot())) == []

    def test_non_object_dump(self):
        assert validate_trace([1, 2]) == ["dump is not a JSON object"]

    def test_missing_trace_events(self):
        errors = validate_trace({"otherData": {"metrics": {"counters": {}}}})
        assert "missing traceEvents list" in errors

    def test_event_missing_keys_and_bad_phase(self):
        dump = make_dump()
        dump["traceEvents"].append({"ph": "Q", "ts": 0, "pid": 1, "tid": 1})
        errors = validate_trace(dump)
        assert any("lacks 'name'" in err for err in errors)
        assert any("unknown phase 'Q'" in err for err in errors)

    def test_complete_event_needs_nonnegative_dur(self):
        dump = make_dump(spans=[("work", 0.01)])
        dump["traceEvents"][0]["dur"] = -5
        assert any("bad dur" in err for err in validate_trace(dump))

    def test_missing_metrics_counters(self):
        dump = make_dump()
        dump["otherData"] = {"tool": "repro.obs"}
        assert "otherData.metrics.counters is missing" in validate_trace(dump)


class TestSpanTotals:
    def test_aggregates_by_name(self):
        dump = make_dump(spans=[("a", 0.001), ("a", 0.003), ("b", 0.002)])
        totals = span_totals(dump)
        assert totals["a"]["count"] == 2
        assert totals["a"]["total_ms"] == pytest.approx(4.0, abs=0.01)
        assert totals["a"]["max_ms"] == pytest.approx(3.0, abs=0.01)
        assert totals["b"]["count"] == 1


class TestSummarize:
    def test_lists_spans_counters_histograms(self):
        dump = make_dump(
            counters={"cache.hits": 3, "phase.pgd_s": 0.5},
            histograms={
                "lat": {"count": 2, "total": 1.0, "mean": 0.5, "min": 0.1,
                        "max": 0.9},
            },
            spans=[("sched.round", 0.01)],
        )
        text = summarize_dump(dump)
        assert "sched.round" in text
        assert "cache.hits" in text
        assert "0.5000" in text  # float counters keep their decimals
        assert "lat" in text and "n=2" in text

    def test_empty_dump(self):
        assert "empty dump" in summarize_dump(make_dump())

    def test_top_limits_span_rows(self):
        dump = make_dump(spans=[(f"s{i}", 0.01 * (i + 1)) for i in range(5)])
        text = summarize_dump(dump, top=2)
        assert "s4" in text and "s3" in text and "s0" not in text


class TestDiff:
    def test_reports_counter_and_span_deltas(self):
        base = make_dump(counters={"cache.hits": 1}, spans=[("work", 0.001)])
        cand = make_dump(counters={"cache.hits": 4}, spans=[("work", 0.005)])
        text = diff_dumps(base, cand)
        assert "cache.hits" in text and "1 -> 4" in text
        assert "work" in text and "+4.00" in text

    def test_identical_counters(self):
        base = make_dump(counters={"a": 1})
        assert "counters: identical" in diff_dumps(base, make_dump({"a": 1}))


def test_load_dump_round_trip(tmp_path):
    dump = make_dump(counters={"a": 1})
    path = tmp_path / "dump.json"
    path.write_text(json.dumps(dump))
    assert load_dump(str(path)) == dump


class TestPrefixSection:
    def test_prefix_counters_get_their_own_block(self):
        dump = make_dump(counters={
            "sched.prefix.hits": 3,
            "sched.prefix.misses": 1,
            "sched.prefix.layers_skipped": 48,
            "sched.prefix.suffix_layers_run": 9,
            "cache.hits": 2,
        })
        text = summarize_dump(dump)
        assert "prefix (incremental re-verification):" in text
        assert "hits 3" in text and "layers_skipped 48" in text
        # Family members stay out of the generic counter list.
        generic = text.split("counters:")[1]
        assert "sched.prefix." not in generic

    def test_no_prefix_counters_no_section(self):
        dump = make_dump(counters={"cache.hits": 2})
        assert "prefix (incremental" not in summarize_dump(dump)
