"""Tests for the process-local metrics registry."""

import threading

from repro.obs.metrics import Histogram, MetricsRegistry, registry


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter_value("a") == 5

    def test_unknown_counter_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_add_alias(self):
        reg = MetricsRegistry()
        reg.add("phase.x_s", 0.25)
        reg.add("phase.x_s", 0.25)
        assert reg.counter_value("phase.x_s") == 0.5

    def test_snapshot_flattens_groups(self):
        reg = MetricsRegistry()
        group = reg.group("cache", ("hits", "misses"))
        group["hits"] += 3
        reg.inc("sched.rounds", 2)
        snap = reg.counters_snapshot()
        assert snap["cache.hits"] == 3
        assert snap["cache.misses"] == 0
        assert snap["sched.rounds"] == 2

    def test_counters_since_reports_only_deltas(self):
        reg = MetricsRegistry()
        group = reg.group("cache", ("hits", "misses"))
        group["hits"] += 1
        before = reg.counters_snapshot()
        group["hits"] += 2
        reg.inc("sched.rounds")
        delta = reg.counters_since(before)
        assert delta == {"cache.hits": 2, "sched.rounds": 1}


class TestGroups:
    def test_group_returns_same_dict_every_call(self):
        reg = MetricsRegistry()
        first = reg.group("fused", ("calls",))
        second = reg.group("fused", ("calls",))
        assert first is second

    def test_group_value_readable_by_dotted_name(self):
        reg = MetricsRegistry()
        group = reg.group("fused", ("calls",))
        group["calls"] += 7
        assert reg.counter_value("fused.calls") == 7

    def test_reset_zeroes_groups_in_place(self):
        reg = MetricsRegistry()
        group = reg.group("fused", ("calls",))
        group["calls"] += 7
        reg.inc("scalar", 3)
        reg.reset()
        # The module-level alias pattern depends on dict identity surviving.
        assert group["calls"] == 0
        assert reg.group("fused", ("calls",)) is group
        assert reg.counter_value("scalar") == 0


class TestMerge:
    def test_merge_into_registered_group(self):
        reg = MetricsRegistry()
        group = reg.group("kernel", ("pgd_rows",))
        group["pgd_rows"] += 1
        reg.merge_counters({"kernel.pgd_rows": 5})
        # The worker delta lands in the group dict itself, so module-level
        # aliases observe merged totals too.
        assert group["pgd_rows"] == 6

    def test_merge_scalar_and_unknown_keys(self):
        reg = MetricsRegistry()
        reg.inc("sched.rounds")
        reg.merge_counters({"sched.rounds": 2, "brand.new": 4})
        assert reg.counter_value("sched.rounds") == 3
        assert reg.counter_value("brand.new") == 4

    def test_merge_is_commutative_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("k", 2)
        b.inc("k", 2)
        a.merge_counters({"k": 3})
        b.merge_counters({"k": 1})
        b.merge_counters({"k": 2})
        assert a.counter_value("k") == 5
        assert b.counter_value("k") == 5


class TestGaugesAndHistograms:
    def test_gauge_set_and_adjust(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        assert reg.adjust_gauge("depth", 2) == 5
        assert reg.adjust_gauge("depth", -5) == 0
        assert reg.snapshot()["gauges"]["depth"] == 0

    def test_histogram_summary(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0):
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_observe_feeds_named_histogram(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        reg.observe("lat", 1.5)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["count"] == 2
        assert snap["mean"] == 1.0


class TestConcurrency:
    def test_concurrent_incs_do_not_lose_updates(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.inc("hits")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert reg.counter_value("hits") == 4000


def test_module_registry_is_singleton():
    assert registry() is registry()
