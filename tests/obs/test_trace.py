"""Tests for the tracing layer (spans, Chrome trace payloads)."""

import json

import pytest

from repro.obs.trace import Tracer, _NULL_SPAN, span, tracer, tracing_enabled


@pytest.fixture()
def fresh_tracer():
    owner = Tracer()
    owner.enable()
    return owner


class TestDisabledPath:
    def test_module_span_is_shared_noop_singleton(self):
        assert not tracing_enabled()
        assert span("a") is _NULL_SPAN
        assert span("a") is span("b", cat="x", rows=3)

    def test_noop_span_is_reentrant(self):
        with span("outer"):
            with span("inner"):
                pass

    def test_disabled_tracer_records_nothing(self):
        owner = Tracer()
        with owner.span("x"):
            pass
        owner.add_complete("y", "", 0.0, 1.0)
        owner.instant("z")
        assert owner.events() == []


class TestEnabledPath:
    def test_span_emits_complete_event(self, fresh_tracer):
        with fresh_tracer.span("work", cat="sched", rows=4):
            pass
        (event,) = fresh_tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["cat"] == "sched"
        assert event["args"] == {"rows": 4}
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        assert isinstance(event["dur"], int) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)

    def test_instant_event(self, fresh_tracer):
        fresh_tracer.instant("marker", cat="exec")
        (event,) = fresh_tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "t"

    def test_enable_clears_previous_events(self, fresh_tracer):
        with fresh_tracer.span("old"):
            pass
        fresh_tracer.enable()
        assert fresh_tracer.events() == []

    def test_pre_enable_start_clamps_to_origin(self, fresh_tracer):
        fresh_tracer.add_complete("early", "", -100.0, 0.5)
        (event,) = fresh_tracer.events()
        assert event["ts"] == 0

    def test_module_span_records_into_global_tracer(self):
        owner = tracer()
        owner.enable()
        try:
            with span("global-span"):
                pass
            names = [event["name"] for event in owner.events()]
            assert "global-span" in names
        finally:
            owner.disable()


class TestPayload:
    def test_payload_shape_and_metrics(self, fresh_tracer):
        with fresh_tracer.span("work"):
            pass
        payload = fresh_tracer.to_payload(metrics={"counters": {"a": 1}})
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["tool"] == "repro.obs"
        assert payload["otherData"]["metrics"] == {"counters": {"a": 1}}
        assert len(payload["traceEvents"]) == 1

    def test_write_round_trips_as_json(self, fresh_tracer, tmp_path):
        with fresh_tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        fresh_tracer.write(str(path), metrics={"counters": {}})
        payload = json.loads(path.read_text())
        assert payload["traceEvents"][0]["name"] == "work"
