"""Tests for the Box geometry primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.boxes import Box


def unit2() -> Box:
    return Box(np.zeros(2), np.ones(2))


class TestConstruction:
    def test_basic(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 2.0]))
        assert box.ndim == 2
        np.testing.assert_array_equal(box.low, [0.0, -1.0])
        np.testing.assert_array_equal(box.high, [1.0, 2.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="low > high"):
            Box(np.array([1.0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            Box(np.zeros(2), np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            Box(np.zeros(0), np.zeros(0))

    def test_degenerate_allowed(self):
        box = Box(np.ones(3), np.ones(3))
        assert box.is_degenerate()
        assert box.diameter() == 0.0

    def test_from_center_radius(self):
        box = Box.from_center_radius(np.array([1.0, 2.0]), 0.5)
        np.testing.assert_allclose(box.low, [0.5, 1.5])
        np.testing.assert_allclose(box.high, [1.5, 2.5])

    def test_from_center_radius_per_dim(self):
        box = Box.from_center_radius(np.zeros(2), np.array([1.0, 2.0]))
        np.testing.assert_allclose(box.widths, [2.0, 4.0])

    def test_from_center_radius_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Box.from_center_radius(np.zeros(2), -0.1)

    def test_linf_ball_clipped(self):
        ball = Box.linf_ball(np.array([0.05, 0.95]), 0.1, clip_low=0.0, clip_high=1.0)
        np.testing.assert_allclose(ball.low, [0.0, 0.85])
        np.testing.assert_allclose(ball.high, [0.15, 1.0])

    def test_linf_ball_unclipped(self):
        ball = Box.linf_ball(np.zeros(2), 0.5)
        np.testing.assert_allclose(ball.low, [-0.5, -0.5])

    def test_linf_ball_rejects_negative_epsilon(self):
        with pytest.raises(ValueError, match="non-negative"):
            Box.linf_ball(np.zeros(2), -1.0)

    def test_unit(self):
        box = Box.unit(5)
        assert box.ndim == 5
        assert box.volume() == pytest.approx(1.0)


class TestGeometry:
    def test_center_widths(self):
        box = Box(np.array([0.0, 2.0]), np.array([2.0, 6.0]))
        np.testing.assert_allclose(box.center, [1.0, 4.0])
        np.testing.assert_allclose(box.widths, [2.0, 4.0])
        np.testing.assert_allclose(box.radius, [1.0, 2.0])

    def test_diameter_is_l2_of_widths(self):
        box = Box(np.zeros(2), np.array([3.0, 4.0]))
        assert box.diameter() == pytest.approx(5.0)

    def test_longest_dim(self):
        box = Box(np.zeros(3), np.array([1.0, 5.0, 2.0]))
        assert box.longest_dim() == 1

    def test_mean_width(self):
        box = Box(np.zeros(2), np.array([1.0, 3.0]))
        assert box.mean_width() == pytest.approx(2.0)

    def test_volume(self):
        box = Box(np.zeros(3), np.array([2.0, 3.0, 4.0]))
        assert box.volume() == pytest.approx(24.0)


class TestMembership:
    def test_contains_interior_and_boundary(self):
        box = unit2()
        assert box.contains(np.array([0.5, 0.5]))
        assert box.contains(np.array([0.0, 1.0]))
        assert not box.contains(np.array([1.1, 0.5]))

    def test_contains_tolerance(self):
        box = unit2()
        assert box.contains(np.array([1.0 + 1e-12, 0.5]))

    def test_contains_rejects_wrong_dim(self):
        with pytest.raises(ValueError, match="dimension"):
            unit2().contains(np.zeros(3))

    def test_contains_box(self):
        outer = unit2()
        inner = Box(np.array([0.2, 0.2]), np.array([0.8, 0.8]))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_project(self):
        box = unit2()
        np.testing.assert_allclose(
            box.project(np.array([-1.0, 2.0])), [0.0, 1.0]
        )

    def test_sample_single_and_batch(self):
        box = unit2()
        rng = np.random.default_rng(0)
        single = box.sample(rng)
        assert single.shape == (2,)
        batch = box.sample(rng, 10)
        assert batch.shape == (10, 2)
        assert all(box.contains(x) for x in batch)

    def test_corners(self):
        corners = unit2().corners()
        assert corners.shape == (4, 2)
        assert {tuple(c) for c in corners} == {
            (0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)
        }

    def test_corners_rejects_high_dim(self):
        with pytest.raises(ValueError, match="corners"):
            Box.unit(20).corners()


class TestSplitting:
    def test_split_partitions(self):
        left, right = unit2().split(0, 0.3)
        assert left.high[0] == pytest.approx(0.3)
        assert right.low[0] == pytest.approx(0.3)
        assert left.low[1] == 0.0 and right.high[1] == 1.0

    def test_split_rejects_boundary(self):
        with pytest.raises(ValueError, match="strictly inside"):
            unit2().split(0, 0.0)

    def test_split_rejects_outside(self):
        with pytest.raises(ValueError, match="strictly inside"):
            unit2().split(0, 1.5)

    def test_split_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="out of range"):
            unit2().split(5, 0.5)

    def test_split_interior_clamps_to_interior(self):
        # Requesting a boundary split must nudge inward (Assumption 1).
        left, right = unit2().split_interior(0, 0.0, min_fraction=0.1)
        assert left.widths[0] >= 0.1 - 1e-12
        assert right.widths[0] >= 0.1 - 1e-12

    def test_split_interior_keeps_interior_value(self):
        left, _ = unit2().split_interior(0, 0.5, min_fraction=0.01)
        assert left.high[0] == pytest.approx(0.5)

    def test_split_interior_rejects_degenerate_dim(self):
        box = Box(np.array([0.0, 0.5]), np.array([1.0, 0.5]))
        with pytest.raises(ValueError, match="degenerate"):
            box.split_interior(1, 0.5)

    def test_split_interior_shrinks_diameter(self):
        # Assumption 1: both halves strictly smaller than the parent.
        box = unit2()
        left, right = box.split_interior(0, 0.4)
        assert left.diameter() < box.diameter()
        assert right.diameter() < box.diameter()

    def test_bisect_default_longest(self):
        box = Box(np.zeros(2), np.array([1.0, 4.0]))
        left, right = box.bisect()
        assert left.high[1] == pytest.approx(2.0)


class TestSetOps:
    def test_intersect_overlapping(self):
        a = unit2()
        b = Box(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        both = a.intersect(b)
        np.testing.assert_allclose(both.low, [0.5, 0.5])
        np.testing.assert_allclose(both.high, [1.0, 1.0])

    def test_intersect_disjoint_is_none(self):
        a = unit2()
        b = Box(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert a.intersect(b) is None

    def test_hull(self):
        a = unit2()
        b = Box(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        hull = a.hull(b)
        np.testing.assert_allclose(hull.low, [0.0, -1.0])
        np.testing.assert_allclose(hull.high, [3.0, 1.0])

    def test_equality_and_hash(self):
        a = unit2()
        b = Box(np.zeros(2), np.ones(2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Box(np.zeros(2), 2 * np.ones(2))

    def test_repr_small_and_large(self):
        assert "[0," in repr(unit2()).replace(" ", "")
        assert "ndim=10" in repr(Box.unit(10))


@st.composite
def boxes(draw, max_dim: int = 5):
    n = draw(st.integers(1, max_dim))
    low = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=n, max_size=n
        )
    )
    widths = draw(
        st.lists(st.floats(0, 5, allow_nan=False), min_size=n, max_size=n)
    )
    low_arr = np.array(low)
    return Box(low_arr, low_arr + np.array(widths))


class TestProperties:
    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_center_always_contained(self, box):
        assert box.contains(box.center)

    @given(boxes(), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_projection_lands_inside(self, box, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-20, 20, size=box.ndim)
        assert box.contains(box.project(x))

    @given(boxes(), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_projection_idempotent(self, box, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-20, 20, size=box.ndim)
        once = box.project(x)
        np.testing.assert_array_equal(once, box.project(once))

    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_split_interior_covers_parent(self, box):
        dim = box.longest_dim()
        if box.widths[dim] <= 1e-9:
            return  # too narrow for a strictly-interior split point
        left, right = box.split_interior(dim, float(box.center[dim]))
        assert left.hull(right) == box

    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_hull_contains_both(self, box):
        shifted = Box(box.low + 1.0, box.high + 1.0)
        hull = box.hull(shifted)
        assert hull.contains_box(box)
        assert hull.contains_box(shifted)

    @given(boxes())
    @settings(max_examples=30, deadline=None)
    def test_samples_inside(self, box):
        rng = np.random.default_rng(0)
        for x in box.sample(rng, 20):
            assert box.contains(x)
