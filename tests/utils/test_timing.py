"""Tests for Stopwatch and Deadline."""

import time

import pytest

from repro.utils.timing import Deadline, Stopwatch, never


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        first = watch.stop()
        assert first >= 0.01
        watch.start()
        time.sleep(0.01)
        assert watch.stop() >= first + 0.01

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0.0

    def test_stop_idempotent(self):
        watch = Stopwatch().start()
        a = watch.stop()
        b = watch.stop()
        assert a == b

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.005

    def test_reentrant_start_keeps_original_origin(self):
        # A second start() on a running watch must be a no-op, not a
        # restart — otherwise nested instrumentation would lose time.
        watch = Stopwatch().start()
        time.sleep(0.01)
        watch.start()
        assert watch.stop() >= 0.01

    def test_stop_start_stop_cycles_accumulate(self):
        watch = Stopwatch()
        assert watch.stop() == 0.0  # stopping a never-started watch
        watch.start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        watch.start()  # re-entrant mid-cycle
        time.sleep(0.005)
        total = watch.stop()
        assert total >= first + 0.005
        assert watch.elapsed == total  # settled once stopped


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(limit=None)
        assert not deadline.expired()
        assert deadline.remaining == float("inf")
        deadline.check()  # must not raise

    def test_expires(self):
        deadline = Deadline(limit=0.005)
        time.sleep(0.01)
        assert deadline.expired()
        with pytest.raises(TimeoutError):
            deadline.check()

    def test_remaining_decreases(self):
        deadline = Deadline(limit=10.0)
        first = deadline.remaining
        time.sleep(0.005)
        assert deadline.remaining < first

    def test_zero_limit_expires_immediately(self):
        deadline = Deadline(limit=0)
        assert deadline.expired()
        assert deadline.remaining <= 0.0
        with pytest.raises(TimeoutError):
            deadline.check()

    def test_negative_limit_expires_immediately(self):
        deadline = Deadline(limit=-1.0)
        assert deadline.expired()
        with pytest.raises(TimeoutError):
            deadline.check()

    def test_infinite_limit_never_expires(self):
        deadline = Deadline(limit=float("inf"))
        assert not deadline.expired()
        assert deadline.remaining == float("inf")
        deadline.check()  # must not raise

    def test_never_helper(self):
        assert not never().expired()

    def test_never_remaining_stays_infinite(self):
        deadline = never()
        time.sleep(0.005)
        assert deadline.remaining == float("inf")
        assert deadline.elapsed > 0.0
