"""Tests for Stopwatch and Deadline."""

import time

import pytest

from repro.utils.timing import Deadline, Stopwatch, never


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        first = watch.stop()
        assert first >= 0.01
        watch.start()
        time.sleep(0.01)
        assert watch.stop() >= first + 0.01

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0.0

    def test_stop_idempotent(self):
        watch = Stopwatch().start()
        a = watch.stop()
        b = watch.stop()
        assert a == b

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.005


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(limit=None)
        assert not deadline.expired()
        assert deadline.remaining == float("inf")
        deadline.check()  # must not raise

    def test_expires(self):
        deadline = Deadline(limit=0.005)
        time.sleep(0.01)
        assert deadline.expired()
        with pytest.raises(TimeoutError):
            deadline.check()

    def test_remaining_decreases(self):
        deadline = Deadline(limit=10.0)
        first = deadline.remaining
        time.sleep(0.005)
        assert deadline.remaining < first

    def test_never_helper(self):
        assert not never().expired()
