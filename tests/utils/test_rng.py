"""Tests for RNG normalization."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_distinct_seeds_differ(self):
        a = as_generator(1).uniform(size=5)
        b = as_generator(2).uniform(size=5)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_children_independent_of_consumption_order(self):
        children_a = spawn(np.random.default_rng(0), 3)
        children_b = spawn(np.random.default_rng(0), 3)
        # Consuming child 0 heavily must not change child 1's stream.
        children_a[0].uniform(size=100)
        np.testing.assert_array_equal(
            children_a[1].uniform(size=5), children_b[1].uniform(size=5)
        )

    def test_spawn_count(self):
        assert len(spawn(np.random.default_rng(0), 4)) == 4
        assert spawn(np.random.default_rng(0), 0) == []

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(0), -1)
