"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils import validation as v


class TestScalars:
    def test_require_positive(self):
        assert v.require_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="positive"):
            v.require_positive("x", 0.0)

    def test_require_nonnegative(self):
        assert v.require_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError, match="non-negative"):
            v.require_nonnegative("x", -1.0)

    def test_require_in_range(self):
        assert v.require_in_range("x", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError, match="lie in"):
            v.require_in_range("x", 2.0, 0.0, 1.0)


class TestArrays:
    def test_require_vector_flattens(self):
        out = v.require_vector("x", np.ones((2, 2)))
        assert out.shape == (4,)

    def test_require_vector_size(self):
        with pytest.raises(ValueError, match="entries"):
            v.require_vector("x", np.ones(3), size=4)

    def test_require_matrix(self):
        out = v.require_matrix("m", np.ones((2, 3)), shape=(2, 3))
        assert out.shape == (2, 3)
        with pytest.raises(ValueError, match="rows"):
            v.require_matrix("m", np.ones((2, 3)), shape=(4, None))
        with pytest.raises(ValueError, match="columns"):
            v.require_matrix("m", np.ones((2, 3)), shape=(None, 5))
        with pytest.raises(ValueError, match="matrix"):
            v.require_matrix("m", np.ones(3))

    def test_require_finite(self):
        v.require_finite("x", np.ones(3))
        with pytest.raises(ValueError, match="non-finite"):
            v.require_finite("x", np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="non-finite"):
            v.require_finite("x", np.array([np.inf]))
