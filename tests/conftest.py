"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import mnist_like
from repro.nn.builders import mlp
from repro.nn.training import TrainConfig, train_classifier
from repro.utils.boxes import Box


@pytest.fixture(scope="session")
def trained_tiny_net():
    """A small trained classifier on the synthetic MNIST-like data.

    Session-scoped: training runs once for the whole suite.
    """
    dataset = mnist_like(num_samples=600, image_size=6, rng=0)
    flat = dataset.inputs.reshape(len(dataset), -1)
    network = mlp(flat.shape[1], [16, 16], dataset.num_classes, rng=0)
    train_classifier(
        network,
        flat,
        dataset.labels,
        TrainConfig(epochs=6, batch_size=64, learning_rate=0.01),
        rng=0,
    )
    return network, dataset


def random_mlp(seed: int, n_in: int = 4, hidden: tuple[int, ...] = (10, 10), n_out: int = 3):
    """A deterministic random MLP for fuzz-style tests."""
    return mlp(n_in, list(hidden), n_out, rng=seed)


def random_box(seed: int, n: int = 4, max_radius: float = 0.8) -> Box:
    rng = np.random.default_rng(seed)
    center = rng.uniform(-1.0, 1.0, size=n)
    radius = rng.uniform(0.05, max_radius, size=n)
    return Box(center - radius, center + radius)
