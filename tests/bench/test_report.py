"""Tests for report generation."""

import numpy as np
import pytest

from repro.bench.harness import BenchRecord, ResultTable
from repro.bench.report import (
    cactus_series,
    falsification_counts,
    format_cactus,
    format_counts,
    format_summary,
    mean_solve_time,
    solved_counts,
    solved_superset,
    speedup_on_common,
    summary_percentages,
    verified_subset_solved,
)


def synthetic_table() -> ResultTable:
    """Two tools over four benchmarks with known outcomes."""
    table = ResultTable(problems=[None] * 4)
    table.records["A"] = [
        BenchRecord("verified", 1.0),
        BenchRecord("verified", 2.0),
        BenchRecord("falsified", 0.5),
        BenchRecord("timeout", 10.0),
    ]
    table.records["B"] = [
        BenchRecord("verified", 4.0),
        BenchRecord("unknown", 0.1),
        BenchRecord("unknown", 0.1),
        BenchRecord("verified", 8.0),
    ]
    return table


class TestSummaries:
    def test_percentages(self):
        summary = summary_percentages(synthetic_table())
        assert summary["A"]["verified"] == pytest.approx(50.0)
        assert summary["A"]["falsified"] == pytest.approx(25.0)
        assert summary["A"]["timeout"] == pytest.approx(25.0)
        assert summary["B"]["unknown"] == pytest.approx(50.0)

    def test_solved_counts(self):
        counts = solved_counts(synthetic_table())
        assert counts == {"A": 3, "B": 2}

    def test_falsification_counts(self):
        counts = falsification_counts(synthetic_table())
        assert counts == {"A": 1, "B": 0}


class TestCactus:
    def test_series_sorted_cumulative(self):
        series = cactus_series(synthetic_table(), "A")
        assert series == [(1, 0.5), (2, 1.5), (3, 3.5)]

    def test_empty_when_nothing_solved(self):
        table = ResultTable(problems=[None])
        table.records["X"] = [BenchRecord("timeout", 1.0)]
        assert cactus_series(table, "X") == []


class TestComparisons:
    def test_speedup_on_common(self):
        # Common solved: benchmark 0 only (A: 1.0s, B: 4.0s).
        ratio = speedup_on_common(synthetic_table(), "A", "B")
        assert ratio == pytest.approx(4.0)

    def test_speedup_none_when_disjoint(self):
        table = ResultTable(problems=[None])
        table.records["A"] = [BenchRecord("verified", 1.0)]
        table.records["B"] = [BenchRecord("timeout", 1.0)]
        assert speedup_on_common(table, "A", "B") is None

    def test_solved_superset(self):
        table = synthetic_table()
        assert not solved_superset(table, "A", "B")  # B solves #3, A times out
        table.records["B"][3] = BenchRecord("timeout", 1.0)
        assert solved_superset(table, "A", "B")

    def test_verified_subset_solved(self):
        solved, total = verified_subset_solved(synthetic_table(), "A", "B")
        # A verified benchmarks 0 and 1; B solved only 0 of those.
        assert (solved, total) == (1, 2)

    def test_mean_solve_time(self):
        assert mean_solve_time(synthetic_table(), "A") == pytest.approx(3.5 / 3)
        table = ResultTable(problems=[None])
        table.records["X"] = [BenchRecord("timeout", 1.0)]
        assert np.isnan(mean_solve_time(table, "X"))


class TestFormatting:
    def test_format_summary_contains_tools(self):
        text = format_summary(synthetic_table(), title="Fig 6")
        assert "Fig 6" in text
        assert "A" in text and "B" in text
        assert "%" in text

    def test_format_cactus(self):
        text = format_cactus(synthetic_table())
        assert "solved=  3" in text or "solved=" in text

    def test_format_counts(self):
        text = format_counts({"A": 3}, "Solved")
        assert "Solved" in text and "A" in text
