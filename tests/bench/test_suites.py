"""Tests for benchmark suite construction."""

import numpy as np
import pytest

from repro.bench.suites import (
    NETWORK_SPECS,
    SuiteScale,
    build_network,
    build_problems,
)


TINY = SuiteScale(width_factor=0.12, image_size=4, train_samples=500, train_epochs=8)


class TestSuiteScale:
    def test_width_scaling(self):
        scale = SuiteScale(width_factor=0.24)
        assert scale.width(100) == 24
        assert scale.width(200) == 48

    def test_width_floor(self):
        assert SuiteScale(width_factor=0.001).width(100) == 4


class TestBuildNetwork:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            build_network("mnist_42x42")

    def test_all_specs_present(self):
        assert len(NETWORK_SPECS) == 7  # the paper's seven networks
        assert "mnist_conv" in NETWORK_SPECS

    def test_builds_and_trains(self):
        bench_net = build_network("mnist_3x100", TINY, seed=0)
        assert bench_net.accuracy > 0.5
        assert bench_net.network.input_size == 16

    def test_width_factor_applied(self):
        bench_net = build_network("mnist_3x100", TINY, seed=0)
        hidden = bench_net.network.layers[0].out_features
        assert hidden == TINY.width(100)

    def test_cached(self):
        a = build_network("mnist_3x100", TINY, seed=0)
        b = build_network("mnist_3x100", TINY, seed=0)
        assert a is b

    def test_cifar_has_three_channels(self):
        bench_net = build_network("cifar_3x100", TINY, seed=0)
        assert bench_net.dataset.sample_shape == (3, 4, 4)
        assert bench_net.network.input_size == 48


class TestBuildProblems:
    def test_count_and_names(self):
        bench_net = build_network("mnist_3x100", TINY, seed=0)
        problems = build_problems(bench_net, count=5, rng=0)
        assert len(problems) == 5
        assert all(p.network_name == "mnist_3x100" for p in problems)
        assert len({p.prop.name for p in problems}) == 5

    def test_properties_anchored_at_correct_images(self):
        bench_net = build_network("mnist_3x100", TINY, seed=0)
        problems = build_problems(bench_net, count=4, rng=0)
        for problem in problems:
            # The region's lower corner is the original image; it must be
            # classified as the property label (correctly-classified image).
            x = problem.prop.region.low
            assert bench_net.network.classify(x) == problem.prop.label

    def test_strengths_grade_difficulty(self):
        bench_net = build_network("mnist_3x100", TINY, seed=0)
        problems = build_problems(
            bench_net, count=4, strengths=(0.1, 1.0), rng=0
        )
        narrow = problems[0].prop.region.widths.sum()
        wide = problems[1].prop.region.widths.sum()
        assert narrow < wide

    def test_rejects_bad_count(self):
        bench_net = build_network("mnist_3x100", TINY, seed=0)
        with pytest.raises(ValueError):
            build_problems(bench_net, count=0)
