"""Tests for the benchmark runner and tool adapters."""

import numpy as np
import pytest

from repro.bench.harness import (
    BenchRecord,
    ResultTable,
    ToolAdapter,
    ai2_adapter,
    charon_adapter,
    reluplex_adapter,
    reluval_adapter,
    run_suite,
    run_suite_scheduled,
)
from repro.bench.suites import BenchmarkProblem
from repro.core.property import RobustnessProperty
from repro.nn.builders import lenet_conv, xor_network
from repro.utils.boxes import Box


def xor_problems():
    robust = RobustnessProperty(
        Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1, name="robust"
    )
    broken = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0, name="broken")
    return [
        BenchmarkProblem("xor", robust),
        BenchmarkProblem("xor", broken),
    ]


class TestRecords:
    def test_solved_semantics(self):
        assert BenchRecord("verified", 0.1).solved
        assert BenchRecord("falsified", 0.1).solved
        assert not BenchRecord("timeout", 0.1).solved
        assert not BenchRecord("unknown", 0.1).solved


class TestAdapters:
    def test_charon_adapter(self):
        adapter = charon_adapter(timeout=10.0)
        record = adapter.run(xor_network(), xor_problems()[0].prop)
        assert record.kind == "verified"

    def test_ai2_adapter_names(self):
        assert ai2_adapter(1.0, bounded=True).name == "AI2-Bounded64"
        assert ai2_adapter(1.0, bounded=False).name == "AI2-Zonotope"

    def test_ai2_cannot_falsify(self):
        adapter = ai2_adapter(timeout=10.0, bounded=False)
        record = adapter.run(xor_network(), xor_problems()[1].prop)
        assert record.kind == "unknown"

    def test_reluval_adapter(self):
        adapter = reluval_adapter(timeout=10.0)
        record = adapter.run(xor_network(), xor_problems()[0].prop)
        assert record.kind == "verified"

    def test_reluplex_adapter(self):
        adapter = reluplex_adapter(timeout=10.0)
        record = adapter.run(xor_network(), xor_problems()[0].prop)
        assert record.kind == "verified"

    def test_reluplex_adapter_conv_is_unknown(self):
        # Architecture limitation surfaces as "unknown" instead of a crash.
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        prop = RobustnessProperty(
            Box.linf_ball(np.full(16, 0.5), 0.01), 0
        )
        record = reluplex_adapter(timeout=5.0).run(net, prop)
        assert record.kind == "unknown"


class TestRunSuite:
    def test_table_alignment(self):
        problems = xor_problems()
        networks = {"xor": xor_network()}
        tools = [charon_adapter(10.0), ai2_adapter(10.0, bounded=False)]
        table = run_suite(tools, problems, networks)
        assert set(table.tools()) == {"Charon", "AI2-Zonotope"}
        assert len(table.of("Charon")) == len(problems)

    def test_charon_falsifies_where_ai2_cannot(self):
        problems = xor_problems()
        networks = {"xor": xor_network()}
        table = run_suite(
            [charon_adapter(10.0), ai2_adapter(10.0, bounded=False)],
            problems,
            networks,
        )
        assert table.of("Charon")[1].kind == "falsified"
        assert table.of("AI2-Zonotope")[1].kind == "unknown"

    def test_rejects_empty_tools(self):
        with pytest.raises(ValueError, match="at least one tool"):
            run_suite([], xor_problems(), {"xor": xor_network()})

    def test_rejects_unknown_kind(self):
        bad = ToolAdapter("Bad", lambda n, p: BenchRecord("maybe", 0.0))
        with pytest.raises(ValueError, match="unknown kind"):
            run_suite([bad], xor_problems()[:1], {"xor": xor_network()})


class TestScheduledSuite:
    def test_matches_per_problem_route(self):
        """The scheduler route must report the per-problem outcomes."""
        problems = xor_problems()
        networks = {"xor": xor_network()}
        table = run_suite_scheduled(problems, networks, timeout=10.0)
        assert table.tools() == ["Charon-sched"]
        records = table.of("Charon-sched")
        assert len(records) == len(problems)
        assert records[0].kind == "verified"
        assert records[1].kind == "falsified"

    def test_frontier_and_name_knobs(self):
        problems = xor_problems()
        networks = {"xor": xor_network()}
        table = run_suite_scheduled(
            problems, networks, timeout=10.0, frontier="priority",
            tool_name="Sched",
        )
        assert table.tools() == ["Sched"]

    def test_rejects_empty_problems(self):
        with pytest.raises(ValueError, match="at least one problem"):
            run_suite_scheduled([], {}, timeout=1.0)
