"""Cross-tool integration tests.

The four tools implement the same decision problem with different
techniques, which gives a strong differential-testing oracle: on any
instance, no tool may contradict another (one proving robustness while
another exhibits a valid counterexample), and the complete tools must agree
with dense sampling.
"""

import numpy as np
import pytest

from repro.baselines.ai2 import AI2, AI2_BOUNDED64
from repro.baselines.reluplex import Reluplex, ReluplexConfig
from repro.baselines.reluval import ReluVal, ReluValConfig
from repro.core.config import VerifierConfig
from repro.core.property import linf_property
from repro.core.verifier import Verifier
from repro.nn.builders import mlp


def run_all_tools(network, prop, timeout=10.0):
    """Outcome kind per tool, plus any counterexamples found."""
    results = {}
    witnesses = {}
    charon = Verifier(network, config=VerifierConfig(timeout=timeout), rng=0)
    outcome = charon.verify(prop)
    results["charon"] = outcome.kind
    if outcome.kind == "falsified":
        witnesses["charon"] = outcome.counterexample

    results["ai2"] = AI2(AI2_BOUNDED64, timeout=timeout).verify(network, prop).kind

    outcome = ReluVal(ReluValConfig(timeout=timeout)).verify(network, prop)
    results["reluval"] = outcome.kind
    if outcome.kind == "falsified":
        witnesses["reluval"] = outcome.counterexample

    outcome = Reluplex(ReluplexConfig(timeout=timeout)).verify(network, prop)
    results["reluplex"] = outcome.kind
    if outcome.kind == "falsified":
        witnesses["reluplex"] = outcome.counterexample
    return results, witnesses


class TestCrossToolAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_no_tool_contradicts_another(self, seed):
        rng = np.random.default_rng(seed)
        network = mlp(3, [8], 3, rng=seed)
        center = rng.uniform(-0.4, 0.4, 3)
        radius = rng.uniform(0.05, 0.3)
        prop = linf_property(network, center, radius, clip_low=None, clip_high=None)

        results, witnesses = run_all_tools(network, prop, timeout=10.0)
        verified = {t for t, k in results.items() if k == "verified"}
        falsified = {t for t, k in results.items() if k == "falsified"}

        # Hard contradiction: a proof plus a *true* counterexample.
        # (δ-counterexamples with tiny positive margin are permitted by
        # δ-completeness, so only check truly-violating witnesses.)
        true_violations = {
            t: x
            for t, x in witnesses.items()
            if prop.margin_at(network, x) <= 0
        }
        if verified and true_violations:
            pytest.fail(
                f"tools disagree: {verified} verified but "
                f"{set(true_violations)} found true counterexamples "
                f"(results: {results})"
            )

        # Every claimed witness must lie inside the region.
        for tool, x in witnesses.items():
            assert prop.region.contains(x), f"{tool} returned an outside witness"

    @pytest.mark.parametrize("seed", range(6, 10))
    def test_verified_claims_survive_sampling(self, seed):
        rng = np.random.default_rng(seed)
        network = mlp(4, [10], 3, rng=seed)
        center = rng.uniform(-0.3, 0.3, 4)
        prop = linf_property(network, center, 0.08, clip_low=None, clip_high=None)

        results, _ = run_all_tools(network, prop, timeout=10.0)
        if any(k == "verified" for k in results.values()):
            preds = network.classify_batch(prop.region.sample(rng, 500))
            assert np.all(preds == prop.label), f"sampling refutes {results}"


class TestTrainedNetworkPipeline:
    def test_end_to_end_on_trained_classifier(self, trained_tiny_net):
        network, dataset = trained_tiny_net
        flat = dataset.inputs.reshape(len(dataset), -1)
        # A correctly classified sample with a small perturbation budget.
        idx = next(
            i for i in range(len(dataset))
            if network.classify(flat[i]) == dataset.labels[i]
        )
        prop = linf_property(network, flat[idx], 0.01)
        outcome = Verifier(
            network, config=VerifierConfig(timeout=10), rng=0
        ).verify(prop)
        assert outcome.kind in ("verified", "falsified")
        if outcome.kind == "falsified":
            assert prop.region.contains(outcome.counterexample)

    def test_larger_epsilon_is_no_easier_to_verify(self, trained_tiny_net):
        network, dataset = trained_tiny_net
        flat = dataset.inputs.reshape(len(dataset), -1)
        idx = next(
            i for i in range(len(dataset))
            if network.classify(flat[i]) == dataset.labels[i]
        )
        kinds = []
        for eps in (0.001, 0.3):
            prop = linf_property(network, flat[idx], eps)
            outcome = Verifier(
                network, config=VerifierConfig(timeout=5), rng=0
            ).verify(prop)
            kinds.append(outcome.kind)
        # The tiny ball must be decided; monotonicity: if the tiny ball is
        # falsified, the bigger ball cannot be verified.
        assert kinds[0] in ("verified", "falsified")
        if kinds[0] == "falsified":
            assert kinds[1] != "verified"
