"""Tests for acquisition functions."""

import numpy as np
import pytest

from repro.bayesopt.acquisition import expected_improvement, upper_confidence_bound


class TestExpectedImprovement:
    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        mean = rng.normal(size=50)
        var = rng.uniform(0, 2, size=50)
        ei = expected_improvement(mean, var, best=0.5)
        assert np.all(ei >= 0)

    def test_zero_variance_below_best(self):
        ei = expected_improvement(np.array([0.0]), np.array([0.0]), best=1.0)
        assert ei[0] == 0.0

    def test_zero_variance_above_best(self):
        ei = expected_improvement(np.array([2.0]), np.array([0.0]), best=1.0, xi=0.0)
        assert ei[0] == pytest.approx(1.0)

    def test_grows_with_mean(self):
        var = np.array([1.0, 1.0])
        ei = expected_improvement(np.array([0.0, 1.0]), var, best=0.0)
        assert ei[1] > ei[0]

    def test_grows_with_variance_when_mean_below_best(self):
        mean = np.array([-1.0, -1.0])
        ei = expected_improvement(mean, np.array([0.1, 4.0]), best=0.0)
        assert ei[1] > ei[0]

    def test_xi_discourages_exploitation(self):
        mean = np.array([1.01])
        var = np.array([1e-6])
        greedy = expected_improvement(mean, var, best=1.0, xi=0.0)
        cautious = expected_improvement(mean, var, best=1.0, xi=0.5)
        assert greedy[0] > cautious[0]


class TestUCB:
    def test_mean_plus_beta_std(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([4.0]), beta=2.0)
        assert ucb[0] == pytest.approx(5.0)

    def test_beta_zero_is_mean(self):
        mean = np.array([0.3, -0.7])
        np.testing.assert_allclose(
            upper_confidence_bound(mean, np.ones(2), beta=0.0), mean
        )

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            upper_confidence_bound(np.zeros(1), np.ones(1), beta=-1.0)
