"""Tests for Gaussian-process regression."""

import numpy as np
import pytest

from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.kernels import RBF


class TestFit:
    def test_requires_fit_before_posterior(self):
        gp = GaussianProcess()
        with pytest.raises(RuntimeError, match="fit"):
            gp.posterior(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="fit"):
            gp.log_marginal_likelihood()

    def test_validation(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError, match="targets"):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError, match="zero observations"):
            gp.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError, match="noise"):
            GaussianProcess(noise=-1.0)


class TestPosterior:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(8, 1))
        y = np.sin(4 * x[:, 0])
        gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-8).fit(x, y)
        mean, var = gp.posterior(x)
        np.testing.assert_allclose(mean, y, atol=1e-4)
        assert np.all(var < 1e-4)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.0], [0.1]])
        y = np.array([0.0, 0.1])
        gp = GaussianProcess(RBF(lengthscale=0.2), noise=1e-6).fit(x, y)
        _, var_near = gp.posterior(np.array([[0.05]]))
        _, var_far = gp.posterior(np.array([[2.0]]))
        assert var_far[0] > var_near[0]

    def test_posterior_reverts_to_prior_far_away(self):
        x = np.array([[0.0]])
        y = np.array([5.0])
        gp = GaussianProcess(RBF(lengthscale=0.1), noise=1e-6).fit(x, y)
        mean_far, _ = gp.posterior(np.array([[100.0]]))
        # Standardization makes the prior mean the data mean.
        assert mean_far[0] == pytest.approx(5.0, abs=1e-6)

    def test_variance_nonnegative(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(20, 3))
        y = rng.normal(size=20)
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        _, var = gp.posterior(rng.uniform(-1, 1, size=(50, 3)))
        assert np.all(var >= 0)

    def test_constant_targets_handled(self):
        # Zero variance targets must not divide by zero.
        x = np.array([[0.0], [1.0]])
        y = np.array([3.0, 3.0])
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        mean, _ = gp.posterior(np.array([[0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=1e-6)


class TestLikelihood:
    def test_good_lengthscale_scores_higher(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 1, 15).reshape(-1, 1)
        y = np.sin(6 * x[:, 0]) + 0.01 * rng.normal(size=15)
        good = GaussianProcess(RBF(lengthscale=0.25), noise=1e-4).fit(x, y)
        bad = GaussianProcess(RBF(lengthscale=100.0), noise=1e-4).fit(x, y)
        assert good.log_marginal_likelihood() > bad.log_marginal_likelihood()
