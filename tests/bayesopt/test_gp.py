"""Tests for Gaussian-process regression."""

import numpy as np
import pytest

from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.kernels import RBF


class TestFit:
    def test_requires_fit_before_posterior(self):
        gp = GaussianProcess()
        with pytest.raises(RuntimeError, match="fit"):
            gp.posterior(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="fit"):
            gp.log_marginal_likelihood()

    def test_validation(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError, match="targets"):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError, match="zero observations"):
            gp.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError, match="noise"):
            GaussianProcess(noise=-1.0)


class TestPosterior:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(8, 1))
        y = np.sin(4 * x[:, 0])
        gp = GaussianProcess(RBF(lengthscale=0.3), noise=1e-8).fit(x, y)
        mean, var = gp.posterior(x)
        np.testing.assert_allclose(mean, y, atol=1e-4)
        assert np.all(var < 1e-4)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([[0.0], [0.1]])
        y = np.array([0.0, 0.1])
        gp = GaussianProcess(RBF(lengthscale=0.2), noise=1e-6).fit(x, y)
        _, var_near = gp.posterior(np.array([[0.05]]))
        _, var_far = gp.posterior(np.array([[2.0]]))
        assert var_far[0] > var_near[0]

    def test_posterior_reverts_to_prior_far_away(self):
        x = np.array([[0.0]])
        y = np.array([5.0])
        gp = GaussianProcess(RBF(lengthscale=0.1), noise=1e-6).fit(x, y)
        mean_far, _ = gp.posterior(np.array([[100.0]]))
        # Standardization makes the prior mean the data mean.
        assert mean_far[0] == pytest.approx(5.0, abs=1e-6)

    def test_variance_nonnegative(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(20, 3))
        y = rng.normal(size=20)
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        _, var = gp.posterior(rng.uniform(-1, 1, size=(50, 3)))
        assert np.all(var >= 0)

    def test_constant_targets_handled(self):
        # Zero variance targets must not divide by zero.
        x = np.array([[0.0], [1.0]])
        y = np.array([3.0, 3.0])
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        mean, _ = gp.posterior(np.array([[0.5]]))
        assert mean[0] == pytest.approx(3.0, abs=1e-6)


class TestLikelihood:
    def test_good_lengthscale_scores_higher(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 1, 15).reshape(-1, 1)
        y = np.sin(6 * x[:, 0]) + 0.01 * rng.normal(size=15)
        good = GaussianProcess(RBF(lengthscale=0.25), noise=1e-4).fit(x, y)
        bad = GaussianProcess(RBF(lengthscale=100.0), noise=1e-4).fit(x, y)
        assert good.log_marginal_likelihood() > bad.log_marginal_likelihood()


class TestIncrementalExtension:
    def _data(self, n=14, d=4, seed=3):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.0, 1.0, (n, d))
        y = np.sin(x.sum(axis=1)) + 0.1 * rng.normal(size=n)
        return x, y

    def test_extend_matches_full_fit(self):
        x, y = self._data()
        full = GaussianProcess(RBF(0.3), noise=1e-4).fit(x, y)
        grown = GaussianProcess(RBF(0.3), noise=1e-4).fit(x[:9], y[:9])
        grown.extend(x[9:], y)
        query = np.random.default_rng(1).uniform(0.0, 1.0, (25, x.shape[1]))
        for got, want in zip(grown.posterior(query), full.posterior(query)):
            np.testing.assert_allclose(got, want, atol=1e-10)
        np.testing.assert_allclose(
            grown.log_marginal_likelihood(),
            full.log_marginal_likelihood(),
            atol=1e-10,
        )

    def test_extend_one_point_at_a_time(self):
        x, y = self._data(n=8)
        gp = GaussianProcess(RBF(0.3), noise=1e-4).fit(x[:3], y[:3])
        for i in range(3, 8):
            gp.extend(x[i : i + 1], y[: i + 1])
        full = GaussianProcess(RBF(0.3), noise=1e-4).fit(x, y)
        query = x + 0.05
        for got, want in zip(gp.posterior(query), full.posterior(query)):
            np.testing.assert_allclose(got, want, atol=1e-10)

    def test_extend_on_unfit_gp_is_fit(self):
        x, y = self._data(n=5)
        gp = GaussianProcess(RBF(0.3), noise=1e-4).extend(x, y)
        assert gp.is_fit

    def test_extend_validates_target_count(self):
        x, y = self._data(n=6)
        gp = GaussianProcess(RBF(0.3)).fit(x[:4], y[:4])
        with pytest.raises(ValueError, match="targets"):
            gp.extend(x[4:], y[:5])

    def test_extend_with_duplicate_inputs_falls_back_gracefully(self):
        # A repeated input makes the Schur complement nearly singular; the
        # extension must still produce a usable (refit) model.
        x, y = self._data(n=6)
        gp = GaussianProcess(RBF(0.3), noise=1e-6).fit(x, y)
        gp.extend(np.vstack([x[0], x[0], x[0]]), np.concatenate([y, y[:3]]))
        mean, var = gp.posterior(x)
        assert np.all(np.isfinite(mean)) and np.all(var >= 0.0)

    def test_copy_is_independent(self):
        x, y = self._data(n=7)
        gp = GaussianProcess(RBF(0.3), noise=1e-4).fit(x[:5], y[:5])
        clone = gp.copy()
        clone.extend(x[5:], y)
        query = x[:3] + 0.02
        fresh = GaussianProcess(RBF(0.3), noise=1e-4).fit(x[:5], y[:5])
        for got, want in zip(gp.posterior(query), fresh.posterior(query)):
            np.testing.assert_allclose(got, want)
