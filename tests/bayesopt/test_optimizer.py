"""Tests for the Bayesian optimization loop."""

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer
from repro.utils.boxes import Box


def bounds1d():
    return Box(np.array([-2.0]), np.array([2.0]))


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(bounds1d(), n_initial=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(bounds1d(), candidates=0)
        degenerate = Box(np.zeros(2), np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="positive width"):
            BayesianOptimizer(degenerate)

    def test_observe_validates(self):
        opt = BayesianOptimizer(bounds1d(), rng=0)
        with pytest.raises(ValueError, match="dims"):
            opt.observe(np.zeros(3), 1.0)
        with pytest.raises(ValueError, match="finite"):
            opt.observe(np.zeros(1), float("nan"))

    def test_best_requires_observations(self):
        with pytest.raises(RuntimeError):
            BayesianOptimizer(bounds1d(), rng=0).best()


class TestSuggest:
    def test_initial_suggestions_random_within_bounds(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=3, rng=0)
        for _ in range(3):
            x = opt.suggest()
            assert bounds1d().contains(x)
            opt.observe(x, 0.0)

    def test_model_based_suggestion_within_bounds(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=2, candidates=64, rng=0)
        rng = np.random.default_rng(0)
        for _ in range(4):
            x = opt.suggest()
            opt.observe(x, float(-(x[0] ** 2)))
        x = opt.suggest()
        assert bounds1d().contains(x)


class TestMaximize:
    def test_finds_quadratic_peak(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=4, candidates=128, rng=1)
        best = opt.maximize(lambda x: -(x[0] - 1.0) ** 2, n_iter=20)
        assert best.x[0] == pytest.approx(1.0, abs=0.25)

    def test_beats_initial_random_phase(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=5, rng=2)
        best = opt.maximize(lambda x: -abs(x[0] + 0.5), n_iter=20)
        history = opt.history
        random_phase_best = max(o.y for o in history.observations[:5])
        assert best.y >= random_phase_best

    def test_2d_objective(self):
        bounds = Box(-np.ones(2), np.ones(2))
        opt = BayesianOptimizer(bounds, n_initial=5, candidates=128, rng=3)
        best = opt.maximize(
            lambda x: -float(np.sum((x - 0.3) ** 2)), n_iter=25
        )
        assert np.linalg.norm(best.x - 0.3) < 0.45

    def test_history_best_so_far_monotone(self):
        opt = BayesianOptimizer(bounds1d(), rng=4)
        opt.maximize(lambda x: float(np.sin(3 * x[0])), n_iter=10)
        trace = opt.history.best_so_far
        assert all(b >= a for a, b in zip(trace, trace[1:]))

    def test_callback_invoked(self):
        calls = []
        opt = BayesianOptimizer(bounds1d(), rng=5)
        opt.maximize(
            lambda x: 0.0, n_iter=3, callback=lambda i, obs: calls.append(i)
        )
        assert calls == [0, 1, 2]

    def test_rejects_zero_iterations(self):
        opt = BayesianOptimizer(bounds1d(), rng=0)
        with pytest.raises(ValueError):
            opt.maximize(lambda x: 0.0, n_iter=0)
