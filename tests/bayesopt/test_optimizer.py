"""Tests for the Bayesian optimization loop."""

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer
from repro.utils.boxes import Box


def bounds1d():
    return Box(np.array([-2.0]), np.array([2.0]))


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(bounds1d(), n_initial=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(bounds1d(), candidates=0)
        degenerate = Box(np.zeros(2), np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="positive width"):
            BayesianOptimizer(degenerate)

    def test_observe_validates(self):
        opt = BayesianOptimizer(bounds1d(), rng=0)
        with pytest.raises(ValueError, match="dims"):
            opt.observe(np.zeros(3), 1.0)
        with pytest.raises(ValueError, match="finite"):
            opt.observe(np.zeros(1), float("nan"))

    def test_best_requires_observations(self):
        with pytest.raises(RuntimeError):
            BayesianOptimizer(bounds1d(), rng=0).best()


class TestSuggest:
    def test_initial_suggestions_random_within_bounds(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=3, rng=0)
        for _ in range(3):
            x = opt.suggest()
            assert bounds1d().contains(x)
            opt.observe(x, 0.0)

    def test_model_based_suggestion_within_bounds(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=2, candidates=64, rng=0)
        rng = np.random.default_rng(0)
        for _ in range(4):
            x = opt.suggest()
            opt.observe(x, float(-(x[0] ** 2)))
        x = opt.suggest()
        assert bounds1d().contains(x)


class TestMaximize:
    def test_finds_quadratic_peak(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=4, candidates=128, rng=1)
        best = opt.maximize(lambda x: -(x[0] - 1.0) ** 2, n_iter=20)
        assert best.x[0] == pytest.approx(1.0, abs=0.25)

    def test_beats_initial_random_phase(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=5, rng=2)
        best = opt.maximize(lambda x: -abs(x[0] + 0.5), n_iter=20)
        history = opt.history
        random_phase_best = max(o.y for o in history.observations[:5])
        assert best.y >= random_phase_best

    def test_2d_objective(self):
        bounds = Box(-np.ones(2), np.ones(2))
        opt = BayesianOptimizer(bounds, n_initial=5, candidates=128, rng=3)
        best = opt.maximize(
            lambda x: -float(np.sum((x - 0.3) ** 2)), n_iter=25
        )
        assert np.linalg.norm(best.x - 0.3) < 0.45

    def test_history_best_so_far_monotone(self):
        opt = BayesianOptimizer(bounds1d(), rng=4)
        opt.maximize(lambda x: float(np.sin(3 * x[0])), n_iter=10)
        trace = opt.history.best_so_far
        assert all(b >= a for a, b in zip(trace, trace[1:]))

    def test_callback_invoked(self):
        calls = []
        opt = BayesianOptimizer(bounds1d(), rng=5)
        opt.maximize(
            lambda x: 0.0, n_iter=3, callback=lambda i, obs: calls.append(i)
        )
        assert calls == [0, 1, 2]

    def test_rejects_zero_iterations(self):
        opt = BayesianOptimizer(bounds1d(), rng=0)
        with pytest.raises(ValueError):
            opt.maximize(lambda x: 0.0, n_iter=0)


def _drive(opt, func, n):
    for _ in range(n):
        x = opt.suggest()
        opt.observe(x, func(x))


class TestIncrementalModel:
    """Satellite contract: the cached-Cholesky model path must suggest
    exactly what the refit-from-scratch path suggests."""

    def test_suggestions_pin_against_refit_path(self):
        func = lambda x: float(-(x[0] ** 2))  # noqa: E731
        incremental = BayesianOptimizer(
            bounds1d(), n_initial=2, candidates=64, rng=0, incremental=True
        )
        refit = BayesianOptimizer(
            bounds1d(), n_initial=2, candidates=64, rng=0, incremental=False
        )
        for _ in range(8):
            a, b = incremental.suggest(), refit.suggest()
            # Posteriors agree to ~1e-15 (pinned in test_gp); L-BFGS-B
            # refinement of the acquisition amplifies that slightly.
            np.testing.assert_allclose(a, b, atol=1e-5)
            incremental.observe(a, func(a))
            refit.observe(a, func(a))  # identical histories by construction

    def test_incremental_is_default(self):
        assert BayesianOptimizer(bounds1d(), rng=0).incremental

    def test_cache_survives_interleaved_observe(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=2, candidates=32, rng=3)
        _drive(opt, lambda x: float(np.sin(x[0])), 3)
        # Two observations between suggests: the cache grows by two rows.
        opt.observe(np.array([0.5]), 0.25)
        opt.observe(np.array([-0.5]), -0.25)
        x = opt.suggest()
        assert bounds1d().contains(x)
        assert opt._gp_count == len(opt.history.observations)


class TestSuggestBatch:
    def test_rejects_bad_q(self):
        with pytest.raises(ValueError, match="q"):
            BayesianOptimizer(bounds1d(), rng=0).suggest_batch(0)

    def test_q1_equals_suggest_exactly(self):
        func = lambda x: float(-(x[0] - 0.5) ** 2)  # noqa: E731
        batched = BayesianOptimizer(
            bounds1d(), n_initial=2, candidates=64, rng=5
        )
        sequential = BayesianOptimizer(
            bounds1d(), n_initial=2, candidates=64, rng=5
        )
        for _ in range(6):
            (a,), b = batched.suggest_batch(1), sequential.suggest()
            np.testing.assert_array_equal(a, b)
            batched.observe(a, func(a))
            sequential.observe(b, func(b))

    def test_batch_in_random_phase_samples_independently(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=5, rng=0)
        batch = opt.suggest_batch(3)
        assert len(batch) == 3
        assert all(bounds1d().contains(x) for x in batch)
        assert not np.allclose(batch[0], batch[1])

    def test_model_phase_batch_spreads_and_stays_in_bounds(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=2, candidates=64, rng=1)
        _drive(opt, lambda x: float(-(x[0] ** 2)), 4)
        batch = opt.suggest_batch(3)
        assert len(batch) == 3
        assert all(bounds1d().contains(x) for x in batch)
        # The constant liar marks picked points as known-bad, so the batch
        # must not collapse onto one spot.
        spread = max(abs(float(a[0] - b[0]))
                     for a in batch for b in batch) 
        assert spread > 1e-4

    def test_lies_never_enter_history_or_cache(self):
        opt = BayesianOptimizer(bounds1d(), n_initial=2, candidates=64, rng=2)
        _drive(opt, lambda x: float(-(x[0] ** 2)), 3)
        before = len(opt.history.observations)
        opt.suggest_batch(4)
        assert len(opt.history.observations) == before
        assert opt._gp_count == before
