"""Tests for covariance kernels."""

import numpy as np
import pytest

from repro.bayesopt.kernels import Matern52, RBF, _sqdist


class TestSqdist:
    def test_known_distances(self):
        x1 = np.array([[0.0, 0.0], [1.0, 0.0]])
        x2 = np.array([[0.0, 1.0]])
        d = _sqdist(x1, x2)
        np.testing.assert_allclose(d, [[1.0], [2.0]])

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 3))
        assert np.all(_sqdist(x, x) >= 0)


@pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
class TestKernelProperties:
    def test_diagonal_is_variance(self, kernel_cls):
        kernel = kernel_cls(lengthscale=0.7, variance=2.5)
        x = np.random.default_rng(0).normal(size=(5, 3))
        cov = kernel(x, x)
        np.testing.assert_allclose(np.diag(cov), 2.5)
        np.testing.assert_allclose(kernel.diag(x), 2.5)

    def test_symmetric(self, kernel_cls):
        kernel = kernel_cls()
        x = np.random.default_rng(1).normal(size=(6, 2))
        cov = kernel(x, x)
        np.testing.assert_allclose(cov, cov.T)

    def test_positive_semidefinite(self, kernel_cls):
        kernel = kernel_cls(lengthscale=0.5)
        x = np.random.default_rng(2).normal(size=(8, 2))
        eigs = np.linalg.eigvalsh(kernel(x, x))
        assert np.all(eigs >= -1e-9)

    def test_decays_with_distance(self, kernel_cls):
        kernel = kernel_cls(lengthscale=1.0)
        near = kernel(np.zeros((1, 1)), np.array([[0.1]]))[0, 0]
        far = kernel(np.zeros((1, 1)), np.array([[3.0]]))[0, 0]
        assert near > far

    def test_validation(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(lengthscale=0.0)
        with pytest.raises(ValueError):
            kernel_cls(variance=-1.0)

    def test_repr(self, kernel_cls):
        assert kernel_cls.__name__ in repr(kernel_cls())
