"""Tests for projected gradient descent."""

import numpy as np
import pytest

from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize
from repro.nn.builders import example_2_2_network, mlp, xor_network
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"steps": 0},
            {"restarts": 0},
            {"step_fraction": 0.0},
            {"step_fraction": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PGDConfig(**kwargs)


class TestMinimize:
    def test_result_stays_in_region(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.zeros(4), 0.5)
        x, _ = pgd_minimize(obj, box, PGDConfig(steps=20, restarts=3), rng=0)
        assert box.contains(x)

    def test_improves_over_center(self):
        net = mlp(4, [12, 12], 3, rng=1)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.full(4, 0.3), 0.5)
        x, value = pgd_minimize(obj, box, PGDConfig(steps=40, restarts=3), rng=0)
        assert value <= obj.value(box.center) + 1e-12

    def test_finds_true_counterexample(self):
        # Example 2.2 on [-1, 2]: inputs above ~1.5 flip to class 0.
        net = example_2_2_network()
        obj = MarginObjective(net, 1)
        box = Box(np.array([-1.0]), np.array([2.0]))
        x, value = pgd_minimize(obj, box, PGDConfig(steps=50, restarts=3), rng=0)
        assert value <= 0.0
        assert net.classify(x) == 0

    def test_early_stop_on_threshold(self):
        net = example_2_2_network()
        obj = MarginObjective(net, 1)
        box = Box(np.array([-1.0]), np.array([2.0]))
        # A very permissive stop threshold should end the search quickly and
        # still respect the region.
        x, value = pgd_minimize(
            obj, box, PGDConfig(steps=1000, restarts=1, stop_below=100.0), rng=0
        )
        assert box.contains(x)
        assert value <= 100.0

    def test_respects_deadline(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.zeros(4), 0.5)
        expired = Deadline(limit=-1.0)
        x, value = pgd_minimize(obj, box, PGDConfig(steps=10_000), rng=0, deadline=expired)
        assert box.contains(x)

    def test_deterministic_given_seed(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.zeros(4), 0.5)
        a = pgd_minimize(obj, box, rng=7)
        b = pgd_minimize(obj, box, rng=7)
        np.testing.assert_array_equal(a[0], b[0])
        assert a[1] == b[1]

    def test_degenerate_region(self):
        net = xor_network()
        obj = MarginObjective(net, 0)
        point = np.array([0.0, 0.0])
        box = Box(point, point)
        x, value = pgd_minimize(obj, box, rng=0)
        np.testing.assert_array_equal(x, point)
        assert value == pytest.approx(1.0)
