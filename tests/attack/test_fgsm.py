"""Tests for FGSM."""

import numpy as np

from repro.attack.fgsm import fgsm_step
from repro.attack.objective import MarginObjective
from repro.nn.builders import example_2_2_network, mlp
from repro.utils.boxes import Box


class TestFGSM:
    def test_stays_in_region(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.zeros(4), 0.3)
        x, _ = fgsm_step(obj, box)
        assert box.contains(x)

    def test_never_worse_than_start(self):
        net = mlp(4, [10], 3, rng=1)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.zeros(4), 0.3)
        x, value = fgsm_step(obj, box)
        assert value <= obj.value(box.center) + 1e-12

    def test_finds_cex_on_monotone_problem(self):
        # The margin F of example 2.2 is flat for x <= 1 (dead ReLU), so a
        # single sign step only works from the sloped part of the region —
        # exactly the FGSM limitation PGD's restarts paper over.
        net = example_2_2_network()
        obj = MarginObjective(net, 1)
        box = Box(np.array([-1.0]), np.array([2.0]))
        _, value = fgsm_step(obj, box, start=np.array([1.5]))
        assert value <= 0.0

    def test_custom_start(self):
        net = mlp(2, [6], 2, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.unit(2)
        x, _ = fgsm_step(obj, box, start=np.array([0.9, 0.9]))
        assert box.contains(x)
