"""Tests for the L-BFGS counterexample search."""

import numpy as np
import pytest

from repro.attack.lbfgs import lbfgs_minimize
from repro.attack.objective import MarginObjective
from repro.nn.builders import example_2_2_network, mlp
from repro.utils.boxes import Box


class TestLBFGS:
    def test_stays_in_region(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.zeros(4), 0.4)
        x, _ = lbfgs_minimize(obj, box, rng=0)
        assert box.contains(x)

    def test_never_worse_than_center(self):
        net = mlp(4, [12, 12], 3, rng=1)
        obj = MarginObjective(net, 0)
        box = Box.from_center_radius(np.full(4, 0.2), 0.5)
        _, value = lbfgs_minimize(obj, box, rng=0)
        assert value <= obj.value(box.center) + 1e-12

    def test_finds_cex_on_sloped_problem(self):
        net = example_2_2_network()
        obj = MarginObjective(net, 1)
        # Start region inside the sloped part so gradients are informative.
        box = Box(np.array([1.1]), np.array([2.0]))
        _, value = lbfgs_minimize(obj, box, restarts=3, rng=0)
        assert value <= 0.0

    def test_validation(self):
        net = mlp(2, [4], 2, rng=0)
        obj = MarginObjective(net, 0)
        box = Box.unit(2)
        with pytest.raises(ValueError):
            lbfgs_minimize(obj, box, restarts=0)
        with pytest.raises(ValueError):
            lbfgs_minimize(obj, box, max_iter=0)

    def test_comparable_to_pgd(self):
        # Both optimizers attack the same margins; on a batch of random
        # problems L-BFGS should be in the same ballpark as PGD.
        from repro.attack.pgd import PGDConfig, pgd_minimize

        rng = np.random.default_rng(0)
        wins = 0
        for seed in range(6):
            net = mlp(4, [10], 3, rng=seed)
            obj = MarginObjective(net, 0)
            box = Box.from_center_radius(rng.uniform(-0.5, 0.5, 4), 0.4)
            _, f_lbfgs = lbfgs_minimize(obj, box, restarts=2, rng=0)
            _, f_pgd = pgd_minimize(obj, box, PGDConfig(steps=40, restarts=2), rng=0)
            if f_lbfgs <= f_pgd + 1e-6:
                wins += 1
        assert wins >= 2
