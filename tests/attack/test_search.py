"""Tests for the counterexample search wrapper."""

import numpy as np

from repro.attack.pgd import PGDConfig
from repro.attack.search import SearchResult, find_counterexample
from repro.core.property import RobustnessProperty
from repro.nn.builders import example_2_2_network, xor_network
from repro.utils.boxes import Box


class TestSearch:
    def test_robust_region_no_cex(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        result = find_counterexample(net, prop, rng=0)
        assert not result.is_counterexample()
        assert prop.region.contains(result.x_star)

    def test_violated_region_finds_cex(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        result = find_counterexample(
            net, prop, PGDConfig(steps=50, restarts=3), rng=0
        )
        assert result.is_counterexample()
        assert prop.violated_by(net, result.x_star)

    def test_delta_counterexample_threshold(self):
        result = SearchResult(x_star=np.zeros(1), value=0.05)
        assert not result.is_counterexample(delta=0.0)
        assert result.is_counterexample(delta=0.1)
