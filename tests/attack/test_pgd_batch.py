"""Batched PGD must reproduce single-region PGD, region by region."""

import numpy as np
import pytest

from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize, pgd_minimize_batch
from repro.nn.builders import example_2_2_network, mlp, xor_network
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


def _regions(seed: int, count: int, n: int = 6) -> list[Box]:
    rng = np.random.default_rng(seed)
    return [
        Box.from_center_radius(
            rng.uniform(-0.6, 0.6, n), float(rng.uniform(0.05, 0.5))
        )
        for _ in range(count)
    ]


class TestBatchedObjective:
    def test_value_batch_matches_scalar(self):
        net = mlp(5, [12, 12], 4, rng=0)
        obj = MarginObjective(net, 2)
        rng = np.random.default_rng(1)
        xs = rng.uniform(-1, 1, size=(9, 5))
        batch = obj.value_batch(xs)
        for i in range(9):
            assert batch[i] == pytest.approx(obj.value(xs[i]), abs=1e-12)

    def test_value_and_gradient_batch_matches_scalar(self):
        net = mlp(5, [12, 12], 4, rng=0)
        obj = MarginObjective(net, 1)
        rng = np.random.default_rng(2)
        xs = rng.uniform(-1, 1, size=(7, 5))
        values, grads = obj.value_and_gradient_batch(xs)
        for i in range(7):
            v, g = obj.value_and_gradient(xs[i])
            assert values[i] == pytest.approx(v, abs=1e-12)
            np.testing.assert_allclose(grads[i], g, atol=1e-12)


class TestBatchEquivalence:
    def test_matches_single_region_runs(self):
        """Region i minimized in a batch equals region i minimized alone.

        Per-region rng streams make a region's randomness independent of
        its batch companions; trajectories only drift by BLAS round-off
        (GEMM reduction order depends on batch width), so witnesses agree
        to tight tolerance and usually exactly.
        """
        net = mlp(6, [16, 16], 4, rng=0)
        obj = MarginObjective(net, 1)
        regions = _regions(3, 5)
        config = PGDConfig(steps=25, restarts=3, stop_below=1e-6)
        seeds = [100 + i for i in range(len(regions))]
        batch_x, batch_f = pgd_minimize_batch(
            obj, regions, config, [np.random.default_rng(s) for s in seeds]
        )
        for i, (region, seed) in enumerate(zip(regions, seeds)):
            x, f = pgd_minimize(obj, region, config, np.random.default_rng(seed))
            np.testing.assert_allclose(batch_x[i], x, atol=1e-9)
            assert batch_f[i] == pytest.approx(f, abs=1e-9)
            assert region.contains(batch_x[i])

    def test_results_independent_of_batch_composition(self):
        net = mlp(6, [16], 3, rng=1)
        obj = MarginObjective(net, 0)
        regions = _regions(7, 6)
        config = PGDConfig(steps=20, restarts=2)
        gens = lambda: [np.random.default_rng(50 + i) for i in range(6)]
        full_x, full_f = pgd_minimize_batch(obj, regions, config, gens())
        half_x, half_f = pgd_minimize_batch(
            obj, regions[:3], config, gens()[:3]
        )
        np.testing.assert_allclose(full_x[:3], half_x, atol=1e-9)
        np.testing.assert_allclose(full_f[:3], half_f, atol=1e-9)

    def test_deterministic_given_seeds(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        regions = _regions(11, 4, n=4)
        runs = []
        for _ in range(2):
            runs.append(
                pgd_minimize_batch(
                    obj,
                    regions,
                    PGDConfig(steps=15, restarts=2),
                    [np.random.default_rng(7 + i) for i in range(4)],
                )
            )
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])


class TestEarlyExitMasks:
    def test_falsifying_region_freezes_without_stalling_others(self):
        # Region 0 contains true counterexamples (Example 2.2 above ~1.5);
        # region 1 is robust.  The batch must report the counterexample and
        # still minimize the robust region.
        net = example_2_2_network()
        obj = MarginObjective(net, 1)
        regions = [
            Box(np.array([-1.0]), np.array([2.0])),
            Box(np.array([-0.5]), np.array([0.5])),
        ]
        config = PGDConfig(steps=50, restarts=3, stop_below=0.0)
        xs, fs = pgd_minimize_batch(
            obj, regions, config, [np.random.default_rng(s) for s in (0, 1)]
        )
        assert fs[0] <= 0.0
        assert net.classify(xs[0]) == 0
        assert fs[1] > 0.0
        assert regions[1].contains(xs[1])

    def test_all_regions_exit_on_permissive_threshold(self):
        net = xor_network()
        obj = MarginObjective(net, 1)
        regions = [Box.unit(2), Box(np.array([0.2, 0.2]), np.array([0.8, 0.8]))]
        config = PGDConfig(steps=10_000, restarts=2, stop_below=100.0)
        xs, fs = pgd_minimize_batch(
            obj, regions, config, [np.random.default_rng(s) for s in (0, 1)]
        )
        assert np.all(fs <= 100.0)

    def test_deadline_returns_current_best(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 0)
        regions = _regions(5, 3, n=4)
        xs, fs = pgd_minimize_batch(
            obj,
            regions,
            PGDConfig(steps=10_000),
            [np.random.default_rng(s) for s in range(3)],
            Deadline(limit=-1.0),
        )
        for i, region in enumerate(regions):
            assert region.contains(xs[i])


class TestValidation:
    def test_empty_regions_rejected(self):
        net = xor_network()
        obj = MarginObjective(net, 0)
        with pytest.raises(ValueError):
            pgd_minimize_batch(obj, [], PGDConfig())

    def test_generator_count_mismatch_rejected(self):
        net = xor_network()
        obj = MarginObjective(net, 0)
        with pytest.raises(ValueError):
            pgd_minimize_batch(
                obj, [Box.unit(2), Box.unit(2)], PGDConfig(),
                [np.random.default_rng(0)],
            )
