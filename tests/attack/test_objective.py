"""Tests for the margin objective F (Eq. 2)."""

import numpy as np
import pytest

from repro.attack.objective import MarginObjective
from repro.nn.builders import mlp, xor_network


class TestValue:
    def test_known_values_on_xor(self):
        net = xor_network()
        obj = MarginObjective(net, label=0)
        # N([0,0]) = [1, 0]: margin for class 0 is 1.
        assert obj.value(np.array([0.0, 0.0])) == pytest.approx(1.0)
        # N([0,1]) = [0, 1]: margin for class 0 is -1.
        assert obj.value(np.array([0.0, 1.0])) == pytest.approx(-1.0)

    def test_callable(self):
        net = xor_network()
        obj = MarginObjective(net, 1)
        assert obj(np.array([0.0, 1.0])) == obj.value(np.array([0.0, 1.0]))

    def test_nonpositive_iff_misclassified_or_tied(self):
        net = mlp(4, [10], 3, rng=0)
        obj = MarginObjective(net, 1)
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.normal(size=4)
            value = obj.value(x)
            if net.classify(x) == 1 and value > 0:
                assert value > 0
            if value < 0:
                assert net.classify(x) != 1

    def test_validates_label(self):
        net = mlp(4, [8], 3, rng=0)
        with pytest.raises(ValueError, match="label"):
            MarginObjective(net, 5)

    def test_rejects_single_class(self):
        net = mlp(4, [8], 1, rng=0)
        with pytest.raises(ValueError, match="two classes"):
            MarginObjective(net, 0)


class TestGradient:
    def test_matches_numerical(self):
        net = mlp(5, [12, 12], 4, rng=1)
        obj = MarginObjective(net, 2)
        rng = np.random.default_rng(1)
        x = rng.normal(size=5)
        value, grad = obj.value_and_gradient(x)
        assert value == pytest.approx(obj.value(x))
        eps = 1e-6
        for i in range(5):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            num = (obj.value(xp) - obj.value(xm)) / (2 * eps)
            np.testing.assert_allclose(grad[i], num, rtol=1e-4, atol=1e-7)

    def test_gradient_alias(self):
        net = mlp(3, [6], 2, rng=0)
        obj = MarginObjective(net, 0)
        x = np.ones(3)
        np.testing.assert_array_equal(
            obj.gradient(x), obj.value_and_gradient(x)[1]
        )

    def test_target_gradient_matches_numerical(self):
        net = mlp(4, [10], 3, rng=2)
        obj = MarginObjective(net, 1)
        rng = np.random.default_rng(2)
        x = rng.normal(size=4)
        grad = obj.target_gradient(x)
        eps = 1e-6
        for i in range(4):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            num = (net.logits(xp)[1] - net.logits(xm)[1]) / (2 * eps)
            np.testing.assert_allclose(grad[i], num, rtol=1e-4, atol=1e-7)
