"""Incremental re-verification through the scheduler (``--incremental``).

The scheduler contract on top of the checkpoint seam: a run with
``incremental=True`` and a cache probes the prefix family before every
fused Analyze dispatch, resumes from the deepest hit, and re-captures the
boundaries past it — while producing exactly the outcomes a cold run
would (the analyzer-level bitwise guarantee is pinned in
``tests/abstract/test_checkpoint.py``; these tests pin the plumbing:
probing, counters, report fields, executor transparency, and the
fallbacks when the cache is absent or the domain is not checkpointable).
"""

import numpy as np
import pytest

from repro.abstract.domains import DEEPPOLY
from repro.attack.pgd import PGDConfig
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.core.property import linf_property
from repro.exec import ProcessExecutor
from repro.nn.builders import mlp
from repro.sched import ResultCache, Scheduler, VerificationJob


def _network(rng=0):
    return mlp(6, [16, 12], 4, rng=rng)  # D R D R D: boundaries [2, 4]


def _jobs(net, count=4):
    config = VerifierConfig(timeout=30.0, pgd=PGDConfig(steps=4, restarts=1))
    policy = BisectionPolicy(domain=DEEPPOLY)
    rng = np.random.default_rng(3)
    jobs = []
    while len(jobs) < count:
        x = rng.uniform(0.2, 0.8, 6)
        logits = net.forward(x)
        if logits.max() - np.partition(logits, -2)[-2] > 0.2:
            jobs.append(
                VerificationJob(
                    net,
                    linf_property(net, x, 1e-3, name=f"j{len(jobs)}"),
                    config=config,
                    policy=policy,
                    seed=len(jobs),
                    name=f"j{len(jobs)}",
                )
            )
    return jobs


def _tuned(net, layer_indices, scale=1e-6):
    copy = mlp(6, [16, 12], 4, rng=0)
    copy.set_params([np.array(p) for p in net.params()])
    gen = np.random.default_rng(11)
    for index in layer_indices:
        layer = copy.layers[index]
        layer.weight += gen.normal(0.0, scale, layer.weight.shape)
    copy.invalidate_ops()
    return copy


def assert_outcomes_equal(a, b):
    assert len(a.results) == len(b.results)
    for ra, rb in zip(a.results, b.results):
        assert ra.outcome.kind == rb.outcome.kind, ra.job.name
        if ra.outcome.kind == "falsified":
            np.testing.assert_array_equal(
                ra.outcome.counterexample, rb.outcome.counterexample
            )


class TestFineTuneScenario:
    def test_resume_hits_and_outcomes_match_cold(self, tmp_path):
        net = _network()
        cache = ResultCache(tmp_path / "cache")
        warm = Scheduler(_jobs(net), cache=cache, incremental=True).run()
        assert warm.incremental
        assert warm.prefix_hits == 0  # nothing stored yet
        assert warm.metrics.get("sched.prefix.puts", 0) > 0

        tuned = _tuned(net, [-1])  # output layer only
        cold = Scheduler(_jobs(tuned)).run()
        inc = Scheduler(_jobs(tuned), cache=cache, incremental=True).run()
        assert_outcomes_equal(cold, inc)
        assert inc.prefix_hits > 0
        # Deepest boundary of D R D R D is 4 -> at least 4 layers served
        # from the checkpoint on every hit.
        assert inc.prefix_layers_skipped >= 4
        assert inc.cache_hits == 0  # tuned digest misses every result key

    def test_second_identical_run_serves_results_not_prefixes(self, tmp_path):
        # Job-level result records shadow the prefix path entirely: a
        # re-run of the same jobs does zero analyze work.
        net = _network()
        cache = ResultCache(tmp_path / "cache")
        Scheduler(_jobs(net), cache=cache, incremental=True).run()
        again = Scheduler(_jobs(net), cache=cache, incremental=True).run()
        assert again.cache_hits == len(again.results)
        assert again.prefix_hits == 0

    def test_whole_network_change_degrades_gracefully(self, tmp_path):
        net = _network()
        cache = ResultCache(tmp_path / "cache")
        Scheduler(_jobs(net), cache=cache, incremental=True).run()
        changed = _tuned(net, [0, 2, 4])  # every Dense layer moved
        cold = Scheduler(_jobs(changed)).run()
        inc = Scheduler(_jobs(changed), cache=cache, incremental=True).run()
        assert_outcomes_equal(cold, inc)
        assert inc.prefix_hits == 0
        assert inc.metrics.get("sched.prefix.misses", 0) > 0

    def test_without_cache_runs_plain(self):
        report = Scheduler(_jobs(_network()), incremental=True).run()
        assert report.incremental
        assert report.prefix_hits == 0
        assert report.metrics.get("sched.prefix.puts", 0) == 0

    def test_unsupported_domain_falls_back_to_plain(self, tmp_path):
        # The default learned policy picks a 2-disjunct zonotope powerset
        # -- not checkpointable; incremental must be a silent no-op.
        net = _network()
        config = VerifierConfig(timeout=30.0, pgd=PGDConfig(steps=4, restarts=1))
        rng = np.random.default_rng(3)
        jobs = lambda: [
            VerificationJob(
                net,
                linf_property(net, x, 1e-3),
                config=config,
                seed=i,
            )
            for i, x in enumerate(rng.uniform(0.2, 0.8, (3, 6)))
        ]
        cache = ResultCache(tmp_path / "cache")
        plain = Scheduler(jobs()).run()
        inc = Scheduler(jobs(), cache=cache, incremental=True).run()
        assert_outcomes_equal(plain, inc)
        assert inc.prefix_hits == 0
        assert inc.metrics.get("sched.prefix.puts", 0) == 0

    def test_default_report_is_not_incremental(self):
        report = Scheduler(_jobs(_network())).run()
        assert not report.incremental
        assert report.prefix_hits == 0
        assert report.prefix_layers_skipped == 0


class TestExecutorTransparency:
    def test_process_executor_matches_serial(self, tmp_path):
        """The resume operand rides the process transport unchanged."""
        net = _network()
        tuned = _tuned(net, [-1])
        legs = {}
        executor = ProcessExecutor(2, shm_threshold=0)
        try:
            for leg in ("serial", "process"):
                cache = ResultCache(tmp_path / f"cache-{leg}")
                Scheduler(_jobs(net), cache=cache, incremental=True).run()
                legs[leg] = Scheduler(
                    _jobs(tuned),
                    cache=cache,
                    incremental=True,
                    executor=executor if leg == "process" else None,
                ).run()
        finally:
            executor.shutdown()
        assert legs["serial"].prefix_hits > 0
        assert legs["process"].prefix_hits > 0
        assert_outcomes_equal(legs["serial"], legs["process"])
        assert (
            legs["process"].prefix_layers_skipped
            == legs["serial"].prefix_layers_skipped
        )
