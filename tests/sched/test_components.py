"""The scheduler's fused-kernel building blocks, pinned row by row.

Cross-property sweeps are only correct if the per-region-label kernels
compute exactly what their single-label counterparts compute per row, and
if the vectorized powerset transformers match the per-disjunct loops they
replaced.  These tests compare them directly.
"""

import numpy as np
import pytest

from repro.abstract.analyzer import analyze, analyze_batch, analyze_batch_multi
from repro.abstract.domains import (
    DEEPPOLY,
    INTERVAL,
    ZONOTOPE,
    bounded_zonotopes,
)
from repro.abstract.powerset import PowersetElement
from repro.abstract.zonotope import Zonotope
from repro.attack.objective import MarginObjective, MultiLabelMarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize_batch
from repro.nn.builders import mlp
from repro.utils.boxes import Box


@pytest.fixture(scope="module")
def net():
    return mlp(4, [10, 10], 4, rng=2)


class TestMultiLabelObjective:
    def test_values_match_per_label_objectives(self, net):
        """Row i equals the single-label objective's row i on the *same*
        batch (identical GEMM shape -> identical bits)."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(6, 4))
        labels = [0, 1, 2, 3, 1, 0]
        multi = MultiLabelMarginObjective(net, labels)
        values = multi.value_batch(x)
        for i, label in enumerate(labels):
            assert values[i] == MarginObjective(net, label).value_batch(x)[i]

    def test_gradients_match_per_label_objectives(self, net):
        rng = np.random.default_rng(1)
        labels = [2, 0, 3]
        x = rng.uniform(0, 1, size=(6, 4))  # two rows per region label
        multi = MultiLabelMarginObjective(net, labels)
        values, grads = multi.value_and_gradient_batch(x)
        row_labels = np.repeat(labels, 2)
        for i, label in enumerate(row_labels):
            ref_v, ref_g = MarginObjective(
                net, int(label)
            ).value_and_gradient_batch(x)
            assert values[i] == ref_v[i]
            np.testing.assert_array_equal(grads[i], ref_g[i])

    def test_uniform_labels_match_single_label_objective(self, net):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(4, 4))
        multi = MultiLabelMarginObjective(net, [1, 1, 1, 1])
        np.testing.assert_array_equal(
            multi.value_batch(x), MarginObjective(net, 1).value_batch(x)
        )

    def test_pgd_rows_match_single_label_runs(self, net):
        """The fused PGD kernel with mixed labels reproduces each region's
        single-label trajectory bit for bit."""
        regions = [
            Box.linf_ball(np.full(4, 0.4), 0.2),
            Box.linf_ball(np.full(4, 0.6), 0.15),
            Box.linf_ball(np.full(4, 0.5), 0.25),
        ]
        labels = [0, 2, 3]
        config = PGDConfig(steps=25, restarts=2, stop_below=-np.inf)
        seeds = [11, 22, 33]
        multi_x, multi_f = pgd_minimize_batch(
            MultiLabelMarginObjective(net, labels),
            regions,
            config,
            [np.random.default_rng(s) for s in seeds],
        )
        for i, (region, label) in enumerate(zip(regions, labels)):
            solo_x, solo_f = pgd_minimize_batch(
                MarginObjective(net, label),
                [region],
                config,
                [np.random.default_rng(seeds[i])],
            )
            np.testing.assert_array_equal(multi_x[i], solo_x[0])
            assert multi_f[i] == solo_f[0]

    def test_rejects_bad_labels_and_row_counts(self, net):
        with pytest.raises(ValueError, match="label"):
            MultiLabelMarginObjective(net, [0, 9])
        with pytest.raises(ValueError, match="label"):
            MultiLabelMarginObjective(net, [-1])
        multi = MultiLabelMarginObjective(net, [0, 1])
        with pytest.raises(ValueError, match="region blocks"):
            multi.value_batch(np.zeros((3, 4)))


class TestAnalyzeBatchMulti:
    @pytest.mark.parametrize(
        "domain", [INTERVAL, DEEPPOLY, ZONOTOPE, bounded_zonotopes(4)]
    )
    def test_matches_per_region_analyze(self, net, domain):
        rng = np.random.default_rng(3)
        regions = [
            Box.linf_ball(rng.uniform(0.3, 0.7, 4), 0.1) for _ in range(5)
        ]
        labels = [0, 3, 1, 2, 0]
        results = analyze_batch_multi(net, regions, labels, domain)
        for region, label, result in zip(regions, labels, results):
            solo = analyze(net, region, label, domain)
            assert result.verified == solo.verified
            assert result.margin_lower_bound == pytest.approx(
                solo.margin_lower_bound, abs=1e-9
            )

    def test_uniform_labels_match_analyze_batch(self, net):
        rng = np.random.default_rng(4)
        regions = [
            Box.linf_ball(rng.uniform(0.3, 0.7, 4), 0.05) for _ in range(4)
        ]
        multi = analyze_batch_multi(net, regions, [2] * 4, DEEPPOLY)
        single = analyze_batch(net, regions, 2, DEEPPOLY)
        for a, b in zip(multi, single):
            assert a.verified == b.verified
            assert a.margin_lower_bound == b.margin_lower_bound

    def test_validates_inputs(self, net):
        region = Box.linf_ball(np.full(4, 0.5), 0.1)
        with pytest.raises(ValueError, match="labels"):
            analyze_batch_multi(net, [region, region], [0], INTERVAL)
        with pytest.raises(ValueError, match="label"):
            analyze_batch_multi(net, [region], [99], INTERVAL)
        with pytest.raises(ValueError, match="dims"):
            analyze_batch_multi(
                net, [Box.linf_ball(np.zeros(3), 0.1)], [0], INTERVAL
            )


def _random_powerset(rng, disjuncts, gens, dim):
    """Same-shape random zonotope disjuncts inside one powerset."""
    elements = [
        Zonotope(
            rng.normal(size=dim),
            rng.normal(size=(gens, dim)) * 0.3,
            np.abs(rng.normal(size=dim)) * 0.1,
        )
        for _ in range(disjuncts)
    ]
    return PowersetElement(elements, max_disjuncts=max(disjuncts, 4))


class TestPowersetVectorization:
    def test_affine_matches_per_disjunct_loop(self):
        rng = np.random.default_rng(5)
        element = _random_powerset(rng, disjuncts=3, gens=6, dim=5)
        weight = rng.normal(size=(4, 5))
        bias = rng.normal(size=4)
        fused = element.affine(weight, bias)
        for disjunct, reference in zip(
            fused.elements, [e.affine(weight, bias) for e in element.elements]
        ):
            np.testing.assert_allclose(
                disjunct.center, reference.center, atol=1e-12
            )
            np.testing.assert_allclose(
                disjunct.gens, reference.gens, atol=1e-12
            )
            np.testing.assert_array_equal(disjunct.err, reference.err)

    def test_relu_matches_per_disjunct_loop(self, monkeypatch):
        rng = np.random.default_rng(6)
        elements = [_random_powerset(rng, 4, 5, 6) for _ in range(10)]
        fused = [e.relu() for e in elements]
        # The pre-vectorization semantics: per-disjunct base transformer.
        monkeypatch.setattr(
            PowersetElement,
            "_final_relu",
            staticmethod(
                lambda current: [e.relu(skip_dims=done) for e, done in current]
            ),
        )
        for element, fast in zip(elements, fused):
            slow = element.relu()
            assert fast.num_disjuncts == slow.num_disjuncts
            for a, b in zip(fast.elements, slow.elements):
                np.testing.assert_array_equal(a.center, b.center)
                np.testing.assert_array_equal(a.gens, b.gens)
                np.testing.assert_array_equal(a.err, b.err)

    def test_final_relu_no_split_matches_clamp(self):
        """Disjuncts with no remaining crossings take the batched clamp;
        it must equal each disjunct's own ReLU transformer output."""
        rng = np.random.default_rng(7)
        # Shift centers so dimensions are decisively positive or negative:
        # no crossings, the batched-clamp path.
        elements = []
        for _ in range(3):
            center = np.where(rng.uniform(size=5) < 0.5, -3.0, 3.0)
            elements.append(
                Zonotope(
                    center,
                    rng.normal(size=(4, 5)) * 0.2,
                    np.abs(rng.normal(size=5)) * 0.05,
                )
            )
        element = PowersetElement(elements, max_disjuncts=3)
        fused = element.relu()
        for disjunct, base in zip(fused.elements, elements):
            reference = base.relu()
            np.testing.assert_array_equal(disjunct.center, reference.center)
            np.testing.assert_array_equal(disjunct.gens, reference.gens)
            np.testing.assert_array_equal(disjunct.err, reference.err)

    def test_mixed_shapes_fall_back(self):
        """Disjuncts with unequal generator shapes use the loop path."""
        a = Zonotope(np.array([1.0, -2.0]), np.zeros((2, 2)), np.zeros(2))
        b = Zonotope(np.array([-1.0, 2.0]), np.zeros((3, 2)), np.zeros(2))
        element = PowersetElement.__new__(PowersetElement)
        element.elements = [a, b]
        element.max_disjuncts = 2
        weight = np.array([[1.0, 0.5], [-0.5, 2.0]])
        fused = element.affine(weight, np.zeros(2))
        for disjunct, reference in zip(
            fused.elements, [e.affine(weight, np.zeros(2)) for e in (a, b)]
        ):
            np.testing.assert_array_equal(disjunct.center, reference.center)
