"""The persistent result cache: keys, round-trips, and radius queries."""

import json

import numpy as np
import pytest

from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy, LinearPolicy
from repro.core.property import RobustnessProperty, linf_property
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.nn.builders import mlp, xor_network
from repro.nn.serialize import network_digest
from repro.sched import (
    CacheRecord,
    ResultCache,
    Scheduler,
    VerificationJob,
    config_digest,
    job_key,
    point_digest,
    policy_digest,
    property_digest,
)
from repro.utils.boxes import Box


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _prop(label=1):
    return RobustnessProperty(
        Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), label
    )


class TestDigests:
    def test_network_digest_stable_and_sensitive(self):
        a = mlp(4, [8], 3, rng=0)
        b = mlp(4, [8], 3, rng=0)
        c = mlp(4, [8], 3, rng=1)
        assert network_digest(a) == network_digest(b)
        assert network_digest(a) != network_digest(c)

    def test_network_digest_survives_roundtrip(self, tmp_path):
        from repro.nn.serialize import load_network, save_network

        net = mlp(4, [8], 3, rng=0)
        save_network(net, tmp_path / "net.npz")
        assert network_digest(load_network(tmp_path / "net.npz")) == network_digest(net)

    def test_property_digest_sensitive_to_region_and_label(self):
        base = _prop()
        assert property_digest(base) == property_digest(_prop())
        assert property_digest(base) != property_digest(_prop(label=0))
        moved = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.71])), 1
        )
        assert property_digest(base) != property_digest(moved)

    def test_config_digest_ignores_timeout_only(self):
        base = VerifierConfig(timeout=1.0)
        assert config_digest(base) == config_digest(VerifierConfig(timeout=99.0))
        assert config_digest(base) != config_digest(VerifierConfig(delta=0.5))
        assert config_digest(base) != config_digest(VerifierConfig(batch_size=4))

    def test_policy_digest_covers_parameters(self):
        learned = LinearPolicy.default()
        perturbed = LinearPolicy(learned.theta + 1e-9)
        assert policy_digest(learned) == policy_digest(LinearPolicy.default())
        assert policy_digest(learned) != policy_digest(perturbed)
        assert policy_digest(BisectionPolicy()) != policy_digest(
            BisectionPolicy(split="influence")
        )

    def test_job_key_sensitive_to_seed(self):
        net_digest = network_digest(xor_network())
        config = VerifierConfig()
        policy = BisectionPolicy()
        a = job_key(net_digest, _prop(), config, policy, seed=0)
        b = job_key(net_digest, _prop(), config, policy, seed=1)
        assert a != b

    def test_job_key_sensitive_to_backend(self):
        net_digest = network_digest(xor_network())
        config = VerifierConfig()
        policy = BisectionPolicy()
        ref = job_key(net_digest, _prop(), config, policy, seed=0)
        f32 = job_key(
            net_digest, _prop(), config, policy, seed=0, backend="numpy32"
        )
        assert ref != f32
        # The reference backend keeps its historical (pre-backend) keys,
        # so existing caches stay warm.
        assert ref == job_key(
            net_digest, _prop(), config, policy, seed=0, backend="numpy64"
        )


class TestRecordRoundtrip:
    def test_falsified_roundtrip(self, cache):
        stats = VerificationStats(pgd_calls=3, analyze_calls=2, splits=1)
        stats.record_domain("Z")
        witness = np.array([0.25, 0.75])
        record = CacheRecord.from_outcome(
            Falsified(witness, -0.125, stats), "netdigest", 1, {"epsilon": 0.1}
        )
        cache.put("k" * 64, record)
        loaded = cache.get("k" * 64)
        outcome = loaded.to_outcome()
        assert outcome.kind == "falsified"
        np.testing.assert_array_equal(outcome.counterexample, witness)
        assert outcome.margin == -0.125
        assert outcome.stats.pgd_calls == 3
        assert outcome.stats.domains_used == stats.domains_used
        assert outcome.stats.time_seconds == 0.0  # hits spend no time
        assert loaded.metadata == {"epsilon": 0.1}

    def test_verified_roundtrip(self, cache):
        record = CacheRecord.from_outcome(
            Verified(VerificationStats(analyze_calls=5)), "d", 0
        )
        cache.put("v" * 64, record)
        assert cache.get("v" * 64).to_outcome().kind == "verified"

    def test_timeouts_are_not_cacheable(self):
        with pytest.raises(ValueError, match="cache"):
            CacheRecord.from_outcome(
                Timeout("wall clock", VerificationStats()), "d", 0
            )

    def test_missing_key_is_none(self, cache):
        assert cache.get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put("c" * 64, CacheRecord.from_outcome(
            Verified(VerificationStats()), "d", 0
        ))
        path = cache._path("c" * 64)
        path.write_text("{not json")
        assert cache.get("c" * 64) is None

    def test_len_counts_entries(self, cache):
        assert len(cache) == 0
        record = CacheRecord.from_outcome(Verified(VerificationStats()), "d", 0)
        cache.put("a" * 64, record)
        cache.put("b" * 64, record)
        assert len(cache) == 2

    def test_entries_are_valid_json_files(self, cache):
        cache.put("e" * 64, CacheRecord.from_outcome(
            Verified(VerificationStats()), "d", 0
        ))
        payload = json.loads(cache._path("e" * 64).read_text())
        assert payload["kind"] == "verified"


class TestSchedulerIntegration:
    def test_second_run_is_served_from_cache(self, cache):
        net = mlp(4, [12, 12], 3, rng=5)
        config = VerifierConfig(timeout=20.0, batch_size=8)
        rng = np.random.default_rng(3)
        jobs = []
        for i in range(4):
            center = rng.uniform(0.2, 0.8, 4)
            prop = linf_property(net, center, 0.2, name=f"p{i}")
            jobs.append(
                VerificationJob(net, prop, config=config, seed=0, name=prop.name)
            )
        first = Scheduler(jobs, cache=cache).run()
        decided = [
            r for r in first.results
            if r.outcome.kind in ("verified", "falsified")
        ]
        assert decided
        second = Scheduler(jobs, cache=cache).run()
        assert second.cache_hits == len(decided)
        if len(decided) == len(jobs):
            assert second.sweeps == 0
            assert second.fresh_calls() == 0
        for a, b in zip(first.results, second.results):
            assert a.outcome.kind == b.outcome.kind
            if a.outcome.kind == "falsified":
                np.testing.assert_array_equal(
                    a.outcome.counterexample, b.outcome.counterexample
                )

    def test_different_seed_misses(self, cache):
        net = xor_network()
        prop = _prop()
        config = VerifierConfig(timeout=10.0)
        job_a = VerificationJob(net, prop, config=config, seed=0)
        Scheduler([job_a], cache=cache).run()
        job_b = VerificationJob(net, prop, config=config, seed=1)
        report = Scheduler([job_b], cache=cache).run()
        assert report.cache_hits == 0

    def test_retrained_network_misses(self, cache):
        config = VerifierConfig(timeout=10.0)
        prop_region = Box(np.full(4, 0.4), np.full(4, 0.6))
        net_a = mlp(4, [8], 3, rng=0)
        net_b = mlp(4, [8], 3, rng=7)
        prop_a = RobustnessProperty(prop_region, net_a.classify(prop_region.center))
        Scheduler(
            [VerificationJob(net_a, prop_a, config=config)], cache=cache
        ).run()
        prop_b = RobustnessProperty(prop_region, prop_a.label)
        report = Scheduler(
            [VerificationJob(net_b, prop_b, config=config)], cache=cache
        ).run()
        assert report.cache_hits == 0


class TestRadiusQueries:
    def test_bounds_fold_over_cached_entries(self, cache):
        net = xor_network()
        center = np.array([0.5, 0.5])
        digest = network_digest(net)
        config = VerifierConfig(timeout=10.0)
        jobs = []
        for epsilon in (0.02, 0.05, 0.3, 0.45):
            prop = linf_property(net, center, epsilon, name=f"eps-{epsilon}")
            jobs.append(
                VerificationJob(
                    net, prop, config=config, seed=0, name=prop.name,
                    metadata={
                        "center_digest": point_digest(center),
                        "epsilon": epsilon,
                    },
                )
            )
        report = Scheduler(jobs, cache=cache).run()
        kinds = {
            job.metadata["epsilon"]: result.outcome.kind
            for job, result in zip(jobs, report.results)
        }
        certified, falsified = cache.radius_bounds(net, center)
        verified_eps = [e for e, k in kinds.items() if k == "verified"]
        falsified_eps = [e for e, k in kinds.items() if k == "falsified"]
        assert verified_eps and falsified_eps  # the bracket is real
        assert certified == max(verified_eps)
        assert falsified == min(falsified_eps)
        assert certified < falsified

    def test_unknown_center_has_trivial_bounds(self, cache):
        net = xor_network()
        certified, falsified = cache.radius_bounds(net, np.array([0.1, 0.9]))
        assert certified == 0.0
        assert falsified == float("inf")

    def test_accepts_precomputed_digest(self, cache):
        certified, falsified = cache.radius_bounds("deadbeef", np.zeros(2))
        assert (certified, falsified) == (0.0, float("inf"))


class TestEviction:
    def _fill(self, cache, count):
        """Store ``count`` records under distinct synthetic keys."""
        record = CacheRecord(kind="verified", stats={"pgd_calls": 1})
        keys = [f"{i:02x}" + "0" * 62 for i in range(count)]
        for key in keys:
            cache.put(key, record)
        return keys

    def test_prune_by_entries_removes_oldest_first(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "c")
        keys = self._fill(cache, 5)
        # Age the first three records; recency is mtime.
        for i, key in enumerate(keys[:3]):
            os.utime(cache._path(key), (1000.0 + i, 1000.0 + i))
        result = cache.prune(max_entries=3)
        assert result.removed == 2
        assert result.remaining == 3
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        for key in keys[2:]:
            assert cache.get(key) is not None

    def test_prune_by_bytes(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._fill(cache, 4)
        sizes = [size for _, _, size in cache._entries()]
        budget = sum(sizes) - 1  # force exactly one eviction
        result = cache.prune(max_bytes=budget)
        assert result.removed == 1
        assert result.remaining_bytes <= budget
        assert len(cache) == 3

    def test_get_refreshes_recency(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "c")
        keys = self._fill(cache, 3)
        for i, key in enumerate(keys):
            os.utime(cache._path(key), (1000.0 + i, 1000.0 + i))
        # Serving the oldest record must rescue it from the next prune.
        assert cache.get(keys[0]) is not None
        result = cache.prune(max_entries=1)
        assert result.remaining == 1
        assert cache.get(keys[0]) is not None

    def test_budgeted_put_keeps_cache_within_limits(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "c", max_entries=3)
        record = CacheRecord(kind="verified")
        for i in range(6):
            key = f"{i:02x}" + "f" * 62
            cache.put(key, record)
            # Distinct mtimes make the LRU order deterministic even on
            # coarse filesystem timestamp granularity.
            os.utime(cache._path(key), (2000.0 + i, 2000.0 + i))
        # Put-triggered prunes evict to 7/8 of the budget (hysteresis),
        # so the directory never exceeds the budget but may sit below it.
        assert 1 <= len(cache) <= 3

    def test_unbudgeted_prune_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._fill(cache, 3)
        result = cache.prune()
        assert result.removed == 0
        assert result.remaining == 3

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "c", max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "c", max_bytes=0)

    def test_prune_rejects_zero_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        self._fill(cache, 2)
        with pytest.raises(ValueError):
            cache.prune(max_entries=0)
        with pytest.raises(ValueError):
            cache.prune(max_bytes=0)
        assert len(cache) == 2  # nothing was wiped

    def test_same_timestamp_eviction_is_deterministic(self, tmp_path):
        """Records written within one timestamp evict in path order.

        ``st_mtime`` is seconds-granularity on some filesystems, so a
        burst of puts can share a timestamp; recency must fall back to a
        stable tiebreak, not directory-iteration order.
        """
        import os

        def survivors(root):
            cache = ResultCache(root)
            keys = self._fill(cache, 6)
            # Forge identical nanosecond mtimes for every record: the
            # worst case a coarse-timestamp filesystem can produce.
            for key in keys:
                os.utime(cache._path(key), ns=(10**12, 10**12))
            result = cache.prune(max_entries=3)
            assert result.removed == 3
            return keys, {key for key in keys if cache.get(key) is not None}

        keys_a, first = survivors(tmp_path / "a")
        keys_b, second = survivors(tmp_path / "b")
        assert first == second  # deterministic, not iteration-order luck
        # The stable tiebreak is the record path, so the lexicographically
        # largest keys survive a same-timestamp prune.
        assert first == set(sorted(keys_a)[3:])

    def test_nanosecond_recency_orders_same_second_writes(self, tmp_path):
        """Sub-second mtime differences must drive LRU order."""
        import os

        cache = ResultCache(tmp_path / "c")
        keys = self._fill(cache, 3)
        base = 5 * 10**11
        # All three records share the same whole second; only the
        # nanosecond part differs — newest first in key order.
        for i, key in enumerate(keys):
            os.utime(cache._path(key), ns=(base - i, base - i))
        result = cache.prune(max_entries=1)
        assert result.remaining == 1
        assert cache.get(keys[0]) is not None  # largest mtime_ns survives
        assert cache.get(keys[1]) is None
        assert cache.get(keys[2]) is None

    def test_shared_directory_estimate_rescan(self, tmp_path):
        """A budgeted instance must notice records another process wrote.

        The in-memory size estimate counts only this instance's own
        puts; before the periodic re-scan, a second writer sharing the
        directory could grow it far past budget without the budgeted
        instance ever noticing (its own counter never crosses).
        """
        record = CacheRecord(kind="verified", stats={"pgd_calls": 1})
        shared = tmp_path / "c"
        budgeted = ResultCache(shared, max_entries=6, estimate_refresh=2)
        other = ResultCache(shared)  # e.g. another scheduler process
        # Initialize the budgeted instance's estimate with two puts...
        for i in range(2):
            budgeted.put(f"{i:02x}" + "a" * 62, record)
        # ...then let the other process flood the directory.
        for i in range(20):
            other.put(f"{i:02x}" + "b" * 62, record)
        assert len(budgeted._entries()) == 22
        # Four more own puts: the budgeted instance's own counter (6)
        # never crosses the budget, but the every-2-puts re-scan sees the
        # other writer's 20 records and prunes the shared directory.
        for i in range(2, 6):
            budgeted.put(f"{i:02x}" + "a" * 62, record)
        assert len(budgeted._entries()) <= 6

    def test_estimate_refresh_validation(self, tmp_path):
        with pytest.raises(ValueError, match="estimate_refresh"):
            ResultCache(tmp_path / "c", estimate_refresh=0)


class TestRadiusTable:
    def test_one_scan_serves_many_centers(self, cache):
        net = xor_network()
        digest = network_digest(net)
        centers = [np.array([0.1, 0.2]), np.array([0.7, 0.8])]
        for i, (center, eps, kind) in enumerate(
            [(centers[0], 0.05, "verified"), (centers[0], 0.2, "falsified"),
             (centers[1], 0.1, "verified")]
        ):
            record = CacheRecord(
                kind=kind,
                margin=-1.0 if kind == "falsified" else None,
                counterexample=[0.0, 0.0] if kind == "falsified" else None,
                network_digest=digest,
                metadata={"center_digest": point_digest(center),
                          "epsilon": eps},
            )
            cache.put(f"{i:02x}" + "a" * 62, record)
        table = cache.radius_table(net)
        assert table[point_digest(centers[0])] == (0.05, 0.2)
        assert table[point_digest(centers[1])] == (0.1, float("inf"))
        # The single-center wrapper agrees with the table.
        assert cache.radius_bounds(net, centers[0]) == (0.05, 0.2)
        assert cache.radius_bounds(net, np.array([0.5, 0.5])) == (
            0.0, float("inf")
        )


class TestPrefixFamily:
    """PrefixRecord files: family counts, shared budgets, LRU mixing."""

    def _prefix_record(self, i, height=2):
        from repro.abstract.checkpoint import PrefixBounds

        return PrefixBounds(
            boundary=2,
            op_count=2,
            prefix_digest=f"prefix-{i}",
            regions_digest=f"regions-{i}",
            domain=("interval", 1),
            backend="numpy64",
            kind="interval_batch",
            meta=None,
            arrays={
                "low": np.zeros((height, 3)),
                "high": np.ones((height, 3)),
            },
        )

    def _prefix_path(self, cache, record):
        from repro.sched.cache import prefix_key

        return cache._prefix_path(
            prefix_key(
                record.prefix_digest,
                record.regions_digest,
                record.domain[0],
                record.domain[1],
                record.backend,
            )
        )

    def test_family_counts_and_len_cover_both(self, cache):
        record = CacheRecord(kind="verified", stats={})
        cache.put("aa" + "0" * 62, record)
        cache.put("bb" + "0" * 62, record)
        cache.put_prefix(self._prefix_record(0))
        assert cache.family_counts() == (2, 1)
        assert len(cache) == 3

    def test_mixed_family_eviction_is_deterministic(self, tmp_path):
        import os

        def build(root):
            cache = ResultCache(root)
            result = CacheRecord(kind="verified", stats={})
            aged = []
            for i in range(3):
                key = f"{i:02x}" + "0" * 62
                cache.put(key, result)
                aged.append(cache._path(key))
            for i in range(3):
                record = self._prefix_record(i)
                cache.put_prefix(record)
                aged.append(self._prefix_path(cache, record))
            # Interleave the families in age: result, prefix, result, ...
            order = [aged[0], aged[3], aged[1], aged[4], aged[2], aged[5]]
            for age, path in enumerate(order):
                os.utime(path, (1000.0 + age, 1000.0 + age))
            return cache, order

        cache_a, order_a = build(tmp_path / "a")
        cache_b, order_b = build(tmp_path / "b")
        for cache, order in ((cache_a, order_a), (cache_b, order_b)):
            result = cache.prune(max_entries=3)
            assert result.removed == 3
            # Oldest three go, regardless of family: one result record
            # and one prefix record each survive alongside the newest.
            assert [p.exists() for p in order] == [
                False, False, False, True, True, True
            ]
        assert cache_a.family_counts() == cache_b.family_counts() == (1, 2)

    def test_prefix_put_respects_entry_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_entries=4)
        for i in range(10):
            cache.put_prefix(self._prefix_record(i))
        assert len(cache) <= 4

    def test_prefix_hit_refreshes_recency(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "c")
        records = [self._prefix_record(i) for i in range(3)]
        for record in records:
            cache.put_prefix(record)
        for i, record in enumerate(records):
            os.utime(self._prefix_path(cache, record), (1000.0 + i, 1000.0 + i))
        # Serving the oldest must rescue it from the next prune.
        assert cache.get_prefix(
            records[0].prefix_digest,
            records[0].regions_digest,
            records[0].domain,
            records[0].backend,
        ) is not None
        cache.prune(max_entries=1)
        assert self._prefix_path(cache, records[0]).exists()
        assert not self._prefix_path(cache, records[1]).exists()

    def test_corrupt_prefix_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        record = self._prefix_record(0)
        cache.put_prefix(record)
        self._prefix_path(cache, record).write_bytes(b"not an npz")
        assert cache.get_prefix(
            record.prefix_digest,
            record.regions_digest,
            record.domain,
            record.backend,
        ) is None


class TestLongestReusablePrefix:
    def test_fine_tune_finds_deepest_boundary(self, tmp_path):
        from repro.abstract.analyzer import analyze_batch_checkpointed
        from repro.abstract.checkpoint import checkpoint_boundaries
        from repro.abstract.domains import DEEPPOLY
        from repro.utils.boxes import Box

        net = mlp(4, [8, 6, 5], 3, rng=0)  # boundaries [2, 4, 6]
        regions = [
            Box.from_center_radius(np.full(4, 0.3), 0.05),
            Box.from_center_radius(np.full(4, -0.2), 0.05),
        ]
        cache = ResultCache(tmp_path / "c")
        _, captured = analyze_batch_checkpointed(
            net, regions, [0, 1], DEEPPOLY,
            capture_boundaries=checkpoint_boundaries(net),
        )
        for record in captured:
            cache.put_prefix(record)

        tuned = mlp(4, [8, 6, 5], 3, rng=0)
        tuned.layers[-1].weight += 1e-6  # only the output layer moved
        common, record = cache.longest_reusable_prefix(
            net, tuned, regions, DEEPPOLY
        )
        assert common == len(net.layers) - 1
        assert record is not None
        assert record.boundary == 6  # the deepest stored boundary

    def test_divergent_networks_reuse_nothing(self, tmp_path):
        from repro.abstract.domains import DEEPPOLY
        from repro.utils.boxes import Box

        cache = ResultCache(tmp_path / "c")
        net = mlp(4, [8], 3, rng=0)
        other = mlp(4, [8], 3, rng=5)
        regions = [Box.from_center_radius(np.full(4, 0.3), 0.05)]
        common, record = cache.longest_reusable_prefix(
            net, other, regions, DEEPPOLY
        )
        assert common == 0
        assert record is None
