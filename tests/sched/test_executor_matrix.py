"""Executor-equivalence matrix: execution placement is a pure knob.

The tentpole contract of the execution layer (DESIGN.md §8–§9):
submitting a scheduler round's independent fused groups to a thread pool
— or marshalling them across a process boundary — changes *which core*
runs a group, never what it computes: group composition, within-group row
order, and result-consumption order are all fixed on the scheduler
thread, and process workers pin their BLAS pools to one thread so GEMM
rounding matches the serial run.  These tests pin bitwise-identical
per-job outcomes, witnesses, and statistics for whole manifests under
``SerialExecutor`` vs ``PooledExecutor`` vs ``ProcessExecutor`` with
workers ∈ {1, 2, 4}, across every frontier policy and both scheduler
engines.
"""

import numpy as np
import pytest

from repro.abstract.domains import DomainSpec
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.core.property import RobustnessProperty, linf_property
from repro.exec import PooledExecutor, ProcessExecutor, SerialExecutor
from repro.nn.builders import mlp, xor_network
from repro.obs.trace import tracer
from repro.sched import Scheduler, VerificationJob
from repro.utils.boxes import Box

POLICIES = ("fifo", "dfs", "priority")
WORKER_COUNTS = (1, 2, 4)

#: Counters that must be executor-invariant: semantic work quantities a
#: run performs, independent of where kernels execute.  Excludes the
#: arena counters (thread-local arenas make alloc/reuse splits placement
#: dependent), phase timers, and exec.* bookkeeping (named per executor).
SEMANTIC_COUNTERS = (
    "kernel.pgd_batches",
    "kernel.pgd_rows",
    "kernel.analyze_batches",
    "kernel.analyze_rows",
    "fused.calls",
    "fused.compacted_rows",
    "cache.hits",
    "sched.rounds",
)


@pytest.fixture(scope="module", autouse=True)
def force_tracing():
    """The whole matrix runs with tracing ON.

    Tracing must never perturb outcomes; running the bitwise-equality
    matrix under an enabled tracer is the strongest form of that claim.
    """
    tracer().enable()
    yield
    tracer().disable()


def semantic_metrics(report) -> dict:
    return {
        key: report.metrics.get(key, 0)
        for key in SEMANTIC_COUNTERS
    }


@pytest.fixture(scope="module")
def manifest():
    """A multi-network manifest: three MLPs plus XOR, mixed outcomes.

    Multiple networks matter here — fused kernel groups are per network,
    so this is the shape where the pool actually receives several
    independent groups per round.
    """
    config = VerifierConfig(timeout=30.0, batch_size=8)
    rng = np.random.default_rng(7)
    jobs = []
    for net_seed in range(3):
        net = mlp(4, [10], 3, rng=net_seed)
        for i in range(2):
            center = rng.uniform(0.25, 0.75, 4)
            prop = linf_property(net, center, 0.2, name=f"n{net_seed}-p{i}")
            jobs.append(
                VerificationJob(
                    net, prop, config=config, seed=i, name=prop.name
                )
            )
    xor = xor_network()
    jobs.append(
        VerificationJob(
            xor,
            RobustnessProperty(
                Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
            ),
            config=config,
            seed=0,
            name="xor-verified",
        )
    )
    jobs.append(
        VerificationJob(
            xor,
            RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0),
            config=config,
            seed=0,
            name="xor-falsified",
        )
    )
    return jobs


@pytest.fixture(scope="module")
def serial_reports(manifest):
    """Reference runs on the SerialExecutor, one per frontier policy."""
    return {
        policy: Scheduler(
            manifest, frontier=policy, executor=SerialExecutor()
        ).run()
        for policy in POLICIES
    }


@pytest.fixture(scope="module")
def process_executors():
    """One ProcessExecutor per worker width, shared across the matrix.

    Spawned workers each import numpy + repro once; reusing the pools
    keeps the process rows' cost at one spawn per width instead of one
    per (policy, width, engine) cell.
    """
    executors = {}
    try:
        yield lambda workers: executors.setdefault(
            workers, ProcessExecutor(workers)
        )
    finally:
        for executor in executors.values():
            executor.shutdown()


def assert_reports_bitwise_equal(reference, candidate):
    assert len(reference.results) == len(candidate.results)
    for ref, cand in zip(reference.results, candidate.results):
        assert cand.outcome.kind == ref.outcome.kind, ref.job.name
        if ref.outcome.kind == "falsified":
            np.testing.assert_array_equal(
                cand.outcome.counterexample, ref.outcome.counterexample
            )
            assert cand.outcome.margin == ref.outcome.margin
        ref_stats, cand_stats = ref.outcome.stats, cand.outcome.stats
        assert cand_stats.pgd_calls == ref_stats.pgd_calls, ref.job.name
        assert cand_stats.analyze_calls == ref_stats.analyze_calls
        assert cand_stats.splits == ref_stats.splits
        assert cand_stats.max_depth_reached == ref_stats.max_depth_reached
        assert cand_stats.domains_used == ref_stats.domains_used
    # The obs contract rides along: worker counter deltas merged back
    # through the envelopes must make every executor report the same
    # semantic work totals.
    assert semantic_metrics(candidate) == semantic_metrics(reference)


class TestBatchedEngineMatrix:
    @pytest.mark.parametrize("frontier", POLICIES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_pooled_matches_serial(
        self, frontier, workers, manifest, serial_reports
    ):
        with PooledExecutor(workers) as executor:
            pooled = Scheduler(
                manifest, frontier=frontier, executor=executor
            ).run()
        assert pooled.executor == "pooled"
        assert pooled.workers == workers
        assert_reports_bitwise_equal(serial_reports[frontier], pooled)

    def test_workers_argument_builds_the_pool(self, manifest, serial_reports):
        report = Scheduler(manifest, workers=2).run()
        assert report.executor == "pooled" and report.workers == 2
        assert_reports_bitwise_equal(serial_reports["dfs"], report)

    @pytest.mark.parametrize("frontier", POLICIES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_process_matches_serial(
        self, frontier, workers, manifest, serial_reports, process_executors
    ):
        # The hard row of the matrix: every fused group crosses a process
        # boundary as a picklable descriptor, runs under pinned BLAS, and
        # must still reproduce the serial run bit for bit.
        report = Scheduler(
            manifest, frontier=frontier, executor=process_executors(workers)
        ).run()
        assert report.executor == "process"
        assert report.workers == workers
        assert_reports_bitwise_equal(serial_reports[frontier], report)

    def test_executor_kind_argument_builds_the_process_pool(
        self, manifest, serial_reports
    ):
        report = Scheduler(
            manifest, workers=2, executor_kind="process"
        ).run()
        assert report.executor == "process" and report.workers == 2
        assert_reports_bitwise_equal(serial_reports["dfs"], report)

    @pytest.mark.parametrize("frontier", POLICIES)
    def test_shm_transport_matches_serial(
        self, frontier, manifest, serial_reports
    ):
        # The shm-transport row: ``shm_threshold=0`` forces every
        # descriptor operand across the worker boundary as a
        # shared-memory handle (this manifest's arrays sit below the
        # production cutover, so pickle would otherwise carry them all).
        # The transport must be invisible: bitwise-equal reports, and
        # every segment released once the round's futures are consumed.
        with ProcessExecutor(2, shm_threshold=0) as executor:
            report = Scheduler(
                manifest, frontier=frontier, executor=executor
            ).run()
            assert executor._shm is not None
            assert executor._shm.live_segments() == 0
        assert report.executor == "process"
        assert_reports_bitwise_equal(serial_reports[frontier], report)


class TestSequentialEngineMatrix:
    @pytest.fixture(scope="class")
    def serial_report(self, manifest):
        return Scheduler(
            manifest, engine="sequential", executor=SerialExecutor()
        ).run()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_pooled_jobs_match_serial(self, workers, manifest, serial_report):
        with PooledExecutor(workers) as executor:
            pooled = Scheduler(
                manifest, engine="sequential", executor=executor
            ).run()
        assert_reports_bitwise_equal(serial_report, pooled)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_process_jobs_match_serial(
        self, workers, manifest, serial_report, process_executors
    ):
        report = Scheduler(
            manifest, engine="sequential", executor=process_executors(workers)
        ).run()
        assert report.executor == "process"
        assert_reports_bitwise_equal(serial_report, report)


class TestMetricsAggregation:
    """A Process run's merged registry delta equals the Serial run's."""

    @pytest.fixture(scope="class")
    def zono_jobs(self):
        # Pinned zonotope powerset: Analyze crosses the process boundary
        # through the dedicated zonotope fast path (the one that bypasses
        # analyze_batch_multi), so this pins exactly-once counting on
        # both worker entry points.
        config = VerifierConfig(timeout=30.0, batch_size=4)
        policy = BisectionPolicy(domain=DomainSpec("zonotope", 2))
        rng = np.random.default_rng(3)
        net = mlp(3, [8], 3, rng=5)
        jobs = []
        for i in range(3):
            center = rng.uniform(0.3, 0.7, 3)
            # ε chosen so the mix survives the first Minimize: verified
            # and falsified jobs, several refinement rounds, and fused
            # zonotope kernel work — every counter family is non-zero.
            prop = linf_property(net, center, 0.05, name=f"z{i}")
            jobs.append(
                VerificationJob(
                    net, prop, config=config, policy=policy, seed=i,
                    name=prop.name,
                )
            )
        return jobs

    def test_process_merged_metrics_equal_serial(
        self, zono_jobs, process_executors
    ):
        serial = Scheduler(zono_jobs, executor=SerialExecutor()).run()
        process = Scheduler(
            zono_jobs, executor=process_executors(2)
        ).run()
        assert_reports_bitwise_equal(serial, process)
        # Guard against vacuous equality: the run must have done real
        # kernel work, and the process side can only know about it
        # through the envelope merge.
        assert serial.metrics.get("kernel.pgd_batches", 0) > 0
        assert serial.metrics.get("kernel.analyze_batches", 0) > 0
        assert serial.metrics.get("fused.calls", 0) > 0
        assert (
            process.metrics["kernel.pgd_rows"]
            == serial.metrics["kernel.pgd_rows"]
        )

    def test_worker_wait_time_is_observed(self, zono_jobs, process_executors):
        report = Scheduler(zono_jobs, executor=process_executors(2)).run()
        # Latency/wait histograms stay process-local but the parent
        # observes each call's queue wait on unwrap.
        from repro.obs.metrics import registry

        waits = registry().snapshot()["histograms"].get("exec.process.wait_s")
        assert waits is not None and waits["count"] > 0
        assert report.metrics.get("exec.process.submitted", 0) > 0


class TestValidation:
    def test_rejects_bad_worker_count(self, manifest):
        with pytest.raises(ValueError, match="workers"):
            Scheduler(manifest, workers=0)

    def test_rejects_unknown_executor_kind(self, manifest):
        with pytest.raises(ValueError, match="executor kind"):
            Scheduler(manifest, workers=2, executor_kind="gpu")

    def test_rejects_kind_alongside_ready_executor(self, manifest):
        with pytest.raises(ValueError, match="not both"):
            Scheduler(
                manifest, executor=SerialExecutor(), executor_kind="pooled"
            )
