"""Scheduler equivalence: fused cross-property runs must match solo runs.

The reproducibility contract (DESIGN.md §6): N properties through one
``Scheduler`` produce identical outcomes, witnesses, and statistics to N
independent ``BatchedVerifier`` runs under fixed seeds — for every
frontier policy, every batch-width controller, and every job mix.  These
tests pin that contract on mixed-label multi-network job sets, plus the
scheduling machinery itself (policies, controller, report).
"""

import numpy as np
import pytest

from repro.core.config import VerifierConfig
from repro.core.property import RobustnessProperty, linf_property
from repro.core.verifier import BatchedVerifier
from repro.nn.builders import mlp, xor_network
from repro.sched import (
    AdaptiveBatchController,
    FixedBatchController,
    JobQueue,
    Scheduler,
    VerificationJob,
    make_frontier,
)
from repro.utils.boxes import Box

POLICIES = ("fifo", "dfs", "priority")


def _quick(**kwargs):
    defaults = {"timeout": 30.0, "batch_size": 8}
    defaults.update(kwargs)
    return VerifierConfig(**defaults)


@pytest.fixture(scope="module")
def job_mix():
    """Mixed-difficulty, mixed-label jobs over two networks."""
    net = mlp(4, [10], 3, rng=5)
    xor = xor_network()
    config = _quick()
    rng = np.random.default_rng(3)
    jobs = []
    for i in range(4):
        center = rng.uniform(0.25, 0.75, 4)
        prop = linf_property(net, center, 0.2, name=f"mlp-{i}")
        jobs.append(
            VerificationJob(net, prop, config=config, seed=i, name=prop.name)
        )
    jobs.append(
        VerificationJob(
            xor,
            RobustnessProperty(
                Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
            ),
            config=config,
            seed=0,
            name="xor-verified",
        )
    )
    jobs.append(
        VerificationJob(
            xor,
            RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0),
            config=config,
            seed=0,
            name="xor-falsified",
        )
    )
    return jobs


@pytest.fixture(scope="module")
def solo_outcomes(job_mix):
    return [
        BatchedVerifier(
            job.network, job.policy, job.config, rng=job.seed
        ).verify(job.prop)
        for job in job_mix
    ]


def assert_job_equivalent(result, solo):
    """One scheduled job must match its solo ``BatchedVerifier`` run."""
    assert result.outcome.kind == solo.kind, result.job.name
    if solo.kind == "falsified":
        np.testing.assert_array_equal(
            result.outcome.counterexample, solo.counterexample
        )
        assert result.outcome.margin == solo.margin
    scheduled, reference = result.outcome.stats, solo.stats
    assert scheduled.pgd_calls == reference.pgd_calls
    assert scheduled.analyze_calls == reference.analyze_calls
    assert scheduled.splits == reference.splits
    assert scheduled.max_depth_reached == reference.max_depth_reached
    assert scheduled.domains_used == reference.domains_used


class TestEquivalence:
    @pytest.mark.parametrize("frontier", POLICIES)
    def test_matches_solo_batched_verifier(
        self, frontier, job_mix, solo_outcomes
    ):
        report = Scheduler(job_mix, frontier=frontier).run()
        assert len(report.results) == len(job_mix)
        for result, solo in zip(report.results, solo_outcomes):
            assert_job_equivalent(result, solo)

    def test_sequential_engine_matches_too(self, job_mix, solo_outcomes):
        report = Scheduler(job_mix, engine="sequential").run()
        for result, solo in zip(report.results, solo_outcomes):
            assert_job_equivalent(result, solo)

    def test_batch_target_invariance(self, job_mix, solo_outcomes):
        """Fused sweep width is a pure performance knob."""
        for target in (1, 4, 64):
            report = Scheduler(
                job_mix, controller=FixedBatchController(target)
            ).run()
            for result, solo in zip(report.results, solo_outcomes):
                assert_job_equivalent(result, solo)

    def test_job_mix_invariance(self, job_mix, solo_outcomes):
        """Co-scheduled strangers never change a job's result."""
        subset = [job_mix[0], job_mix[-1]]
        report = Scheduler(subset, frontier="priority").run()
        assert_job_equivalent(report.results[0], solo_outcomes[0])
        assert_job_equivalent(report.results[1], solo_outcomes[-1])

    def test_submission_order_invariance(self, job_mix, solo_outcomes):
        reversed_jobs = list(reversed(job_mix))
        report = Scheduler(reversed_jobs, frontier="fifo").run()
        for result, solo in zip(report.results, reversed(solo_outcomes)):
            assert_job_equivalent(result, solo)


@pytest.fixture(scope="module")
def default_report(job_mix):
    return Scheduler(job_mix).run()


class TestReport:
    def test_counts_and_throughput(self, job_mix, default_report):
        report = default_report
        counts = report.outcome_counts()
        assert sum(counts.values()) == len(job_mix)
        assert counts["verified"] >= 1 and counts["falsified"] >= 1
        assert report.sweeps > 0
        assert report.swept_items > 0
        assert report.fresh_calls() > 0
        assert report.throughput() > 0
        assert report.engine == "batched"
        assert report.frontier == "dfs"

    def test_elapsed_is_completion_latency(self, default_report):
        report = default_report
        for result in report.results:
            assert 0.0 <= result.elapsed <= report.wall_clock + 1e-6

    def test_empty_queue_raises(self):
        with pytest.raises(ValueError, match="no jobs"):
            Scheduler([]).run()

    def test_unknown_engine_raises(self, job_mix):
        with pytest.raises(ValueError, match="engine"):
            Scheduler(job_mix, engine="warp")

    def test_timeout_jobs_report_timeout(self):
        net = mlp(8, [24, 24, 24], 5, rng=3)
        prop = linf_property(net, np.full(8, 0.5), 0.5)
        job = VerificationJob(
            net, prop, config=VerifierConfig(timeout=0.05), seed=0
        )
        report = Scheduler([job]).run()
        assert report.results[0].outcome.kind in ("timeout", "falsified")

    def test_aborted_analyze_is_never_verified(self, monkeypatch):
        """A mid-kernel TimeoutError must retire the job as Timeout even
        when its whole frontier was popped into the sweep — an empty
        frontier after an abort means 'analysis never completed', not
        'verified' (unsoundness regression guard)."""
        import repro.sched.scheduler as sched_mod

        def explode(*args, **kwargs):
            raise TimeoutError("deadline")

        monkeypatch.setattr(sched_mod, "analyze_batch_multi", explode)
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        job = VerificationJob(
            net, prop, config=VerifierConfig(timeout=30.0), seed=0
        )
        report = Scheduler([job]).run()
        assert report.results[0].outcome.kind == "timeout"


class TestQueueAndPolicies:
    def test_queue_submit_returns_indices(self, job_mix):
        queue = JobQueue()
        assert queue.submit(job_mix[0]) == 0
        assert queue.submit(job_mix[1]) == 1
        assert len(queue) == 2
        assert queue.jobs()[0] is job_mix[0]

    def test_queue_rejects_non_jobs(self):
        with pytest.raises(TypeError):
            JobQueue().submit("not a job")

    def test_make_frontier_rejects_unknown(self):
        with pytest.raises(ValueError, match="frontier"):
            make_frontier("bogus")

    def test_policy_orderings(self):
        class Stub:
            def __init__(self, index, last_round, depth, last_margin):
                self.index = index
                self.last_round = last_round
                self.depth = depth
                self.last_margin = last_margin

        states = [
            Stub(0, last_round=5, depth=1, last_margin=0.9),
            Stub(1, last_round=2, depth=7, last_margin=0.2),
            Stub(2, last_round=4, depth=3, last_margin=float("-inf")),
        ]
        assert [s.index for s in make_frontier("fifo").order(states)] == [1, 2, 0]
        assert [s.index for s in make_frontier("dfs").order(states)] == [1, 2, 0]
        assert [s.index for s in make_frontier("priority").order(states)] == [2, 1, 0]


class TestAdaptiveController:
    def test_widens_while_throughput_scales(self):
        controller = AdaptiveBatchController(
            start=8, max_target=64, samples_per_level=1
        )
        controller.record(8, 8 / 100.0)    # 100 items/s at width 8
        assert controller.target == 16
        controller.record(16, 16 / 150.0)  # 150/s: still scaling
        assert controller.target == 32
        controller.record(32, 32 / 300.0)
        assert controller.target == 64

    def test_backs_off_when_scaling_stops(self):
        controller = AdaptiveBatchController(
            start=8, max_target=256, samples_per_level=1
        )
        controller.record(8, 8 / 100.0)
        controller.record(16, 16 / 160.0)
        assert controller.target == 32
        controller.record(32, 32 / 150.0)  # regressed: settle at 16
        assert controller.target == 16
        assert controller.settled
        controller.record(16, 16 / 500.0)  # frozen: no more probing
        assert controller.target == 16

    def test_ignores_underfilled_sweeps(self):
        controller = AdaptiveBatchController(start=8, samples_per_level=1)
        controller.record(3, 0.001)  # frontier ran dry, not a measurement
        assert controller.target == 8

    def test_caps_at_max_target(self):
        controller = AdaptiveBatchController(
            start=8, max_target=16, samples_per_level=1
        )
        controller.record(8, 8 / 100.0)
        assert controller.target == 16
        controller.record(16, 16 / 400.0)
        assert controller.target == 16
        assert controller.settled

    def test_fixed_controller_never_moves(self):
        controller = FixedBatchController(12)
        controller.record(12, 0.001)
        controller.record(12, 0.001)
        assert controller.target == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchController(start=0)
        with pytest.raises(ValueError):
            AdaptiveBatchController(start=8, max_target=4)
