"""Tests for the kernel execution layer (repro.exec)."""

import threading
import time

import pytest

from repro.exec import (
    FirstOutcome,
    PooledExecutor,
    ProcessExecutor,
    SerialExecutor,
    future_result,
    make_executor,
)


class TestSerialExecutor:
    def test_runs_inline_in_submission_order(self):
        executor = SerialExecutor()
        trace = []
        futures = [executor.submit(trace.append, i) for i in range(5)]
        # Inline execution: everything already happened, in order.
        assert trace == list(range(5))
        assert all(f.done() for f in futures)

    def test_result_and_exception_mirror_future_semantics(self):
        executor = SerialExecutor()
        assert executor.submit(lambda: 42).result() == 42
        failing = executor.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            failing.result()

    def test_wait_any_reports_everything_done(self):
        executor = SerialExecutor()
        futures = {executor.submit(int, "7")}
        done, pending = executor.wait_any(futures)
        assert done == futures and pending == set()

    def test_run_all_gathers_in_order(self):
        executor = SerialExecutor()
        results = executor.run_all([(pow, 2, i) for i in range(6)])
        assert results == [2**i for i in range(6)]

    def test_cancel_pending_is_a_noop(self):
        executor = SerialExecutor()
        future = executor.submit(lambda: 1)
        assert executor.cancel_pending({future}) == {future}


class TestPooledExecutor:
    def test_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            PooledExecutor(0)

    def test_runs_submissions(self):
        with PooledExecutor(2) as executor:
            futures = [executor.submit(pow, 3, i) for i in range(5)]
            assert [f.result() for f in futures] == [3**i for i in range(5)]

    def test_run_all_preserves_submission_order(self):
        with PooledExecutor(4) as executor:
            results = executor.run_all(
                [(lambda i=i: (time.sleep(0.002 * (5 - i)), i)[1],)
                 for i in range(5)]
            )
        assert results == list(range(5))

    def test_run_all_propagates_first_exception_after_draining(self):
        done = []

        def ok(i):
            done.append(i)
            return i

        def boom():
            raise RuntimeError("kernel failed")

        with PooledExecutor(2) as executor:
            with pytest.raises(RuntimeError, match="kernel failed"):
                executor.run_all([(ok, 0), (boom,), (ok, 2)])
        # The non-failing calls all ran to completion before the raise.
        assert sorted(done) == [0, 2]

    def test_cancel_pending_drops_unstarted_work(self):
        release = threading.Event()
        ran = []

        def blocker():
            release.wait(5.0)
            return "blocker"

        def task(i):
            ran.append(i)
            return i

        executor = PooledExecutor(1)
        try:
            first = executor.submit(blocker)
            queued = {executor.submit(task, i) for i in range(4)}
            # One worker is stuck in blocker; the queued tasks have not
            # started and must all cancel.
            remaining = executor.cancel_pending(queued)
            assert remaining == set()
            release.set()
            assert first.result(timeout=5.0) == "blocker"
            assert ran == []
            for future in queued:
                assert future.cancelled()
                assert future_result(future, default="skipped") == "skipped"
        finally:
            release.set()
            executor.shutdown()

    def test_cancel_pending_keeps_running_futures(self):
        started = threading.Event()
        release = threading.Event()

        def blocker():
            started.set()
            release.wait(5.0)
            return "ran"

        executor = PooledExecutor(1)
        try:
            future = executor.submit(blocker)
            assert started.wait(5.0)
            remaining = executor.cancel_pending({future})
            assert remaining == {future}
            release.set()
            assert future.result(timeout=5.0) == "ran"
        finally:
            release.set()
            executor.shutdown()

    def test_shutdown_cancels_backlog(self):
        release = threading.Event()
        ran = []
        executor = PooledExecutor(1)
        executor.submit(lambda: release.wait(5.0))
        queued = executor.submit(ran.append, 1)
        release.set()
        executor.shutdown(cancel_pending=True)
        assert queued.cancelled() or ran == [1]

    def test_shutdown_is_idempotent(self):
        executor = PooledExecutor(2)
        executor.submit(lambda: 1).result()
        executor.shutdown()
        executor.shutdown()

    def test_submit_after_shutdown_raises(self):
        # Silently resurrecting the pool here used to leak one thread
        # pool per stray submit in long-lived runs (nobody owned the new
        # pool's shutdown); a dead executor must stay dead.
        executor = PooledExecutor(2)
        executor.submit(lambda: 1).result()
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shutdown"):
            executor.submit(lambda: 2)

    def test_submit_after_shutdown_raises_even_if_never_used(self):
        executor = PooledExecutor(2)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shutdown"):
            executor.submit(lambda: 1)


class TestMakeExecutor:
    def test_workers_one_is_serial(self):
        executor, owned = make_executor(workers=1)
        assert isinstance(executor, SerialExecutor) and owned

    def test_many_workers_is_pooled(self):
        executor, owned = make_executor(workers=3)
        assert isinstance(executor, PooledExecutor) and owned
        assert executor.workers == 3
        executor.shutdown()

    def test_explicit_executor_is_not_owned(self):
        mine = SerialExecutor()
        executor, owned = make_executor(mine, workers=8)
        assert executor is mine and not owned

    def test_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            make_executor(workers=0)

    def test_explicit_kinds(self):
        executor, owned = make_executor(workers=1, kind="serial")
        assert isinstance(executor, SerialExecutor) and owned
        executor, owned = make_executor(workers=1, kind="pooled")
        assert isinstance(executor, PooledExecutor) and owned
        assert executor.workers == 1
        executor.shutdown()
        executor, owned = make_executor(workers=2, kind="process")
        assert isinstance(executor, ProcessExecutor) and owned
        assert executor.workers == 2 and executor.name == "process"
        executor.shutdown()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="executor kind"):
            make_executor(workers=2, kind="gpu")

    def test_rejects_serial_with_many_workers(self):
        with pytest.raises(ValueError, match="serial"):
            make_executor(workers=4, kind="serial")

    def test_rejects_kind_alongside_ready_executor(self):
        mine = SerialExecutor()
        with pytest.raises(ValueError, match="not both"):
            make_executor(mine, kind="pooled")


class TestFirstOutcome:
    def test_first_writer_wins(self):
        first = FirstOutcome()
        assert not first.is_set()
        assert first.get() is None
        assert first.record("winner")
        assert not first.record("loser")
        assert first.is_set()
        assert first.get() == "winner"

    def test_concurrent_records_pick_exactly_one(self):
        first = FirstOutcome()
        barrier = threading.Barrier(8)
        wins = []

        def racer(i):
            barrier.wait()
            if first.record(i):
                wins.append(i)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert first.get() == wins[0]
