"""Tests for spawn-based process-pool kernel execution.

Covers the :class:`~repro.exec.ProcessExecutor` contract the engines rely
on — ``run_all`` exception ordering, ``cancel_pending`` +
``future_result`` handling of cancelled futures, a clear error (not a
hang) when a worker is killed mid-call — plus the descriptor layer
(:mod:`repro.exec.calls`): known kernel calls must come back bitwise
identical to their in-process results, with the network shipped once per
worker, and workers must run with pinned single-threaded BLAS.

Helpers are module-level on purpose: spawn workers import this module to
unpickle them.
"""

import os
import time
from concurrent.futures import CancelledError
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.abstract.analyzer import analyze_batch_multi
from repro.abstract.domains import DomainSpec
from repro.attack.objective import MultiLabelMarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize_batch
from repro.exec import ProcessExecutor, future_result
from repro.exec.calls import NetworkStore, marshal_call, run_kernel_call
from repro.nn.builders import mlp
from repro.utils.boxes import Box


@pytest.fixture(scope="module")
def executor():
    """One two-worker pool for the whole module (spawn startup is slow)."""
    with ProcessExecutor(2) as ex:
        yield ex


def _ok(value):
    return value


def _boom(tag):
    raise RuntimeError(f"kernel failed: {tag}")


def _sleep_then(seconds, value):
    time.sleep(seconds)
    return value


def _crash(code):
    os._exit(code)


def _network_cache_digests(_):
    from repro.exec.calls import _NETWORK_CACHE

    return sorted(_NETWORK_CACHE)


class TestProcessExecutorBasics:
    def test_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(0)

    def test_runs_submissions(self, executor):
        futures = [executor.submit(pow, 3, i) for i in range(5)]
        assert [f.result() for f in futures] == [3**i for i in range(5)]

    def test_workers_pin_blas_threads(self, executor):
        # The serial-equivalence contract depends on worker GEMMs seeing
        # single-threaded BLAS (and pooled runs must not oversubscribe).
        assert executor.submit(os.getenv, "OMP_NUM_THREADS").result() == "1"
        assert (
            executor.submit(os.getenv, "OPENBLAS_NUM_THREADS").result() == "1"
        )

    def test_parent_env_pins_are_refcounted(self, executor):
        # The pins stay exported while ANY process executor lives (pools
        # spawn workers lazily, and spawned children read the env at
        # numpy load), then the pre-existing values are restored.
        before = os.environ.get("OMP_NUM_THREADS")
        executor.submit(_ok, 0).result()  # fixture pool exists -> pinned
        inner = ProcessExecutor(1)
        inner.submit(_ok, 1).result()  # pool exists -> pins exported
        assert os.environ["OMP_NUM_THREADS"] == "1"
        inner.shutdown()
        # The module fixture's executor is still alive: pins must hold.
        assert os.environ["OMP_NUM_THREADS"] == "1"
        assert before in (None, "1")

    def test_run_all_gathers_in_submission_order(self, executor):
        calls = [(_sleep_then, 0.01 * (4 - i), i) for i in range(5)]
        assert executor.run_all(calls) == list(range(5))

    def test_run_all_propagates_first_exception_in_submission_order(
        self, executor
    ):
        # Both failing calls run to completion; the *submission-order*
        # first one is what surfaces, deterministically.
        with pytest.raises(RuntimeError, match="kernel failed: first"):
            executor.run_all(
                [(_ok, 0), (_boom, "first"), (_ok, 2), (_boom, "second")]
            )

    def test_submit_after_shutdown_raises(self):
        executor = ProcessExecutor(1)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shutdown"):
            executor.submit(_ok, 1)


class TestCancelPending:
    def test_cancel_pending_drops_unstarted_work(self):
        # A private 1-worker pool: one long call occupies the worker, so
        # queued submissions beyond the pool's small prefetch buffer have
        # not started and must cancel.
        with ProcessExecutor(1) as executor:
            blocker = executor.submit(_sleep_then, 1.5, "blocker")
            queued = {executor.submit(_ok, i) for i in range(6)}
            remaining = executor.cancel_pending(queued)
            cancelled = queued - remaining
            # ProcessPoolExecutor prefetches ~1 call beyond the running
            # one; everything else must have been dropped.
            assert len(cancelled) >= len(queued) - 2
            assert blocker.result(timeout=30) == "blocker"
            for future in cancelled:
                assert future.cancelled()
                with pytest.raises(CancelledError):
                    future.result()
                assert future_result(future, default="skipped") == "skipped"
            # The uncancellable stragglers still run to completion.
            for future in remaining:
                assert future.result(timeout=30) in range(6)

    def test_cancelled_futures_count_as_done_in_wait_any(self):
        with ProcessExecutor(1) as executor:
            blocker = executor.submit(_sleep_then, 1.0, "blocker")
            queued = {executor.submit(_ok, i) for i in range(6)}
            remaining = executor.cancel_pending(queued)
            cancelled = queued - remaining
            assert cancelled, "expected at least one cancelled future"
            done, pending = executor.wait_any(set(cancelled))
            assert done == cancelled and pending == set()
            assert blocker.result(timeout=30) == "blocker"


class TestWorkerCrash:
    def test_killed_worker_surfaces_broken_pool_not_a_hang(self):
        # A worker that dies mid-call (OOM killer, crashing extension)
        # must fail its futures promptly with a clear error.
        executor = ProcessExecutor(1)
        try:
            future = executor.submit(_crash, 11)
            with pytest.raises(BrokenProcessPool):
                future.result(timeout=60)
            # The pool is broken: later submissions fail loudly too.
            with pytest.raises(BrokenProcessPool):
                executor.submit(_ok, 1)
        finally:
            executor.shutdown()

    def test_run_all_surfaces_the_crash(self):
        executor = ProcessExecutor(1)
        try:
            with pytest.raises(BrokenProcessPool):
                executor.run_all([(_ok, 0), (_crash, 9), (_ok, 2)])
        finally:
            executor.shutdown()


@pytest.fixture(scope="module")
def kernel_case():
    """A small network plus regions/labels shared by the kernel tests."""
    network = mlp(4, [12], 3, rng=5)
    rng = np.random.default_rng(11)
    regions = [
        Box.from_center_radius(rng.uniform(0.3, 0.7, 4), 0.08)
        for _ in range(4)
    ]
    labels = [int(network.classify(region.center)) for region in regions]
    return network, regions, labels


class TestKernelDescriptors:
    def test_pgd_call_is_bitwise_identical(self, executor, kernel_case):
        network, regions, labels = kernel_case
        objective = MultiLabelMarginObjective(network, labels)
        config = PGDConfig(steps=12, restarts=2)

        def rngs():
            return [np.random.default_rng(100 + i) for i in range(len(regions))]

        ref_x, ref_f = pgd_minimize_batch(
            objective, regions, config, rngs(), None
        )
        got_x, got_f = executor.submit(
            pgd_minimize_batch, objective, regions, config, rngs(), None
        ).result()
        np.testing.assert_array_equal(got_x, ref_x)
        np.testing.assert_array_equal(got_f, ref_f)

    @pytest.mark.parametrize(
        "domain",
        [
            DomainSpec("interval", 1),
            DomainSpec("deeppoly", 1),
            DomainSpec("zonotope", 1),
            DomainSpec("zonotope", 2),
        ],
        ids=str,
    )
    def test_analyze_call_matches_inline_margins(
        self, executor, kernel_case, domain
    ):
        network, regions, labels = kernel_case
        reference = analyze_batch_multi(network, regions, labels, domain, None)
        results = executor.submit(
            analyze_batch_multi, network, regions, labels, domain, None
        ).result()
        assert len(results) == len(reference)
        for got, ref in zip(results, reference):
            assert got.verified == ref.verified
            assert got.margin_lower_bound == ref.margin_lower_bound
            # The process boundary deliberately strips output elements.
            assert got.output is None

    @pytest.mark.parametrize(
        "domain",
        [
            DomainSpec("interval", 1),
            DomainSpec("deeppoly", 1),
            DomainSpec("zonotope", 1),
        ],
        ids=str,
    )
    def test_checkpointed_call_resumes_bitwise_across_the_boundary(
        self, executor, kernel_case, domain
    ):
        from repro.abstract.analyzer import analyze_batch_checkpointed
        from repro.abstract.checkpoint import checkpoint_boundaries

        network, regions, labels = kernel_case
        boundaries = checkpoint_boundaries(network)
        reference, captured = analyze_batch_checkpointed(
            network, regions, labels, domain, None,
            capture_boundaries=boundaries,
        )
        # Cold capture through the pool: results match inline (outputs
        # stripped), checkpoints come back whole.
        results, shipped = executor.submit(
            analyze_batch_checkpointed, network, regions, labels, domain,
            None, None, tuple(boundaries),
        ).result()
        assert [r.margin_lower_bound for r in results] == [
            r.margin_lower_bound for r in reference
        ]
        assert all(r.output is None for r in results)
        assert [c.boundary for c in shipped] == boundaries
        for got, ref in zip(shipped, captured):
            assert got.prefix_digest == ref.prefix_digest
            for name, arr in ref.arrays.items():
                np.testing.assert_array_equal(got.arrays[name], arr)
        # Resume operand crosses the boundary too (flattened into
        # prefix_state_* payload keys) and reproduces the cold margins.
        resumed, _ = executor.submit(
            analyze_batch_checkpointed, network, regions, labels, domain,
            None, captured[-1], (),
        ).result()
        assert [r.margin_lower_bound for r in resumed] == [
            r.margin_lower_bound for r in reference
        ]

    def test_network_ships_once_per_worker(self, kernel_case):
        network, regions, labels = kernel_case
        domain = DomainSpec("interval", 1)
        with ProcessExecutor(1) as solo:
            for _ in range(3):
                solo.submit(
                    analyze_batch_multi, network, regions, labels, domain, None
                ).result()
            digests = solo.submit(_network_cache_digests, None).result()
        # Three calls, one cached deserialization.
        assert len(digests) == 1

    def test_marshaller_recognizes_known_kernels(self, kernel_case):
        network, regions, labels = kernel_case
        store = NetworkStore()
        try:
            objective = MultiLabelMarginObjective(network, labels)
            rngs = [np.random.default_rng(i) for i in range(len(regions))]
            call = marshal_call(
                pgd_minimize_batch,
                (objective, regions, PGDConfig(steps=3), rngs, None),
                {},
                store,
            )
            assert call is not None and "pgd_minimize_entry" in call.entry
            # Descriptors round-trip through the worker-side dispatcher
            # even in-process (entry points are plain functions).  The
            # dispatcher wraps the value in an ObsEnvelope carrying the
            # run's counter delta; the executor unwraps it for callers.
            envelope = run_kernel_call(call)
            x_stars, f_stars = envelope.value
            assert envelope.counters.get("kernel.pgd_rows", 0) == len(regions)
            assert x_stars.shape == (len(regions), 4)
            assert f_stars.shape == (len(regions),)
            # Unknown calls fall back to plain pickling.
            assert marshal_call(pow, (2, 3), {}, store) is None
        finally:
            store.close()

    def test_parallel_verifier_runs_over_the_process_pool(
        self, executor, kernel_case
    ):
        # The frontier loop drives thread and process pools through the
        # same pure sweep_chunk unit; sweep chunks cross as descriptors
        # (the advisory stop flag is dropped by the marshaller — it
        # would not pickle).  Outcome *kinds* must match the sequential
        # engine (witness choice may differ by completion order, which
        # is the parallel engine's documented contract).
        from repro.core.config import VerifierConfig
        from repro.core.parallel import ParallelVerifier
        from repro.core.property import linf_property
        from repro.core.verifier import verify_batched

        network, _, _ = kernel_case
        config = VerifierConfig(timeout=30.0, batch_size=4)
        rng = np.random.default_rng(3)
        for epsilon in (0.05, 0.6):  # one verified, one falsified case
            prop = linf_property(network, rng.uniform(0.3, 0.7, 4), epsilon)
            reference = verify_batched(network, prop, config=config, rng=0)
            outcome = ParallelVerifier(
                network, config=config, executor=executor, rng=0
            ).verify(prop)
            assert outcome.kind == reference.kind
            if outcome.kind == "falsified":
                # δ-completeness: any returned witness must be real.
                from repro.attack.objective import MarginObjective

                margin = MarginObjective(network, prop.label)(
                    outcome.counterexample
                )
                assert margin <= config.delta

    def test_network_store_writes_each_digest_once(self, kernel_case):
        network, _, _ = kernel_case
        store = NetworkStore()
        try:
            first = store.handle(network)
            second = store.handle(network)
            assert first == second
            spill = os.listdir(os.path.dirname(first.path))
            assert spill == [f"{first.digest}.npz"]
        finally:
            store.close()
        assert not os.path.exists(first.path)


def _psm_segments():
    """Names of POSIX shared-memory segments currently in /dev/shm.

    ``multiprocessing.shared_memory`` names its segments ``psm_*``; the
    prefix filter keeps pool semaphores (``sem.*``) out of the diff.
    """
    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith("psm_")}
    except OSError:  # non-Linux: fall back to the arena's own accounting
        return set()


def _wait_drained(arena, timeout=5.0):
    """Poll until the arena holds no live segments (done callbacks may
    fire a beat after ``result()`` returns); return the final count."""
    deadline = time.monotonic() + timeout
    while arena.live_segments() and time.monotonic() < deadline:
        time.sleep(0.01)
    return arena.live_segments()


class TestShmTransport:
    """No shared-memory segment outlives its call — or the executor.

    Segments are parent-owned (workers only ever attach), so the two
    leak paths are the parent forgetting to release after a completed
    call and the parent never reaching release because the worker died.
    Both are pinned here against /dev/shm itself, not just the arena's
    bookkeeping.
    """

    def test_segments_drain_and_unlink_on_shutdown(self, kernel_case):
        network, regions, labels = kernel_case
        domain = DomainSpec("zonotope", 2)
        reference = analyze_batch_multi(network, regions, labels, domain, None)
        before = _psm_segments()
        executor = ProcessExecutor(2, shm_threshold=0)
        try:
            # Park both workers so the kernel calls queue: their operand
            # segments (created synchronously at submit) must be live
            # until each call completes — proof the transport engaged.
            blockers = [executor.submit(_sleep_then, 0.4, i) for i in range(2)]
            futures = [
                executor.submit(
                    analyze_batch_multi, network, regions, labels, domain, None
                )
                for _ in range(3)
            ]
            arena = executor._shm
            assert arena is not None and arena.enabled
            assert arena.live_segments() > 0
            for blocker in blockers:
                blocker.result(timeout=60)
            for future in futures:
                results = future.result(timeout=60)
                for got, ref in zip(results, reference):
                    assert got.verified == ref.verified
                    assert got.margin_lower_bound == ref.margin_lower_bound
            assert _wait_drained(arena) == 0
        finally:
            executor.shutdown()
        assert arena.live_segments() == 0
        assert _psm_segments() - before == set()

    def test_killed_worker_leaks_no_segments(self, kernel_case):
        network, regions, labels = kernel_case
        domain = DomainSpec("zonotope", 2)
        before = _psm_segments()
        executor = ProcessExecutor(2, shm_threshold=0)
        try:
            # Queue shm-backed kernel calls behind a worker kill: the
            # pool breaks, the queued futures complete with
            # BrokenProcessPool, and their done callbacks must still
            # release every segment — no worker ever attached them.
            blockers = [executor.submit(_sleep_then, 0.3, i) for i in range(2)]
            executor.submit(_crash, 11)
            futures = [
                executor.submit(
                    analyze_batch_multi, network, regions, labels, domain, None
                )
                for _ in range(3)
            ]
            arena = executor._shm
            assert arena is not None
            assert arena.live_segments() > 0
            for future in blockers + futures:
                try:
                    future.result(timeout=60)
                except BrokenProcessPool:
                    pass
            assert _wait_drained(arena) == 0
        finally:
            executor.shutdown()
        assert arena.live_segments() == 0
        assert _psm_segments() - before == set()
