"""Tests for the verification policies (π_α, π_I)."""

import numpy as np
import pytest

from repro.abstract.domains import DomainSpec, INTERVAL, ZONOTOPE
from repro.core.policy import (
    BisectionPolicy,
    DISJUNCT_CHOICES,
    LinearPolicy,
    NUM_OUTPUTS,
    SplitChoice,
    default_policy,
)
from repro.core.property import RobustnessProperty
from repro.nn.builders import mlp
from repro.utils.boxes import Box


def context(seed=0, n=4):
    net = mlp(n, [8], 3, rng=seed)
    prop = RobustnessProperty(Box.unit(n), 0)
    x_star = prop.region.center
    return net, prop, x_star, 1.0


class TestLinearPolicy:
    def test_theta_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            LinearPolicy(np.zeros((3, 3)))

    def test_vector_roundtrip(self):
        policy = LinearPolicy.default()
        vec = policy.to_vector()
        assert vec.size == LinearPolicy.num_params
        again = LinearPolicy.from_vector(vec)
        np.testing.assert_array_equal(again.theta, policy.theta)

    def test_from_vector_validates_size(self):
        with pytest.raises(ValueError, match="parameters"):
            LinearPolicy.from_vector(np.zeros(7))

    def test_parameter_box(self):
        box = LinearPolicy.parameter_box(scale=1.5)
        assert box.ndim == LinearPolicy.num_params
        assert box.low[0] == -1.5

    def test_default_chooses_zonotope_2(self):
        net, prop, x_star, f_star = context()
        domain = default_policy().choose_domain(net, prop, x_star, f_star)
        assert domain == DomainSpec("zonotope", 2)

    def test_default_bisects_longest(self):
        net = mlp(2, [4], 2, rng=0)
        prop = RobustnessProperty(Box(np.zeros(2), np.array([1.0, 4.0])), 0)
        choice = default_policy().choose_split(net, prop, prop.region.center, 1.0)
        assert choice.dim == 1
        assert choice.value == pytest.approx(prop.region.center[1])

    def test_domain_discretization_covers_menu(self):
        # Sweeping the disjunct output across [0, 1] hits every menu entry.
        net, prop, x_star, f_star = context()
        seen = set()
        for frac in np.linspace(0.0, 1.0, 21):
            theta = np.zeros((NUM_OUTPUTS, 5))
            theta[0, -1] = 1.0
            theta[1, -1] = frac
            domain = LinearPolicy(theta).choose_domain(net, prop, x_star, f_star)
            seen.add(domain.disjuncts)
        assert seen == set(DISJUNCT_CHOICES)

    def test_interval_choice(self):
        net, prop, x_star, f_star = context()
        theta = np.zeros((NUM_OUTPUTS, 5))  # base score 0 -> interval
        domain = LinearPolicy(theta).choose_domain(net, prop, x_star, f_star)
        assert domain.base == "interval"

    def test_split_through_xstar(self):
        # Offset output 1 -> the splitting plane passes through x*.
        net = mlp(2, [4], 2, rng=0)
        prop = RobustnessProperty(Box.unit(2), 0)
        x_star = np.array([0.9, 0.5])
        theta = np.zeros((NUM_OUTPUTS, 5))
        theta[2, -1] = 1.0  # longest dim (ties -> dim 0)
        theta[4, -1] = 1.0  # ratio 1
        choice = LinearPolicy(theta).choose_split(net, prop, x_star, 1.0)
        assert choice.value == pytest.approx(x_star[choice.dim])

    def test_influence_dim_choice(self):
        # With the influence score dominating, the policy picks the most
        # gradient-sensitive wide dimension.
        net, prop, x_star, f_star = context()
        theta = np.zeros((NUM_OUTPUTS, 5))
        theta[3, -1] = 1.0  # influence beats longest
        choice = LinearPolicy(theta).choose_split(net, prop, x_star, f_star)
        assert 0 <= choice.dim < prop.region.ndim

    def test_degenerate_dim_fallback(self):
        net = mlp(2, [4], 2, rng=0)
        region = Box(np.array([0.0, 0.5]), np.array([1.0, 0.5]))
        prop = RobustnessProperty(region, 0)
        choice = default_policy().choose_split(net, prop, region.center, 1.0)
        assert choice.dim == 0  # dim 1 is degenerate

    def test_describe(self):
        assert "LinearPolicy" in default_policy().describe()


class TestBisectionPolicy:
    def test_fixed_domain(self):
        net, prop, x_star, f_star = context()
        policy = BisectionPolicy(domain=INTERVAL)
        assert policy.choose_domain(net, prop, x_star, f_star) == INTERVAL

    def test_longest_split(self):
        net = mlp(2, [4], 2, rng=0)
        prop = RobustnessProperty(Box(np.zeros(2), np.array([1.0, 2.0])), 0)
        choice = BisectionPolicy().choose_split(net, prop, prop.region.center, 1.0)
        assert choice == SplitChoice(dim=1, value=1.0)

    def test_influence_split(self):
        net, prop, x_star, f_star = context()
        policy = BisectionPolicy(split="influence")
        choice = policy.choose_split(net, prop, x_star, f_star)
        assert choice.value == pytest.approx(prop.region.center[choice.dim])

    def test_rejects_unknown_split(self):
        with pytest.raises(ValueError, match="split"):
            BisectionPolicy(split="random")

    def test_describe_mentions_domain(self):
        assert "Z" in BisectionPolicy(domain=ZONOTOPE).describe()
