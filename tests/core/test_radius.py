"""Tests for certified-radius search."""

import numpy as np
import pytest

from repro.core.config import VerifierConfig
from repro.core.radius import RadiusResult, certified_accuracy, certified_radius
from repro.nn.builders import example_2_2_network, mlp, xor_network


class TestCertifiedRadius:
    def test_bracket_invariant(self):
        net = xor_network()
        x = np.array([0.0, 1.0])  # classified 1
        result = certified_radius(
            net, x, max_radius=0.6, tolerance=0.01,
            clip_low=None, clip_high=None,
            config=VerifierConfig(timeout=5), rng=0,
        )
        assert result.certified <= result.falsified
        assert result.probes >= 1

    def test_known_frontier_on_1d_network(self):
        # Example 2.2's network classifies x as 1 until x reaches 1.5
        # (margin -3*relu(x-1)+1 = 0 at x = 4/3... solve: margin y1-y0 =
        # 1 - 3*relu(x-1); zero at x = 4/3).  Around x=0 the true L-inf
        # robustness radius is therefore 4/3.
        net = example_2_2_network()
        x = np.array([0.0])
        result = certified_radius(
            net, x, max_radius=2.0, tolerance=0.01,
            clip_low=None, clip_high=None,
            config=VerifierConfig(timeout=5), rng=0,
        )
        assert result.certified == pytest.approx(4.0 / 3.0, abs=0.05)
        assert result.falsified == pytest.approx(4.0 / 3.0, abs=0.05)
        assert result.counterexample is not None
        assert net.classify(result.counterexample) != 1

    def test_gap_property(self):
        result = RadiusResult(0.1, 0.2, None, 5)
        assert result.gap == pytest.approx(0.1)

    def test_validation(self):
        net = xor_network()
        with pytest.raises(ValueError):
            certified_radius(net, np.zeros(2), max_radius=0.0)
        with pytest.raises(ValueError):
            certified_radius(net, np.zeros(2), tolerance=0.0)
        with pytest.raises(ValueError):
            certified_radius(net, np.zeros(2), max_probes=0)

    def test_probe_budget_respected(self):
        net = mlp(4, [12, 12], 3, rng=0)
        result = certified_radius(
            net, np.full(4, 0.5), max_radius=0.5, tolerance=1e-9,
            config=VerifierConfig(timeout=1), rng=0, max_probes=4,
        )
        assert result.probes <= 4


class TestCertifiedAccuracy:
    def test_tiny_epsilon_matches_accuracy(self):
        # At epsilon ~ 0 every correctly classified point certifies.
        net = xor_network()
        inputs = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        labels = np.array([0, 1, 1, 0])
        certified, correct = certified_accuracy(
            net, inputs, labels, epsilon=1e-6,
            config=VerifierConfig(timeout=5), rng=0,
        )
        assert correct == 1.0
        assert certified == 1.0

    def test_certified_never_exceeds_correct(self):
        net = mlp(2, [8], 2, rng=0)
        rng = np.random.default_rng(0)
        inputs = rng.uniform(0, 1, size=(6, 2))
        labels = rng.integers(0, 2, size=6)
        certified, correct = certified_accuracy(
            net, inputs, labels, epsilon=0.05,
            config=VerifierConfig(timeout=2), rng=0,
        )
        assert 0.0 <= certified <= correct <= 1.0

    def test_validation(self):
        net = xor_network()
        with pytest.raises(ValueError, match="epsilon"):
            certified_accuracy(net, np.zeros((1, 2)), np.zeros(1, int), -1.0)
        with pytest.raises(ValueError, match="mismatch"):
            certified_accuracy(net, np.zeros((2, 2)), np.zeros(3, int), 0.1)


class TestKnownBracket:
    """Cache-seeded brackets: the manifest-level radius command's core."""

    def test_full_bracket_spawns_no_probes(self):
        net = xor_network()
        x = np.array([0.0, 1.0])
        result = certified_radius(
            net, x, max_radius=0.4, tolerance=0.02,
            config=VerifierConfig(timeout=5), rng=0,
            known_certified=0.39, known_falsified=0.41,
        )
        assert result.probes == 0
        assert result.certified == 0.39
        assert result.falsified == 0.41

    def test_partial_bracket_narrows_the_search(self):
        net = xor_network()
        x = np.array([0.0, 1.0])
        free = certified_radius(
            net, x, max_radius=0.6, tolerance=0.01,
            clip_low=None, clip_high=None,
            config=VerifierConfig(timeout=5), rng=0,
        )
        seeded = certified_radius(
            net, x, max_radius=0.6, tolerance=0.01,
            clip_low=None, clip_high=None,
            config=VerifierConfig(timeout=5), rng=0,
            known_certified=free.certified,
            known_falsified=free.falsified,
        )
        assert seeded.probes < free.probes
        assert seeded.certified >= free.certified
        assert seeded.falsified <= free.falsified
        assert seeded.certified <= seeded.falsified

    def test_certified_beyond_max_radius_short_circuits(self):
        net = xor_network()
        result = certified_radius(
            net, np.array([0.0, 1.0]), max_radius=0.2, tolerance=0.01,
            config=VerifierConfig(timeout=5), rng=0,
            known_certified=0.5,
        )
        assert result.probes == 0
        assert result.certified == 0.5

    def test_inverted_bracket_rejected(self):
        net = xor_network()
        with pytest.raises(ValueError):
            certified_radius(
                net, np.array([0.0, 1.0]),
                known_certified=0.3, known_falsified=0.2,
            )
        with pytest.raises(ValueError):
            certified_radius(
                net, np.array([0.0, 1.0]), known_certified=-0.1,
            )
