"""Tests for VerifierConfig."""

import pytest

from repro.core.config import VerifierConfig


class TestVerifierConfig:
    def test_defaults_valid(self):
        config = VerifierConfig()
        assert config.delta > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": 0.0},
            {"delta": -1.0},
            {"timeout": 0.0},
            {"max_depth": 0},
            {"min_split_fraction": 0.0},
            {"min_split_fraction": 0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            VerifierConfig(**kwargs)

    def test_delta_positivity_is_documented_requirement(self):
        # Theorem 5.2 needs delta > 0; the error message should say why.
        with pytest.raises(ValueError, match="Theorem"):
            VerifierConfig(delta=0.0)
