"""Tests for the featurization function ρ."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, NUM_FEATURES, featurize
from repro.core.property import RobustnessProperty
from repro.nn.builders import mlp
from repro.utils.boxes import Box


class TestFeaturize:
    def test_shape_and_names(self):
        assert NUM_FEATURES == 4
        assert len(FEATURE_NAMES) == 4
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        feats = featurize(net, prop, np.full(4, 0.5), 1.0)
        assert feats.shape == (4,)

    def test_distance_feature(self):
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        at_center = featurize(net, prop, prop.region.center, 1.0)
        assert at_center[0] == pytest.approx(0.0)
        at_corner = featurize(net, prop, np.ones(4), 1.0)
        assert at_corner[0] == pytest.approx(1.0)  # ||(.5,.5,.5,.5)||

    def test_objective_feature_passthrough(self):
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        feats = featurize(net, prop, np.full(4, 0.5), 2.5)
        assert feats[1] == pytest.approx(2.5)

    def test_width_feature(self):
        net = mlp(2, [4], 2, rng=0)
        prop = RobustnessProperty(Box(np.zeros(2), np.array([1.0, 3.0])), 0)
        feats = featurize(net, prop, prop.region.center, 0.0)
        assert feats[3] == pytest.approx(2.0)

    def test_gradient_feature_nonnegative(self):
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        feats = featurize(net, prop, np.full(4, 0.3), 0.0)
        assert feats[2] >= 0.0

    def test_rejects_dim_mismatch(self):
        net = mlp(4, [8], 3, rng=0)
        prop = RobustnessProperty(Box.unit(4), 0)
        with pytest.raises(ValueError, match="dims"):
            featurize(net, prop, np.zeros(3), 0.0)
