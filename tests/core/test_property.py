"""Tests for robustness properties and attack-region builders."""

import numpy as np
import pytest

from repro.core.property import (
    RobustnessProperty,
    brightening_property,
    linf_property,
)
from repro.nn.builders import mlp, xor_network
from repro.utils.boxes import Box


class TestRobustnessProperty:
    def test_validation(self):
        with pytest.raises(ValueError, match="label"):
            RobustnessProperty(Box.unit(2), -1)

    def test_with_region(self):
        prop = RobustnessProperty(Box.unit(2), 1, name="p")
        smaller = prop.with_region(Box(np.zeros(2), 0.5 * np.ones(2)))
        assert smaller.label == 1
        assert smaller.name == "p"
        assert smaller.region.high[0] == 0.5

    def test_holds_at(self):
        net = xor_network()
        prop = RobustnessProperty(Box.unit(2), 1)
        assert prop.holds_at(net, np.array([0.0, 1.0]))
        assert not prop.holds_at(net, np.array([0.0, 0.0]))

    def test_violated_by_requires_membership(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.4, 0.9]), np.array([0.6, 1.0])), 1
        )
        # [0,0] is misclassified-as-0 but outside the region.
        assert not prop.violated_by(net, np.array([0.0, 0.0]))

    def test_margin_at_matches_definition(self):
        net = xor_network()
        prop = RobustnessProperty(Box.unit(2), 0)
        scores = net.logits(np.array([0.0, 0.0]))
        expected = scores[0] - np.delete(scores, 0).max()
        assert prop.margin_at(net, np.array([0.0, 0.0])) == pytest.approx(expected)

    def test_margin_at_validates_label(self):
        net = xor_network()
        prop = RobustnessProperty(Box.unit(2), 5)
        with pytest.raises(ValueError, match="label"):
            prop.margin_at(net, np.zeros(2))


class TestLinfProperty:
    def test_label_comes_from_network(self):
        net = mlp(4, [8], 3, rng=0)
        x = np.full(4, 0.5)
        prop = linf_property(net, x, 0.1)
        assert prop.label == net.classify(x)

    def test_region_clipped(self):
        net = mlp(2, [4], 2, rng=0)
        prop = linf_property(net, np.array([0.05, 0.5]), 0.1)
        assert prop.region.low[0] == 0.0
        assert prop.region.contains(np.array([0.05, 0.5]))


class TestBrighteningProperty:
    def test_region_shape_matches_paper(self):
        # Pixels >= tau may move to 1; all others are fixed.
        net = mlp(4, [8], 3, rng=0)
        x = np.array([0.9, 0.2, 0.7, 0.4])
        prop = brightening_property(net, x, tau=0.6)
        np.testing.assert_allclose(prop.region.low, x)
        np.testing.assert_allclose(prop.region.high, [1.0, 0.2, 1.0, 0.4])

    def test_strength_scales_region(self):
        net = mlp(2, [4], 2, rng=0)
        x = np.array([0.8, 0.1])
        half = brightening_property(net, x, tau=0.5, strength=0.5)
        assert half.region.high[0] == pytest.approx(0.9)

    def test_rejects_bad_strength(self):
        net = mlp(2, [4], 2, rng=0)
        with pytest.raises(ValueError, match="strength"):
            brightening_property(net, np.array([0.8, 0.1]), tau=0.5, strength=0.0)

    def test_rejects_no_bright_pixels(self):
        net = mlp(2, [4], 2, rng=0)
        with pytest.raises(ValueError, match="threshold"):
            brightening_property(net, np.array([0.1, 0.2]), tau=0.9)

    def test_original_image_always_contained(self):
        net = mlp(4, [8], 3, rng=1)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.uniform(0, 1, 4)
            if (x >= 0.5).any():
                prop = brightening_property(net, x, tau=0.5)
                assert prop.region.contains(x)
