"""Tests for verification outcome types."""

import numpy as np

from repro.core.results import Falsified, Timeout, Verified, VerificationStats


class TestOutcomes:
    def test_verified_truthy(self):
        outcome = Verified(VerificationStats())
        assert outcome
        assert outcome.kind == "verified"

    def test_falsified_falsy_and_true_cex_flag(self):
        stats = VerificationStats()
        true_cex = Falsified(np.zeros(2), -0.5, stats)
        delta_cex = Falsified(np.zeros(2), 1e-7, stats)
        assert not true_cex
        assert true_cex.is_true_counterexample
        assert not delta_cex.is_true_counterexample
        assert delta_cex.kind == "falsified"

    def test_timeout(self):
        outcome = Timeout("wall clock", VerificationStats())
        assert not outcome
        assert outcome.kind == "timeout"
        assert outcome.reason == "wall clock"

    def test_stats_domain_counter(self):
        stats = VerificationStats()
        stats.record_domain("Zx2")
        stats.record_domain("Zx2")
        stats.record_domain("I")
        assert stats.domains_used["Zx2"] == 2
        assert stats.domains_used["I"] == 1
