"""Tests for Algorithm 1: soundness, δ-completeness, budgets, stats."""

import numpy as np
import pytest

from repro.abstract.domains import INTERVAL, ZONOTOPE
from repro.core.config import VerifierConfig
from repro.core.policy import BisectionPolicy
from repro.core.property import RobustnessProperty, linf_property
from repro.core.results import Falsified, Timeout, Verified
from repro.core.verifier import Verifier, verify
from repro.nn.builders import (
    example_2_2_network,
    example_2_3_network,
    mlp,
    xor_network,
)
from repro.utils.boxes import Box


def quick_config(**kwargs):
    defaults = {"timeout": 20.0}
    defaults.update(kwargs)
    return VerifierConfig(**defaults)


class TestPaperExamples:
    def test_example_3_1_xor_verifies(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        outcome = verify(net, prop, config=quick_config(), rng=0)
        assert isinstance(outcome, Verified)

    def test_example_3_1_with_weak_domain_needs_splits(self):
        # Force plain zonotopes (as in the paper's Example 3.1 trace):
        # the verifier must split to finish, exactly like Figure 5.
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        policy = BisectionPolicy(domain=ZONOTOPE)
        outcome = verify(net, prop, policy=policy, config=quick_config(), rng=0)
        assert isinstance(outcome, Verified)
        assert outcome.stats.splits >= 1

    def test_example_2_2_robust_region(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([1.0])), 1)
        outcome = verify(net, prop, config=quick_config(), rng=0)
        assert isinstance(outcome, Verified)

    def test_example_2_2_extended_region_falsified(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        outcome = verify(net, prop, config=quick_config(), rng=0)
        assert isinstance(outcome, Falsified)
        assert prop.region.contains(outcome.counterexample)
        assert outcome.is_true_counterexample
        assert net.classify(outcome.counterexample) != 1

    def test_example_2_3_verifies(self):
        net = example_2_3_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 1)
        outcome = verify(net, prop, config=quick_config(), rng=0)
        assert isinstance(outcome, Verified)


class TestSoundness:
    def test_verified_implies_no_counterexample(self):
        rng = np.random.default_rng(0)
        verified_count = 0
        for seed in range(12):
            net = mlp(3, [10], 3, rng=seed)
            center = rng.uniform(-0.5, 0.5, 3)
            prop = linf_property(net, center, 0.15, clip_low=None, clip_high=None)
            outcome = verify(net, prop, config=quick_config(timeout=5), rng=0)
            if isinstance(outcome, Verified):
                verified_count += 1
                preds = net.classify_batch(prop.region.sample(rng, 500))
                assert np.all(preds == prop.label)
        assert verified_count > 0  # the fuzz actually exercised the claim

    def test_falsified_witness_is_valid(self):
        rng = np.random.default_rng(1)
        falsified_count = 0
        for seed in range(15):
            net = mlp(3, [10], 3, rng=100 + seed)
            center = rng.uniform(-0.5, 0.5, 3)
            prop = linf_property(net, center, 0.8, clip_low=None, clip_high=None)
            config = quick_config(timeout=5)
            outcome = verify(net, prop, config=config, rng=0)
            if isinstance(outcome, Falsified):
                falsified_count += 1
                assert prop.region.contains(outcome.counterexample)
                # δ-completeness (Theorem 5.4): margin at witness <= δ.
                margin = prop.margin_at(net, outcome.counterexample)
                assert margin <= config.delta + 1e-12
        assert falsified_count > 0

    def test_delta_controls_near_counterexamples(self):
        # With a huge δ, even a robust region yields a δ-counterexample.
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.45, 0.45]), np.array([0.55, 0.55])), 1
        )
        strict = verify(net, prop, config=quick_config(delta=1e-9), rng=0)
        assert isinstance(strict, Verified)
        loose = verify(net, prop, config=quick_config(delta=10.0), rng=0)
        assert isinstance(loose, Falsified)
        assert not loose.is_true_counterexample
        assert loose.margin <= 10.0


class TestBudgets:
    def test_timeout_returns_timeout(self):
        # A large, hard instance with a tiny wall clock.
        net = mlp(8, [24, 24, 24], 5, rng=3)
        prop = linf_property(net, np.full(8, 0.5), 0.5)
        outcome = verify(net, prop, config=VerifierConfig(timeout=0.05), rng=0)
        assert isinstance(outcome, (Timeout, Falsified))
        if isinstance(outcome, Timeout):
            assert outcome.reason in ("wall clock", "split depth")

    def test_depth_cap_triggers(self):
        net = mlp(4, [16, 16], 3, rng=4)
        prop = linf_property(net, np.full(4, 0.5), 0.6)
        config = VerifierConfig(timeout=20, max_depth=1)
        outcome = verify(net, prop, config=config, rng=0)
        assert outcome.kind in ("timeout", "falsified", "verified")
        if isinstance(outcome, Timeout):
            assert outcome.stats.max_depth_reached <= 1

    def test_stats_are_recorded(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        policy = BisectionPolicy(domain=INTERVAL)
        outcome = verify(net, prop, policy=policy, config=quick_config(), rng=0)
        stats = outcome.stats
        assert stats.pgd_calls >= 1
        assert stats.analyze_calls >= 1
        assert stats.time_seconds > 0
        assert sum(stats.domains_used.values()) == stats.analyze_calls


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        net = mlp(4, [12], 3, rng=5)
        prop = linf_property(net, np.full(4, 0.5), 0.3)
        a = verify(net, prop, config=quick_config(timeout=5), rng=42)
        b = verify(net, prop, config=quick_config(timeout=5), rng=42)
        assert a.kind == b.kind
        if isinstance(a, Falsified):
            np.testing.assert_array_equal(a.counterexample, b.counterexample)


class TestVerifierClass:
    def test_reusable_across_properties(self):
        net = xor_network()
        verifier = Verifier(net, config=quick_config(), rng=0)
        robust = RobustnessProperty(
            Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1
        )
        assert verifier.verify(robust).kind == "verified"
        broken = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0)
        assert verifier.verify(broken).kind == "falsified"

    def test_degenerate_region_resolves(self):
        net = xor_network()
        point = np.array([0.0, 1.0])
        prop = RobustnessProperty(Box(point, point), 1)
        outcome = verify(net, prop, config=quick_config(), rng=0)
        assert outcome.kind == "verified"

    def test_degenerate_region_falsified(self):
        net = xor_network()
        point = np.array([0.0, 1.0])
        prop = RobustnessProperty(Box(point, point), 0)
        outcome = verify(net, prop, config=quick_config(), rng=0)
        assert outcome.kind == "falsified"
