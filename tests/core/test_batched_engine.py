"""Batched-engine equivalence: frontier sweeps must match Algorithm 1.

Work-item randomness is path-keyed (each sub-region's seed is a pure
function of its path from the root), so the batched engine reproduces the
sequential engine's per-region PGD searches no matter how the frontier is
chunked.  These tests pin that contract on the xor network and on the
synthetic ACAS advisory networks: identical outcomes, identical witnesses
under a fixed rng, and identical statistics on verified runs (where both
engines explore exactly the same refinement tree).
"""

import numpy as np
import pytest

from repro.abstract.domains import DomainSpec, ZONOTOPE
from repro.core.config import VerifierConfig
from repro.core.parallel import verify_parallel
from repro.core.policy import BisectionPolicy
from repro.core.property import RobustnessProperty, linf_property
from repro.core.results import Falsified, Verified
from repro.core.verifier import BatchedVerifier, Verifier, verify, verify_batched
from repro.data.acas import acas_network, acas_training_properties
from repro.nn.builders import example_2_2_network, mlp, xor_network
from repro.utils.boxes import Box


@pytest.fixture(scope="session")
def acas_suite():
    """A small trained ACAS advisory network plus mixed-difficulty props."""
    network = acas_network(hidden=(12, 12), epochs=8, rng=7)
    props = acas_training_properties(network, count=6, rng=11)
    return network, props


def _quick(**kwargs):
    defaults = {"timeout": 20.0}
    defaults.update(kwargs)
    return VerifierConfig(**defaults)


def _assert_equivalent(net, prop, config, rng=0, check_stats=True):
    seq = verify(net, prop, config=config, rng=rng)
    bat = verify_batched(net, prop, config=config, rng=rng)
    assert seq.kind == bat.kind, f"{seq.kind} vs {bat.kind}"
    if isinstance(seq, Falsified):
        np.testing.assert_allclose(
            bat.counterexample, seq.counterexample, atol=1e-9
        )
        assert bat.margin == pytest.approx(seq.margin, abs=1e-9)
        assert prop.region.contains(bat.counterexample)
    elif isinstance(seq, Verified) and check_stats:
        # Verified runs explore the same refinement tree, so the
        # order-insensitive counters must agree exactly.
        assert bat.stats.pgd_calls == seq.stats.pgd_calls
        assert bat.stats.analyze_calls == seq.stats.analyze_calls
        assert bat.stats.splits == seq.stats.splits
        assert bat.stats.max_depth_reached == seq.stats.max_depth_reached
        assert bat.stats.domains_used == seq.stats.domains_used
    return seq, bat


class TestXorEquivalence:
    def test_verified_region(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        seq, _ = _assert_equivalent(net, prop, _quick())
        assert seq.kind == "verified"

    def test_verified_with_splits(self):
        # Plain zonotopes force real refinement (the paper's Example 3.1
        # trace), exercising multi-item frontier sweeps.
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        config = _quick()
        policy = BisectionPolicy(domain=ZONOTOPE)
        seq = Verifier(net, policy, config, rng=0).verify(prop)
        bat = BatchedVerifier(net, policy, config, rng=0).verify(prop)
        assert seq.kind == bat.kind == "verified"
        assert bat.stats.splits == seq.stats.splits >= 1

    def test_falsified_region(self):
        net = xor_network()
        prop = RobustnessProperty(Box(np.zeros(2), np.ones(2)), 0)
        seq, _ = _assert_equivalent(net, prop, _quick())
        assert seq.kind == "falsified"

    def test_example_2_2_witness_identical(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        seq = verify(net, prop, config=_quick(), rng=0)
        bat = verify_batched(net, prop, config=_quick(), rng=0)
        assert seq.kind == bat.kind == "falsified"
        np.testing.assert_array_equal(seq.counterexample, bat.counterexample)


class TestAcasEquivalence:
    def test_outcomes_and_witnesses(self, acas_suite):
        network, props = acas_suite
        decided = 0
        for prop in props:
            seq, bat = _assert_equivalent(
                network, prop, _quick(timeout=10.0), rng=0
            )
            decided += seq.kind in ("verified", "falsified")
        assert decided >= len(props) // 2  # the suite actually decides

    def test_batch_size_invariance(self, acas_suite):
        """The frontier sweep width must never change the decision."""
        network, props = acas_suite
        prop = props[0]
        outcomes = [
            verify_batched(
                network, prop, config=_quick(timeout=10.0, batch_size=bs),
                rng=0,
            )
            for bs in (1, 2, 7, 32)
        ]
        kinds = {o.kind for o in outcomes}
        assert len(kinds) == 1


class TestBudgetsAndSemantics:
    def test_batch_size_one_matches_sequential_exactly(self):
        net = mlp(4, [12], 3, rng=5)
        prop = linf_property(net, np.full(4, 0.5), 0.3)
        config = _quick(timeout=10.0, batch_size=1)
        _assert_equivalent(net, prop, config)

    def test_delta_counterexamples(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.45, 0.45]), np.array([0.55, 0.55])), 1
        )
        strict = verify_batched(net, prop, config=_quick(delta=1e-9), rng=0)
        assert strict.kind == "verified"
        loose = verify_batched(net, prop, config=_quick(delta=10.0), rng=0)
        assert loose.kind == "falsified"
        assert loose.margin <= 10.0

    def test_timeout_budget(self):
        net = mlp(8, [24, 24, 24], 5, rng=3)
        prop = linf_property(net, np.full(8, 0.5), 0.5)
        outcome = verify_batched(
            net, prop, config=VerifierConfig(timeout=0.05), rng=0
        )
        assert outcome.kind in ("timeout", "falsified")

    def test_depth_cap(self):
        net = mlp(4, [16, 16], 3, rng=4)
        prop = linf_property(net, np.full(4, 0.5), 0.6)
        outcome = verify_batched(
            net, prop, config=VerifierConfig(timeout=20, max_depth=1), rng=0
        )
        assert outcome.kind in ("timeout", "falsified", "verified")

    def test_witness_is_delta_valid(self):
        rng = np.random.default_rng(1)
        falsified = 0
        for seed in range(8):
            net = mlp(3, [10], 3, rng=100 + seed)
            center = rng.uniform(-0.5, 0.5, 3)
            prop = linf_property(net, center, 0.8, clip_low=None, clip_high=None)
            config = _quick(timeout=5)
            outcome = verify_batched(net, prop, config=config, rng=0)
            if isinstance(outcome, Falsified):
                falsified += 1
                assert prop.region.contains(outcome.counterexample)
                margin = prop.margin_at(net, outcome.counterexample)
                assert margin <= config.delta + 1e-12
        assert falsified > 0

    def test_deterministic_across_runs(self):
        net = mlp(4, [12], 3, rng=5)
        prop = linf_property(net, np.full(4, 0.5), 0.3)
        a = verify_batched(net, prop, config=_quick(timeout=5), rng=42)
        b = verify_batched(net, prop, config=_quick(timeout=5), rng=42)
        assert a.kind == b.kind
        if isinstance(a, Falsified):
            np.testing.assert_array_equal(a.counterexample, b.counterexample)


class TestParallelAgreement:
    def test_parallel_frontier_agrees(self):
        """Path-keyed seeds make parallel results scheduling-independent
        per region; decided instances must agree with the batched engine."""
        rng = np.random.default_rng(0)
        for seed in range(5):
            net = mlp(3, [8], 3, rng=seed)
            center = rng.uniform(-0.3, 0.3, 3)
            prop = linf_property(net, center, 0.1, clip_low=None, clip_high=None)
            config = VerifierConfig(timeout=10)
            bat = verify_batched(net, prop, config=config, rng=0)
            par = verify_parallel(net, prop, config=config, workers=3, rng=0)
            if "timeout" not in (bat.kind, par.kind):
                assert bat.kind == par.kind
