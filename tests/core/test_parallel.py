"""Tests for the parallel verifier (§6 parallelization)."""

import numpy as np
import pytest

from repro.core.config import VerifierConfig
from repro.core.parallel import ParallelVerifier, verify_parallel
from repro.core.policy import BisectionPolicy
from repro.core.property import RobustnessProperty, linf_property
from repro.core.verifier import verify
from repro.abstract.domains import DomainSpec
from repro.nn.builders import example_2_2_network, mlp, xor_network
from repro.utils.boxes import Box


class TestParallelVerifier:
    def test_validates_workers(self):
        with pytest.raises(ValueError):
            ParallelVerifier(xor_network(), workers=0)

    def test_verifies_xor_region(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        outcome = verify_parallel(
            net, prop, config=VerifierConfig(timeout=20), workers=3, rng=0
        )
        assert outcome.kind == "verified"

    def test_parallel_splits_still_verify(self):
        # Force the weak plain-zonotope domain so real splitting happens
        # across workers.
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        policy = BisectionPolicy(domain=DomainSpec("zonotope", 1))
        outcome = verify_parallel(
            net, prop, policy=policy,
            config=VerifierConfig(timeout=20), workers=4, rng=0,
        )
        assert outcome.kind == "verified"
        assert outcome.stats.splits >= 1

    def test_falsifies_with_valid_witness(self):
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        outcome = verify_parallel(
            net, prop, config=VerifierConfig(timeout=20), workers=3, rng=0
        )
        assert outcome.kind == "falsified"
        assert prop.region.contains(outcome.counterexample)
        margin = prop.margin_at(net, outcome.counterexample)
        assert margin <= 1e-6 + 1e-12

    def test_agrees_with_sequential_on_decided_instances(self):
        rng = np.random.default_rng(0)
        for seed in range(6):
            net = mlp(3, [8], 3, rng=seed)
            center = rng.uniform(-0.3, 0.3, 3)
            prop = linf_property(net, center, 0.1, clip_low=None, clip_high=None)
            config = VerifierConfig(timeout=10)
            seq = verify(net, prop, config=config, rng=0)
            par = verify_parallel(net, prop, config=config, workers=3, rng=0)
            if "timeout" not in (seq.kind, par.kind):
                assert seq.kind == par.kind, f"seed {seed}: {seq.kind} vs {par.kind}"

    def test_timeout_budget(self):
        net = mlp(8, [24, 24, 24], 5, rng=3)
        prop = linf_property(net, np.full(8, 0.5), 0.5)
        outcome = verify_parallel(
            net, prop, config=VerifierConfig(timeout=0.2), workers=2, rng=0
        )
        assert outcome.kind in ("timeout", "falsified")

    def test_single_worker_equals_pool_of_one(self):
        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.4, 0.4]), np.array([0.6, 0.6])), 1
        )
        outcome = verify_parallel(
            net, prop, config=VerifierConfig(timeout=10), workers=1, rng=0
        )
        assert outcome.kind == "verified"

    def test_accepts_shared_executor(self):
        from repro.exec import PooledExecutor, SerialExecutor

        net = xor_network()
        prop = RobustnessProperty(
            Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1
        )
        for executor in (SerialExecutor(), PooledExecutor(2)):
            with executor:
                outcome = ParallelVerifier(
                    net, config=VerifierConfig(timeout=20),
                    rng=0, executor=executor,
                ).verify(prop)
            assert outcome.kind == "verified"


class TestFalsificationLatency:
    def test_terminal_outcome_cancels_the_backlog(self):
        """Once a terminal outcome lands, every not-yet-started chunk must
        be cancelled instead of being scheduled just to bail out.  The
        cancel mechanics themselves are pinned deterministically in
        tests/exec; here we pin that the verifier *routes* the backlog
        through cancel_pending and still reports the right answer."""
        from repro.exec import PooledExecutor

        class CountingExecutor(PooledExecutor):
            def __init__(self):
                super().__init__(workers=2)
                self.cancel_calls = 0
                self.cancelled = 0

            def cancel_pending(self, futures):
                self.cancel_calls += 1
                remaining = super().cancel_pending(futures)
                self.cancelled += len(futures) - len(remaining)
                return remaining

        # A wide falsifiable region with a tiny batch size keeps the
        # frontier fanning out while workers drain it, so a backlog is
        # likely (not guaranteed — timing) when the counterexample lands.
        net = example_2_2_network()
        prop = RobustnessProperty(Box(np.array([-1.0]), np.array([2.0])), 1)
        executor = CountingExecutor()
        with executor:
            outcome = ParallelVerifier(
                net,
                config=VerifierConfig(timeout=30, batch_size=1),
                workers=2,
                rng=0,
                executor=executor,
            ).verify(prop)
        assert outcome.kind == "falsified"
        assert prop.region.contains(outcome.counterexample)
        # The terminal outcome must have routed through the cancel path.
        assert executor.cancel_calls >= 1
