"""Batched zonotope/powerset kernels must match the sequential elements
**bitwise**, row by row.

Unlike the interval/DeepPoly batches (whose GEMM operand shapes include
the batch height, leaving a few ulps of BLAS drift), the zonotope-family
kernels are batch-height-stable by construction — every product and
reduction runs the same float sequence per row at every batch size (see
``repro.abstract.zonotope_batch``).  These tests therefore assert *exact*
equality: margins, bounds, and every representation array, across
disjunct budgets, crossing patterns, overflow joins, and batch heights.
"""

import numpy as np
import pytest

from repro.abstract import fused
from repro.abstract.analyzer import analyze, analyze_batch, analyze_batch_multi
from repro.abstract.batched import BatchedElement
from repro.abstract.domains import ZONOTOPE, DomainSpec, bounded_zonotopes
from repro.abstract.powerset import PowersetElement
from repro.abstract.zonotope import Zonotope
from repro.abstract.zonotope_batch import PowersetBatch, ZonotopeBatch
from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.utils.boxes import Box


def _regions(seed, count, n, lo=-0.6, hi=0.6, rmax=0.3):
    rng = np.random.default_rng(seed)
    return [
        Box.from_center_radius(
            rng.uniform(lo, hi, n), float(rng.uniform(0.01, rmax))
        )
        for _ in range(count)
    ]


def _random_batch(seed, batch, k, n):
    """A ZonotopeBatch with nonzero error terms (exercises the err paths
    the from-box pipeline only reaches after joins)."""
    rng = np.random.default_rng(seed)
    return ZonotopeBatch(
        rng.standard_normal((batch, n)),
        rng.standard_normal((batch, k, n)) / k,
        rng.uniform(0.0, 0.2, (batch, n)),
    )


def _assert_rows_equal(element, batch_row):
    assert type(batch_row) is Zonotope
    np.testing.assert_array_equal(element.center, batch_row.center)
    np.testing.assert_array_equal(element.gens, batch_row.gens)
    np.testing.assert_array_equal(element.err, batch_row.err)


class TestZonotopeBatchTransformers:
    @pytest.mark.parametrize("seed", range(3))
    def test_relu_matches_sequential_bitwise(self, seed):
        batch = _random_batch(seed, batch=7, k=9, n=6)
        out = batch.relu()
        for i in range(batch.batch_size):
            _assert_rows_equal(batch.row(i).relu(), out.row(i))

    def test_affine_matches_sequential_bitwise(self):
        batch = _random_batch(11, batch=5, k=6, n=4)
        rng = np.random.default_rng(0)
        weight = rng.standard_normal((7, 4))
        bias = rng.standard_normal(7)
        out = batch.affine(weight, bias)
        for i in range(batch.batch_size):
            _assert_rows_equal(batch.row(i).affine(weight, bias), out.row(i))

    def test_maxpool_matches_sequential_bitwise(self):
        batch = _random_batch(13, batch=6, k=8, n=8)
        windows = np.array([[0, 1, 2], [3, 4, 5], [5, 6, 7]])
        out = batch.maxpool(windows)
        for i in range(batch.batch_size):
            _assert_rows_equal(batch.row(i).maxpool(windows), out.row(i))

    def test_min_margin_matches_sequential_bitwise(self):
        batch = _random_batch(17, batch=6, k=10, n=5)
        margins = batch.min_margin(2)
        for i in range(batch.batch_size):
            assert margins[i] == batch.row(i).min_margin(2)

    def test_rows_slicing(self):
        batch = _random_batch(19, batch=6, k=4, n=3)
        sub = batch.rows([4, 1])
        _assert_rows_equal(batch.row(4), sub.row(0))
        _assert_rows_equal(batch.row(1), sub.row(1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZonotopeBatch.from_boxes([])
        with pytest.raises(ValueError):
            ZonotopeBatch(
                np.zeros((2, 3)), np.zeros((2, 1, 3)), -np.ones((2, 3))
            )
        with pytest.raises(ValueError):
            ZonotopeBatch(np.zeros((2, 3)), np.zeros((2, 1, 4)), np.zeros((2, 3)))


class TestAnalyzeDispatch:
    """End-to-end: analyze_batch routes zonotope domains through the
    batched kernels and still matches per-region analyze exactly."""

    @pytest.mark.parametrize(
        "domain", [ZONOTOPE, bounded_zonotopes(2), bounded_zonotopes(4)],
        ids=str,
    )
    def test_mlp_exact(self, domain):
        net = mlp(5, [12, 10], 3, rng=4)
        regions = _regions(8, 5, 5, rmax=0.5)
        batch = analyze_batch(net, regions, 1, domain)
        for i, region in enumerate(regions):
            single = analyze(net, region, 1, domain)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == single.margin_lower_bound
            lo_b, hi_b = batch[i].output.bounds()
            lo_s, hi_s = single.output.bounds()
            np.testing.assert_array_equal(lo_b, lo_s)
            np.testing.assert_array_equal(hi_b, hi_s)

    @pytest.mark.parametrize(
        "domain", [ZONOTOPE, bounded_zonotopes(3)], ids=str
    )
    def test_conv_with_maxpool_exact(self, domain):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=4, rng=0)
        regions = _regions(2, 3, net.input_size, lo=0.2, hi=0.8, rmax=0.1)
        batch = analyze_batch(net, regions, 1, domain)
        for i, region in enumerate(regions):
            single = analyze(net, region, 1, domain)
            assert batch[i].margin_lower_bound == single.margin_lower_bound

    def test_mixed_labels_exact(self):
        net = mlp(4, [10, 8], 4, rng=2)
        regions = _regions(3, 6, 4, rmax=0.4)
        labels = [0, 1, 2, 3, 1, 0]
        batch = analyze_batch_multi(
            net, regions, labels, bounded_zonotopes(2)
        )
        for i, (region, label) in enumerate(zip(regions, labels)):
            single = analyze(net, region, label, bounded_zonotopes(2))
            assert batch[i].margin_lower_bound == single.margin_lower_bound

    def test_batch_height_stability(self):
        """A row's result is independent of who shares its kernel call —
        the property the scheduler's fused sweeps rely on."""
        net = mlp(6, [16, 12], 4, rng=7)
        regions = _regions(11, 12, 6, rmax=0.5)
        for domain in (ZONOTOPE, bounded_zonotopes(4)):
            full = analyze_batch(net, regions, 2, domain)
            for cut in (1, 3, 7):
                part = analyze_batch(net, regions[:cut], 2, domain)
                for i in range(cut):
                    assert (
                        part[i].margin_lower_bound
                        == full[i].margin_lower_bound
                    )

    def test_outputs_are_sequential_element_types(self):
        net = xor_network()
        region = Box(np.array([0.3, 0.3]), np.array([0.7, 0.7]))
        zono = analyze_batch(net, [region], 1, ZONOTOPE)[0].output
        power = analyze_batch(net, [region], 1, bounded_zonotopes(2))[0].output
        assert type(zono) is Zonotope
        assert type(power) is PowersetElement

    def test_batched_element_protocol(self):
        boxes = [Box.unit(3), Box.unit(3)]
        for spec, cls in (
            (DomainSpec("zonotope", 1), ZonotopeBatch),
            (DomainSpec("zonotope", 4), PowersetBatch),
        ):
            element = spec.lift_batch(boxes)
            assert isinstance(element, cls)
            assert isinstance(element, BatchedElement)
            assert element.batch_size == 2
        assert DomainSpec("symbolic", 1).lift_batch(boxes) is None
        assert DomainSpec("interval", 4).lift_batch(boxes) is None


class TestPowersetBatchRelu:
    """The satellite contract: randomized batch-vs-single equivalence
    across disjunct counts, crossing patterns, and overflow joins."""

    @pytest.mark.parametrize("budget", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_exact_across_budgets(self, seed, budget):
        net = mlp(5, [14, 10], 3, rng=seed + 20)
        # Wide regions make many dims cross, so small budgets overflow
        # (residual split+join joins inside the final pass) while large
        # budgets keep splitting — both paths compared exactly.
        regions = _regions(seed + 40, 5, 5, rmax=0.8)
        domain = DomainSpec("zonotope", budget)
        batch = analyze_batch(net, regions, 1, domain)
        for i, region in enumerate(regions):
            single = analyze(net, region, 1, domain)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == single.margin_lower_bound

    def test_disjunct_structure_matches(self):
        """Same disjunct count, same per-disjunct arrays as sequential."""
        net = mlp(4, [12], 3, rng=9)
        regions = _regions(5, 4, 4, rmax=0.7)
        batch = analyze_batch(net, regions, 0, bounded_zonotopes(4))
        for i, region in enumerate(regions):
            single = analyze(net, region, 0, bounded_zonotopes(4))
            got = batch[i].output
            want = single.output
            assert got.num_disjuncts == want.num_disjuncts
            for d in range(want.num_disjuncts):
                _assert_rows_equal(want.elements[d], got.elements[d])

    def test_no_crossing_clamp_only(self):
        """Regions whose activations never cross take the one-pass clamp
        path; results must still be exact."""
        net = mlp(3, [6], 2, rng=1)
        regions = _regions(6, 4, 3, rmax=0.01)
        batch = analyze_batch(net, regions, 0, bounded_zonotopes(2))
        for i, region in enumerate(regions):
            single = analyze(net, region, 0, bounded_zonotopes(2))
            assert batch[i].margin_lower_bound == single.margin_lower_bound

    def test_powerset_rows_and_bounds(self):
        boxes = _regions(7, 3, 4, rmax=0.2)
        batch = PowersetBatch.from_boxes(boxes, 3)
        assert batch.total_disjuncts == 3
        sub = batch.rows([2, 0])
        assert sub.batch_size == 2
        low, high = batch.bounds()
        for i, box in enumerate(boxes):
            # Bitwise-equal to the sequential lift (which reconstructs
            # bounds from center ± radius, same as the batch).
            want_low, want_high = Zonotope.from_box(box).bounds()
            np.testing.assert_array_equal(low[i], want_low)
            np.testing.assert_array_equal(high[i], want_high)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowersetBatch.from_boxes([], 2)
        with pytest.raises(ValueError):
            PowersetBatch.from_boxes([Box.unit(2)], 0)
        with pytest.raises(ValueError):
            PowersetBatch(
                np.zeros((3, 2)),
                np.zeros((3, 0, 2)),
                np.zeros((3, 2)),
                np.array([0, 1, 3]),  # second region has 2 > budget rows
                1,
            )


@pytest.fixture
def no_compaction():
    """Run a test with generator compaction disabled, restoring after."""
    previous = fused.set_compaction(False)
    yield
    fused.set_compaction(previous)


class TestGeneratorCompaction:
    """The fused-kernel compaction invariant: dropping provably-zero
    generator rows changes nothing observable — not against the
    ``--no-compaction`` reference path, and not against the sequential
    single-region elements, across overflow-join and budget cases."""

    @staticmethod
    def _promoted_batch(seed, batch, k, n, dead):
        """A batch with exact-zero generator rows (the err-promotion
        shape compaction exists for)."""
        zb = _random_batch(seed, batch, k, n)
        rng = np.random.default_rng(seed + 1)
        zb.gens[:, rng.choice(k, dead, replace=False), :] = 0.0
        return zb

    @pytest.mark.parametrize("seed", range(4))
    def test_compaction_matches_reference_fuzz(self, seed):
        zb = self._promoted_batch(seed, batch=6, k=12, n=7, dead=5)
        previous = fused.set_compaction(False)
        try:
            want = zb.relu()
        finally:
            fused.set_compaction(previous)
        fused.reset_counters()
        got = zb.relu()
        assert fused.FUSED_COUNTERS["compacted_rows"] > 0
        # Identical values and identical shapes: compaction is internal,
        # the dropped rows come back as zeros in their original slots.
        np.testing.assert_array_equal(got.centers, want.centers)
        np.testing.assert_array_equal(got.gens, want.gens)
        np.testing.assert_array_equal(got.errs, want.errs)

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_vs_single_with_compaction_fuzz(self, seed):
        """Batched rows equal sequential elements bitwise whether or not
        compaction runs (both paths apply it identically)."""
        zb = self._promoted_batch(seed + 7, batch=5, k=10, n=6, dead=4)
        for enabled in (True, False):
            previous = fused.set_compaction(enabled)
            try:
                out = zb.relu()
                for i in range(zb.batch_size):
                    _assert_rows_equal(zb.row(i).relu(), out.row(i))
            finally:
                fused.set_compaction(previous)

    @pytest.mark.parametrize("budget", [1, 2, 4])
    def test_powerset_budget_cases_match_reference(self, budget):
        """Overflow-join/budget pipelines end to end: margins and every
        disjunct array agree between compaction and the reference path,
        and with the sequential analyzer."""
        net = mlp(5, [14, 10], 3, rng=31)
        regions = _regions(51, 4, 5, rmax=0.8)
        domain = DomainSpec("zonotope", budget)
        with_compaction = analyze_batch(net, regions, 1, domain)
        previous = fused.set_compaction(False)
        try:
            reference = analyze_batch(net, regions, 1, domain)
            sequential = [analyze(net, r, 1, domain) for r in regions]
        finally:
            fused.set_compaction(previous)
        for got, want, solo in zip(with_compaction, reference, sequential):
            assert got.margin_lower_bound == want.margin_lower_bound
            assert got.margin_lower_bound == solo.margin_lower_bound
            if budget == 1:  # plain zonotope outputs, no disjunct structure
                _assert_rows_equal(want.output, got.output)
            else:
                assert got.output.num_disjuncts == want.output.num_disjuncts
                for d in range(want.output.num_disjuncts):
                    _assert_rows_equal(
                        want.output.elements[d], got.output.elements[d]
                    )

    def test_no_compaction_fixture_disables_counters(self, no_compaction):
        zb = self._promoted_batch(3, batch=4, k=8, n=5, dead=3)
        fused.reset_counters()
        zb.relu()
        assert fused.FUSED_COUNTERS["compacted_rows"] == 0


class TestSoundness:
    """Batched outputs must still contain every concrete execution."""

    @pytest.mark.parametrize(
        "domain", [ZONOTOPE, bounded_zonotopes(3)], ids=str
    )
    def test_contains_concrete_runs(self, domain):
        net = mlp(4, [10, 8], 3, rng=6)
        regions = _regions(9, 3, 4, rmax=0.5)
        batch = analyze_batch(net, regions, 0, domain)
        rng = np.random.default_rng(0)
        for i, region in enumerate(regions):
            low, high = batch[i].output.bounds()
            for x in region.sample(rng, 40):
                y = net.logits(x)
                assert np.all(y >= low - 1e-9) and np.all(y <= high + 1e-9)
