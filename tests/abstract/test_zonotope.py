"""Tests for the zonotope domain: exactness, soundness, and join behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.zonotope import Zonotope
from repro.utils.boxes import Box


def from_box(low, high):
    return Zonotope.from_box(Box(np.array(low, float), np.array(high, float)))


def sample_concretization(z: Zonotope, rng, n=50) -> np.ndarray:
    """Random points of γ(z) via random noise-symbol assignments."""
    etas = rng.uniform(-1, 1, size=(n, max(z.num_gens, 1)))
    xis = rng.uniform(-1, 1, size=(n, z.size))
    pts = z.center[None, :] + xis * z.err[None, :]
    if z.num_gens:
        pts = pts + etas[:, : z.num_gens] @ z.gens
    return pts


class TestConstruction:
    def test_from_box_bounds(self):
        z = from_box([-1, 0], [1, 2])
        lo, hi = z.bounds()
        np.testing.assert_allclose(lo, [-1, 0])
        np.testing.assert_allclose(hi, [1, 2])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="generator"):
            Zonotope(np.zeros(2), np.zeros((3, 3)), np.zeros(2))
        with pytest.raises(ValueError, match="error"):
            Zonotope(np.zeros(2), np.zeros((1, 2)), np.zeros(3))
        with pytest.raises(ValueError, match="non-negative"):
            Zonotope(np.zeros(2), np.zeros((1, 2)), -np.ones(2))

    def test_repr(self):
        z = from_box([0], [1])
        assert "Zonotope" in repr(z)


class TestAffine:
    def test_exact_translation(self):
        z = from_box([0, 0], [1, 1])
        out = z.affine(np.eye(2), np.array([5.0, -5.0]))
        lo, hi = out.bounds()
        np.testing.assert_allclose(lo, [5, -5])
        np.testing.assert_allclose(hi, [6, -4])

    def test_rotation_preserves_relations(self):
        # Unlike intervals, zonotopes track y = x exactly through [x, x].
        z = from_box([0.0], [1.0])
        out = z.affine(np.array([[1.0], [1.0]]), np.zeros(2))
        # margin y0 - y1 == 0 exactly.
        assert out.lower_margin(0, 1) == pytest.approx(0.0)
        assert out.lower_margin(1, 0) == pytest.approx(0.0)

    def test_interval_would_lose_the_relation(self):
        from repro.abstract.interval import IntervalElement

        e = IntervalElement(np.zeros(1), np.ones(1))
        out = e.affine(np.array([[1.0], [1.0]]), np.zeros(2))
        assert out.lower_margin(0, 1) == pytest.approx(-1.0)

    def test_err_promoted_to_generators(self):
        z = Zonotope(np.zeros(2), np.zeros((0, 2)), np.array([1.0, 2.0]))
        out = z.affine(np.eye(2), np.zeros(2))
        assert out.num_gens == 2
        np.testing.assert_array_equal(out.err, 0.0)

    def test_affine_composition_matches_direct(self):
        rng = np.random.default_rng(0)
        z = from_box([-1, -1, -1], [1, 1, 1])
        w1, b1 = rng.normal(size=(4, 3)), rng.normal(size=4)
        w2, b2 = rng.normal(size=(2, 4)), rng.normal(size=2)
        two_step = z.affine(w1, b1).affine(w2, b2)
        direct = z.affine(w2 @ w1, w2 @ b1 + b2)
        lo_a, hi_a = two_step.bounds()
        lo_b, hi_b = direct.bounds()
        np.testing.assert_allclose(lo_a, lo_b, atol=1e-12)
        np.testing.assert_allclose(hi_a, hi_b, atol=1e-12)


class TestRelu:
    def test_positive_is_identity(self):
        z = from_box([1, 2], [3, 4]).affine(np.eye(2), np.zeros(2))
        out = z.relu()
        lo, hi = out.bounds()
        np.testing.assert_allclose(lo, [1, 2])
        np.testing.assert_allclose(hi, [3, 4])

    def test_negative_is_projected(self):
        z = from_box([-3, -2], [-1, -1]).affine(np.eye(2), np.zeros(2))
        out = z.relu()
        lo, hi = out.bounds()
        np.testing.assert_allclose(lo, [0, 0])
        np.testing.assert_allclose(hi, [0, 0])

    def test_crossing_is_sound(self):
        rng = np.random.default_rng(0)
        z = from_box([-1, -2], [2, 1]).affine(
            rng.normal(size=(2, 2)), rng.normal(size=2)
        )
        out = z.relu()
        lo, hi = out.bounds()
        for x in sample_concretization(z, rng, 200):
            y = np.maximum(x, 0)
            assert np.all(y >= lo - 1e-9) and np.all(y <= hi + 1e-9)

    def test_relu_dim_noncrossing_shortcuts(self):
        z = from_box([1.0], [2.0]).affine(np.eye(1), np.zeros(1))
        out = z.relu_dim(0)
        lo, hi = out.bounds()
        assert lo[0] == pytest.approx(1.0)
        z_neg = from_box([-2.0], [-1.0]).affine(np.eye(1), np.zeros(1))
        out = z_neg.relu_dim(0)
        lo, hi = out.bounds()
        assert lo[0] == hi[0] == 0.0


class TestContraction:
    def test_pos_branch_over_approximates_meet(self):
        rng = np.random.default_rng(1)
        z = from_box([-2, -1], [2, 1]).affine(rng.normal(size=(2, 2)), np.zeros(2))
        crossing = z.crossing_dims()
        if crossing.size == 0:
            pytest.skip("no crossing dim for this seed")
        dim = int(crossing[0])
        pos, neg = z.relu_split(dim)
        for x in sample_concretization(z, rng, 300):
            y = x.copy()
            y[dim] = max(y[dim], 0.0)
            assert pos.contains(y, atol=1e-7) or neg.contains(y, atol=1e-7)

    def test_neg_branch_projects_dim(self):
        z = from_box([-2, 1], [2, 3]).affine(np.eye(2), np.zeros(2))
        _, neg = z.relu_split(0)
        lo, hi = neg.bounds()
        assert lo[0] == hi[0] == 0.0

    def test_contraction_shrinks(self):
        z = from_box([-2.0], [2.0]).affine(np.eye(1), np.zeros(1))
        pos, neg = z.relu_split(0)
        # Each branch should be no wider than the parent.
        assert pos.bounds()[1][0] - pos.bounds()[0][0] <= 4.0 + 1e-12
        assert neg.bounds()[1][0] <= 1e-12

    def test_split_rejects_noncrossing(self):
        z = from_box([1.0], [2.0]).affine(np.eye(1), np.zeros(1))
        with pytest.raises(ValueError, match="cross"):
            z.relu_split(0)


class TestJoin:
    def test_join_contains_both(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(2, 2))
        z1 = from_box([-1, -1], [0.5, 0.5]).affine(w, np.zeros(2))
        z2 = from_box([-0.5, -0.5], [1, 1]).affine(w, np.zeros(2))
        j = z1.join(z2)
        for z in (z1, z2):
            for x in sample_concretization(z, rng, 100):
                assert j.contains(x, atol=1e-9)

    def test_join_keeps_shared_structure(self):
        # Joining an element with itself must be lossless.
        z = from_box([-1, 0], [1, 2]).affine(np.eye(2), np.zeros(2))
        j = z.join(z)
        lo, hi = z.bounds()
        jlo, jhi = j.bounds()
        np.testing.assert_allclose(jlo, lo, atol=1e-12)
        np.testing.assert_allclose(jhi, hi, atol=1e-12)
        # Relational margin survives a self-join.
        assert j.lower_margin(0, 1) == pytest.approx(z.lower_margin(0, 1))

    def test_join_type_and_shape_errors(self):
        z = from_box([0], [1])
        with pytest.raises(TypeError):
            z.join(object())
        other = Zonotope(np.zeros(1), np.zeros((3, 1)), np.zeros(1))
        with pytest.raises(ValueError, match="matching"):
            z.join(other)


class TestMargins:
    def test_relational_margin_beats_interval(self):
        # y0 = x, y1 = x - 1: margin exactly 1 despite overlapping ranges.
        z = from_box([0.0], [10.0]).affine(
            np.array([[1.0], [1.0]]), np.array([0.0, -1.0])
        )
        assert z.lower_margin(0, 1) == pytest.approx(1.0)
        lo, hi = z.bounds()
        interval_bound = lo[0] - hi[1]
        assert interval_bound < 0  # the interval view cannot prove it

    def test_margin_sound(self):
        rng = np.random.default_rng(3)
        z = from_box([-1, -1], [1, 1]).affine(rng.normal(size=(3, 2)), rng.normal(size=3))
        bound = z.lower_margin(0, 1)
        for x in sample_concretization(z, rng, 300):
            assert x[0] - x[1] >= bound - 1e-9


class TestMaxPool:
    def test_dominant_unit_stays_relational(self):
        # Window where unit 0 strictly dominates: output == unit 0.
        z = from_box([5.0, 0.0], [6.0, 1.0]).affine(np.eye(2), np.zeros(2))
        out = z.maxpool(np.array([[0, 1]]))
        lo, hi = out.bounds()
        assert lo[0] == pytest.approx(5.0)
        assert hi[0] == pytest.approx(6.0)
        assert out.num_gens == z.num_gens

    def test_overlapping_window_falls_back_to_hull(self):
        z = from_box([0.0, 0.0], [1.0, 1.0]).affine(np.eye(2), np.zeros(2))
        out = z.maxpool(np.array([[0, 1]]))
        lo, hi = out.bounds()
        assert lo[0] <= 0.0 + 1e-12
        assert hi[0] >= 1.0 - 1e-12

    def test_maxpool_sound(self):
        rng = np.random.default_rng(4)
        z = from_box([-1, -1, -1, -1], [1, 2, 0.5, 1.5]).affine(
            rng.normal(size=(4, 4)), np.zeros(4)
        )
        windows = np.array([[0, 1], [2, 3]])
        out = z.maxpool(windows)
        lo, hi = out.bounds()
        for x in sample_concretization(z, rng, 200):
            y = x[windows].max(axis=1)
            assert np.all(y >= lo - 1e-9) and np.all(y <= hi + 1e-9)


class TestSoundnessFuzz:
    @given(st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_full_relu_pipeline_sound(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        low = rng.uniform(-2, 0, n)
        high = low + rng.uniform(0.1, 2, n)
        box_pts = rng.uniform(low, high, size=(30, n))
        z = Zonotope.from_box(Box(low, high))
        w1 = rng.normal(size=(4, n))
        b1 = rng.normal(size=4)
        w2 = rng.normal(size=(3, 4))
        b2 = rng.normal(size=3)
        out = z.affine(w1, b1).relu().affine(w2, b2)
        lo, hi = out.bounds()
        for x in box_pts:
            y = w2 @ np.maximum(w1 @ x + b1, 0) + b2
            assert np.all(y >= lo - 1e-8) and np.all(y <= hi + 1e-8)
            margin = y[0] - y[1]
            assert margin >= out.lower_margin(0, 1) - 1e-8
