"""Tests for the symbolic interval domain (ReluVal substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.symbolic_interval import SymbolicInterval, symbolic_analyze
from repro.nn.builders import lenet_conv, mlp
from repro.utils.boxes import Box


class TestIdentity:
    def test_identity_bounds_equal_box(self):
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        si = SymbolicInterval.identity(box)
        lo, hi = si.concrete_bounds()
        np.testing.assert_allclose(lo, box.low)
        np.testing.assert_allclose(hi, box.high)


class TestAffine:
    def test_exact_for_linear_function(self):
        box = Box(np.zeros(2), np.ones(2))
        si = SymbolicInterval.identity(box)
        w = np.array([[1.0, -1.0]])
        out = si.affine(w, np.array([0.5]))
        lo, hi = out.concrete_bounds()
        # x1 - x2 + 0.5 over the unit box: exactly [-0.5, 1.5].
        assert lo[0] == pytest.approx(-0.5)
        assert hi[0] == pytest.approx(1.5)

    def test_composition_stays_symbolic(self):
        # Two affine layers that cancel: y = x. Symbolic intervals track
        # this exactly; plain intervals would widen.
        box = Box(np.array([0.0]), np.array([1.0]))
        si = SymbolicInterval.identity(box)
        out = si.affine(np.array([[1.0], [-1.0]]), np.zeros(2)).affine(
            np.array([[0.5, -0.5]]), np.zeros(1)
        )
        lo, hi = out.concrete_bounds()
        assert lo[0] == pytest.approx(0.0)
        assert hi[0] == pytest.approx(1.0)


class TestRelu:
    def test_provably_active_is_identity(self):
        box = Box(np.array([1.0]), np.array([2.0]))
        si = SymbolicInterval.identity(box).relu()
        lo, hi = si.concrete_bounds()
        assert lo[0] == pytest.approx(1.0)
        assert hi[0] == pytest.approx(2.0)

    def test_provably_inactive_is_zero(self):
        box = Box(np.array([-2.0]), np.array([-1.0]))
        si = SymbolicInterval.identity(box).relu()
        lo, hi = si.concrete_bounds()
        assert lo[0] == hi[0] == 0.0

    def test_crossing_is_sound(self):
        box = Box(np.array([-1.0]), np.array([2.0]))
        si = SymbolicInterval.identity(box).relu()
        lo, hi = si.concrete_bounds()
        for x in np.linspace(-1, 2, 31):
            y = max(x, 0.0)
            assert lo[0] - 1e-9 <= y <= hi[0] + 1e-9


class TestMargins:
    def test_relational_margin(self):
        # y0 = x, y1 = x - 1 -> margin exactly 1 for symbolic intervals.
        box = Box(np.array([0.0]), np.array([10.0]))
        si = SymbolicInterval.identity(box).affine(
            np.array([[1.0], [1.0]]), np.array([0.0, -1.0])
        )
        assert si.lower_margin(0, 1) == pytest.approx(1.0)

    def test_min_margin(self):
        # y0 = x + 5, y1 = 0, y2 = 2x over x in [0, 1]:
        # margin vs y1 = min(x + 5) = 5; vs y2 = min(5 - x) = 4 (relational).
        box = Box(np.zeros(1), np.ones(1))
        si = SymbolicInterval.identity(box).affine(
            np.array([[1.0], [0.0], [2.0]]), np.array([5.0, 0.0, 0.0])
        )
        assert si.lower_margin(0, 1) == pytest.approx(5.0)
        assert si.lower_margin(0, 2) == pytest.approx(4.0)
        assert si.min_margin(0) == pytest.approx(4.0)


class TestAnalyze:
    def test_sound_verification(self):
        rng = np.random.default_rng(0)
        for seed in range(10):
            net = mlp(3, [8, 8], 3, rng=seed)
            center = rng.uniform(-0.5, 0.5, 3)
            box = Box.from_center_radius(center, 0.1)
            label = net.classify(center)
            verified, margin = symbolic_analyze(net, box, label)
            assert verified == (margin > 0)
            if verified:
                preds = net.classify_batch(box.sample(rng, 200))
                assert np.all(preds == label)

    def test_margin_bound_sound(self):
        rng = np.random.default_rng(1)
        for seed in range(8):
            net = mlp(4, [10], 3, rng=50 + seed)
            box = Box.from_center_radius(rng.uniform(-1, 1, 4), 0.3)
            _, margin_lb = symbolic_analyze(net, box, 0)
            ys = net.forward(box.sample(rng, 150))
            margins = ys[:, 0] - np.max(np.delete(ys, 0, axis=1), axis=1)
            assert margin_lb <= margins.min() + 1e-9

    def test_tighter_than_plain_intervals(self):
        # Symbolic intervals dominate plain intervals on deep affine chains.
        from repro.abstract.analyzer import analyze
        from repro.abstract.domains import INTERVAL

        count_better = 0
        rng = np.random.default_rng(2)
        for seed in range(10):
            net = mlp(4, [12, 12], 3, rng=200 + seed)
            box = Box.from_center_radius(rng.uniform(-0.5, 0.5, 4), 0.2)
            _, sym_margin = symbolic_analyze(net, box, 0)
            interval_margin = analyze(net, box, 0, INTERVAL).margin_lower_bound
            assert sym_margin >= interval_margin - 1e-9
            if sym_margin > interval_margin + 1e-9:
                count_better += 1
        assert count_better > 5  # strictly better most of the time

    def test_maxpool_unsupported(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        with pytest.raises(TypeError, match="max pooling"):
            symbolic_analyze(net, Box.unit(16), 0)


class TestSoundnessFuzz:
    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_two_layer_sound(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        low = rng.uniform(-1, 0, n)
        high = low + rng.uniform(0.1, 1.5, n)
        box = Box(low, high)
        w1 = rng.normal(size=(5, n))
        b1 = rng.normal(size=5)
        w2 = rng.normal(size=(2, 5))
        b2 = rng.normal(size=2)
        si = SymbolicInterval.identity(box).affine(w1, b1).relu().affine(w2, b2)
        lo, hi = si.concrete_bounds()
        margin_lb = si.lower_margin(0, 1)
        for x in box.sample(rng, 40):
            y = w2 @ np.maximum(w1 @ x + b1, 0) + b2
            assert np.all(y >= lo - 1e-8) and np.all(y <= hi + 1e-8)
            assert y[0] - y[1] >= margin_lb - 1e-8
