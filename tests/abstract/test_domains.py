"""Tests for DomainSpec."""

import numpy as np
import pytest

from repro.abstract.domains import (
    DomainSpec,
    INTERVAL,
    ZONOTOPE,
    bounded_intervals,
    bounded_zonotopes,
)
from repro.abstract.interval import IntervalElement
from repro.abstract.powerset import PowersetElement
from repro.abstract.zonotope import Zonotope
from repro.utils.boxes import Box


class TestDomainSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown base"):
            DomainSpec("octagon", 1)
        with pytest.raises(ValueError, match="disjuncts"):
            DomainSpec("interval", 0)

    def test_lift_interval(self):
        element = INTERVAL.lift(Box.unit(3))
        assert isinstance(element, IntervalElement)

    def test_lift_zonotope(self):
        element = ZONOTOPE.lift(Box.unit(3))
        assert isinstance(element, Zonotope)

    def test_lift_powerset(self):
        element = DomainSpec("zonotope", 4).lift(Box.unit(2))
        assert isinstance(element, PowersetElement)
        assert element.max_disjuncts == 4

    def test_lift_preserves_bounds(self):
        box = Box(np.array([-1.0, 2.0]), np.array([0.0, 3.0]))
        for spec in (INTERVAL, ZONOTOPE, DomainSpec("interval", 8)):
            lo, hi = spec.lift(box).bounds()
            np.testing.assert_allclose(lo, box.low)
            np.testing.assert_allclose(hi, box.high)

    def test_names(self):
        assert str(DomainSpec("zonotope", 2)) == "(Z, 2)"
        assert str(INTERVAL) == "(I, 1)"
        assert DomainSpec("zonotope", 2).short_name == "Zx2"
        assert INTERVAL.short_name == "I"

    def test_precise_domain_names(self):
        from repro.abstract.domains import DEEPPOLY, SYMBOLIC

        assert SYMBOLIC.short_name == "S"
        assert DEEPPOLY.short_name == "D"
        assert str(DEEPPOLY) == "(D, 1)"

    def test_helpers(self):
        assert bounded_zonotopes(64) == DomainSpec("zonotope", 64)
        assert bounded_intervals(4) == DomainSpec("interval", 4)

    def test_hashable(self):
        assert len({INTERVAL, ZONOTOPE, INTERVAL}) == 2

    def test_all_bases_liftable(self):
        from repro.abstract.domains import BASE_DOMAINS

        box = Box.unit(3)
        for base in BASE_DOMAINS:
            element = DomainSpec(base, 1).lift(box)
            lo, hi = element.bounds()
            np.testing.assert_allclose(lo, box.low)
            np.testing.assert_allclose(hi, box.high)
