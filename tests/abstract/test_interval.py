"""Tests for the interval domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.interval import IntervalElement
from repro.utils.boxes import Box


def elem(low, high):
    return IntervalElement(np.array(low, float), np.array(high, float))


class TestConstruction:
    def test_from_box(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 1.0]))
        e = IntervalElement.from_box(box)
        lo, hi = e.bounds()
        np.testing.assert_array_equal(lo, box.low)
        np.testing.assert_array_equal(hi, box.high)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            elem([1.0], [0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            IntervalElement(np.zeros(2), np.zeros(3))

    def test_size_and_repr(self):
        e = elem([0, 0], [1, 1])
        assert e.size == 2
        assert "size=2" in repr(e)


class TestAffine:
    def test_exact_on_identity(self):
        e = elem([-1, 0], [1, 2])
        out = e.affine(np.eye(2), np.array([1.0, -1.0]))
        lo, hi = out.bounds()
        np.testing.assert_allclose(lo, [0.0, -1.0])
        np.testing.assert_allclose(hi, [2.0, 1.0])

    def test_negative_weights_swap_bounds(self):
        e = elem([0.0], [1.0])
        out = e.affine(np.array([[-2.0]]), np.array([0.0]))
        lo, hi = out.bounds()
        assert lo[0] == -2.0 and hi[0] == 0.0

    def test_optimal_per_output(self):
        # Interval affine is the exact per-output range.
        rng = np.random.default_rng(0)
        e = elem([-1, -1, -1], [1, 2, 0.5])
        w = rng.normal(size=(2, 3))
        b = rng.normal(size=2)
        out = e.affine(w, b)
        lo, hi = out.bounds()
        exact_lo = np.minimum(w, 0) @ e.high + np.maximum(w, 0) @ e.low + b
        np.testing.assert_allclose(lo, exact_lo)


class TestRelu:
    def test_clamps(self):
        e = elem([-2, 1, -1], [-1, 2, 3])
        out = e.relu()
        lo, hi = out.bounds()
        np.testing.assert_array_equal(lo, [0, 1, 0])
        np.testing.assert_array_equal(hi, [0, 2, 3])

    def test_idempotent(self):
        e = elem([-1, 0.5], [2, 1])
        once = e.relu()
        twice = once.relu()
        np.testing.assert_array_equal(once.low, twice.low)
        np.testing.assert_array_equal(once.high, twice.high)


class TestMaxPool:
    def test_window_max(self):
        e = elem([0, 2, -1, 5], [1, 3, 0, 6])
        windows = np.array([[0, 1], [2, 3]])
        out = e.maxpool(windows)
        lo, hi = out.bounds()
        np.testing.assert_array_equal(lo, [2, 5])
        np.testing.assert_array_equal(hi, [3, 6])

    def test_sound_vs_concrete(self):
        rng = np.random.default_rng(0)
        low = rng.uniform(-1, 0, 6)
        high = low + rng.uniform(0, 1, 6)
        e = IntervalElement(low, high)
        windows = np.array([[0, 1, 2], [3, 4, 5]])
        out = e.maxpool(windows)
        lo, hi = out.bounds()
        for _ in range(100):
            x = rng.uniform(low, high)
            y = x[windows].max(axis=1)
            assert np.all(y >= lo - 1e-12) and np.all(y <= hi + 1e-12)


class TestSplits:
    def test_crossing_dims_ordered_by_width(self):
        e = elem([-1, -5, 1], [1, 5, 2])
        crossing = e.crossing_dims()
        np.testing.assert_array_equal(crossing, [1, 0])

    def test_relu_split_partitions(self):
        e = elem([-2, 0], [3, 1])
        pos, neg = e.relu_split(0)
        assert pos.low[0] == 0.0 and pos.high[0] == 3.0
        assert neg.low[0] == 0.0 and neg.high[0] == 0.0
        # Untouched dimension survives in both branches.
        assert pos.low[1] == 0.0 and neg.high[1] == 1.0

    def test_relu_split_rejects_noncrossing(self):
        with pytest.raises(ValueError, match="cross"):
            elem([1.0], [2.0]).relu_split(0)

    def test_relu_dim(self):
        e = elem([-2, -2], [3, 3])
        out = e.relu_dim(0)
        assert out.low[0] == 0.0
        assert out.low[1] == -2.0  # other dim untouched

    def test_join(self):
        a = elem([0, 0], [1, 1])
        b = elem([-1, 0.5], [0.5, 2])
        j = a.join(b)
        np.testing.assert_array_equal(j.low, [-1, 0])
        np.testing.assert_array_equal(j.high, [1, 2])

    def test_join_type_error(self):
        with pytest.raises(TypeError):
            elem([0], [1]).join(object())


class TestMargins:
    def test_lower_margin(self):
        e = elem([1.0, -1.0], [2.0, 0.5])
        assert e.lower_margin(0, 1) == pytest.approx(0.5)
        assert e.lower_margin(1, 0) == pytest.approx(-3.0)

    def test_min_margin(self):
        e = elem([1.0, -1.0, 0.0], [2.0, 0.5, 0.8])
        assert e.min_margin(0) == pytest.approx(min(1 - 0.5, 1 - 0.8))

    def test_min_margin_validates_label(self):
        with pytest.raises(ValueError):
            elem([0, 0], [1, 1]).min_margin(5)

    def test_contains_via_bounds(self):
        e = elem([0, 0], [1, 1])
        assert e.contains(np.array([0.5, 0.5]))
        assert not e.contains(np.array([2.0, 0.5]))


@st.composite
def interval_and_points(draw):
    n = draw(st.integers(1, 5))
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    low = rng.uniform(-2, 1, n)
    high = low + rng.uniform(0, 2, n)
    points = rng.uniform(low, high, size=(20, n))
    return IntervalElement(low, high), points


class TestSoundnessProperties:
    @given(interval_and_points(), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_affine_sound(self, data, seed):
        e, points = data
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(3, e.size))
        b = rng.normal(size=3)
        out = e.affine(w, b)
        lo, hi = out.bounds()
        for x in points:
            y = w @ x + b
            assert np.all(y >= lo - 1e-9) and np.all(y <= hi + 1e-9)

    @given(interval_and_points())
    @settings(max_examples=40, deadline=None)
    def test_relu_sound(self, data):
        e, points = data
        out = e.relu()
        lo, hi = out.bounds()
        for x in points:
            y = np.maximum(x, 0)
            assert np.all(y >= lo - 1e-12) and np.all(y <= hi + 1e-12)

    @given(interval_and_points())
    @settings(max_examples=40, deadline=None)
    def test_relu_split_covers(self, data):
        e, points = data
        crossing = e.crossing_dims()
        if crossing.size == 0:
            return
        dim = int(crossing[0])
        pos, neg = e.relu_split(dim)
        for x in points:
            y = x.copy()
            y[dim] = max(y[dim], 0.0)
            assert pos.contains(y) or neg.contains(y)
