"""Tests for the network-level analyzer, including Example 2.3."""

import numpy as np
import pytest

from repro.abstract.analyzer import analyze, propagate
from repro.abstract.domains import DomainSpec, INTERVAL, ZONOTOPE
from repro.abstract.interval import IntervalElement
from repro.nn.builders import example_2_3_network, lenet_conv, mlp, xor_network
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


class TestPropagate:
    def test_matches_concrete_on_point(self):
        net = mlp(4, [8, 8], 3, rng=0)
        x = np.random.default_rng(0).normal(size=4)
        point = Box(x, x)
        out = propagate(net.ops(), INTERVAL.lift(point))
        lo, hi = out.bounds()
        y = net.logits(x)
        np.testing.assert_allclose(lo, y, atol=1e-9)
        np.testing.assert_allclose(hi, y, atol=1e-9)

    def test_deadline_raises(self):
        net = mlp(4, [8], 3, rng=0)
        expired = Deadline(limit=-1.0)
        with pytest.raises(TimeoutError):
            propagate(net.ops(), INTERVAL.lift(Box.unit(4)), expired)

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeError, match="unknown op"):
            propagate([object()], INTERVAL.lift(Box.unit(2)))


class TestAnalyze:
    def test_validates_args(self):
        net = mlp(4, [8], 3, rng=0)
        with pytest.raises(ValueError, match="dims"):
            analyze(net, Box.unit(5), 0, INTERVAL)
        with pytest.raises(ValueError, match="label"):
            analyze(net, Box.unit(4), 7, INTERVAL)

    def test_verified_iff_margin_positive(self):
        net = xor_network()
        box = Box(np.array([0.3, 0.3]), np.array([0.7, 0.7]))
        result = analyze(net, box, 1, DomainSpec("zonotope", 2))
        assert result.verified == (result.margin_lower_bound > 0)

    def test_example_2_3_domain_hierarchy(self):
        """The paper's Example 2.3: only (Z, >=2) verifies."""
        net = example_2_3_network()
        box = Box(np.zeros(2), np.ones(2))
        assert not analyze(net, box, 1, INTERVAL).verified
        assert not analyze(net, box, 1, DomainSpec("interval", 2)).verified
        assert not analyze(net, box, 1, ZONOTOPE).verified
        assert analyze(net, box, 1, DomainSpec("zonotope", 2)).verified
        assert analyze(net, box, 1, DomainSpec("zonotope", 4)).verified

    def test_example_2_3_margins_match_hand_computation(self):
        # Plain zonotope bound is exactly -0.2 (the unsafe point [1.2, 1.2]
        # of Figure 4); two disjuncts prove exactly +0.1 (the true minimum
        # margin, attained at input (1, 0)).
        net = example_2_3_network()
        box = Box(np.zeros(2), np.ones(2))
        plain = analyze(net, box, 1, ZONOTOPE)
        assert plain.margin_lower_bound == pytest.approx(-0.2)
        split = analyze(net, box, 1, DomainSpec("zonotope", 2))
        assert split.margin_lower_bound == pytest.approx(0.1)

    def test_soundness_no_false_verified(self):
        # If any domain verifies, dense sampling must find no counterexample.
        rng = np.random.default_rng(0)
        for seed in range(10):
            net = mlp(3, [10], 3, rng=seed)
            center = rng.uniform(-1, 1, 3)
            box = Box.from_center_radius(center, 0.3)
            label = net.classify(center)
            for spec in (INTERVAL, ZONOTOPE, DomainSpec("zonotope", 4)):
                result = analyze(net, box, label, spec)
                if result.verified:
                    preds = net.classify_batch(box.sample(rng, 300))
                    assert np.all(preds == label)

    def test_margin_bound_sound(self):
        rng = np.random.default_rng(1)
        for seed in range(8):
            net = mlp(4, [12], 3, rng=100 + seed)
            box = Box.from_center_radius(rng.uniform(-1, 1, 4), 0.4)
            for spec in (INTERVAL, ZONOTOPE, DomainSpec("interval", 4)):
                result = analyze(net, box, 0, spec)
                ys = net.forward(box.sample(rng, 200))
                margins = ys[:, 0] - np.max(np.delete(ys, 0, axis=1), axis=1)
                assert result.margin_lower_bound <= margins.min() + 1e-9

    def test_conv_network_supported(self):
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        rng = np.random.default_rng(2)
        x = rng.uniform(0.4, 0.6, 16)
        box = Box.linf_ball(x, 0.01, clip_low=0.0, clip_high=1.0)
        label = net.classify(x)
        result = analyze(net, box, label, ZONOTOPE)
        # Soundness: concrete outputs stay inside the output abstraction.
        lo, hi = result.output.bounds()
        for sample in box.sample(rng, 50):
            y = net.logits(sample)
            assert np.all(y >= lo - 1e-8) and np.all(y <= hi + 1e-8)

    def test_domain_precision_ordering_on_xor(self):
        # On the XOR net's region, Zx2 must be at least as precise as Z.
        net = xor_network()
        box = Box(np.array([0.3, 0.3]), np.array([0.7, 0.7]))
        plain = analyze(net, box, 1, ZONOTOPE)
        split = analyze(net, box, 1, DomainSpec("zonotope", 2))
        assert split.margin_lower_bound >= plain.margin_lower_bound - 1e-9
