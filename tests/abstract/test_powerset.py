"""Tests for the bounded powerset domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.interval import IntervalElement
from repro.abstract.powerset import PowersetElement
from repro.abstract.zonotope import Zonotope
from repro.utils.boxes import Box


def lift(low, high, base="zonotope", k=2):
    box = Box(np.array(low, float), np.array(high, float))
    if base == "zonotope":
        element = Zonotope.from_box(box)
    else:
        element = IntervalElement.from_box(box)
    return PowersetElement([element], max_disjuncts=k)


class TestConstruction:
    def test_validation(self):
        base = IntervalElement(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="max_disjuncts"):
            PowersetElement([base], max_disjuncts=0)
        with pytest.raises(ValueError, match="at least one"):
            PowersetElement([], max_disjuncts=2)
        with pytest.raises(ValueError, match="exceed"):
            PowersetElement([base, base, base], max_disjuncts=2)
        other = IntervalElement(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="dimension"):
            PowersetElement([base, other], max_disjuncts=4)

    def test_introspection(self):
        p = lift([0, 0], [1, 1], k=4)
        assert p.size == 2
        assert p.num_disjuncts == 1
        assert "1/4" in repr(p)


class TestTransformers:
    def test_affine_maps_all(self):
        p = lift([0, 0], [1, 1], base="interval", k=2)
        out = p.affine(2 * np.eye(2), np.zeros(2))
        lo, hi = out.bounds()
        np.testing.assert_allclose(hi, [2, 2])

    def test_relu_splits_crossing_dims(self):
        p = lift([-1, -1], [1, 1], base="interval", k=4)
        # One affine to materialize, then relu should case-split.
        out = p.affine(np.eye(2), np.zeros(2)).relu()
        assert out.num_disjuncts > 1
        assert out.num_disjuncts <= 4

    def test_relu_respects_budget(self):
        p = lift([-1] * 4, [1] * 4, base="interval", k=2)
        out = p.affine(np.eye(4), np.zeros(4)).relu()
        assert out.num_disjuncts <= 2

    def test_budget_one_equals_base_domain(self):
        box = Box(-np.ones(2), np.ones(2))
        base = Zonotope.from_box(box).affine(np.eye(2), np.zeros(2)).relu()
        p = (
            PowersetElement([Zonotope.from_box(box)], max_disjuncts=1)
            .affine(np.eye(2), np.zeros(2))
            .relu()
        )
        lo_b, hi_b = base.bounds()
        lo_p, hi_p = p.bounds()
        np.testing.assert_allclose(lo_p, lo_b, atol=1e-12)
        np.testing.assert_allclose(hi_p, hi_b, atol=1e-12)

    def test_more_disjuncts_tighter_union_bounds(self):
        # With enough budget to split every crossing dim, the union bounds
        # are at least as tight as the plain domain's.
        box = Box(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        plain = Zonotope.from_box(box).affine(np.eye(2), np.zeros(2)).relu()
        split = (
            PowersetElement([Zonotope.from_box(box)], max_disjuncts=4)
            .affine(np.eye(2), np.zeros(2))
            .relu()
        )
        lo_p, hi_p = plain.bounds()
        lo_s, hi_s = split.bounds()
        assert np.all(lo_s >= lo_p - 1e-9)
        assert np.all(hi_s <= hi_p + 1e-9)

    def test_maxpool_maps_elements(self):
        p = lift([0, 0, 2, 2], [1, 1, 3, 3], base="interval", k=2)
        out = p.maxpool(np.array([[0, 1], [2, 3]]))
        lo, hi = out.bounds()
        np.testing.assert_allclose(lo, [0, 2])
        np.testing.assert_allclose(hi, [1, 3])


class TestCaseSplitHooks:
    def test_nested_powerset_rejected(self):
        p = lift([-1], [1])
        with pytest.raises(TypeError, match="nested"):
            p.relu_split(0)

    def test_relu_dim_maps(self):
        p = lift([-1, -1], [1, 1], base="interval", k=2)
        out = p.relu_dim(0)
        lo, _ = out.bounds()
        assert lo[0] == 0.0

    def test_crossing_dims_union(self):
        a = IntervalElement(np.array([-1.0, 1.0]), np.array([1.0, 2.0]))
        b = IntervalElement(np.array([1.0, -1.0]), np.array([2.0, 1.0]))
        p = PowersetElement([a, b], max_disjuncts=2)
        assert set(p.crossing_dims().tolist()) == {0, 1}


class TestJoin:
    def test_join_concatenates_within_budget(self):
        a = lift([0, 0], [1, 1], base="interval", k=4)
        b = lift([2, 2], [3, 3], base="interval", k=4)
        j = a.join(b)
        assert j.num_disjuncts == 2
        lo, hi = j.bounds()
        np.testing.assert_allclose(lo, [0, 0])
        np.testing.assert_allclose(hi, [3, 3])

    def test_join_reduces_over_budget(self):
        elems_a = [
            IntervalElement(np.array([float(i)]), np.array([float(i) + 0.5]))
            for i in range(2)
        ]
        elems_b = [
            IntervalElement(np.array([float(i) + 10]), np.array([float(i) + 10.5]))
            for i in range(2)
        ]
        a = PowersetElement(elems_a, max_disjuncts=2)
        b = PowersetElement(elems_b, max_disjuncts=2)
        j = a.join(b)
        assert j.num_disjuncts <= 2
        lo, hi = j.bounds()
        assert lo[0] <= 0.0 and hi[0] >= 11.5 - 1e-9

    def test_join_type_error(self):
        with pytest.raises(TypeError):
            lift([0], [1]).join(object())


class TestMargins:
    def test_margin_is_min_over_disjuncts(self):
        a = IntervalElement(np.array([2.0, 0.0]), np.array([3.0, 1.0]))
        b = IntervalElement(np.array([5.0, 0.0]), np.array([6.0, 1.0]))
        p = PowersetElement([a, b], max_disjuncts=2)
        assert p.lower_margin(0, 1) == pytest.approx(a.lower_margin(0, 1))
        assert p.min_margin(0) == pytest.approx(a.min_margin(0))


class TestSoundness:
    @given(st.integers(0, 100), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=30, deadline=None)
    def test_relu_network_sound(self, seed, budget):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        low = rng.uniform(-1.5, 0, n)
        high = low + rng.uniform(0.1, 1.5, n)
        box = Box(low, high)
        w1 = rng.normal(size=(5, n))
        b1 = rng.normal(size=5)
        w2 = rng.normal(size=(3, 5))
        b2 = rng.normal(size=3)
        p = (
            PowersetElement([Zonotope.from_box(box)], max_disjuncts=budget)
            .affine(w1, b1)
            .relu()
            .affine(w2, b2)
        )
        lo, hi = p.bounds()
        margin_lb = p.lower_margin(0, 1)
        for x in box.sample(rng, 40):
            y = w2 @ np.maximum(w1 @ x + b1, 0) + b2
            assert np.all(y >= lo - 1e-8) and np.all(y <= hi + 1e-8)
            assert y[0] - y[1] >= margin_lb - 1e-8
