"""The bitwise-resume contract of prefix checkpoints.

``analyze_batch_checkpointed`` resumed from a captured boundary state
must reproduce the cold run's floats *exactly* — margins, output bounds,
and verdicts — because the scheduler substitutes resumed suffix runs for
cold runs without re-deriving anything.  "Close" is not good enough:
equality of outcomes under a different float sequence would silently
depend on decision margins.  The matrix below pins bitwise equality
across domains × batch heights × split depths × backends, both from
in-memory captures and through the ``ResultCache`` disk round-trip
(``.px.npz``), plus the sequential path, conv networks, and the
mismatch guards that keep a checkpoint from resuming the wrong run.
"""

import numpy as np
import pytest

from repro.abstract.analyzer import (
    analyze,
    analyze_batch_checkpointed,
    analyze_batch_multi,
    analyze_checkpointed,
)
from repro.abstract.checkpoint import (
    PrefixBounds,
    capture_element,
    checkpoint_boundaries,
    ops_consumed,
    region_batch_digest,
    restore_element,
    supports_checkpoint,
)
from repro.abstract.domains import (
    DEEPPOLY,
    INTERVAL,
    SYMBOLIC,
    ZONOTOPE,
    DomainSpec,
    bounded_zonotopes,
)
from repro.backend import use_backend
from repro.nn.builders import lenet_conv, mlp
from repro.nn.layers import ReLU
from repro.sched.cache import ResultCache
from repro.utils.boxes import Box

DOMAINS = [INTERVAL, ZONOTOPE, DEEPPOLY]
BACKENDS = ["numpy64", "numpy32"]


def _split_regions(low, high, depth):
    """The leaves of ``depth`` rounds of widest-dimension bisection.

    Mirrors how the verifier's frontier produces sub-regions, so the
    matrix exercises the region shapes checkpoints actually see.
    """
    boxes = [(np.asarray(low, float), np.asarray(high, float))]
    for _ in range(depth):
        nxt = []
        for lo, hi in boxes:
            dim = int(np.argmax(hi - lo))
            mid = 0.5 * (lo[dim] + hi[dim])
            hi_a = hi.copy()
            hi_a[dim] = mid
            lo_b = lo.copy()
            lo_b[dim] = mid
            nxt.append((lo, hi_a))
            nxt.append((lo_b, hi))
        boxes = nxt
    return [Box(lo, hi) for lo, hi in boxes]


def _batch(n, height, depth, seed=5):
    rng = np.random.default_rng(seed)
    regions = []
    while len(regions) < height:
        center = rng.uniform(-0.4, 0.4, n)
        radius = float(rng.uniform(0.05, 0.2))
        regions.extend(_split_regions(center - radius, center + radius, depth))
    return regions[:height]


def assert_results_bitwise_equal(cold, resumed):
    assert len(cold) == len(resumed)
    for a, b in zip(cold, resumed):
        assert a.verified == b.verified
        assert a.margin_lower_bound == b.margin_lower_bound  # exact
        lo_a, hi_a = a.output.bounds()
        lo_b, hi_b = b.output.bounds()
        np.testing.assert_array_equal(lo_a, lo_b)
        np.testing.assert_array_equal(hi_a, hi_b)


class TestBoundaries:
    def test_mlp_boundaries_follow_relus(self):
        net = mlp(4, [6, 5], 3, rng=0)  # D R D R D
        assert checkpoint_boundaries(net) == [2, 4]
        assert all(
            isinstance(net.layers[b - 1], ReLU)
            for b in checkpoint_boundaries(net)
        )

    def test_full_network_boundary_excluded(self):
        # The state after the last layer is the result, not a prefix.
        net = mlp(4, [6], 3, rng=0)
        assert checkpoint_boundaries(net) == [2]
        assert len(net.layers) not in checkpoint_boundaries(net)

    def test_ops_consumed_skips_flatten(self):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=3, rng=0)
        depth = len(net.layers)
        assert ops_consumed(net, depth) == len(net.ops_for(np.float64))
        for b in checkpoint_boundaries(net):
            assert ops_consumed(net, b) <= b

    def test_supports_checkpoint(self):
        assert supports_checkpoint(INTERVAL)
        assert supports_checkpoint(ZONOTOPE)
        assert supports_checkpoint(DEEPPOLY)
        assert not supports_checkpoint(SYMBOLIC)
        assert not supports_checkpoint(bounded_zonotopes(2))
        assert not supports_checkpoint(DomainSpec("interval", 2))


class TestResumeMatrix:
    """Resume must be bitwise-identical to cold, cell by cell."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("height", [1, 4])
    @pytest.mark.parametrize("depth", [0, 2])
    @pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.base)
    def test_resume_equals_cold(self, domain, depth, height, backend):
        net = mlp(5, [12, 10, 8], 3, rng=2)  # boundaries [2, 4, 6]
        regions = _batch(5, height, depth)
        labels = [i % 3 for i in range(len(regions))]
        boundaries = checkpoint_boundaries(net)
        with use_backend(backend):
            cold, captured = analyze_batch_checkpointed(
                net, regions, labels, domain,
                capture_boundaries=boundaries,
            )
            assert [c.boundary for c in captured] == boundaries
            for record in captured:
                resumed, later = analyze_batch_checkpointed(
                    net, regions, labels, domain, resume=record,
                    capture_boundaries=boundaries,
                )
                assert_results_bitwise_equal(cold, resumed)
                # Only boundaries past the resume point are re-captured.
                assert [c.boundary for c in later] == [
                    b for b in boundaries if b > record.boundary
                ]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.base)
    def test_disk_round_trip_resume_is_bitwise(
        self, domain, backend, tmp_path
    ):
        net = mlp(5, [12, 10, 8], 3, rng=2)
        regions = _batch(5, 3, 1)
        labels = [0, 1, 2]
        cache = ResultCache(tmp_path / "cache")
        with use_backend(backend):
            cold, captured = analyze_batch_checkpointed(
                net, regions, labels, domain,
                capture_boundaries=checkpoint_boundaries(net),
            )
            for record in captured:
                cache.put_prefix(record)
                stored = cache.get_prefix(
                    record.prefix_digest,
                    record.regions_digest,
                    record.domain,
                    record.backend,
                )
                assert stored is not None
                assert stored.boundary == record.boundary
                for name, arr in record.arrays.items():
                    np.testing.assert_array_equal(stored.arrays[name], arr)
                resumed, _ = analyze_batch_checkpointed(
                    net, regions, labels, domain, resume=stored
                )
                assert_results_bitwise_equal(cold, resumed)

    @pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.base)
    def test_conv_network_resume_is_bitwise(self, domain):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=3, rng=1)
        boundaries = checkpoint_boundaries(net)
        assert boundaries  # conv nets have checkpointable ReLUs
        regions = _batch(net.input_size, 2, 0, seed=9)
        regions = [
            Box(np.clip(r.low, 0.1, 0.9), np.clip(r.high, 0.1, 0.9))
            for r in regions
        ]
        labels = [0, 1]
        cold, captured = analyze_batch_checkpointed(
            net, regions, labels, domain, capture_boundaries=boundaries
        )
        for record in captured:
            # op_count differs from the layer boundary on conv nets
            # (Flatten lowers to no op); both address the same state.
            assert record.op_count == ops_consumed(net, record.boundary)
            resumed, _ = analyze_batch_checkpointed(
                net, regions, labels, domain, resume=record
            )
            assert_results_bitwise_equal(cold, resumed)

    @pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.base)
    def test_cold_checkpointed_equals_plain_batched(self, domain):
        # Emitting checkpoints must not perturb the analysis itself.
        net = mlp(5, [12, 10, 8], 3, rng=2)
        regions = _batch(5, 4, 1)
        labels = [1] * 4
        plain = analyze_batch_multi(net, regions, labels, domain)
        mute, _ = analyze_batch_checkpointed(net, regions, labels, domain)
        loud, _ = analyze_batch_checkpointed(
            net, regions, labels, domain,
            capture_boundaries=checkpoint_boundaries(net),
        )
        assert_results_bitwise_equal(plain, mute)
        assert_results_bitwise_equal(plain, loud)


class TestSequentialResume:
    @pytest.mark.parametrize("domain", DOMAINS, ids=lambda d: d.base)
    def test_sequential_resume_equals_cold(self, domain):
        net = mlp(5, [12, 10, 8], 3, rng=2)
        region = _batch(5, 1, 0)[0]
        cold, captured = analyze_checkpointed(
            net, region, 1, domain,
            capture_boundaries=checkpoint_boundaries(net),
        )
        assert captured
        for record in captured:
            resumed, _ = analyze_checkpointed(
                net, region, 1, domain, resume=record
            )
            assert resumed.verified == cold.verified
            assert resumed.margin_lower_bound == cold.margin_lower_bound
        single = analyze(net, region, 1, domain)
        assert cold.margin_lower_bound == single.margin_lower_bound

    def test_sequential_and_batched_digests_never_collide(self):
        # GEMV vs height-1 GEMM round-off differs, so the families are
        # kept apart by the seq- digest prefix.
        net = mlp(5, [12], 3, rng=2)
        region = _batch(5, 1, 0)[0]
        _, seq = analyze_checkpointed(
            net, region, 1, DEEPPOLY, capture_boundaries=[2]
        )
        _, bat = analyze_batch_checkpointed(
            net, [region], [1], DEEPPOLY, capture_boundaries=[2]
        )
        assert seq[0].regions_digest.startswith("seq-")
        assert seq[0].regions_digest != bat[0].regions_digest


class TestGuards:
    @pytest.fixture()
    def record(self):
        net = mlp(5, [12, 10], 3, rng=2)
        regions = _batch(5, 2, 0)
        _, captured = analyze_batch_checkpointed(
            net, regions, [0, 1], DEEPPOLY, capture_boundaries=[2]
        )
        return net, regions, captured[0]

    def test_wrong_backend_raises(self, record):
        net, regions, rec = record
        with use_backend("numpy32"):
            with pytest.raises(ValueError, match="backend"):
                analyze_batch_checkpointed(
                    net, regions, [0, 1], DEEPPOLY, resume=rec
                )

    def test_wrong_domain_raises(self, record):
        net, regions, rec = record
        with pytest.raises(ValueError, match="domain"):
            analyze_batch_checkpointed(
                net, regions, [0, 1], INTERVAL, resume=rec
            )

    def test_wrong_batch_never_found(self, record, tmp_path):
        # The batch guard lives in the cache address: a checkpoint for
        # one ordered batch is unreachable when probing with another.
        _, regions, rec = record
        cache = ResultCache(tmp_path / "cache")
        cache.put_prefix(rec)
        other = _batch(5, 2, 0, seed=77)
        assert cache.get_prefix(
            rec.prefix_digest,
            region_batch_digest(other),
            rec.domain,
            rec.backend,
        ) is None
        assert cache.get_prefix(
            rec.prefix_digest, rec.regions_digest, rec.domain, rec.backend
        ) is not None

    def test_unsupported_domain_raises(self):
        net = mlp(5, [12], 3, rng=2)
        with pytest.raises(ValueError, match="checkpoint"):
            analyze_batch_checkpointed(
                net, _batch(5, 2, 0), [0, 1], bounded_zonotopes(2)
            )

    def test_unknown_element_type_rejected(self):
        with pytest.raises(TypeError, match="codec"):
            capture_element(object(), [])

    def test_unknown_kind_rejected(self):
        rec = PrefixBounds(
            boundary=1, op_count=1, prefix_digest="x", regions_digest="y",
            domain=("interval", 1), backend="numpy64", kind="martian",
            meta=None, arrays={},
        )
        with pytest.raises(ValueError, match="martian"):
            restore_element(rec, [])


class TestRegionDigest:
    def test_sensitive_to_order_and_values(self):
        a, b = _batch(4, 2, 0)
        assert region_batch_digest([a, b]) != region_batch_digest([b, a])
        assert region_batch_digest([a]) != region_batch_digest([b])
        assert region_batch_digest([a, b]) == region_batch_digest([a, b])

    def test_sensitive_to_batch_height(self):
        a, b = _batch(4, 2, 0)
        assert region_batch_digest([a]) != region_batch_digest([a, a])
