"""Tests for the network-abstraction CEGAR layer (repro.abstract.netabs).

The load-bearing property is *containment*: the abstract network's output
abstraction must contain every concrete output over the region, at every
refinement level, in every domain — that is what lets the scheduler
accept abstract VERIFIED outcomes without re-running the concrete
network.  The fuzz tests here check it against sampled concrete forward
passes; the CEGAR tests check the refinement loop terminates and that
spurious counterexamples are never accepted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abstract.analyzer import analyze
from repro.abstract.domains import BASE_DOMAINS, DomainSpec
from repro.abstract.netabs import (
    NetworkAbstraction,
    abstraction_for,
    cegar_verify,
    witness_margin,
)
from repro.core.config import VerifierConfig
from repro.core.property import linf_property
from repro.core.results import Falsified, Verified, VerificationStats
from repro.nn.builders import lenet_conv, mlp, redundant_mlp
from repro.nn.serialize import network_digest
from repro.sched import Scheduler, VerificationJob
from repro.utils.boxes import Box

#: Slack for comparing abstract bounds against concrete float64 forwards.
_TOL = 1e-9


def _concrete_margin(network, x, label):
    logits = network.forward(np.asarray(x, dtype=np.float64))
    return float(logits[label] - np.delete(logits, label).max())


def _sample(region, count, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(region.low, region.high, size=(count, region.ndim))


# ----------------------------------------------------------------------
# Containment fuzz
# ----------------------------------------------------------------------


@pytest.mark.parametrize("domain_name", BASE_DOMAINS)
@pytest.mark.parametrize("mode", ["syntactic", "semantic"])
def test_containment_every_level_every_domain(domain_name, mode):
    """Abstract margin bounds stay below sampled concrete margins at
    every refinement level, from the coarsest partition down to the
    concrete network."""
    domain = DomainSpec(domain_name)
    for seed in (0, 1):
        net = redundant_mlp(5, [6, 6], 3, dup=3, noise=2e-3, rng=seed)
        rng = np.random.default_rng(seed + 10)
        region = Box.from_center_radius(rng.uniform(0.3, 0.7, 5), 0.02)
        label = net.classify((region.low + region.high) / 2.0)
        points = _sample(region, 16, seed)
        margins = [_concrete_margin(net, x, label) for x in points]
        abstraction = NetworkAbstraction(
            net, mode, level=2, regions=[region], seed=seed
        )
        for _ in range(200):
            abstract = abstraction.build()
            result = analyze(abstract, region, label, domain)
            assert result.margin_lower_bound <= min(margins) + _TOL, (
                f"{mode}/{domain_name} margin bound above a concrete "
                f"sample after {abstraction.splits} splits"
            )
            if abstract is net or not abstraction.refine():
                break
        else:
            pytest.fail("refinement did not terminate in 200 splits")


def test_interval_output_box_contains_concrete_outputs():
    """The interval output box of the abstract network contains every
    sampled concrete logit vector, at every refinement level."""
    net = redundant_mlp(4, [8, 8], 3, dup=2, noise=5e-3, rng=7)
    region = Box.from_center_radius(np.full(4, 0.5), 0.03)
    points = _sample(region, 32, 3)
    logits = np.stack([net.forward(x) for x in points])
    abstraction = NetworkAbstraction(
        net, "syntactic", level=1, regions=[region]
    )
    interval = DomainSpec("interval")
    while True:
        abstract = abstraction.build()
        output = analyze(abstract, region, 0, interval).output
        low, high = output.bounds()
        assert (logits >= low - _TOL).all() and (logits <= high + _TOL).all()
        if abstract is net or not abstraction.refine():
            break


# ----------------------------------------------------------------------
# Refinement / CEGAR termination
# ----------------------------------------------------------------------


def test_refinement_terminates_at_concrete_network():
    """Splitting to singletons yields the original network by identity."""
    net = redundant_mlp(4, [6, 6], 3, dup=3, noise=1e-4, rng=1)
    abstraction = NetworkAbstraction(net, "syntactic", level=2)
    splits = 0
    while abstraction.refine():
        splits += 1
        assert splits <= net.num_relu_units()
    assert abstraction.build() is net
    assert abstraction.merged_ratio == 1.0


def test_cegar_spurious_counterexample_refines_then_falls_back():
    """A persistently spurious abstract witness must never be accepted:
    the loop refines, then decides on the concrete network."""
    net = redundant_mlp(4, [8, 8], 3, dup=4, noise=1e-6, rng=2)
    center = np.full(4, 0.5)
    prop = linf_property(net, center, 0.01)
    # The center itself classifies as prop.label, so it is spurious as a
    # counterexample by construction.
    assert witness_margin(net, prop.label, center) > 0.0
    calls = []

    def verify_fn(candidate):
        calls.append(candidate)
        if candidate is net:
            return Verified(VerificationStats())
        return Falsified(center, -1.0, VerificationStats())

    result = cegar_verify(
        net, prop, verify_fn, mode="syntactic", level=2, max_rounds=3
    )
    assert result.outcome.kind == "verified"
    assert result.abstracted and result.fallback
    assert result.rounds >= 1  # at least one refinement round happened
    assert calls[-1] is net  # decided on the concrete network
    for candidate in calls[:-1]:
        assert candidate is not net  # earlier attempts were abstract


def test_cegar_accepts_sound_abstract_verdicts():
    """Abstract VERIFIED and concretely-validated FALSIFIED are accepted
    without touching the concrete network."""
    net = redundant_mlp(4, [8, 8], 3, dup=4, noise=1e-9, rng=4)
    center = np.full(4, 0.5)
    prop = linf_property(net, center, 0.005)

    def verify_ok(candidate):
        assert candidate is not net
        return Verified(VerificationStats())

    result = cegar_verify(net, prop, verify_ok, mode="syntactic", level=2)
    assert result.outcome.kind == "verified"
    assert result.rounds == 0 and not result.fallback

    # A genuine concrete misclassification as the abstract witness: the
    # float64 check passes, so the falsification is accepted directly.
    rng = np.random.default_rng(0)
    witness = None
    for _ in range(2000):
        x = rng.uniform(0.0, 1.0, 4)
        if net.classify(x) != prop.label:
            witness = x
            break
    assert witness is not None, "workload never misclassifies"

    def verify_bad(candidate):
        return Falsified(witness, -1.0, VerificationStats())

    result = cegar_verify(net, prop, verify_bad, mode="syntactic", level=2)
    assert result.outcome.kind == "falsified"
    assert result.rounds == 0 and not result.fallback


def test_abstraction_for_gates():
    """off / level 0 / non-MLP architectures opt out cleanly."""
    net = mlp(4, [8], 3, rng=0)
    assert abstraction_for(net, "off", 2) is None
    assert abstraction_for(net, None, 2) is None
    assert abstraction_for(net, "syntactic", 0) is None
    conv = lenet_conv()
    assert abstraction_for(conv, "syntactic", 2) is None


# ----------------------------------------------------------------------
# Determinism / builder
# ----------------------------------------------------------------------


def test_abstract_network_digest_deterministic():
    """Same (network, mode, level, region) -> bitwise-identical abstract
    network; refinement changes the digest (per-level cache keys)."""
    net = redundant_mlp(5, [8, 8], 3, dup=2, noise=1e-3, rng=3)
    region = Box.from_center_radius(np.full(5, 0.5), 0.02)
    a = NetworkAbstraction(net, "syntactic", level=1, regions=[region])
    b = NetworkAbstraction(net, "syntactic", level=1, regions=[region])
    first = network_digest(a.build())
    assert first == network_digest(b.build())
    assert a.refine()
    assert network_digest(a.build()) != first


def test_redundant_mlp_recovers_duplicate_groups():
    """At zero noise and the matching level, clustering recovers the
    exact duplicate groups: the abstract network computes the same
    function as the concrete one (up to the error pad, which is ~0)."""
    net = redundant_mlp(6, [12, 12], 4, dup=4, noise=0.0, rng=5)
    abstraction = NetworkAbstraction(net, "syntactic", level=2)
    assert abstraction.hidden_concrete == 96  # (12 base x 4 dup) x 2
    assert abstraction.hidden_abstract == 24  # 12 groups per layer
    abstract = abstraction.build()
    rng = np.random.default_rng(6)
    for _ in range(8):
        x = rng.uniform(0.0, 1.0, 6)
        np.testing.assert_allclose(
            abstract.forward(x), net.forward(x), atol=1e-9
        )


# ----------------------------------------------------------------------
# Scheduler integration
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["syntactic", "semantic"])
def test_scheduler_outcomes_match_concrete(mode):
    """The netabs pre-pass never changes a job outcome, and any accepted
    falsification carries a concretely-valid witness."""
    net = redundant_mlp(6, [12, 12], 4, dup=4, noise=1e-8, rng=8)
    rng = np.random.default_rng(9)
    config = VerifierConfig(timeout=10.0)
    jobs = []
    for i in range(5):
        x = rng.uniform(0.2, 0.8, 6)
        # Mix decidable-verified and decidable-falsified properties.
        eps = 0.005 if i % 2 == 0 else 0.6
        jobs.append(
            VerificationJob(
                net,
                linf_property(net, x, eps),
                config=config,
                seed=i,
                name=f"t{i}",
            )
        )
    reference = Scheduler(jobs).run()
    merged = Scheduler(jobs, abstraction=mode).run()
    assert [r.outcome.kind for r in merged.results] == [
        r.outcome.kind for r in reference.results
    ]
    for result in merged.results:
        assert result.job is jobs[result.index]
        if result.outcome.kind == "falsified":
            margin = witness_margin(
                net, result.job.prop.label, result.outcome.counterexample
            )
            assert margin <= result.job.config.delta


def test_scheduler_netabs_report_fields():
    net = redundant_mlp(4, [8, 8], 3, dup=4, noise=1e-9, rng=12)
    rng = np.random.default_rng(13)
    jobs = [
        VerificationJob(
            net,
            linf_property(net, rng.uniform(0.3, 0.7, 4), 0.003),
            config=VerifierConfig(timeout=10.0),
            seed=i,
            name=f"r{i}",
        )
        for i in range(3)
    ]
    report = Scheduler(jobs, abstraction="syntactic").run()
    assert report.abstraction == "syntactic"
    assert report.abstraction_level >= 1
    assert 0 <= report.netabs_accepted <= len(jobs)
    off = Scheduler(jobs).run()
    assert off.abstraction == "off" and off.netabs_accepted == 0
