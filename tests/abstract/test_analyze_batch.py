"""Batched analysis must match per-region analysis, region by region.

Tolerances: the batched interval/DeepPoly paths run the same arithmetic as
the sequential elements but through GEMMs whose BLAS reduction order depends
on operand shapes, so "bitwise" equality across batch widths is physically
unattainable; observed drift is a few ulps and the assertions below bound it
at 1e-12 (interval) and 1e-9 (DeepPoly).  The zonotope-family kernels are
batch-height-stable by construction and must match exactly — as must the
domains that fall back to the per-region loop (symbolic, interval
powersets).  ``tests/abstract/test_batched_zonotope.py`` covers the
zonotope kernels in depth.
"""

import numpy as np
import pytest

from repro.abstract.analyzer import analyze, analyze_batch
from repro.abstract.domains import (
    DEEPPOLY,
    INTERVAL,
    SYMBOLIC,
    ZONOTOPE,
    bounded_zonotopes,
)
from repro.nn.builders import lenet_conv, mlp, xor_network
from repro.utils.boxes import Box


def _regions(seed: int, count: int, n: int, lo=-0.6, hi=0.6) -> list[Box]:
    rng = np.random.default_rng(seed)
    return [
        Box.from_center_radius(
            rng.uniform(lo, hi, n), float(rng.uniform(0.01, 0.3))
        )
        for _ in range(count)
    ]


class TestIntervalBatch:
    def test_bounds_match_per_region(self):
        net = mlp(6, [14, 10], 4, rng=0)
        regions = _regions(1, 6, 6)
        batch = analyze_batch(net, regions, 2, INTERVAL)
        for i, region in enumerate(regions):
            single = analyze(net, region, 2, INTERVAL)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == pytest.approx(
                single.margin_lower_bound, abs=1e-12
            )
            lo_b, hi_b = batch[i].output.bounds()
            lo_s, hi_s = single.output.bounds()
            np.testing.assert_allclose(lo_b, lo_s, atol=1e-12)
            np.testing.assert_allclose(hi_b, hi_s, atol=1e-12)

    def test_conv_with_maxpool(self):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=4, rng=0)
        regions = _regions(2, 3, net.input_size, lo=0.2, hi=0.8)
        batch = analyze_batch(net, regions, 1, INTERVAL)
        for i, region in enumerate(regions):
            single = analyze(net, region, 1, INTERVAL)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == pytest.approx(
                single.margin_lower_bound, abs=1e-10
            )

    def test_soundness_on_samples(self):
        net = mlp(4, [12], 3, rng=3)
        regions = _regions(4, 4, 4)
        batch = analyze_batch(net, regions, 0, INTERVAL)
        rng = np.random.default_rng(0)
        for i, region in enumerate(regions):
            lo, hi = batch[i].output.bounds()
            for x in region.sample(rng, 50):
                y = net.logits(x)
                assert np.all(y >= lo - 1e-9) and np.all(y <= hi + 1e-9)


class TestDeepPolyBatch:
    def test_bounds_match_per_region(self):
        net = mlp(6, [14, 12, 8], 4, rng=1)
        regions = _regions(5, 6, 6)
        batch = analyze_batch(net, regions, 3, DEEPPOLY)
        for i, region in enumerate(regions):
            single = analyze(net, region, 3, DEEPPOLY)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == pytest.approx(
                single.margin_lower_bound, abs=1e-9
            )
            lo_b, hi_b = batch[i].output.bounds()
            lo_s, hi_s = single.output.bounds()
            np.testing.assert_allclose(lo_b, lo_s, atol=1e-9)
            np.testing.assert_allclose(hi_b, hi_s, atol=1e-9)

    def test_conv_with_maxpool(self):
        net = lenet_conv(input_shape=(1, 8, 8), num_classes=4, rng=1)
        regions = _regions(6, 3, net.input_size, lo=0.2, hi=0.8)
        batch = analyze_batch(net, regions, 2, DEEPPOLY)
        for i, region in enumerate(regions):
            single = analyze(net, region, 2, DEEPPOLY)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == pytest.approx(
                single.margin_lower_bound, abs=1e-9
            )

    def test_soundness_on_samples(self):
        net = mlp(4, [10, 10], 3, rng=2)
        regions = _regions(7, 3, 4)
        batch = analyze_batch(net, regions, 1, DEEPPOLY)
        rng = np.random.default_rng(1)
        for i, region in enumerate(regions):
            lo, hi = batch[i].output.bounds()
            for x in region.sample(rng, 50):
                y = net.logits(x)
                assert np.all(y >= lo - 1e-9) and np.all(y <= hi + 1e-9)


class TestExactDomains:
    """Batched zonotope kernels and per-region fallbacks: no tolerance."""

    @pytest.mark.parametrize(
        "domain", [ZONOTOPE, bounded_zonotopes(2), SYMBOLIC], ids=str
    )
    def test_exactly_matches_per_region(self, domain):
        net = mlp(5, [12, 10], 3, rng=4)
        regions = _regions(8, 4, 5)
        batch = analyze_batch(net, regions, 1, domain)
        for i, region in enumerate(regions):
            single = analyze(net, region, 1, domain)
            assert batch[i].verified == single.verified
            assert batch[i].margin_lower_bound == single.margin_lower_bound


class TestBatchOfOne:
    @pytest.mark.parametrize("domain", [INTERVAL, DEEPPOLY], ids=str)
    def test_single_region_batch(self, domain):
        net = xor_network()
        region = Box(np.array([0.3, 0.3]), np.array([0.7, 0.7]))
        batch = analyze_batch(net, [region], 1, domain)
        single = analyze(net, region, 1, domain)
        assert len(batch) == 1
        assert batch[0].verified == single.verified
        assert batch[0].margin_lower_bound == pytest.approx(
            single.margin_lower_bound, abs=1e-12
        )


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            analyze_batch(xor_network(), [], 0, INTERVAL)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            analyze_batch(xor_network(), [Box.unit(3)], 0, INTERVAL)

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            analyze_batch(xor_network(), [Box.unit(2)], 5, INTERVAL)
