"""Tests for the DeepPoly-style back-substitution domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.analyzer import analyze
from repro.abstract.deeppoly import DeepPolyState, deeppoly_analyze
from repro.abstract.domains import DEEPPOLY, DomainSpec
from repro.nn.builders import example_2_3_network, lenet_conv, mlp, xor_network
from repro.utils.boxes import Box


class TestIdentity:
    def test_bounds_equal_box(self):
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        state = DeepPolyState.identity(box)
        lo, hi = state.bounds()
        np.testing.assert_allclose(lo, box.low)
        np.testing.assert_allclose(hi, box.high)


class TestAffine:
    def test_exact_linear_bound(self):
        box = Box(np.zeros(2), np.ones(2))
        state = DeepPolyState.identity(box).affine(
            np.array([[1.0, -1.0]]), np.array([0.5])
        )
        lo, hi = state.bounds()
        assert lo[0] == pytest.approx(-0.5)
        assert hi[0] == pytest.approx(1.5)

    def test_cancelling_composition_is_exact(self):
        # y = x through two layers that a concretizing analysis would widen.
        box = Box(np.array([0.0]), np.array([1.0]))
        state = (
            DeepPolyState.identity(box)
            .affine(np.array([[1.0], [-1.0]]), np.zeros(2))
            .affine(np.array([[0.5, -0.5]]), np.zeros(1))
        )
        lo, hi = state.bounds()
        assert lo[0] == pytest.approx(0.0)
        assert hi[0] == pytest.approx(1.0)


class TestRelu:
    def test_stable_neurons_exact(self):
        box = Box(np.array([1.0, -2.0]), np.array([2.0, -1.0]))
        state = DeepPolyState.identity(box).relu()
        lo, hi = state.bounds()
        np.testing.assert_allclose(lo, [1.0, 0.0])
        np.testing.assert_allclose(hi, [2.0, 0.0])

    def test_crossing_relaxation_sound(self):
        box = Box(np.array([-1.0]), np.array([2.0]))
        state = DeepPolyState.identity(box).relu()
        lo, hi = state.bounds()
        for x in np.linspace(-1, 2, 31):
            y = max(x, 0.0)
            assert lo[0] - 1e-9 <= y <= hi[0] + 1e-9

    def test_adaptive_lower_slope(self):
        # Positive-dominated neuron keeps the identity lower bound, so its
        # lower output bound equals its (negative) input lower bound.
        box = Box(np.array([-0.5]), np.array([2.0]))
        state = DeepPolyState.identity(box).relu()
        lo, _ = state.bounds()
        assert lo[0] == pytest.approx(-0.5)
        # Negative-dominated neuron drops to the 0 lower bound.
        box2 = Box(np.array([-2.0]), np.array([0.5]))
        lo2, _ = DeepPolyState.identity(box2).relu().bounds()
        assert lo2[0] == pytest.approx(0.0)


class TestMaxPool:
    def test_dominant_unit_exact(self):
        box = Box(np.array([5.0, 0.0]), np.array([6.0, 1.0]))
        state = DeepPolyState.identity(box).maxpool(np.array([[0, 1]]))
        lo, hi = state.bounds()
        assert lo[0] == pytest.approx(5.0)
        assert hi[0] == pytest.approx(6.0)

    def test_overlapping_window_sound(self):
        rng = np.random.default_rng(0)
        box = Box(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        state = DeepPolyState.identity(box).maxpool(np.array([[0, 1]]))
        lo, hi = state.bounds()
        for x in box.sample(rng, 100):
            y = x.max()
            assert lo[0] - 1e-9 <= y <= hi[0] + 1e-9


class TestAnalyze:
    def test_verifies_xor_region(self):
        net = xor_network()
        box = Box(np.array([0.35, 0.35]), np.array([0.65, 0.65]))
        verified, margin = deeppoly_analyze(net, box, 1)
        assert verified
        assert margin > 0

    def test_supports_conv_networks(self):
        # Unlike symbolic intervals, DeepPoly handles max pooling.
        net = lenet_conv(input_shape=(1, 4, 4), num_classes=3, rng=0)
        rng = np.random.default_rng(1)
        x = rng.uniform(0.4, 0.6, 16)
        box = Box.linf_ball(x, 0.005, clip_low=0.0, clip_high=1.0)
        verified, margin = deeppoly_analyze(net, box, net.classify(x))
        assert isinstance(verified, bool)
        # Soundness of the margin bound against sampling.
        label = net.classify(x)
        ys = net.forward(box.sample(rng, 100))
        margins = ys[:, label] - np.max(
            np.delete(ys, label, axis=1), axis=1
        )
        assert margin <= margins.min() + 1e-9

    def test_via_domain_spec(self):
        net = xor_network()
        box = Box(np.array([0.4, 0.4]), np.array([0.6, 0.6]))
        result = analyze(net, box, 1, DEEPPOLY)
        assert result.verified

    def test_no_disjunctions(self):
        with pytest.raises(ValueError, match="disjunctions"):
            DomainSpec("deeppoly", 2)

    def test_at_least_as_precise_as_symbolic_on_deep_nets(self):
        # Back-substitution composes relaxations; eager concretization
        # (symbolic intervals) cannot be tighter on the margin.
        from repro.abstract.symbolic_interval import symbolic_analyze

        rng = np.random.default_rng(2)
        wins, ties = 0, 0
        for seed in range(8):
            net = mlp(4, [12, 12, 12], 3, rng=seed)
            box = Box.from_center_radius(rng.uniform(-0.3, 0.3, 4), 0.15)
            _, deep_margin = deeppoly_analyze(net, box, 0)
            _, sym_margin = symbolic_analyze(net, box, 0)
            if deep_margin > sym_margin + 1e-9:
                wins += 1
            elif deep_margin >= sym_margin - 1e-9:
                ties += 1
        assert wins + ties >= 6  # dominant or equal nearly always

    def test_example_2_3_margin(self):
        # DeepPoly is also not exact on Example 2.3, but it must be sound
        # (bound <= 0.1, the true minimum margin).
        net = example_2_3_network()
        box = Box(np.zeros(2), np.ones(2))
        _, margin = deeppoly_analyze(net, box, 1)
        assert margin <= 0.1 + 1e-9


class TestSoundnessFuzz:
    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_two_layer_sound(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        low = rng.uniform(-1, 0, n)
        high = low + rng.uniform(0.1, 1.5, n)
        box = Box(low, high)
        w1 = rng.normal(size=(5, n))
        b1 = rng.normal(size=5)
        w2 = rng.normal(size=(2, 5))
        b2 = rng.normal(size=2)
        state = (
            DeepPolyState.identity(box).affine(w1, b1).relu().affine(w2, b2)
        )
        lo, hi = state.bounds()
        margin_lb = state.lower_margin(0, 1)
        for x in box.sample(rng, 40):
            y = w2 @ np.maximum(w1 @ x + b1, 0) + b2
            assert np.all(y >= lo - 1e-8) and np.all(y <= hi + 1e-8)
            assert y[0] - y[1] >= margin_lb - 1e-8
