"""Setup shim: enables legacy editable installs (`pip install -e .
--no-build-isolation`) in offline environments where the `wheel` package is
unavailable and PEP 517 editable builds cannot run.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
