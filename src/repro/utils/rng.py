"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalizes it through :func:`as_generator`.  Keeping this in one place makes
all experiments reproducible by construction.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Integers become seeded generators, generators pass through unchanged,
    and ``None`` produces a generator seeded from OS entropy.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are derived through ``SeedSequence`` spawning so that results
    do not depend on the order in which children are later consumed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
