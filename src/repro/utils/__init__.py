"""Shared utilities: box geometry, RNG handling, timing, validation."""

from repro.utils.boxes import Box
from repro.utils.rng import as_generator
from repro.utils.timing import Stopwatch, Deadline

__all__ = ["Box", "as_generator", "Stopwatch", "Deadline"]
