"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def require_positive(name: str, value: float) -> float:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_nonnegative(name: str, value: float) -> float:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_in_range(name: str, value: float, lo: float, hi: float) -> float:
    if not lo <= value <= hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value}")
    return value


def require_vector(name: str, value: np.ndarray, size: int | None = None) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if size is not None and arr.size != size:
        raise ValueError(f"{name} must have {size} entries, got {arr.size}")
    return arr


def require_matrix(
    name: str, value: np.ndarray, shape: tuple[int | None, int | None] | None = None
) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a matrix, got ndim={arr.ndim}")
    if shape is not None:
        rows, cols = shape
        if rows is not None and arr.shape[0] != rows:
            raise ValueError(f"{name} must have {rows} rows, got {arr.shape[0]}")
        if cols is not None and arr.shape[1] != cols:
            raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr


def require_finite(name: str, value: np.ndarray) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr
