"""Wall-clock measurement helpers used by the verifier and bench harness.

The paper reports CPU time with per-benchmark limits (1000 s evaluation,
700 s training).  We model both with a :class:`Deadline` that components can
poll cooperatively, and a :class:`Stopwatch` for accumulating phase timings.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


class Stopwatch:
    """Accumulates elapsed time; can be started/stopped repeatedly."""

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    @property
    def elapsed(self) -> float:
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._accumulated + running

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class Deadline:
    """A cooperative timeout.

    ``Deadline(limit)`` expires ``limit`` seconds after construction.  A
    ``limit`` of ``None`` (or ``inf``) never expires, which lets callers pass
    deadlines unconditionally.
    """

    limit: float | None = None
    _start: float = field(default_factory=time.perf_counter)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        if self.limit is None:
            return math.inf
        return self.limit - self.elapsed

    def expired(self) -> bool:
        return self.remaining <= 0.0

    def check(self) -> None:
        """Raise :class:`TimeoutError` if the deadline has passed."""
        if self.expired():
            raise TimeoutError(f"deadline of {self.limit}s exceeded")


def never() -> Deadline:
    """A deadline that never expires."""
    return Deadline(limit=None)
