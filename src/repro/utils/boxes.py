"""Axis-aligned boxes over ``R^n``: the input-region geometry of the paper.

A robustness property ``(I, K)`` uses a box ``I`` as its input region (the
paper's brightening attacks and our L∞ balls are both boxes).  Boxes are the
unit of recursion in Algorithm 1: the partition policy cuts a box with an
axis-aligned hyperplane ``x_d = c`` and the verifier recurses on the halves.

Boxes are immutable value objects backed by float64 arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """An axis-aligned box ``{x : low <= x <= high}``.

    Attributes:
        low: lower corner, shape ``(n,)``.
        high: upper corner, shape ``(n,)``; must satisfy ``low <= high``.
    """

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        low = np.asarray(self.low, dtype=np.float64).reshape(-1)
        high = np.asarray(self.high, dtype=np.float64).reshape(-1)
        if low.shape != high.shape:
            raise ValueError(
                f"low/high shape mismatch: {low.shape} vs {high.shape}"
            )
        if low.size == 0:
            raise ValueError("boxes must have at least one dimension")
        if not np.all(low <= high):
            bad = int(np.argmax(low > high))
            raise ValueError(
                f"low > high at dimension {bad}: {low[bad]} > {high[bad]}"
            )
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_center_radius(center: np.ndarray, radius: float | np.ndarray) -> "Box":
        """Box ``[center - radius, center + radius]`` (per-dimension radius ok)."""
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        radius = np.broadcast_to(np.asarray(radius, dtype=np.float64), center.shape)
        if np.any(radius < 0):
            raise ValueError("radius must be non-negative")
        return Box(center - radius, center + radius)

    @staticmethod
    def linf_ball(
        center: np.ndarray,
        epsilon: float,
        clip_low: float | None = None,
        clip_high: float | None = None,
    ) -> "Box":
        """L∞ ball of radius ``epsilon``, optionally clipped to ``[clip_low, clip_high]``.

        Image inputs are typically clipped to ``[0, 1]``.
        """
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        low = center - epsilon
        high = center + epsilon
        if clip_low is not None:
            low = np.maximum(low, clip_low)
            high = np.maximum(high, clip_low)
        if clip_high is not None:
            low = np.minimum(low, clip_high)
            high = np.minimum(high, clip_high)
        return Box(low, high)

    @staticmethod
    def unit(n: int) -> "Box":
        """The unit hypercube ``[0, 1]^n``."""
        return Box(np.zeros(n), np.ones(n))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return self.low.size

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    @property
    def widths(self) -> np.ndarray:
        return self.high - self.low

    @property
    def radius(self) -> np.ndarray:
        return self.widths / 2.0

    def diameter(self) -> float:
        """Euclidean diameter, ``D(X)`` from Definition 5.1 of the paper."""
        return float(np.linalg.norm(self.widths))

    def longest_dim(self) -> int:
        """Index of the widest dimension (first of ties)."""
        return int(np.argmax(self.widths))

    def mean_width(self) -> float:
        """Average side length — one of the paper's policy features."""
        return float(np.mean(self.widths))

    def is_degenerate(self, tol: float = 0.0) -> bool:
        """True if every dimension has width ``<= tol``."""
        return bool(np.all(self.widths <= tol))

    def volume(self) -> float:
        """Lebesgue volume (0 for degenerate boxes; may overflow to inf)."""
        with np.errstate(over="ignore"):
            return float(np.prod(self.widths))

    # ------------------------------------------------------------------
    # Membership / projection / sampling
    # ------------------------------------------------------------------

    def contains(self, x: np.ndarray, atol: float = 1e-9) -> bool:
        """Point membership with a small tolerance for float round-off."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape != self.low.shape:
            raise ValueError(f"point has dimension {x.size}, box has {self.ndim}")
        return bool(np.all(x >= self.low - atol) and np.all(x <= self.high + atol))

    def contains_box(self, other: "Box", atol: float = 1e-9) -> bool:
        return bool(
            np.all(other.low >= self.low - atol)
            and np.all(other.high <= self.high + atol)
        )

    def project(self, x: np.ndarray) -> np.ndarray:
        """Euclidean projection onto the box (used by PGD)."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        return np.clip(x, self.low, self.high)

    def sample(self, rng: np.random.Generator, n: int | None = None) -> np.ndarray:
        """Uniform samples: shape ``(ndim,)`` if ``n is None`` else ``(n, ndim)``."""
        if n is None:
            return rng.uniform(self.low, self.high)
        if n < 0:
            raise ValueError("sample count must be non-negative")
        return rng.uniform(self.low, self.high, size=(n, self.ndim))

    def corners(self, max_corners: int = 1024) -> np.ndarray:
        """All ``2^ndim`` corners if that is at most ``max_corners``.

        Raises ``ValueError`` for higher-dimensional boxes, where materializing
        the corner set would be exponential.
        """
        if 2**self.ndim > max_corners:
            raise ValueError(
                f"box has 2^{self.ndim} corners, above the {max_corners} cap"
            )
        grids = np.meshgrid(*[(self.low[i], self.high[i]) for i in range(self.ndim)])
        return np.stack([g.ravel() for g in grids], axis=1)

    # ------------------------------------------------------------------
    # Splitting (the partition policy's primitive)
    # ------------------------------------------------------------------

    def split(self, dim: int, value: float) -> tuple["Box", "Box"]:
        """Split into ``(x_d <= value, x_d >= value)``.

        ``value`` must lie strictly inside the box along ``dim``; splitting at
        a face would violate the paper's Assumption 1 (both halves must be
        strictly smaller).
        """
        if not 0 <= dim < self.ndim:
            raise ValueError(f"split dimension {dim} out of range [0, {self.ndim})")
        if not self.low[dim] < value < self.high[dim]:
            raise ValueError(
                f"split value {value} not strictly inside "
                f"[{self.low[dim]}, {self.high[dim]}] on dim {dim}"
            )
        left_high = self.high.copy()
        left_high[dim] = value
        right_low = self.low.copy()
        right_low[dim] = value
        return Box(self.low, left_high), Box(right_low, self.high)

    def split_interior(
        self, dim: int, value: float, min_fraction: float = 0.01
    ) -> tuple["Box", "Box"]:
        """Split at ``value`` after nudging it away from the faces.

        This enforces Assumption 1 the way the paper's §6 describes: "if the
        splitting plane is at the boundary of I, it is offset slightly".  The
        split point is clamped so each half keeps at least ``min_fraction`` of
        the width along ``dim``.
        """
        if not 0 <= dim < self.ndim:
            raise ValueError(f"split dimension {dim} out of range [0, {self.ndim})")
        if not 0 < min_fraction < 0.5:
            raise ValueError("min_fraction must lie in (0, 0.5)")
        lo, hi = self.low[dim], self.high[dim]
        if hi <= lo:
            raise ValueError(f"cannot split degenerate dimension {dim}")
        margin = (hi - lo) * min_fraction
        value = float(np.clip(value, lo + margin, hi - margin))
        if not lo < value < hi:
            # The width is below float resolution: no strictly-interior
            # split point exists.
            raise ValueError(
                f"dimension {dim} is too narrow to split: [{lo}, {hi}]"
            )
        return self.split(dim, value)

    def bisect(self, dim: int | None = None) -> tuple["Box", "Box"]:
        """Split at the midpoint of ``dim`` (default: the longest dimension)."""
        if dim is None:
            dim = self.longest_dim()
        mid = float((self.low[dim] + self.high[dim]) / 2.0)
        return self.split(dim, mid)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def intersect(self, other: "Box") -> "Box | None":
        """Box intersection, or ``None`` when the boxes are disjoint."""
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(low > high):
            return None
        return Box(low, high)

    def hull(self, other: "Box") -> "Box":
        """Smallest box containing both operands (the interval join)."""
        return Box(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(
            np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __hash__(self) -> int:
        return hash((self.low.tobytes(), self.high.tobytes()))

    def __repr__(self) -> str:
        if self.ndim <= 4:
            pairs = ", ".join(
                f"[{lo:.4g}, {hi:.4g}]" for lo, hi in zip(self.low, self.high)
            )
            return f"Box({pairs})"
        return f"Box(ndim={self.ndim}, diameter={self.diameter():.4g})"
