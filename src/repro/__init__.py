"""repro — a from-scratch reproduction of Charon (PLDI 2019).

    Anderson, Pailoor, Dillig, Chaudhuri.
    "Optimization and Abstraction: A Synergistic Approach for Analyzing
    Neural Network Robustness."

The library couples gradient-based counterexample search (PGD) with
abstract interpretation (intervals, zonotopes, bounded powersets) through a
learned verification policy, yielding a sound and δ-complete robustness
decision procedure.  See README.md for a tour and DESIGN.md for the system
inventory.

Quickstart::

    import numpy as np
    from repro import Box, RobustnessProperty, verify
    from repro.nn import xor_network

    net = xor_network()
    prop = RobustnessProperty(Box(np.array([0.3, 0.3]), np.array([0.7, 0.7])), 1)
    outcome = verify(net, prop)
    assert outcome.kind == "verified"
"""

from repro.utils.boxes import Box
from repro.core.property import (
    RobustnessProperty,
    brightening_property,
    linf_property,
)
from repro.core.config import VerifierConfig
from repro.core.results import Falsified, Timeout, Verified
from repro.core.policy import (
    BisectionPolicy,
    LinearPolicy,
    VerificationPolicy,
    default_policy,
)
from repro.core.verifier import BatchedVerifier, Verifier, verify, verify_batched
from repro.abstract.domains import DomainSpec, INTERVAL, ZONOTOPE
from repro.abstract.analyzer import analyze, analyze_batch

__version__ = "1.0.0"

__all__ = [
    "Box",
    "RobustnessProperty",
    "linf_property",
    "brightening_property",
    "VerifierConfig",
    "Verified",
    "Falsified",
    "Timeout",
    "VerificationPolicy",
    "LinearPolicy",
    "BisectionPolicy",
    "default_policy",
    "Verifier",
    "verify",
    "BatchedVerifier",
    "verify_batched",
    "DomainSpec",
    "INTERVAL",
    "ZONOTOPE",
    "analyze",
    "analyze_batch",
    "__version__",
]
