"""A domain policy that can also select the precise symbolic domain (§9).

:class:`SolverAwareLinearPolicy` keeps the paper's parameterization —
``φ(θ·ρ)`` with the same featurization and partition policy — but its
selection function φ_α discretizes the first output into *three* bases:
intervals, zonotopes, and ReluVal-style symbolic intervals.  Symbolic
intervals play the role the paper assigns to solvers: a more precise (and
on wide regions, more expensive) analysis the policy should learn to
reserve for the sub-problems that need it.

Because the parameter space is unchanged (same θ shape), the trainer in
:mod:`repro.learn` optimizes this policy without modification — pass
``policy_cls=SolverAwareLinearPolicy``-built vectors through the usual
:class:`~repro.learn.objective.PolicyCostObjective` by constructing the
verifier with this class.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.domains import DomainSpec
from repro.core.policy import DISJUNCT_CHOICES, LinearPolicy
from repro.core.property import RobustnessProperty
from repro.nn.network import Network

#: The widened base-domain menu.  Order matters: the policy output is
#: clipped to [0, 1] and split into equal thirds.
EXTENDED_BASES = ("interval", "zonotope", "symbolic")


class SolverAwareLinearPolicy(LinearPolicy):
    """LinearPolicy whose φ_α can also pick the symbolic domain."""

    def choose_domain(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> DomainSpec:
        out = self._outputs(network, prop, x_star, f_star)
        frac = float(np.clip(out[0], 0.0, 1.0))
        idx = min(int(frac * len(EXTENDED_BASES)), len(EXTENDED_BASES) - 1)
        base = EXTENDED_BASES[idx]
        if base == "symbolic" and network.has_conv():
            # Symbolic intervals cannot express max pooling; degrade to the
            # strongest zonotope choice instead of failing mid-proof.
            base = "zonotope"
        if base == "symbolic":
            return DomainSpec("symbolic", 1)
        frac_k = float(np.clip(out[1], 0.0, 1.0))
        k_idx = min(int(frac_k * len(DISJUNCT_CHOICES)), len(DISJUNCT_CHOICES) - 1)
        return DomainSpec(base, DISJUNCT_CHOICES[k_idx])

    @staticmethod
    def default() -> "SolverAwareLinearPolicy":
        """Prior: symbolic domain, split the longest dimension at its
        midpoint — a 'ReluVal with PGD' starting point learning can refine."""
        base = LinearPolicy.default()
        theta = base.theta.copy()
        theta[0, -1] = 0.9  # top third of [0, 1] -> symbolic
        return SolverAwareLinearPolicy(theta)

    def describe(self) -> str:
        return (
            "SolverAwareLinearPolicy"
            f"(theta_norm={np.linalg.norm(self.theta):.3f})"
        )
