"""Extensions beyond the paper's evaluated system.

The paper's §9 sketches future work: "one can view solver-based techniques
as a perfectly precise abstract domain ... our method could learn when it
is best to apply solvers and when to choose a less precise domain."  This
package implements that idea:

- :class:`repro.ext.solver_policy.SolverAwareLinearPolicy` widens the
  domain policy's menu with the precise (solver-like) symbolic-interval
  domain, keeping the same learned-linear-map structure so the existing
  Bayesian-optimization trainer applies unchanged.
"""

from repro.ext.solver_policy import SolverAwareLinearPolicy

__all__ = ["SolverAwareLinearPolicy"]
