"""The AI2 baseline: fixed-domain abstract interpretation (Gehr et al.).

AI2 runs one abstract interpretation pass with a user-specified domain and
reports Verified or Unknown — it has no counterexample search and no
refinement, which is exactly the gap Charon's Figure 6 exhibits (AI2 shows
no "falsified" bars, Charon shows no "unknown" bars).

The paper evaluates two instantiations, reproduced here as module
constants: plain zonotopes (``AI2_ZONOTOPE``) and bounded powersets of 64
zonotopes (``AI2_BOUNDED64``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abstract.analyzer import analyze
from repro.abstract.domains import DomainSpec
from repro.core.property import RobustnessProperty
from repro.nn.network import Network
from repro.utils.timing import Deadline, Stopwatch

AI2_ZONOTOPE = DomainSpec("zonotope", 1)
AI2_BOUNDED64 = DomainSpec("zonotope", 64)


@dataclass(frozen=True)
class AI2Result:
    """Outcome of one AI2 run: ``verified``, ``unknown``, or ``timeout``."""

    kind: str
    margin_lower_bound: float
    time_seconds: float

    def __bool__(self) -> bool:
        return self.kind == "verified"


class AI2:
    """One-shot abstract interpretation with a fixed domain."""

    def __init__(
        self, domain: DomainSpec = AI2_BOUNDED64, timeout: float | None = None
    ) -> None:
        self.domain = domain
        self.timeout = timeout

    def verify(self, network: Network, prop: RobustnessProperty) -> AI2Result:
        watch = Stopwatch().start()
        deadline = Deadline(self.timeout)
        try:
            result = analyze(
                network, prop.region, prop.label, self.domain, deadline
            )
        except TimeoutError:
            return AI2Result("timeout", float("-inf"), watch.stop())
        kind = "verified" if result.verified else "unknown"
        return AI2Result(kind, result.margin_lower_bound, watch.stop())

    def describe(self) -> str:
        return f"AI2[{self.domain.short_name}]"
