"""A thin linear-programming layer over scipy's HiGHS solver.

The Reluplex stand-in builds many closely-related LPs; this module gives it
a small, typed interface and normalizes scipy's status handling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"
ERROR = "error"


@dataclass(frozen=True)
class LPResult:
    """Outcome of one LP solve."""

    status: str
    x: np.ndarray | None
    value: float | None

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    a_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    bounds: list[tuple[float | None, float | None]] | None = None,
) -> LPResult:
    """Minimize ``c·x`` subject to ``A_ub x <= b_ub`` and ``A_eq x = b_eq``.

    ``bounds`` defaults to unbounded variables (scipy defaults to ``x >= 0``,
    which is almost never what network encodings want).
    """
    c = np.asarray(c, dtype=np.float64)
    if bounds is None:
        bounds = [(None, None)] * c.size
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if result.status == 0:
        return LPResult(OPTIMAL, np.asarray(result.x), float(result.fun))
    if result.status == 2:
        return LPResult(INFEASIBLE, None, None)
    if result.status == 3:
        return LPResult(UNBOUNDED, None, None)
    return LPResult(ERROR, None, None)
