"""Reimplementations of the paper's comparison tools (§7).

- :mod:`repro.baselines.ai2` — AI2: one-shot abstract interpretation with a
  user-chosen fixed domain; sound, incomplete, cannot falsify.
- :mod:`repro.baselines.reluval` — ReluVal: symbolic intervals plus a
  hand-crafted smear-based bisection refinement; complete up to budget but
  no gradient counterexample search and no learning.
- :mod:`repro.baselines.reluplex` — Reluplex stand-in: a complete LP-based
  branch-and-bound over ReLU activation phases; precise but slow, matching
  the role Reluplex plays in Figure 14.
"""

from repro.baselines.ai2 import AI2, AI2Result, AI2_BOUNDED64, AI2_ZONOTOPE
from repro.baselines.reluval import ReluVal, ReluValConfig
from repro.baselines.reluplex import Reluplex, ReluplexConfig

__all__ = [
    "AI2",
    "AI2Result",
    "AI2_ZONOTOPE",
    "AI2_BOUNDED64",
    "ReluVal",
    "ReluValConfig",
    "Reluplex",
    "ReluplexConfig",
]
