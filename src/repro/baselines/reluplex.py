"""A Reluplex-style complete decision procedure.

Katz et al.'s Reluplex extends Simplex with lazy ReLU case splitting.  This
stand-in keeps the same decision structure — an LP relaxation refined by
branching on ReLU activation phases — on top of scipy's HiGHS simplex:

1. Encode the network as an LP over all layer activations: affine layers
   become equalities, each ReLU becomes its *triangle relaxation* (the LP
   hull of the ReLU graph over the unit's interval bounds) until its phase
   is fixed by branching.
2. For each adversary class ``j != K``, maximize ``y_j - y_K``.  A
   relaxation optimum below zero prunes the branch; otherwise the LP
   witness is checked concretely, and failing that, the most violated
   undecided ReLU is split into its active/inactive phases.

Sound and complete (up to LP tolerances and the node budget) but
exponential in crossing ReLUs — precisely the scaling behaviour that makes
Reluplex the slowest tool in the paper's Figure 14.  Max pooling is not
supported, matching the original tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstract.interval import IntervalElement
from repro.baselines.lp import solve_lp
from repro.core.property import RobustnessProperty
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.nn.network import AffineOp, MaxPoolOp, Network, ReluOp
from repro.utils.boxes import Box
from repro.utils.timing import Deadline, Stopwatch

_ACTIVE = 1
_INACTIVE = 0

#: Concrete-margin slack accepted when certifying an LP witness: HiGHS
#: tolerances mean an exact boundary counterexample can sit a hair above 0.
_CONCRETE_TOL = 1e-7


@dataclass(frozen=True)
class ReluplexConfig:
    """Budgets for the branch-and-bound search."""

    timeout: float | None = None
    node_limit: int = 20_000

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.node_limit < 1:
            raise ValueError("node_limit must be >= 1")


@dataclass
class _ReluUnit:
    """One ReLU neuron whose phase may need branching."""

    relu_index: int  # index into the list of relu ops
    unit: int  # neuron index within the layer
    z_var: int  # flat LP variable index of the pre-activation
    a_var: int  # flat LP variable index of the post-activation
    low: float  # interval lower bound of z
    high: float  # interval upper bound of z


class _Encoding:
    """Static LP structure for one (network, region) pair."""

    def __init__(self, network: Network, region: Box) -> None:
        ops = network.ops()
        if any(isinstance(op, MaxPoolOp) for op in ops):
            raise TypeError(
                "the Reluplex baseline does not support max pooling "
                "(matching the original tool)"
            )
        self.network = network
        self.region = region

        # Stage layout: variables for the input plus every op output.
        sizes = [network.input_size]
        for op in ops:
            if isinstance(op, AffineOp):
                sizes.append(op.out_size)
            else:
                sizes.append(sizes[-1])
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.num_vars = int(self.offsets[-1])

        # Interval bounds for every stage (drives the triangle relaxation).
        element = IntervalElement.from_box(region)
        stage_bounds = [element.bounds()]
        for op in ops:
            if isinstance(op, AffineOp):
                element = element.affine(op.weight, op.bias)
            else:
                element = element.relu()
            stage_bounds.append(element.bounds())

        # Variable bounds from the intervals.
        self.var_bounds: list[tuple[float, float]] = []
        for stage, (low, high) in enumerate(stage_bounds):
            for i in range(low.size):
                self.var_bounds.append((float(low[i]), float(high[i])))

        # Base equality constraints: affine layers + statically-fixed relus.
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        self.branchable: list[_ReluUnit] = []
        relu_index = 0
        for k, op in enumerate(ops):
            in_off = int(self.offsets[k])
            out_off = int(self.offsets[k + 1])
            if isinstance(op, AffineOp):
                block = np.zeros((op.out_size, self.num_vars))
                block[:, in_off : in_off + op.in_size] = -op.weight
                block[:, out_off : out_off + op.out_size] = np.eye(op.out_size)
                eq_rows.extend(block)
                eq_rhs.extend(op.bias.tolist())
            else:
                low, high = stage_bounds[k]
                for i in range(op.size):
                    z_var = in_off + i
                    a_var = out_off + i
                    if low[i] >= 0.0:
                        row = np.zeros(self.num_vars)
                        row[a_var] = 1.0
                        row[z_var] = -1.0
                        eq_rows.append(row)
                        eq_rhs.append(0.0)
                    elif high[i] <= 0.0:
                        row = np.zeros(self.num_vars)
                        row[a_var] = 1.0
                        eq_rows.append(row)
                        eq_rhs.append(0.0)
                    else:
                        self.branchable.append(
                            _ReluUnit(
                                relu_index,
                                i,
                                z_var,
                                a_var,
                                float(low[i]),
                                float(high[i]),
                            )
                        )
                relu_index += 1
        self.base_a_eq = np.array(eq_rows) if eq_rows else None
        self.base_b_eq = np.array(eq_rhs) if eq_rhs else None
        self.output_offset = int(self.offsets[-2])

    def objective(self, label: int, adversary: int) -> np.ndarray:
        """Minimize ``y_label - y_adversary`` (== maximize the violation)."""
        c = np.zeros(self.num_vars)
        c[self.output_offset + label] = 1.0
        c[self.output_offset + adversary] = -1.0
        return c

    def node_constraints(
        self, phases: dict[int, int]
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        """Assemble (A_ub, b_ub, A_eq, b_eq) for a phase assignment.

        ``phases`` maps an index into :attr:`branchable` to a phase.
        Unassigned units contribute their triangle relaxation.
        """
        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for idx, unit in enumerate(self.branchable):
            phase = phases.get(idx)
            if phase == _ACTIVE:
                row = np.zeros(self.num_vars)
                row[unit.a_var] = 1.0
                row[unit.z_var] = -1.0
                eq_rows.append(row)
                eq_rhs.append(0.0)
                row = np.zeros(self.num_vars)  # z >= 0
                row[unit.z_var] = -1.0
                ub_rows.append(row)
                ub_rhs.append(0.0)
            elif phase == _INACTIVE:
                row = np.zeros(self.num_vars)
                row[unit.a_var] = 1.0
                eq_rows.append(row)
                eq_rhs.append(0.0)
                row = np.zeros(self.num_vars)  # z <= 0
                row[unit.z_var] = 1.0
                ub_rows.append(row)
                ub_rhs.append(0.0)
            else:
                # Triangle relaxation: a >= 0, a >= z, a <= u(z-l)/(u-l).
                row = np.zeros(self.num_vars)
                row[unit.a_var] = -1.0
                ub_rows.append(row)
                ub_rhs.append(0.0)
                row = np.zeros(self.num_vars)
                row[unit.z_var] = 1.0
                row[unit.a_var] = -1.0
                ub_rows.append(row)
                ub_rhs.append(0.0)
                slope = unit.high / (unit.high - unit.low)
                row = np.zeros(self.num_vars)
                row[unit.a_var] = 1.0
                row[unit.z_var] = -slope
                ub_rows.append(row)
                ub_rhs.append(-slope * unit.low)
        a_ub = np.array(ub_rows) if ub_rows else None
        b_ub = np.array(ub_rhs) if ub_rhs else None
        if eq_rows:
            a_eq = np.vstack([self.base_a_eq, np.array(eq_rows)])
            b_eq = np.concatenate([self.base_b_eq, np.array(eq_rhs)])
        else:
            a_eq, b_eq = self.base_a_eq, self.base_b_eq
        return a_ub, b_ub, a_eq, b_eq


class Reluplex:
    """Complete LP branch-and-bound verifier for ReLU networks."""

    def __init__(self, config: ReluplexConfig | None = None) -> None:
        self.config = config or ReluplexConfig()

    def verify(self, network: Network, prop: RobustnessProperty):
        """Decide the property (shared outcome dataclasses)."""
        stats = VerificationStats()
        deadline = Deadline(self.config.timeout)
        watch = Stopwatch().start()
        try:
            encoding = _Encoding(network, prop.region)
        except TypeError:
            raise
        nodes_left = self.config.node_limit
        for adversary in range(network.output_size):
            if adversary == prop.label:
                continue
            status, witness, nodes_left = self._decide_class(
                encoding, prop, adversary, deadline, nodes_left, stats
            )
            if status == "sat":
                stats.time_seconds = watch.stop()
                margin = prop.margin_at(network, witness)
                return Falsified(witness, margin, stats)
            if status == "timeout":
                stats.time_seconds = watch.stop()
                return Timeout("wall clock", stats)
            if status == "nodes":
                stats.time_seconds = watch.stop()
                return Timeout("node budget", stats)
        stats.time_seconds = watch.stop()
        return Verified(stats)

    def _decide_class(
        self,
        encoding: _Encoding,
        prop: RobustnessProperty,
        adversary: int,
        deadline: Deadline,
        nodes_left: int,
        stats: VerificationStats,
    ) -> tuple[str, np.ndarray | None, int]:
        """Search for ``x`` in the region with ``y_adversary >= y_label``."""
        objective = encoding.objective(prop.label, adversary)
        stack: list[dict[int, int]] = [{}]
        while stack:
            if deadline.expired():
                return "timeout", None, nodes_left
            if nodes_left <= 0:
                return "nodes", None, nodes_left
            nodes_left -= 1
            phases = stack.pop()
            a_ub, b_ub, a_eq, b_eq = encoding.node_constraints(phases)
            result = solve_lp(
                objective, a_ub, b_ub, a_eq, b_eq, encoding.var_bounds
            )
            stats.analyze_calls += 1
            if not result.is_optimal:
                continue  # infeasible phase combination: prune
            # result.value = min(y_K - y_j); violation possible iff <= 0.
            if result.value > 0.0:
                continue  # even the relaxation keeps the margin positive
            witness = result.x[: encoding.network.input_size]
            witness = prop.region.project(witness)
            if prop.margin_at(encoding.network, witness) <= _CONCRETE_TOL:
                return "sat", witness, nodes_left
            branch_unit = self._most_violated(encoding, phases, result.x)
            if branch_unit is None:
                # All phases fixed: the LP is exact on this cell, and its
                # witness did not check out concretely -> no violation here.
                continue
            stats.splits += 1
            z_val = result.x[encoding.branchable[branch_unit].z_var]
            first, second = (_ACTIVE, _INACTIVE) if z_val >= 0 else (_INACTIVE, _ACTIVE)
            stack.append({**phases, branch_unit: second})
            stack.append({**phases, branch_unit: first})
        return "unsat", None, nodes_left

    @staticmethod
    def _most_violated(
        encoding: _Encoding, phases: dict[int, int], x: np.ndarray
    ) -> int | None:
        """Undecided unit whose LP values most violate ``a = relu(z)``."""
        best: int | None = None
        best_gap = 1e-9
        for idx, unit in enumerate(encoding.branchable):
            if idx in phases:
                continue
            gap = abs(x[unit.a_var] - max(x[unit.z_var], 0.0))
            if gap > best_gap:
                best, best_gap = idx, gap
        if best is not None:
            return best
        # No violation but margin still non-positive: branch on any
        # remaining undecided unit to make progress toward exactness.
        for idx in range(len(encoding.branchable)):
            if idx not in phases:
                return idx
        return None

    def describe(self) -> str:
        return "Reluplex"
