"""The ReluVal baseline: symbolic intervals + hand-crafted bisection.

ReluVal (Wang et al., USENIX Security '18) verifies with symbolic interval
propagation and refines by bisecting the input dimension with the highest
*smear* value (output sensitivity × input width).  It is complete given
enough splits, but — per the paper's RQ2/RQ3 analysis — it has neither
gradient-based counterexample search (it falsified 0 of the paper's
benchmarks) nor a learned refinement policy.  Falsification here happens
only when a sampled region center is concretely misclassified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstract.symbolic_interval import symbolic_analyze
from repro.core.property import RobustnessProperty
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.nn.network import Network
from repro.utils.boxes import Box
from repro.utils.timing import Deadline, Stopwatch


@dataclass(frozen=True)
class ReluValConfig:
    """Budgets for the ReluVal search."""

    timeout: float | None = None
    max_depth: int = 200

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")


class ReluVal:
    """Iterative symbolic-interval refinement with the smear heuristic."""

    def __init__(self, config: ReluValConfig | None = None) -> None:
        self.config = config or ReluValConfig()

    def _smear_dim(self, network: Network, region: Box) -> int:
        """ReluVal's split heuristic: ``argmax_i max_j |J_ji| * w_i``.

        The Jacobian is taken concretely at the region center — a practical
        stand-in for ReluVal's interval Jacobian that preserves the
        heuristic's character (sensitivity × width).
        """
        center = region.center
        rows = []
        for j in range(network.output_size):
            seed = np.zeros(network.output_size)
            seed[j] = 1.0
            rows.append(network.input_gradient(center, seed))
        jac = np.abs(np.stack(rows))  # (m, n)
        smear = jac.max(axis=0) * region.widths
        dim = int(np.argmax(smear))
        if region.widths[dim] <= 0.0:
            dim = region.longest_dim()
        return dim

    def verify(self, network: Network, prop: RobustnessProperty):
        """Decide the property; returns the shared outcome dataclasses."""
        config = self.config
        stats = VerificationStats()
        deadline = Deadline(config.timeout)
        watch = Stopwatch().start()
        stack: list[tuple[Box, int]] = [(prop.region, 0)]
        try:
            while stack:
                if deadline.expired():
                    stats.time_seconds = watch.stop()
                    return Timeout("wall clock", stats)
                region, depth = stack.pop()
                stats.max_depth_reached = max(stats.max_depth_reached, depth)

                # Concrete sample check (ReluVal's only falsification path).
                center = region.center
                margin = prop.margin_at(network, center)
                if margin <= 0.0:
                    stats.time_seconds = watch.stop()
                    return Falsified(center, margin, stats)

                stats.analyze_calls += 1
                stats.record_domain("symbolic")
                verified, _ = symbolic_analyze(
                    network, region, prop.label, deadline
                )
                if verified:
                    continue

                if depth >= config.max_depth:
                    stats.time_seconds = watch.stop()
                    return Timeout("split depth", stats)
                dim = self._smear_dim(network, region)
                try:
                    left, right = region.bisect(dim)
                except ValueError:
                    # Width below float resolution: no further refinement is
                    # possible for this sub-region.
                    stats.time_seconds = watch.stop()
                    return Timeout("degenerate region", stats)
                stats.splits += 1
                stack.append((right, depth + 1))
                stack.append((left, depth + 1))
        except TimeoutError:
            stats.time_seconds = watch.stop()
            return Timeout("wall clock", stats)
        stats.time_seconds = watch.stop()
        return Verified(stats)

    def describe(self) -> str:
        return "ReluVal"
