"""Pluggable array backends: the dtype/op seam under the kernel stack.

The abstract-interpretation kernels (interval, zonotope, DeepPoly, the
fused split+join) are BLAS-bound: their hot loops are GEMMs and einsums
over dense operands.  This module abstracts *which* array engine and
precision those operands use behind a tiny protocol so the same kernel
code can run

- ``numpy64`` — float64 numpy, the **bitwise reference**.  Every
  equivalence matrix in the test suite pins against this backend; its
  ops are literally ``np.matmul``/``np.einsum`` and its outward-rounding
  slack is exactly ``0.0``, so routing a kernel through the backend seam
  changes nothing on the reference path.
- ``numpy32`` — float32 numpy, the fast path (float32 GEMMs measure
  ~2.2-2.5x float64 on commodity BLAS).  Analyzer bounds stay *sound*
  by outward rounding: every concretization widens its bounds by a
  directed-rounding slack proportional to the accumulated magnitude
  (see :func:`slack_for`), and fuzz tests pin the containment invariant
  (float32 bounds always contain the float64 bounds).
- ``torch`` — optional, auto-registered only when ``import torch``
  succeeds.  numpy-in / numpy-out at the op boundary: the hot
  ``matmul``/``einsum`` sites run as torch ops (CPU or GPU), everything
  else stays numpy at the backend dtype.

Design rule (keeps the reference path bitwise and the kernels pure):
kernels consult the *active* backend only at lift boundaries (element
constructors, ``from_box``/``from_boxes``) and at the hot GEMM call
sites; everything in between derives its dtype from the arrays it is
handed.  The outward-rounding slack is likewise dtype-driven
(:func:`slack_for` returns 0.0 for float64), so transformer math never
depends on mutable global state.

The active backend is a module-level default (seeded from the
``REPRO_BACKEND`` environment variable so spawned executor workers
inherit it) with a thread-local override stack for scoped switches
(:func:`use_backend`) — kernel calls crossing the process boundary
carry their backend tag in the call descriptor and re-enter it on the
worker (see ``repro.exec.calls``).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "ArrayBackend",
    "BACKEND_CHOICES",
    "active",
    "available",
    "get",
    "outward_cast",
    "outward_center_radius",
    "register",
    "set_active",
    "slack_for",
    "unit_roundoff",
    "use_backend",
    "use_default_backend",
]

#: The names the CLI exposes.  ``torch`` is accepted but resolves only
#: when the import succeeds.
BACKEND_CHOICES = ("numpy64", "numpy32", "torch")

#: Unit roundoff by dtype char.  float64 is deliberately absent: it is
#: the bitwise reference precision, so its slack must be exactly zero.
_UNIT_ROUNDOFF = {"f": 2.0 ** -24, "e": 2.0 ** -11}

#: Safety factor on the gamma(n) directed-rounding bound.  The slack is
#: an *envelope*, not a formal per-op error analysis: kernels interleave
#: dots, elementwise products and reductions whose exact op counts vary,
#: so the bound is amplified and then validated empirically by the
#: containment fuzz tests (tests/backend/test_containment.py).
_SLACK_SAFETY = 4.0


def unit_roundoff(dtype) -> float:
    """Unit roundoff ``u`` of ``dtype`` (0.0 for the float64 reference)."""
    return _UNIT_ROUNDOFF.get(np.dtype(dtype).char, 0.0)


def outward_cast(
    low: np.ndarray, high: np.ndarray, dtype
) -> tuple[np.ndarray, np.ndarray]:
    """Cast box bounds to ``dtype``, rounding *outward* when narrowing.

    ``astype`` rounds to nearest, which can move a lower bound up (or an
    upper bound down) — unsound for a lift.  When the target dtype is
    narrower than the source, each bound is nudged one ulp outward so the
    cast interval always contains the original.  Widening or same-width
    casts are exact and pass through untouched (the float64 reference
    path stays bitwise).
    """
    dt = np.dtype(dtype)
    lo_src = np.asarray(low)
    hi_src = np.asarray(high)
    lo = lo_src.astype(dt)
    hi = hi_src.astype(dt)
    if dt.itemsize < lo_src.dtype.itemsize:
        lo = np.nextafter(lo, dt.type(-np.inf))
        hi = np.nextafter(hi, dt.type(np.inf))
    return lo, hi


def outward_center_radius(
    center: np.ndarray, radius: np.ndarray, dtype
) -> tuple[np.ndarray, np.ndarray]:
    """Cast a center/radius box form to ``dtype``, padding outward when
    narrowing: the radius absorbs the center's cast error plus one ulp so
    the cast form still contains the original.  Exact for same-width or
    widening casts (float64 reference path unchanged)."""
    dt = np.dtype(dtype)
    c_src = np.asarray(center)
    r_src = np.asarray(radius)
    c = c_src.astype(dt)
    r = r_src.astype(dt)
    if dt.itemsize < c_src.dtype.itemsize:
        cast_err = np.abs(c_src - c.astype(c_src.dtype))
        r = np.nextafter((r_src + cast_err).astype(dt), dt.type(np.inf))
    return c, r


def slack_for(dtype, terms: int) -> float:
    """Outward-rounding slack scale for an ~``terms``-flop accumulation.

    The classic directed-rounding bound for an ``n``-term dot product is
    ``gamma(n) = n*u / (1 - n*u)``; we amplify by :data:`_SLACK_SAFETY`
    to cover the surrounding elementwise traffic.  Returns exactly
    ``0.0`` for float64 inputs so reference-path arithmetic is untouched
    (every widening site guards with ``if scale:``).
    """
    u = _UNIT_ROUNDOFF.get(np.dtype(dtype).char, 0.0)
    if not u or terms <= 0:
        return 0.0
    nu = min(0.5, _SLACK_SAFETY * float(terms) * u)
    return nu / (1.0 - nu)


class ArrayBackend:
    """A named array engine: dtype + the op/allocation protocol.

    The base class *is* the numpy implementation — ``numpy64`` and
    ``numpy32`` are instances differing only in dtype, and their ops
    forward straight to numpy so the float64 instance is bitwise
    transparent.  Subclasses (torch) override the hot ops.
    """

    def __init__(self, name: str, dtype) -> None:
        self.name = name
        self.dtype = np.dtype(dtype)

    @property
    def unit_roundoff(self) -> float:
        return unit_roundoff(self.dtype)

    def slack(self, terms: int) -> float:
        """Outward-rounding slack scale for this backend's dtype."""
        return slack_for(self.dtype, terms)

    # ------------------------------------------------------------------
    # Ops (the hot-kernel protocol)
    # ------------------------------------------------------------------

    def matmul(self, a, b):
        return np.matmul(a, b)

    def einsum(self, spec, *operands, **kwargs):
        return np.einsum(spec, *operands, **kwargs)

    def relu(self, x):
        return np.maximum(x, 0.0)

    def take(self, a, indices, axis=None, mode="raise"):
        return np.take(a, indices, axis=axis, mode=mode)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    # ------------------------------------------------------------------
    # Allocation hooks (lift boundaries)
    # ------------------------------------------------------------------

    def asarray(self, x) -> np.ndarray:
        return np.asarray(x, dtype=self.dtype)

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=self.dtype)

    def empty(self, shape) -> np.ndarray:
        return np.empty(shape, dtype=self.dtype)

    def full(self, shape, fill) -> np.ndarray:
        return np.full(shape, fill, dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackend({self.name!r}, dtype={self.dtype.name})"


# ----------------------------------------------------------------------
# Registry + active-backend management
# ----------------------------------------------------------------------

_REGISTRY: dict[str, ArrayBackend] = {}
_TORCH_PROBED = False
_LOCK = threading.Lock()
_TLS = threading.local()

#: Module-level default, seeded from the environment so spawn-based
#: executor workers come up on the same backend as the parent.  The name
#: is validated lazily (at first ``active()``/``get()``) so a bogus env
#: var fails with a clear error at use, not a crash at import.
_ACTIVE_NAME = os.environ.get("REPRO_BACKEND", "numpy64") or "numpy64"


def register(backend: ArrayBackend, *, replace: bool = False) -> ArrayBackend:
    """Register a backend under its name (idempotent unless ``replace``)."""
    with _LOCK:
        if backend.name in _REGISTRY and not replace:
            return _REGISTRY[backend.name]
        _REGISTRY[backend.name] = backend
    return backend


def _ensure_torch() -> None:
    """Probe-and-register the optional torch backend exactly once."""
    global _TORCH_PROBED
    if _TORCH_PROBED:
        return
    with _LOCK:
        if _TORCH_PROBED:
            return
        _TORCH_PROBED = True
    try:
        from repro.backend.torch_backend import make_torch_backend
    except Exception:
        return
    backend = make_torch_backend()
    if backend is not None:
        register(backend)


def available() -> tuple[str, ...]:
    """Names of the backends that resolve on this host."""
    _ensure_torch()
    return tuple(sorted(_REGISTRY))


def get(name: str) -> ArrayBackend:
    """Resolve a backend by name.

    Raises ``KeyError`` with an actionable message when ``torch`` is
    requested but not importable.
    """
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    _ensure_torch()
    backend = _REGISTRY.get(name)
    if backend is None:
        if name == "torch":
            raise KeyError(
                "backend 'torch' is unavailable: torch is not importable "
                "in this environment (install torch or pick numpy64/numpy32)"
            )
        raise KeyError(
            f"unknown backend {name!r}; available: {available()}"
        )
    return backend


def active() -> ArrayBackend:
    """The backend kernels should lift into right now.

    Thread-local ``use_backend`` overrides win over the module default,
    so concurrent executor threads running calls tagged with different
    backends never observe each other's choice.
    """
    stack = getattr(_TLS, "stack", None)
    name = stack[-1] if stack else _ACTIVE_NAME
    return get(name)


def set_active(name: str) -> ArrayBackend:
    """Set the module-level default backend (validates the name)."""
    global _ACTIVE_NAME
    backend = get(name)
    _ACTIVE_NAME = backend.name
    return backend


@contextmanager
def use_backend(name: str) -> Iterator[ArrayBackend]:
    """Scoped backend switch (thread-local, re-entrant)."""
    backend = get(name)
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(backend.name)
    try:
        yield backend
    finally:
        stack.pop()


@contextmanager
def use_default_backend(name: str) -> Iterator[ArrayBackend]:
    """Scoped swap of the module-level *default* backend.

    Unlike :func:`use_backend` this is visible across threads — the
    scheduler wraps each precision phase in it so pooled-executor worker
    threads (which never see the scheduler thread's locals) run that
    phase's kernels at the phase's precision.  Thread-local
    :func:`use_backend` overrides still win, so worker *processes*
    re-entering a call's stamped backend are unaffected.  Concurrent
    callers swapping the default would race; the scheduler is the only
    expected user.
    """
    global _ACTIVE_NAME
    backend = get(name)
    previous = _ACTIVE_NAME
    _ACTIVE_NAME = backend.name
    try:
        yield backend
    finally:
        _ACTIVE_NAME = previous


register(ArrayBackend("numpy64", np.float64))
register(ArrayBackend("numpy32", np.float32))
