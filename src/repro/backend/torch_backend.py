"""Optional torch array backend (CPU or GPU), numpy-in / numpy-out.

Registered by ``repro.backend`` only when ``import torch`` succeeds, so
the rest of the stack never takes a hard torch dependency.  The backend
keeps the *array* representation numpy at float32 — only the hot
``matmul``/``einsum`` sites round-trip through torch tensors, which is
where the GEMM time lives (the surrounding elementwise traffic is
negligible and staying numpy keeps every kernel's control flow
unchanged).  On CUDA hosts the round-trip ships operands to the device;
on CPU it rides torch's threaded GEMM.

The float32 dtype means the ``numpy32`` outward-rounding slack applies
verbatim (``slack_for`` is dtype-driven), so torch-backed bounds carry
the same validated containment envelope.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend


def make_torch_backend():
    """Build the torch backend, or ``None`` when torch is unavailable."""
    try:
        import torch
    except Exception:
        return None
    device = "cuda" if torch.cuda.is_available() else "cpu"
    return TorchBackend(torch, device)


class TorchBackend(ArrayBackend):
    """float32 backend whose GEMM-shaped ops run as torch ops."""

    def __init__(self, torch_module, device: str) -> None:
        super().__init__("torch", np.float32)
        self._torch = torch_module
        self.device = device

    def _to(self, a):
        arr = np.ascontiguousarray(np.asarray(a, dtype=self.dtype))
        return self._torch.from_numpy(arr).to(self.device)

    def _from(self, t) -> np.ndarray:
        return t.detach().cpu().numpy()

    def matmul(self, a, b):
        return self._from(self._torch.matmul(self._to(a), self._to(b)))

    def einsum(self, spec, *operands, **kwargs):
        if kwargs:
            # torch.einsum has no out=/order= escape hatches; the in-place
            # callers (fused arena kernels) stay on numpy by design.
            return np.einsum(spec, *operands, **kwargs)
        tensors = [self._to(op) for op in operands]
        return self._from(self._torch.einsum(spec, *tensors))

    def relu(self, x):
        return self._from(self._torch.relu(self._to(x)))

    def take(self, a, indices, axis=None, mode="raise"):
        # torch.index_select has no clip mode; numpy handles both modes
        # at identical semantics and this op is never GEMM-bound.
        return np.take(a, indices, axis=axis, mode=mode)

    def where(self, cond, a, b):
        return np.where(cond, a, b)
