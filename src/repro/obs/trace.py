"""Hierarchical tracing spans, emitted as Chrome trace-event JSON.

The span taxonomy mirrors the scheduler's execution shape (DESIGN.md
§11): a ``sched.round`` span per fused sweep, ``sched.pgd_group`` /
``sched.analyze_group`` spans per fused kernel group, ``exec.*.call``
spans per executor submission (emitted at completion with the submit
timestamp, so pool calls show their true extent), and ``cache.probe`` /
``cache.put`` spans per cache touch.  Load the output in
``chrome://tracing`` / Perfetto, or summarize it with ``repro stats``.

**Zero cost when disabled.**  Tracing is off by default.  The
:func:`span` fast path is one attribute check returning a shared no-op
singleton context manager — no allocation, no timestamps, no lock — and
every other emission hook guards on :attr:`Tracer.enabled` before doing
any work.  ``benchmarks/bench_obs_overhead.py`` pins the budget: the
instrumentation's disabled-path cost must stay under 2% of the sched
engine suite's wall clock.

**Per-process.**  Spans are recorded in the process that executes the
code; worker processes do not ship spans back (only counter deltas ride
the descriptor envelopes — see :mod:`repro.obs.metrics`).  A traced
process-executor run therefore shows the parent's view: submit→done
extents of every kernel call, which is what scheduling analysis needs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

__all__ = ["Tracer", "tracer", "span", "tracing_enabled"]

#: Trace-event timestamps are integer microseconds.
_US = 1_000_000


class _NullSpan:
    """The disabled-path span: a shared, stateless no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An enabled span: times its ``with`` body, emits one "X" event."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, owner: "Tracer", name: str, cat: str, args: dict):
        self._tracer = owner
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        owner = self._tracer
        owner.add_complete(
            self._name,
            self._cat,
            self._start,
            time.perf_counter() - self._start,
            args=self._args,
        )


class Tracer:
    """Accumulates Chrome trace events while enabled.

    Timestamps are microseconds relative to :meth:`enable` (perf_counter
    based, so spans nest consistently across threads of one process).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._origin = 0.0

    def enable(self) -> None:
        """Start recording (clears any previous events)."""
        with self._lock:
            self._events = []
            self._origin = time.perf_counter()
            self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def span(self, name: str, cat: str = "", **args: Any):
        """A context manager timing its body; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def add_complete(
        self,
        name: str,
        cat: str,
        start: float,
        duration: float,
        tid: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Record one complete ("X") event from perf_counter readings.

        ``start`` is an absolute ``time.perf_counter()`` value; events
        whose span began before :meth:`enable` clamp to the origin.
        Callers that already hold a submit-time timestamp (executor done
        callbacks) pass it here with the submitting thread's ``tid`` so
        the call renders on the lane that issued it.
        """
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat or "repro",
            "ph": "X",
            "ts": max(0, int((start - self._origin) * _US)),
            "dur": max(0, int(duration * _US)),
            "pid": os.getpid(),
            "tid": tid if tid is not None else threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """Record one instant ("i") event (a point-in-time marker)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat or "repro",
            "ph": "i",
            "s": "t",
            "ts": max(0, int((time.perf_counter() - self._origin) * _US)),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def to_payload(self, metrics: dict | None = None) -> dict:
        """The Chrome trace JSON object (plus metrics in ``otherData``)."""
        other: dict = {"tool": "repro.obs"}
        if metrics is not None:
            other["metrics"] = metrics
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write(self, path: str, metrics: dict | None = None) -> None:
        """Write the trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_payload(metrics), handle)


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-local :class:`Tracer`."""
    return _TRACER


def tracing_enabled() -> bool:
    """Whether the process-local tracer is currently recording."""
    return _TRACER.enabled


def span(name: str, cat: str = "", **args: Any):
    """Module-level convenience for ``tracer().span(...)``.

    The disabled fast path — one attribute check, shared singleton — is
    the whole zero-overhead story; instrumented hot paths call this
    unconditionally.
    """
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _Span(_TRACER, name, cat, args)
