"""Summaries and diffs of trace/metrics dumps (the ``repro stats`` verb).

A dump is the JSON file ``--trace out.json`` writes: a Chrome
trace-event object whose ``otherData.metrics`` member carries the
run's metrics snapshot (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`).
This module reads those files back:

- :func:`validate_trace` checks the schema (what the CI smoke gates on),
- :func:`summarize_dump` renders counters, histograms, and per-span
  totals as text,
- :func:`diff_dumps` compares two dumps counter by counter, span by
  span, and histogram by histogram — the "did this PR move the needle"
  view.

The ``sched.netabs.*`` counter family (the abstraction pre-pass) gets a
dedicated summary section, including the refinement-rounds-to-accept
histogram, and so does the ``sched.prefix.*`` family (incremental
re-verification: checkpoint hits, layers skipped vs suffix layers run).
"""

from __future__ import annotations

import json

__all__ = [
    "load_dump",
    "validate_trace",
    "span_totals",
    "summarize_dump",
    "diff_dumps",
]

#: Event phases a dump may legally contain ("X" complete, "i" instant).
_KNOWN_PHASES = ("X", "i")


def load_dump(path: str) -> dict:
    """Parse one trace/metrics dump file."""
    with open(path) as handle:
        return json.load(handle)


def validate_trace(payload: dict) -> list[str]:
    """Schema errors of a trace dump (empty list = valid).

    Checks the Chrome trace-event contract this repo emits: a
    ``traceEvents`` list of events each carrying ``name``/``ph``/``ts``/
    ``pid``/``tid`` (with a non-negative ``dur`` on complete events),
    plus an ``otherData.metrics.counters`` dict.  Returns messages
    instead of raising so callers can report every problem at once.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["dump is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        errors.append("missing traceEvents list")
        events = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i} is not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                errors.append(f"event {i} ({event.get('name')!r}) lacks {key!r}")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"event {i} has unknown phase {phase!r}")
        if not isinstance(event.get("ts", 0), (int, float)):
            errors.append(f"event {i} has non-numeric ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"event {i} has bad dur {duration!r}")
    other = payload.get("otherData")
    if not isinstance(other, dict):
        errors.append("missing otherData object")
    else:
        metrics = other.get("metrics")
        if not isinstance(metrics, dict) or not isinstance(
            metrics.get("counters"), dict
        ):
            errors.append("otherData.metrics.counters is missing")
    return errors


def span_totals(payload: dict) -> dict[str, dict]:
    """Per-span-name aggregates over a dump's complete events.

    Maps span name to ``{"count", "total_ms", "max_ms"}`` (durations in
    milliseconds).
    """
    totals: dict[str, dict] = {}
    for event in payload.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        name = str(event.get("name"))
        duration_ms = float(event.get("dur", 0)) / 1000.0
        entry = totals.setdefault(
            name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        entry["count"] += 1
        entry["total_ms"] += duration_ms
        entry["max_ms"] = max(entry["max_ms"], duration_ms)
    return totals


def _counters(payload: dict) -> dict[str, float]:
    other = payload.get("otherData") or {}
    metrics = other.get("metrics") or {}
    counters = metrics.get("counters") or {}
    return {str(k): v for k, v in counters.items()}


def _histograms(payload: dict) -> dict[str, dict]:
    other = payload.get("otherData") or {}
    metrics = other.get("metrics") or {}
    return dict(metrics.get("histograms") or {})


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return str(int(value))


#: The abstraction pre-pass counter family, rendered as its own section
#: (one line per outcome class reads far better than interleaving them
#: with the kernel counters).
_NETABS_PREFIX = "sched.netabs."


def _netabs_section(
    counters: dict[str, float], histograms: dict[str, dict]
) -> list[str]:
    """The ``sched.netabs.*`` family as a dedicated summary block."""
    family = {
        name[len(_NETABS_PREFIX):]: counters[name]
        for name in counters
        if name.startswith(_NETABS_PREFIX)
    }
    rounds = histograms.get(_NETABS_PREFIX + "rounds_to_accept")
    if not family and not rounds:
        return []
    lines = ["netabs (abstraction pre-pass):"]
    order = (
        "jobs", "verified", "falsified", "spurious", "timeout",
        "fallback", "unsupported", "refinements",
    )
    known = [name for name in order if name in family]
    extra = sorted(set(family) - set(order))
    if known or extra:
        lines.append(
            "  " + "  ".join(
                f"{name} {_fmt(family[name])}" for name in known + extra
            )
        )
    if rounds:
        lines.append(
            f"  rounds-to-accept: n={rounds.get('count', 0)} "
            f"mean={float(rounds.get('mean', 0.0)):.2f} "
            f"max={_fmt(float(rounds.get('max', 0.0)))}"
        )
    return lines


#: The incremental re-verification counter family (prefix checkpoints).
_PREFIX_PREFIX = "sched.prefix."


def _prefix_section(counters: dict[str, float]) -> list[str]:
    """The ``sched.prefix.*`` family as a dedicated summary block."""
    family = {
        name[len(_PREFIX_PREFIX):]: counters[name]
        for name in counters
        if name.startswith(_PREFIX_PREFIX)
    }
    if not family:
        return []
    lines = ["prefix (incremental re-verification):"]
    order = (
        "hits", "misses", "puts", "put_errors",
        "layers_skipped", "suffix_layers_run",
    )
    known = [name for name in order if name in family]
    extra = sorted(set(family) - set(order))
    lines.append(
        "  " + "  ".join(
            f"{name} {_fmt(family[name])}" for name in known + extra
        )
    )
    return lines


def summarize_dump(payload: dict, top: int = 20) -> str:
    """A text summary of one dump: spans, counters, histograms."""
    lines: list[str] = []
    totals = span_totals(payload)
    if totals:
        lines.append("spans (by total time):")
        ranked = sorted(
            totals.items(), key=lambda kv: kv[1]["total_ms"], reverse=True
        )
        for name, entry in ranked[:top]:
            lines.append(
                f"  {name:<28} x{entry['count']:<6} "
                f"total {entry['total_ms']:9.2f}ms  "
                f"max {entry['max_ms']:8.2f}ms"
            )
    counters = _counters(payload)
    lines.extend(_netabs_section(counters, _histograms(payload)))
    lines.extend(_prefix_section(counters))
    generic = {
        name: value
        for name, value in counters.items()
        if not name.startswith((_NETABS_PREFIX, _PREFIX_PREFIX))
    }
    if generic:
        lines.append("counters:")
        for name in sorted(generic):
            lines.append(f"  {name:<36} {_fmt(generic[name])}")
    histograms = _histograms(payload)
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            entry = histograms[name]
            lines.append(
                f"  {name:<36} n={entry.get('count', 0)} "
                f"mean={float(entry.get('mean', 0.0)):.6f} "
                f"max={float(entry.get('max', 0.0)):.6f}"
            )
    if not lines:
        lines.append("(empty dump: no spans, counters, or histograms)")
    return "\n".join(lines)


def diff_dumps(baseline: dict, candidate: dict, top: int = 20) -> str:
    """Counter and span deltas of ``candidate`` relative to ``baseline``."""
    lines: list[str] = []
    base_counters = _counters(baseline)
    cand_counters = _counters(candidate)
    changed = []
    for name in sorted(set(base_counters) | set(cand_counters)):
        before = base_counters.get(name, 0)
        after = cand_counters.get(name, 0)
        if before != after:
            changed.append((name, before, after))
    if changed:
        lines.append("counters (baseline -> candidate):")
        for name, before, after in changed:
            lines.append(
                f"  {name:<36} {_fmt(before)} -> {_fmt(after)} "
                f"({after - before:+g})"
            )
    else:
        lines.append("counters: identical")
    base_spans = span_totals(baseline)
    cand_spans = span_totals(candidate)
    deltas = []
    for name in set(base_spans) | set(cand_spans):
        before = base_spans.get(name, {}).get("total_ms", 0.0)
        after = cand_spans.get(name, {}).get("total_ms", 0.0)
        if before != after:
            deltas.append((abs(after - before), name, before, after))
    if deltas:
        lines.append("spans (total ms, baseline -> candidate):")
        for _, name, before, after in sorted(deltas, reverse=True)[:top]:
            lines.append(
                f"  {name:<28} {before:9.2f} -> {after:9.2f} "
                f"({after - before:+.2f})"
            )
    base_hists = _histograms(baseline)
    cand_hists = _histograms(candidate)
    hist_lines = []
    for name in sorted(set(base_hists) | set(cand_hists)):
        before = base_hists.get(name) or {}
        after = cand_hists.get(name) or {}
        fields = []
        for field, fmt in (("count", "g"), ("mean", ".4f"), ("max", "g")):
            b = float(before.get(field, 0.0))
            a = float(after.get(field, 0.0))
            if b != a:
                fields.append(f"{field} {b:{fmt}} -> {a:{fmt}}")
        if fields:
            hist_lines.append(f"  {name:<36} " + ", ".join(fields))
    if hist_lines:
        lines.append("histograms (baseline -> candidate):")
        lines.extend(hist_lines)
    return "\n".join(lines)
