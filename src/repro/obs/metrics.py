"""Process-local metrics registry: counters, gauges, histograms.

One registry per process (:func:`registry`), absorbing the ad-hoc
counters that used to live scattered across the codebase — the fused
zonotope kernels' ``FUSED_COUNTERS``, the scheduler's cache-hit tallies,
the executors' nothing-at-all.  Three instrument kinds:

- **Counters** are monotonically accumulated numbers (int or float —
  phase timers accumulate seconds).  Two access shapes:
  :meth:`MetricsRegistry.inc` for occasional call sites, and **counter
  groups** (:meth:`MetricsRegistry.group`) for hot paths: a group is a
  plain registry-owned dict whose values the owning module increments
  directly (``COUNTERS["calls"] += 1``) with zero locking or call
  overhead — exactly the idiom ``FUSED_COUNTERS`` always used, now
  visible to snapshots under dotted names (``fused.calls``).
- **Gauges** are set/adjusted levels (executor queue depth).
- **Histograms** are count/total/min/max summaries of observed values
  (submit→done latency); no buckets — the trace view carries the
  per-event detail when somebody needs a distribution.

**Cross-process aggregation contract.**  Only *counters* merge across
process boundaries: they are commutative sums, so worker-side deltas
(captured by :func:`repro.exec.calls.run_kernel_call`) can fold into the
parent registry in any completion order and still produce the serial
run's totals — the property the scheduler's serial-vs-process metrics
equality test pins.  Gauges and histograms are process-local by design:
a worker's queue depth or latency histogram describes *that* process and
summing it into the parent would mean nothing.

Thread safety: registry methods lock; group dicts deliberately do not
(single-writer hot paths; Python dict increments of int values are
atomic enough for the read-side snapshot, which only ever feeds
reporting, never control flow).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["Histogram", "MetricsRegistry", "registry"]


@dataclass
class Histogram:
    """Streaming count/total/min/max summary of observed values."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class MetricsRegistry:
    """The process-local instrument store.  See the module docstring."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._groups: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the scalar counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # ``add`` reads better when the value is a measured quantity
    # (seconds, bytes) rather than an event count.
    add = inc

    def group(self, prefix: str, keys: tuple[str, ...]) -> dict[str, float]:
        """The counter-group dict registered under ``prefix``.

        Returns the *same* dict object on every call (module-level
        aliases stay valid forever); missing ``keys`` are added at zero.
        Group values appear in snapshots as ``{prefix}.{key}``.
        """
        with self._lock:
            counters = self._groups.setdefault(prefix, {})
            for key in keys:
                counters.setdefault(key, 0)
            return counters

    def counter_value(self, name: str) -> float:
        """Current value of a counter, dotted group entries included."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            prefix, _, key = name.rpartition(".")
            return self._groups.get(prefix, {}).get(key, 0)

    def counters_snapshot(self) -> dict[str, float]:
        """Every counter (scalar and group) flattened to dotted names."""
        with self._lock:
            flat = dict(self._counters)
            for prefix, counters in self._groups.items():
                for key, value in counters.items():
                    flat[f"{prefix}.{key}"] = value
            return flat

    def counters_since(self, before: dict[str, float]) -> dict[str, float]:
        """Non-zero counter deltas accumulated since ``before``.

        ``before`` is a previous :meth:`counters_snapshot`; the result is
        the picklable delta dict that rides :class:`~repro.exec.calls.`
        envelopes back from worker processes and that
        :class:`~repro.sched.scheduler.ScheduleReport` exposes per run.
        """
        deltas = {}
        for name, value in self.counters_snapshot().items():
            delta = value - before.get(name, 0)
            if delta:
                deltas[name] = delta
        return deltas

    def merge_counters(self, deltas: dict[str, float]) -> None:
        """Fold a counter-delta dict into this registry.

        Dotted names matching a registered group land in the group dict
        (so module-level aliases like ``FUSED_COUNTERS`` observe worker
        work); everything else accumulates as a scalar counter.  Counter
        addition is commutative, so merge order never changes totals.
        """
        with self._lock:
            for name, value in deltas.items():
                prefix, _, key = name.rpartition(".")
                group = self._groups.get(prefix)
                if group is not None:
                    group[key] = group.get(key, 0) + value
                else:
                    self._counters[name] = self._counters.get(name, 0) + value

    # ------------------------------------------------------------------
    # Gauges and histograms
    # ------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def adjust_gauge(self, name: str, delta: float) -> float:
        """Add ``delta`` to a gauge; returns the new level."""
        with self._lock:
            value = self._gauges.get(name, 0) + delta
            self._gauges[name] = value
            return value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.record(value)

    # ------------------------------------------------------------------
    # Snapshots and lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The full registry state as plain JSON-serializable dicts."""
        with self._lock:
            return {
                "counters": self.counters_snapshot(),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Zero everything, preserving group dict identities.

        Group dicts are zeroed in place — module-level aliases keep
        working — while scalar counters, gauges, and histograms drop.
        """
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            for counters in self._groups.values():
                for key in counters:
                    counters[key] = 0


#: The process-local registry.  One per process: parent and workers each
#: get their own at import, and worker deltas merge back explicitly
#: through the descriptor layer.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-local :class:`MetricsRegistry`."""
    return _REGISTRY
