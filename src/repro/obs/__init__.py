"""Structured observability: metrics registry, tracing spans, dump tools.

- :mod:`repro.obs.metrics` — the process-local counter/gauge/histogram
  registry every subsystem reports into (and the counter-group idiom hot
  paths increment lock-free).
- :mod:`repro.obs.trace` — hierarchical spans emitted as Chrome
  trace-event JSON (``--trace out.json`` on verify/schedule/train);
  zero-cost no-ops while disabled.
- :mod:`repro.obs.stats` — summarize/diff/validate those dumps
  (``repro stats``).

Worker-process counters merge back into the parent registry through the
executor descriptor layer (:mod:`repro.exec.calls`), so Process/shm runs
report the same totals as Serial ones.
"""

from repro.obs.metrics import Histogram, MetricsRegistry, registry
from repro.obs.trace import Tracer, span, tracer, tracing_enabled

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "registry",
    "Tracer",
    "span",
    "tracer",
    "tracing_enabled",
]
