"""The interval (box) abstract domain.

The cheapest domain the paper's policy can select (``(I, k)`` in §4.1).
Every transformer here is the standard optimal interval transformer; ReLU
is exact per dimension (clamping), so :meth:`relu` needs no case splits —
splits still help the powerset variant because later *affine* layers lose
less precision on tighter boxes.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.batched import BatchedElement
from repro.abstract.element import AbstractElement
from repro.backend import active as _active_backend
from repro.backend import outward_cast as _outward_cast
from repro.backend import slack_for as _slack_for
from repro.utils.boxes import Box


def _coerce_bound(a: np.ndarray) -> np.ndarray:
    """Sanitize a bound array while *preserving* a float dtype.

    Constructors are called both at the lift boundary (where the active
    backend chose the dtype) and by every transformer (where the dtype
    must ride along unchanged) — so non-float input is coerced to the
    float64 reference, but float32/float64 arrays pass through as-is.
    """
    arr = np.asarray(a)
    if arr.dtype.char not in "efd":
        arr = arr.astype(np.float64)
    return arr


class IntervalElement(AbstractElement):
    """Component-wise bounds ``[low, high]``."""

    def __init__(self, low: np.ndarray, high: np.ndarray) -> None:
        low = _coerce_bound(low).reshape(-1)
        high = _coerce_bound(high).reshape(-1)
        if high.dtype != low.dtype:
            high = high.astype(low.dtype)
        if low.shape != high.shape:
            raise ValueError(f"shape mismatch: {low.shape} vs {high.shape}")
        if np.any(low > high + 1e-12):
            raise ValueError("empty interval element (low > high)")
        self.low = low
        self.high = np.maximum(high, low)

    @staticmethod
    def from_box(box: Box) -> "IntervalElement":
        low, high = _outward_cast(box.low, box.high, _active_backend().dtype)
        return IntervalElement(low, high)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.low.size

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.low.copy(), self.high.copy()

    def __repr__(self) -> str:
        return f"IntervalElement(size={self.size})"

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "IntervalElement":
        pos = np.maximum(weight, 0.0)
        neg = np.minimum(weight, 0.0)
        low = pos @ self.low + neg @ self.high + bias
        high = pos @ self.high + neg @ self.low + bias
        scale = _slack_for(low.dtype, weight.shape[1])
        if scale:
            mag = np.maximum(np.abs(self.low), np.abs(self.high))
            slack = scale * (np.abs(weight) @ mag + np.abs(bias))
            low = low - slack
            high = high + slack
        return IntervalElement(low, high)

    def relu(self, skip_dims: frozenset[int] = frozenset()) -> "IntervalElement":
        # Clamping is the exact per-dimension ReLU image, so it is sound and
        # optimal even on dims an earlier split already handled; the
        # skip_dims hint can be ignored.
        return IntervalElement(np.maximum(self.low, 0.0), np.maximum(self.high, 0.0))

    def maxpool(self, windows: np.ndarray) -> "IntervalElement":
        low = self.low[windows].max(axis=1)
        high = self.high[windows].max(axis=1)
        return IntervalElement(low, high)

    def pad(self, radii: np.ndarray) -> "IntervalElement":
        low = self.low - radii
        high = self.high + radii
        scale = _slack_for(low.dtype, 2)
        if scale:
            # Outward rounding (float32 path): the subtraction/addition
            # round-off is bounded by the result magnitude.
            low = low - scale * np.abs(low)
            high = high + scale * np.abs(high)
        return IntervalElement(low, high)

    # ------------------------------------------------------------------
    # Case splits
    # ------------------------------------------------------------------

    def crossing_dims(self) -> np.ndarray:
        crossing = np.flatnonzero((self.low < 0.0) & (self.high > 0.0))
        widths = self.high[crossing] - self.low[crossing]
        return crossing[np.argsort(-widths, kind="stable")]

    def relu_split(self, dim: int) -> tuple["IntervalElement", "IntervalElement"]:
        lo, hi = self.low[dim], self.high[dim]
        if not lo < 0.0 < hi:
            raise ValueError(f"dimension {dim} does not cross zero: [{lo}, {hi}]")
        pos_low = self.low.copy()
        pos_low[dim] = 0.0
        pos = IntervalElement(pos_low, self.high.copy())
        neg_low = self.low.copy()
        neg_high = self.high.copy()
        neg_low[dim] = 0.0
        neg_high[dim] = 0.0
        neg = IntervalElement(neg_low, neg_high)
        return pos, neg

    def relu_dim(self, dim: int) -> "IntervalElement":
        low = self.low.copy()
        high = self.high.copy()
        low[dim] = max(low[dim], 0.0)
        high[dim] = max(high[dim], 0.0)
        return IntervalElement(low, high)

    def join(self, other: "AbstractElement") -> "IntervalElement":
        if not isinstance(other, IntervalElement):
            raise TypeError("cannot join interval with non-interval element")
        return IntervalElement(
            np.minimum(self.low, other.low), np.maximum(self.high, other.high)
        )

    # ------------------------------------------------------------------
    # Margins
    # ------------------------------------------------------------------

    def lower_margin(self, label: int, other: int) -> float:
        return float(self.low[label] - self.high[other])


class IntervalBatch(BatchedElement):
    """Interval bounds for ``B`` regions at once: arrays of shape ``(B, n)``.

    Each transformer is the standard optimal interval transformer applied
    row-wise, but phrased so every affine layer is one ``(B, n) @ W.T`` GEMM
    instead of ``B`` GEMVs — the §6 parallelization opportunity realized as
    batching.  Row ``i`` always equals (within BLAS kernel round-off) the
    bounds :class:`IntervalElement` computes for region ``i`` alone.
    """

    def __init__(self, low: np.ndarray, high: np.ndarray) -> None:
        low = _coerce_bound(low)
        high = _coerce_bound(high)
        if high.dtype != low.dtype:
            high = high.astype(low.dtype)
        if low.ndim != 2 or low.shape != high.shape:
            raise ValueError(
                f"batch bounds must be matching (B, n) arrays, got "
                f"{low.shape} vs {high.shape}"
            )
        self.low = low
        self.high = np.maximum(high, low)

    @staticmethod
    def from_boxes(boxes: list[Box]) -> "IntervalBatch":
        if not boxes:
            raise ValueError("need at least one box")
        low, high = _outward_cast(
            np.stack([b.low for b in boxes]),
            np.stack([b.high for b in boxes]),
            _active_backend().dtype,
        )
        return IntervalBatch(low, high)

    @property
    def batch_size(self) -> int:
        return self.low.shape[0]

    @property
    def size(self) -> int:
        return self.low.shape[1]

    def row(self, i: int) -> IntervalElement:
        """The ``i``-th region's bounds as a plain :class:`IntervalElement`."""
        return IntervalElement(self.low[i].copy(), self.high[i].copy())

    def rows(self, indices) -> "IntervalBatch":
        """The sub-batch holding the given rows (used for per-label
        margin checks over mixed-label batches)."""
        indices = np.asarray(indices, dtype=np.int64)
        return IntervalBatch(self.low[indices], self.high[indices])

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "IntervalBatch":
        mm = _active_backend().matmul
        pos = np.maximum(weight, 0.0)
        neg = np.minimum(weight, 0.0)
        low = mm(self.low, pos.T) + mm(self.high, neg.T) + bias
        high = mm(self.high, pos.T) + mm(self.low, neg.T) + bias
        scale = _slack_for(low.dtype, weight.shape[1])
        if scale:
            mag = np.maximum(np.abs(self.low), np.abs(self.high))
            slack = scale * (mm(mag, np.abs(weight).T) + np.abs(bias))
            low = low - slack
            high = high + slack
        return IntervalBatch(low, high)

    def relu(self) -> "IntervalBatch":
        return IntervalBatch(
            np.maximum(self.low, 0.0), np.maximum(self.high, 0.0)
        )

    def maxpool(self, windows: np.ndarray) -> "IntervalBatch":
        return IntervalBatch(
            self.low[:, windows].max(axis=2), self.high[:, windows].max(axis=2)
        )

    def pad(self, radii: np.ndarray) -> "IntervalBatch":
        low = self.low - radii
        high = self.high + radii
        scale = _slack_for(low.dtype, 2)
        if scale:
            low = low - scale * np.abs(low)
            high = high + scale * np.abs(high)
        return IntervalBatch(low, high)

    def min_margin(self, label: int) -> np.ndarray:
        """Per-region sound lower bound on ``min_{j≠K} (y_K - y_j)``."""
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        masked = self.high.copy()
        masked[:, label] = -np.inf
        return self.low[:, label] - masked.max(axis=1)
