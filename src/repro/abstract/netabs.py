"""Network abstraction by neuron merging, with CEGAR refinement.

The verifier's kernel work is quadratic in layer width (every affine
transformer is a GEMM over the incoming weight matrix), so a network
with merged hidden neurons is cheaper to analyze in proportion to the
*square* of the merge ratio.  This module builds, from a concrete
Dense/ReLU network, a strictly over-approximating abstract
:class:`~repro.nn.network.Network` in the style of DeepAbstract /
Elboher et al.:

1.  Hidden neurons of each layer are partitioned into groups —
    *syntactic* clustering groups neurons whose incoming weight rows are
    close, *semantic* clustering groups neurons whose activation
    signatures over sampled inputs are close (the grouping only affects
    precision, never soundness).
2.  Each group is replaced by one representative neuron (the centroid of
    its members' reduced weight rows), and a per-group error bound
    ``d_G`` is derived by interval arithmetic over a fixed *domain box*:
    for every input ``x`` in the box, every concrete member activation
    stays within ``d_G`` of the representative's activation
    (ReLU is 1-Lipschitz, so the bound survives the nonlinearity).
3.  The accumulated error surfaces as a single
    :class:`~repro.nn.layers.ErrorPad` at the output, whose per-row
    radii bound the total concrete-vs-abstract output deviation.  Every
    abstract domain treats the pad as an independent adversarial error
    per output row, so the abstract margin lower bound is a sound lower
    bound on the *concrete* margin: ``VERIFIED`` on the abstract network
    implies verified on the concrete one.

A ``FALSIFIED`` abstract outcome is only trusted after its witness
reproduces under a concrete float64 forward pass; a spurious witness
triggers :meth:`NetworkAbstraction.refine` — the merged group most
responsible for the output gap (error bound times downstream
absolute-weight amplification) is split in two — and the job retries at
the finer level.  Refinement terminates: every split strictly reduces
some group, and the all-singleton partition *is* the concrete network
(:meth:`NetworkAbstraction.build` returns the original object, digest
and all).  See DESIGN.md §13 for the full soundness argument.

The abstraction is built over a fixed domain box (the unit box hulled
with the job regions), not per region, so one abstract network — and
therefore one ``network_digest`` and one result-cache keyspace — serves
every job and survives across refinement retries and scheduler runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstract.domains import DomainSpec
from repro.nn.layers import Dense, ErrorPad, ReLU
from repro.nn.network import AffineOp, Network, ReluOp
from repro.obs.trace import span
from repro.utils.boxes import Box

#: Domain used to bound the abstract prefix's activations while the
#: error bounds are derived.  Zonotopes keep the hull orders of
#: magnitude tighter than plain intervals on deep chains, and any sound
#: over-approximation yields sound (just looser) ``d_G``.
_PREFIX_DOMAIN = DomainSpec("zonotope")

#: ``--abstraction`` menu shared by the verify and schedule commands.
ABSTRACTION_MODES = ("off", "syntactic", "semantic")

#: Default ``--abstraction-level``: target group count per hidden layer
#: is ``ceil(width / 2**level)``, so level 2 merges ~4 neurons per group.
DEFAULT_LEVEL = 2

#: CEGAR refinement rounds before falling back to the concrete network.
DEFAULT_MAX_ROUNDS = 4

#: Outward widening on every derived error bound: the bounds are exact
#: real-interval quantities evaluated in float64, whose rounding we do
#: not direct, so give away a few relative ulps to stay on the sound
#: side (the pad radii are additionally ulp-bumped per dtype by
#: ``Network.ops_for``).
_SAFETY = 1.0 + 1e-9

#: Sample count for semantic (activation-signature) clustering.
_SIGNATURE_SAMPLES = 64


def _affine_chain(network: Network) -> list[tuple[np.ndarray, np.ndarray]] | None:
    """``[(W, b), ...]`` when the lowered ops are a ReLU MLP, else ``None``.

    The merging construction needs the strict ``Affine (ReLU Affine)+``
    shape; anything else (max pooling, existing pads, a single affine
    with nothing to merge) falls back to the concrete network.
    """
    ops = network.ops()
    if len(ops) < 3 or len(ops) % 2 == 0:
        return None
    chain: list[tuple[np.ndarray, np.ndarray]] = []
    for i, op in enumerate(ops):
        if i % 2 == 0:
            if not isinstance(op, AffineOp):
                return None
            chain.append((op.weight, op.bias))
        elif not isinstance(op, ReluOp):
            return None
    return chain


def _agglomerate(features: np.ndarray, target: int) -> list[np.ndarray]:
    """Deterministic greedy agglomerative clustering to ``target`` groups.

    Centroid linkage: repeatedly merge the closest pair of cluster
    centroids; ties break toward the lexicographically smallest index
    pair (``np.argmin`` over the row-major distance matrix), so the
    partition is a pure function of the feature matrix.  Returns sorted
    member-index arrays ordered by smallest member.
    """
    n = features.shape[0]
    target = max(1, min(int(target), n))
    members: list[list[int] | None] = [[i] for i in range(n)]
    if target >= n:
        return [np.array(m) for m in members]
    cents = np.array(features, dtype=np.float64)
    counts = np.ones(n)
    active = np.ones(n, dtype=bool)
    diff = cents[:, None, :] - cents[None, :, :]
    dist = np.einsum("ijk,ijk->ij", diff, diff)
    dist[np.tril_indices(n)] = np.inf
    remaining = n
    while remaining > target:
        i, j = divmod(int(np.argmin(dist)), n)  # i < j: upper triangle only
        members[i].extend(members[j])
        members[j] = None
        active[j] = False
        total = counts[i] + counts[j]
        cents[i] = (cents[i] * counts[i] + cents[j] * counts[j]) / total
        counts[i] = total
        dist[j, :] = np.inf
        dist[:, j] = np.inf
        idx = np.flatnonzero(active)
        d = cents[idx] - cents[i]
        vals = np.einsum("ij,ij->i", d, d)
        lo = np.minimum(idx, i)
        hi = np.maximum(idx, i)
        dist[lo, hi] = vals
        dist[i, i] = np.inf
        remaining -= 1
    return [np.array(m) for m in members if m is not None]


def _semantic_signatures(
    chain: list[tuple[np.ndarray, np.ndarray]], box: Box, seed: int
) -> list[np.ndarray]:
    """Per-hidden-layer activation signatures over sampled domain points.

    Row ``j`` of layer ``ell``'s matrix is neuron ``j``'s post-activation
    vector across the (deterministically seeded) samples — neurons that
    behave alike on the domain box cluster together even when their
    weight rows look different.
    """
    rng = np.random.default_rng(seed)
    x = box.sample(rng, _SIGNATURE_SAMPLES)
    sigs = []
    h = x
    for weight, bias in chain[:-1]:
        h = np.maximum(h @ weight.T + bias, 0.0)
        sigs.append(np.ascontiguousarray(h.T))
    return sigs


def witness_margin(network: Network, label: int, x: np.ndarray) -> float:
    """Concrete float64 robustness margin of a candidate counterexample.

    ``margin <= delta`` means the point really misclassifies on the
    *concrete* network — the CEGAR acceptance test for an abstract
    ``FALSIFIED`` witness.
    """
    logits = network.forward(np.asarray(x, dtype=np.float64))
    return float(logits[label] - np.delete(logits, label).max())


class NetworkAbstraction:
    """Clustering state, abstract-network builder, and refinement driver.

    One instance per (network, mode, level) holds the current partition
    of every hidden layer; :meth:`build` materializes it as an abstract
    :class:`Network` and :meth:`refine` splits the group most
    responsible for the over-approximation.  All state transitions are
    deterministic, so equal refinement paths produce byte-equal abstract
    networks (and therefore equal digests — the result cache stays warm
    across retries).
    """

    def __init__(
        self,
        network: Network,
        mode: str,
        level: int,
        regions: list[Box] | None = None,
        seed: int = 0,
    ) -> None:
        if mode not in ("syntactic", "semantic"):
            raise ValueError(
                f"unknown abstraction mode {mode!r}; "
                f"choose from {ABSTRACTION_MODES[1:]}"
            )
        if level < 1:
            raise ValueError(f"abstraction level must be >= 1, got {level}")
        chain = _affine_chain(network)
        if chain is None:
            raise ValueError(
                "network abstraction needs a Dense/ReLU chain "
                "(use abstraction_for() to fall back gracefully)"
            )
        self.network = network
        self.mode = mode
        self.level = int(level)
        self._chain = chain
        # The error bounds quantify over this box, so they are valid for
        # every job region inside it.  The hull of the job regions keeps
        # it as tight as the workload allows (the unit box is the
        # region-free fallback); one run's manifest yields one box, so
        # digests stay stable across refinement retries and reruns.
        if regions:
            box = regions[0]
            for region in regions[1:]:
                box = box.hull(region)
        else:
            box = Box.unit(network.input_size)
        self.domain_box = box
        self.splits = 0
        self._last_c: list[np.ndarray] | None = None
        if mode == "semantic":
            self._features = _semantic_signatures(chain, box, seed)
        else:
            self._features = [
                np.concatenate([weight, bias[:, None]], axis=1)
                for weight, bias in chain[:-1]
            ]
        self.groups: list[list[np.ndarray]] = [
            _agglomerate(feats, -(-feats.shape[0] // (1 << self.level)))
            for feats in self._features
        ]
        # Downstream absolute-weight amplification of each hidden neuron:
        # how much a unit of error at that neuron can move the worst
        # output row.  Fixed per network; used to score refinement splits.
        amp = np.ones(chain[-1][0].shape[0])
        amps: list[np.ndarray] = []
        for weight, _ in reversed(chain[1:]):
            amp = np.abs(weight).T @ amp
            amps.append(amp)
        self._amp = list(reversed(amps))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_identity(self) -> bool:
        """True when every group is a singleton (abstract == concrete)."""
        return all(
            len(groups) == feats.shape[0]
            for groups, feats in zip(self.groups, self._features)
        )

    @property
    def hidden_concrete(self) -> int:
        return sum(feats.shape[0] for feats in self._features)

    @property
    def hidden_abstract(self) -> int:
        return sum(len(groups) for groups in self.groups)

    @property
    def merged_ratio(self) -> float:
        """Abstract hidden neurons as a fraction of concrete ones."""
        return self.hidden_abstract / self.hidden_concrete

    def covers(self, region: Box) -> bool:
        """Whether the error bounds are valid over ``region``."""
        return self.domain_box.contains(region)

    def stats(self) -> dict:
        return {
            "mode": self.mode,
            "level": self.level,
            "hidden_concrete": self.hidden_concrete,
            "hidden_abstract": self.hidden_abstract,
            "merged_ratio": self.merged_ratio,
            "splits": self.splits,
        }

    # ------------------------------------------------------------------
    # Builder
    # ------------------------------------------------------------------

    def build(self) -> Network:
        """Materialize the current partition as an abstract network.

        Returns the *original* network object once the partition is all
        singletons — the CEGAR driver detects concrete fallback by
        identity, and the digest (hence the cache keyspace) coincides
        with the concrete one.
        """
        if self.is_identity:
            return self.network
        with span(
            "netabs.abstract", cat="netabs",
            mode=self.mode, level=self.level, splits=self.splits,
        ):
            return self._build()

    def _build(self) -> Network:
        chain = self._chain
        prefix = _PREFIX_DOMAIN.lift(self.domain_box)
        h_lo, h_hi = prefix.bounds()
        layers: list = []
        prev_groups: list[np.ndarray] | None = None
        # Per *concrete* neuron error bound of the previous layer:
        # |h_p(x) - abstract_h_{group(p)}(x)| <= c_prev[p] over the box.
        c_prev: np.ndarray | None = None
        last_c: list[np.ndarray] = []
        out_index = len(chain) - 1
        for ell, (weight, bias) in enumerate(chain):
            if prev_groups is None:
                w_red = weight
                eta = np.zeros(weight.shape[0])
            else:
                # Reduced incoming weights (the representative carries its
                # group's summed columns) and the error inherited from the
                # previous layer's merge: member p strays at most c_prev[p]
                # from its representative, so row j picks up at most
                # sum_p |W[j, p]| * c_prev[p].
                w_red = np.stack(
                    [weight[:, g].sum(axis=1) for g in prev_groups], axis=1
                )
                eta = np.abs(weight) @ c_prev
            if ell == out_index:
                # Output rows are never merged; the accumulated error
                # surfaces as one pad of per-row radii.
                layers.append(Dense(w_red, bias))
                layers.append(ErrorPad(eta * _SAFETY))
                break
            groups = self.groups[ell]
            w_bar = np.stack([w_red[g].mean(axis=0) for g in groups])
            b_bar = np.array([float(bias[g].mean()) for g in groups])
            # Deviation of each member's pre-activation from its group
            # representative, maximized over the interval hull of the
            # abstract prefix (h_lo/h_hi) — exact for an affine form.
            rep_w = np.empty_like(w_red)
            rep_b = np.empty_like(bias)
            for gi, g in enumerate(groups):
                rep_w[g] = w_bar[gi]
                rep_b[g] = b_bar[gi]
            dw = w_red - rep_w
            db = bias - rep_b
            pos = np.maximum(dw, 0.0)
            neg = np.minimum(dw, 0.0)
            up = pos @ h_hi + neg @ h_lo + db
            lo = pos @ h_lo + neg @ h_hi + db
            c = (np.maximum(np.abs(up), np.abs(lo)) + eta) * _SAFETY
            last_c.append(c)
            layers.append(Dense(w_bar, b_bar))
            layers.append(ReLU())
            # Advance the prefix hull through the abstract layer.
            prefix = prefix.affine(w_bar, b_bar).relu()
            h_lo, h_hi = prefix.bounds()
            prev_groups = groups
            c_prev = c
        self._last_c = last_c
        return Network(layers, input_shape=(self.network.input_size,))

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------

    def refine(self) -> bool:
        """Split the group most responsible for the output gap.

        Score = the group's error bound ``d_G`` times the maximum
        downstream absolute-weight amplification of its members — the
        bound-gap attribution of how much of the output pad that group
        can account for.  The winner splits around its farthest feature
        pair.  Returns ``False`` once every group is a singleton.
        """
        if self.is_identity:
            return False
        with span("netabs.refine", cat="netabs", splits=self.splits):
            return self._refine()

    def _refine(self) -> bool:
        if self._last_c is None:
            self.build()
        best: tuple[int, int] | None = None
        best_score = -np.inf
        for ell, groups in enumerate(self.groups):
            c = self._last_c[ell]
            amp = self._amp[ell]
            for gi, g in enumerate(groups):
                if len(g) < 2:
                    continue
                score = float((c[g] * amp[g]).max())
                if score > best_score:
                    best_score = score
                    best = (ell, gi)
        if best is None:
            return False
        ell, gi = best
        group = self.groups[ell][gi]
        feats = self._features[ell][group]
        diff = feats[:, None, :] - feats[None, :, :]
        dist = np.einsum("ijk,ijk->ij", diff, diff)
        a, b = np.unravel_index(int(np.argmax(dist)), dist.shape)
        if a == b:
            # Bitwise-identical features: halve by index.
            half = len(group) // 2
            parts = [group[:half], group[half:]]
        else:
            da = ((feats - feats[a]) ** 2).sum(axis=1)
            db = ((feats - feats[b]) ** 2).sum(axis=1)
            mask = da <= db
            parts = [group[mask], group[~mask]]
        groups = (
            self.groups[ell][:gi]
            + [np.sort(p) for p in parts]
            + self.groups[ell][gi + 1 :]
        )
        groups.sort(key=lambda arr: int(arr[0]))
        self.groups[ell] = groups
        self.splits += 1
        self._last_c = None  # stale until the next build
        return True

    def refine_round(self) -> bool:
        """One CEGAR retry's worth of refinement: a geometric batch of
        single splits (a quarter of the current abstract width, at least
        one), each picked by the same bound-gap attribution as
        :meth:`refine`.  Single splits barely move a coarse partition,
        so retries would crawl; a geometric batch reaches the concrete
        network in logarithmically many rounds while still spending
        every split on the worst-attributed group.  Returns ``False``
        when nothing was left to split.
        """
        steps = max(1, self.hidden_abstract // 4)
        split_any = False
        for _ in range(steps):
            if not self.refine():
                break
            split_any = True
        return split_any


def abstraction_for(
    network: Network,
    mode: str | None,
    level: int,
    regions: list[Box] | None = None,
    seed: int = 0,
) -> NetworkAbstraction | None:
    """A :class:`NetworkAbstraction`, or ``None`` when abstraction is a
    no-op — mode off, level below 1, an architecture the construction
    does not cover (conv/maxpool chains), or a level too fine to merge
    anything.  Callers treat ``None`` as "run the concrete network".
    """
    if mode in (None, "off") or level < 1:
        return None
    if _affine_chain(network) is None:
        return None
    abstraction = NetworkAbstraction(
        network, mode, level, regions=regions, seed=seed
    )
    if abstraction.is_identity:
        return None
    return abstraction


@dataclass(frozen=True)
class CegarResult:
    """Outcome of :func:`cegar_verify` plus its refinement trajectory.

    Attributes:
        outcome: the accepted verification outcome (abstract outcomes are
            only accepted when sound: VERIFIED directly, FALSIFIED after
            concrete float64 witness validation).
        rounds: refinement rounds performed.
        abstracted: whether an abstract network was tried at all.
        fallback: whether the final outcome came from the concrete
            network (refinement exhausted, abstract timeout, or the
            partition refined down to singletons).
    """

    outcome: object
    rounds: int
    abstracted: bool
    fallback: bool


def cegar_verify(
    network: Network,
    prop,
    verify_fn,
    *,
    mode: str | None,
    level: int = DEFAULT_LEVEL,
    delta: float = 0.0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    seed: int = 0,
) -> CegarResult:
    """The single-property CEGAR loop (the ``verify`` command's driver).

    ``verify_fn(network) -> outcome`` runs one verification attempt
    (any engine); ``delta`` is the falsification threshold the concrete
    witness check uses.  Abstract VERIFIED and concretely-validated
    FALSIFIED outcomes are returned as-is; spurious witnesses refine and
    retry; timeouts, exhausted rounds, and all-singleton partitions fall
    back to one concrete run.
    """
    abstraction = abstraction_for(
        network, mode, level, regions=[prop.region], seed=seed
    )
    if abstraction is None:
        return CegarResult(verify_fn(network), 0, False, False)
    rounds = 0
    while True:
        abstract = abstraction.build()
        if abstract is network:
            return CegarResult(verify_fn(network), rounds, True, True)
        outcome = verify_fn(abstract)
        if outcome.kind == "verified":
            return CegarResult(outcome, rounds, True, False)
        if (
            outcome.kind == "falsified"
            and witness_margin(network, prop.label, outcome.counterexample)
            <= delta
        ):
            return CegarResult(outcome, rounds, True, False)
        if (
            outcome.kind == "timeout"
            or rounds >= max_rounds
            or not abstraction.refine_round()
        ):
            return CegarResult(verify_fn(network), rounds, True, True)
        rounds += 1
