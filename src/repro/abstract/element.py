"""The abstract-element interface every domain implements.

An element over-approximates a set of activation vectors at one point in the
network.  Transformers mirror the lowered op sequence (affine / relu /
maxpool); splitting hooks support the bounded powerset domain's ReLU case
splits; and :meth:`lower_margin` exposes the (possibly relational) bound the
analyzer uses for the robustness check.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.boxes import Box


class AbstractElement(ABC):
    """A sound over-approximation of a set of vectors in ``R^size``."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def size(self) -> int:
        """Dimension of the concretization."""

    @abstractmethod
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Component-wise concrete bounds ``(low, high)``."""

    def dim_bounds(self, dim: int) -> tuple[float, float]:
        """Concrete bounds of a single dimension."""
        low, high = self.bounds()
        return float(low[dim]), float(high[dim])

    def to_box(self) -> Box:
        low, high = self.bounds()
        return Box(low, high)

    def contains(self, x: np.ndarray, atol: float = 1e-7) -> bool:
        """Sound (necessary-condition) membership via the bounding box.

        Domains with relational constraints may report ``True`` for points
        outside the exact concretization; tests use this only in the sound
        direction (a concrete execution must never be reported outside).
        """
        low, high = self.bounds()
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        return bool(np.all(x >= low - atol) and np.all(x <= high + atol))

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    @abstractmethod
    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "AbstractElement":
        """Image under ``x -> W x + b``."""

    @abstractmethod
    def relu(self, skip_dims: frozenset[int] = frozenset()) -> "AbstractElement":
        """Image under element-wise ``max(x, 0)``.

        ``skip_dims`` lists dimensions already handled by an earlier
        :meth:`relu_split` on this element: a split branch over-approximates
        the ReLU image on its split dimension, so re-processing it would
        only lose precision.  Domains whose per-dimension ReLU is exact
        (intervals) may ignore the hint.
        """

    @abstractmethod
    def maxpool(self, windows: np.ndarray) -> "AbstractElement":
        """Image under per-window max (``windows``: ``(out, k)`` index sets)."""

    def pad(self, radii: np.ndarray) -> "AbstractElement":
        """Image under ``y_j = x_j + e_j`` with each ``e_j ∈ [-radii_j,
        +radii_j]`` chosen *independently* per dimension.

        This is the transformer of :class:`repro.nn.network.PadOp`, the op
        the network-abstraction layer (:mod:`repro.abstract.netabs`) uses
        to carry merged-neuron error.  Domains not reachable from a padded
        network may keep the default.
        """
        raise TypeError(
            f"{type(self).__name__} does not implement the pad transformer"
        )

    # ------------------------------------------------------------------
    # Case-split hooks (powerset support)
    # ------------------------------------------------------------------

    @abstractmethod
    def crossing_dims(self) -> np.ndarray:
        """Dims whose bounds strictly straddle 0, widest crossing first."""

    @abstractmethod
    def relu_split(self, dim: int) -> tuple["AbstractElement", "AbstractElement"]:
        """The two ReLU branches on ``dim``.

        Returns ``(pos, neg)`` where ``pos`` over-approximates
        ``{relu_dim(x) : x in γ(self), x_dim >= 0}`` (identity on ``dim``)
        and ``neg`` over-approximates the ``x_dim <= 0`` branch (``dim``
        projected to exactly 0).  Their union covers the ReLU image on
        ``dim``; other dimensions are untouched.
        """

    @abstractmethod
    def relu_dim(self, dim: int) -> "AbstractElement":
        """ReLU applied to a single dimension (split-then-join for
        relational domains; exact clamping for intervals)."""

    @abstractmethod
    def join(self, other: "AbstractElement") -> "AbstractElement":
        """A sound upper bound of both elements."""

    # ------------------------------------------------------------------
    # Property checking
    # ------------------------------------------------------------------

    @abstractmethod
    def lower_margin(self, label: int, other: int) -> float:
        """A sound lower bound on ``y_label - y_other`` over γ(self)."""

    def min_margin(self, label: int) -> float:
        """``min_{j != label}`` of :meth:`lower_margin` — the analyzer's
        verification condition is ``min_margin(K) > 0``."""
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        margins = [
            self.lower_margin(label, j) for j in range(self.size) if j != label
        ]
        if not margins:
            raise ValueError("margin undefined for single-output networks")
        return min(margins)
