"""Batched zonotope and powerset-of-zonotope kernels.

The paper's headline domains are zonotopes and bounded powersets of
zonotopes, whose ReLU transformer is a *data-dependent* loop: each
crossing dimension is case-split (noise-symbol contraction), the negative
branch projected, and — in the plain domain — the branches re-joined,
with every step changing which later dimensions still cross.  PR 1
batched the interval and DeepPoly domains but left this path on a
per-region fallback loop, so the reproduction's own headline domain was
the one domain the batched engines could not accelerate.

:class:`ZonotopeBatch` and :class:`PowersetBatch` close that gap with
stacked ``(B, n)`` center / ``(B, k, n)`` generator representations and a
**round-based global dim order** for the ReLU case-split loop:

- Every region (and every disjunct of every region) keeps *its own*
  widest-first crossing-dimension order — the order the sequential
  transformer uses, which must be preserved for exactness because each
  split/join changes the bounds later dimensions see.
- Round ``t`` processes the ``t``-th dimension of every row's private
  order **simultaneously**: rows are independent, so the per-dimension
  contraction, projection, and join become one stacked pass over all
  rows still active in the round, across disjuncts *and* across frontier
  regions.  The Python loop shrinks from
  ``O(regions × disjuncts × dims)`` iterations to ``O(max dims)`` rounds.

**Bitwise contract.**  Row ``i`` of every batched transformer is bitwise
identical to the sequential :class:`~repro.abstract.zonotope.Zonotope` /
:class:`~repro.abstract.powerset.PowersetElement` result for region ``i``
(pinned by ``tests/abstract/test_batched_zonotope.py``).  The kernels are
*batch-height-stable by construction*: no reduction or product lets the
number of batched rows into its operand shapes in a way that changes a
row's float sequence —

- generator rotations run as ``(B·k, n) @ (n, m)`` GEMMs, whose rows are
  reduction-order-stable across row counts (unlike GEMV vs GEMM, which
  OpenBLAS routes through different kernels — which is why the *center*
  products here and in the sequential ``Zonotope.affine`` both go through
  ``einsum``, whose per-element dot loop is height-independent);
- the split/join contraction (now the fused in-place kernel in
  :mod:`repro.abstract.fused`, DESIGN.md §10) computes its branch-center
  products through the same ``einsum`` per-element dot loop, which is
  both height-stable and zero-row-neutral — the property generator
  compaction relies on to drop all-zero rows between rounds without
  changing a single output value;
- every sum (radii, join pads, margin masses) reduces over per-row axes
  whose pairwise-summation order is independent of the batch height, and
  matches the sequential element's cached-vs-fresh radius formulas
  case by case.

This is what lets the multi-property scheduler fuse zonotope sweeps
across jobs without perturbing any job's outcome, witness, or statistics.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.batched import BatchedElement
from repro.abstract.fused import _COEF_TOL, gen_sum
from repro.abstract.fused import stacked_relu as _fused_stacked_relu
from repro.abstract.powerset import PowersetElement
from repro.abstract.zonotope import Zonotope, _coerce_term
from repro.backend import active as _active_backend
from repro.backend import outward_center_radius as _outward_center_radius
from repro.backend import slack_for as _slack_for
from repro.utils.boxes import Box

# ----------------------------------------------------------------------
# Stacked kernels over (T, k, n) generator tensors
# ----------------------------------------------------------------------


def _stacked_radius(gens: np.ndarray, errs: np.ndarray) -> np.ndarray:
    """Per-row radii ``|G|·1 + e``: the batched ``Zonotope.radius``."""
    return np.abs(gens).sum(axis=1) + errs


def _stacked_margins(
    centers: np.ndarray, gens: np.ndarray, errs: np.ndarray, label: int
) -> np.ndarray:
    """Per-row ``min_{j≠label}`` relational margin bounds, shape ``(T,)``.

    Matches ``Zonotope.lower_margin`` bit for bit: each rival class ``j``
    subtracts a contiguous ``(T, k)`` generator difference and reduces it
    with the same pairwise order as the sequential 1-D sum.
    """
    out = centers.shape[1]
    margins = np.full((centers.shape[0], out), np.inf, dtype=centers.dtype)
    for j in range(out):
        if j == label:
            continue
        diff = centers[:, label] - centers[:, j]
        gen_mass = np.abs(gens[:, :, label] - gens[:, :, j]).sum(axis=1)
        margins[:, j] = diff - gen_mass - errs[:, label] - errs[:, j]
    return margins.min(axis=1)


def _stacked_affine(
    centers: np.ndarray,
    gens: np.ndarray,
    errs: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The batched ``Zonotope.affine``: fused rotation + error promotion.

    Centers go through ``einsum`` (height-stable, see module docstring);
    generator rows of all batched elements share one reshaped GEMM.
    """
    bk = _active_backend()
    rows, num_gens, n = gens.shape
    out = weight.shape[0]
    new_centers = bk.einsum("ij,bj->bi", weight, centers) + bias
    rotated = bk.matmul(gens.reshape(rows * num_gens, n), weight.T).reshape(
        rows, num_gens, out
    )
    promoted = errs[:, :, None] * weight.T[None, :, :]
    new_gens = np.concatenate([rotated, promoted], axis=1)
    scale = _slack_for(new_centers.dtype, weight.shape[1])
    if not scale:
        return new_centers, new_gens, np.zeros((rows, out), dtype=new_centers.dtype)
    # Outward rounding (float32 path): absorb the rotation/einsum
    # round-off into the error radii, mirroring ``Zonotope.affine``.
    mag = np.abs(centers) + _stacked_radius(gens, errs)
    new_errs = scale * (bk.matmul(mag, np.abs(weight).T) + np.abs(bias))
    return new_centers, new_gens, new_errs.astype(new_centers.dtype, copy=False)


def _stacked_maxpool(
    centers: np.ndarray,
    gens: np.ndarray,
    errs: np.ndarray,
    windows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The batched ``Zonotope.maxpool`` (gathers and elementwise only)."""
    rows = centers.shape[0]
    radius = _stacked_radius(gens, errs)
    low = centers - radius
    high = centers + radius
    out = windows.shape[0]
    lows = low[:, windows]  # (rows, out, win)
    highs = high[:, windows]
    winners = lows.argmax(axis=2)
    winner_src = windows[np.arange(out)[None, :], winners]  # (rows, out)
    rivals = highs.copy()
    rivals[
        np.arange(rows)[:, None], np.arange(out)[None, :], winners
    ] = -np.inf
    best_low = np.take_along_axis(lows, winners[:, :, None], axis=2)[:, :, 0]
    dominant = best_low >= rivals.max(axis=2)
    hull_lo = lows.max(axis=2)
    hull_hi = highs.max(axis=2)
    new_centers = np.where(
        dominant,
        np.take_along_axis(centers, winner_src, axis=1),
        (hull_lo + hull_hi) / 2.0,
    )
    new_gens = np.where(
        dominant[:, None, :],
        np.take_along_axis(gens, winner_src[:, None, :], axis=2),
        0.0,
    )
    new_errs = np.where(
        dominant,
        np.take_along_axis(errs, winner_src, axis=1),
        (hull_hi - hull_lo) / 2.0,
    )
    return new_centers, new_gens, new_errs


def _stacked_relu_split(
    centers: np.ndarray,
    gens: np.ndarray,
    errs: np.ndarray,
    rows: np.ndarray,
    dims: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """``Zonotope.relu_split`` on many (row, dim) pairs in one pass.

    Returns ``(pos_c, pos_g, pos_e, neg_c, neg_g, neg_e)`` stacked over
    the pairs; the negative branch arrives already projected.  Every
    arithmetic step mirrors the sequential transformer: the shared
    ``(R, 2, k) @ (R, k, n)`` center product runs the same-shape
    ``(2, k) @ (k, n)`` GEMM per slice.
    """
    count = rows.size
    sub_gens = gens[rows]  # (R, k, n) gather, reused by both branches
    coeffs = gens[rows, :, dims]  # (R, k) contiguous gather
    abs_coeffs = np.abs(coeffs)
    # gen_sum, not a pairwise axis-1 sum: contraction totals must be
    # invariant to zero generator rows (compaction) and identical to the
    # sequential ``Zonotope.relu_split`` at every height.
    total = gen_sum(abs_coeffs) + errs[rows, dims]
    touched = abs_coeffs > _COEF_TOL
    rest = total[:, None] - abs_coeffs
    c = centers[rows, dims][:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        pos_bound = (-c - rest) / coeffs
        neg_bound = (-c + rest) / coeffs
    pos_lower = touched & (coeffs > 0)
    pos_upper = touched & ~pos_lower
    num_gens = gens.shape[1]
    lo_sym = np.full((count, 2, num_gens), -1.0, dtype=gens.dtype)
    hi_sym = np.ones((count, 2, num_gens), dtype=gens.dtype)
    lo_sym[:, 0] = np.where(pos_lower, np.maximum(lo_sym[:, 0], pos_bound), lo_sym[:, 0])
    hi_sym[:, 0] = np.where(pos_upper, np.minimum(hi_sym[:, 0], pos_bound), hi_sym[:, 0])
    lo_sym[:, 1] = np.where(pos_upper, np.maximum(lo_sym[:, 1], neg_bound), lo_sym[:, 1])
    hi_sym[:, 1] = np.where(pos_lower, np.minimum(hi_sym[:, 1], neg_bound), hi_sym[:, 1])
    lo_sym = np.minimum(lo_sym, hi_sym)  # guard against numeric inversion
    mid = (lo_sym + hi_sym) / 2.0
    half = (hi_sym - lo_sym) / 2.0
    # einsum, not the (R, 2, k) @ (R, k, n) stacked matmul: BLAS GEMM
    # reduction order is not zero-row-invariant, while einsum's
    # accumulation loop over k is sequential and height-stable.
    branch_centers = centers[rows][:, None, :] + np.einsum(
        "rjk,rkn->rjn", mid, sub_gens
    )  # (R, 2, n)
    pos_c = branch_centers[:, 0]
    neg_c = branch_centers[:, 1].copy()
    pos_g = sub_gens * half[:, 0][:, :, None]
    neg_g = sub_gens * half[:, 1][:, :, None]
    scale = _slack_for(gens.dtype, num_gens + 4)
    if scale:
        # Outward rounding (float32 path), mirroring ``Zonotope.relu_split``.
        widen = scale * (
            np.abs(centers[rows])
            + np.abs(sub_gens).sum(axis=1)
            + errs[rows]
        )
        pos_e = errs[rows] + widen
        neg_e = pos_e.copy()
    else:
        pos_e = errs[rows].copy()
        neg_e = errs[rows].copy()
    span = np.arange(count)
    neg_c[span, dims] = 0.0
    neg_g[span, :, dims] = 0.0
    neg_e[span, dims] = 0.0
    return pos_c, pos_g, pos_e, neg_c, neg_g, neg_e


def _stacked_join(
    c1: np.ndarray, g1: np.ndarray, e1: np.ndarray,
    c2: np.ndarray, g2: np.ndarray, e2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``Zonotope.join`` row by row over stacked branch pairs.

    The join is memory-bound (a dozen elementwise passes over
    ``(R, k, n)`` tensors), so the absolute-value and sign arrays the
    sequential transformer recomputes per use are materialized exactly
    once here — same values, fewer passes.
    """
    abs_g1 = np.abs(g1)
    abs_g2 = np.abs(g2)
    sign_g1 = np.sign(g1)
    rad1 = abs_g1.sum(axis=1) + e1
    rad2 = abs_g2.sum(axis=1) + e2
    lo = np.minimum(c1 - rad1, c2 - rad2)
    hi = np.maximum(c1 + rad1, c2 + rad2)
    center = (lo + hi) / 2.0
    same_sign = (sign_g1 == np.sign(g2)) & (abs_g1 > _COEF_TOL)
    gens = np.where(same_sign, sign_g1 * np.minimum(abs_g1, abs_g2), 0.0)
    pad1 = np.abs(c1 - center) + np.abs(g1 - gens).sum(axis=1) + e1
    pad2 = np.abs(c2 - center) + np.abs(g2 - gens).sum(axis=1) + e2
    err = np.maximum(pad1, pad2)
    scale = _slack_for(center.dtype, g1.shape[1] + 4)
    if scale:
        # Outward rounding (float32 path), mirroring ``Zonotope.join``.
        err += scale * (np.abs(center) + np.abs(gens).sum(axis=1) + err)
    return center, gens, err


def _stacked_pad_errs(errs: np.ndarray, radii: np.ndarray) -> np.ndarray:
    """The batched ``Zonotope.pad`` error update: ``e + radii`` per row,
    with the float32 path's outward widening of the addition round-off."""
    out = errs + radii
    scale = _slack_for(out.dtype, 2)
    if scale:
        out = out + scale * out
    return out


def _crossing_order(low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """One row's crossing dims, widest first (``Zonotope.crossing_dims``)."""
    crossing = np.flatnonzero((low < 0.0) & (high > 0.0))
    widths = high[crossing] - low[crossing]
    return crossing[np.argsort(-widths, kind="stable")]


def _stacked_relu(
    centers: np.ndarray,
    gens: np.ndarray,
    errs: np.ndarray,
    skips: list[frozenset],
    radius: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``Zonotope.relu(skip_dims)`` for every row, batched.

    Delegates to :func:`repro.abstract.fused.stacked_relu` — the fused
    split+project+join contraction over scratch-arena buffers, with
    generator compaction inside the round loop.  The unfused composition
    ``_stacked_join(*_stacked_relu_split(...))`` remains available here
    as the reference path (the fused kernel is pinned bitwise against it
    in ``benchmarks/bench_zonotope_batch.py``).
    """
    return _fused_stacked_relu(centers, gens, errs, skips, radius=radius)


# ----------------------------------------------------------------------
# ZonotopeBatch
# ----------------------------------------------------------------------


class ZonotopeBatch(BatchedElement):
    """Zonotopes for ``B`` regions at once: ``(B, n)`` centers,
    ``(B, k, n)`` generators, ``(B, n)`` error radii.

    Row ``i`` is bitwise identical to the :class:`Zonotope` the sequential
    analyzer computes for region ``i`` alone (see the module docstring's
    batch-height-stability argument).
    """

    def __init__(
        self, centers: np.ndarray, gens: np.ndarray, errs: np.ndarray
    ) -> None:
        centers = _coerce_term(centers)
        gens = _coerce_term(gens, dtype=centers.dtype)
        errs = _coerce_term(errs, dtype=centers.dtype)
        if centers.ndim != 2 or errs.shape != centers.shape:
            raise ValueError(
                f"batch centers/errors must be matching (B, n) arrays, got "
                f"{centers.shape} vs {errs.shape}"
            )
        if gens.ndim != 3 or gens.shape[::2] != centers.shape:
            raise ValueError(
                f"generator tensor shape {gens.shape} incompatible with "
                f"centers of shape {centers.shape}"
            )
        if np.any(errs < 0):
            raise ValueError("error radii must be non-negative")
        self.centers = centers
        self.gens = gens
        self.errs = errs

    @staticmethod
    def from_boxes(boxes: list[Box]) -> "ZonotopeBatch":
        if not boxes:
            raise ValueError("need at least one box")
        n = boxes[0].ndim
        dtype = _active_backend().dtype
        centers, radii = _outward_center_radius(
            np.stack([b.center for b in boxes]),
            np.stack([b.radius for b in boxes]),
            dtype,
        )
        return ZonotopeBatch(centers, np.zeros((len(boxes), 0, n), dtype=dtype), radii)

    @property
    def batch_size(self) -> int:
        return self.centers.shape[0]

    @property
    def size(self) -> int:
        return self.centers.shape[1]

    @property
    def num_gens(self) -> int:
        return self.gens.shape[1]

    def row(self, i: int) -> Zonotope:
        return Zonotope._make(
            self.centers[i].copy(), self.gens[i].copy(), self.errs[i].copy()
        )

    def rows(self, indices) -> "ZonotopeBatch":
        indices = np.asarray(indices, dtype=np.int64)
        return ZonotopeBatch(
            self.centers[indices], self.gens[indices], self.errs[indices]
        )

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        radius = _stacked_radius(self.gens, self.errs)
        return self.centers - radius, self.centers + radius

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "ZonotopeBatch":
        return ZonotopeBatch(
            *_stacked_affine(self.centers, self.gens, self.errs, weight, bias)
        )

    def relu(self) -> "ZonotopeBatch":
        skips = [frozenset()] * self.batch_size
        return ZonotopeBatch(
            *_stacked_relu(self.centers, self.gens, self.errs, skips)
        )

    def maxpool(self, windows: np.ndarray) -> "ZonotopeBatch":
        return ZonotopeBatch(
            *_stacked_maxpool(self.centers, self.gens, self.errs, windows)
        )

    def pad(self, radii: np.ndarray) -> "ZonotopeBatch":
        return ZonotopeBatch(
            self.centers, self.gens, _stacked_pad_errs(self.errs, radii)
        )

    def min_margin(self, label: int) -> np.ndarray:
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        return _stacked_margins(self.centers, self.gens, self.errs, label)

    def __repr__(self) -> str:
        return (
            f"ZonotopeBatch(batch={self.batch_size}, size={self.size}, "
            f"gens={self.num_gens})"
        )


# ----------------------------------------------------------------------
# PowersetBatch
# ----------------------------------------------------------------------


class PowersetBatch(BatchedElement):
    """Bounded powersets of zonotopes for ``B`` regions at once.

    All disjuncts of all regions live in one ``(T, k, n)`` stack (the
    affine transformer's unconditional error promotion guarantees one
    shared generator shape, exactly as in :class:`PowersetElement`), with
    ``offsets`` marking each region's contiguous row span.  The ReLU
    case-split loop runs the same round-based global dim order as
    :func:`_stacked_relu`, with each *region* additionally applying its
    own sequential disjunct-budget bookkeeping — splits change row
    counts, so the stack is rebuilt per round from gather indices.
    """

    def __init__(
        self,
        centers: np.ndarray,
        gens: np.ndarray,
        errs: np.ndarray,
        offsets: np.ndarray,
        max_disjuncts: int,
    ) -> None:
        if max_disjuncts < 1:
            raise ValueError(f"max_disjuncts must be >= 1, got {max_disjuncts}")
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 2 or offsets[0] != 0:
            raise ValueError("offsets must be a (B+1,) prefix array from 0")
        if offsets[-1] != centers.shape[0]:
            raise ValueError(
                f"offsets cover {offsets[-1]} rows, arrays hold "
                f"{centers.shape[0]}"
            )
        counts = np.diff(offsets)
        if (counts < 1).any() or (counts > max_disjuncts).any():
            raise ValueError(
                f"per-region disjunct counts {counts} violate the budget "
                f"of {max_disjuncts}"
            )
        self.centers = _coerce_term(centers)
        self.gens = _coerce_term(gens, dtype=self.centers.dtype)
        self.errs = _coerce_term(errs, dtype=self.centers.dtype)
        self.offsets = offsets
        self.max_disjuncts = max_disjuncts

    @staticmethod
    def from_boxes(boxes: list[Box], max_disjuncts: int) -> "PowersetBatch":
        if not boxes:
            raise ValueError("need at least one box")
        n = boxes[0].ndim
        dtype = _active_backend().dtype
        centers, radii = _outward_center_radius(
            np.stack([b.center for b in boxes]),
            np.stack([b.radius for b in boxes]),
            dtype,
        )
        return PowersetBatch(
            centers,
            np.zeros((len(boxes), 0, n), dtype=dtype),
            radii,
            np.arange(len(boxes) + 1),
            max_disjuncts,
        )

    @property
    def batch_size(self) -> int:
        return self.offsets.size - 1

    @property
    def size(self) -> int:
        return self.centers.shape[1]

    @property
    def total_disjuncts(self) -> int:
        return self.centers.shape[0]

    def _region_rows(self, b: int) -> range:
        return range(int(self.offsets[b]), int(self.offsets[b + 1]))

    def row(self, i: int) -> PowersetElement:
        elements = [
            Zonotope._make(
                self.centers[r].copy(), self.gens[r].copy(), self.errs[r].copy()
            )
            for r in self._region_rows(i)
        ]
        return PowersetElement(elements, self.max_disjuncts)

    def rows(self, indices) -> "PowersetBatch":
        indices = np.asarray(indices, dtype=np.int64)
        gathered = np.concatenate(
            [np.arange(*self.offsets[i : i + 2]) for i in indices]
        )
        counts = (self.offsets[indices + 1] - self.offsets[indices])
        offsets = np.concatenate([[0], np.cumsum(counts)])
        return PowersetBatch(
            self.centers[gathered],
            self.gens[gathered],
            self.errs[gathered],
            offsets,
            self.max_disjuncts,
        )

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-region union bounds, shape ``(B, n)`` each."""
        radius = _stacked_radius(self.gens, self.errs)
        low = np.minimum.reduceat(self.centers - radius, self.offsets[:-1])
        high = np.maximum.reduceat(self.centers + radius, self.offsets[:-1])
        return low, high

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "PowersetBatch":
        return PowersetBatch(
            *_stacked_affine(self.centers, self.gens, self.errs, weight, bias),
            self.offsets,
            self.max_disjuncts,
        )

    def maxpool(self, windows: np.ndarray) -> "PowersetBatch":
        return PowersetBatch(
            *_stacked_maxpool(self.centers, self.gens, self.errs, windows),
            self.offsets,
            self.max_disjuncts,
        )

    def pad(self, radii: np.ndarray) -> "PowersetBatch":
        return PowersetBatch(
            self.centers,
            self.gens,
            _stacked_pad_errs(self.errs, radii),
            self.offsets,
            self.max_disjuncts,
        )

    def min_margin(self, label: int) -> np.ndarray:
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        per_disjunct = _stacked_margins(
            self.centers, self.gens, self.errs, label
        )
        return np.minimum.reduceat(per_disjunct, self.offsets[:-1])

    def __repr__(self) -> str:
        return (
            f"PowersetBatch(batch={self.batch_size}, size={self.size}, "
            f"disjuncts={self.total_disjuncts}/{self.max_disjuncts} max)"
        )

    # ------------------------------------------------------------------
    # ReLU: budgeted case splits, then the batched final pass
    # ------------------------------------------------------------------

    def _ranked_dims(self, low: np.ndarray, high: np.ndarray) -> list[np.ndarray]:
        """Per-region union of crossing dims ordered by max width — the
        sequential ``PowersetElement._ranked_crossing_dims``, including its
        tie-breaking (dict insertion order under a stable sort)."""
        ranked = []
        for b in range(self.batch_size):
            width_by_dim: dict[int, float] = {}
            for r in self._region_rows(b):
                for dim in np.flatnonzero((low[r] < 0.0) & (high[r] > 0.0)):
                    width = float(high[r][dim] - low[r][dim])
                    dim = int(dim)
                    if width > width_by_dim.get(dim, 0.0):
                        width_by_dim[dim] = width
            ranked.append(
                np.asarray(
                    sorted(width_by_dim, key=lambda d: -width_by_dim[d]),
                    dtype=np.int64,
                )
            )
        return ranked

    def relu(self) -> "PowersetBatch":
        centers, gens, errs = self.centers, self.gens, self.errs
        radius = _stacked_radius(gens, errs)
        low = centers - radius
        high = centers + radius
        ranked = self._ranked_dims(low, high)
        budget = self.max_disjuncts

        # Per-region disjunct state: (row index, done dims, radius fresh).
        state: list[list[tuple[int, frozenset, bool]]] = [
            [(r, frozenset(), True) for r in self._region_rows(b)]
            for b in range(self.batch_size)
        ]

        for position in range(max((len(d) for d in ranked), default=0)):
            active = [
                b
                for b in range(self.batch_size)
                if position < len(ranked[b]) and len(state[b]) < budget
            ]
            if not active:
                continue
            # Batched dim bounds for every disjunct of every active region
            # (the sequential loop evaluates them before its budget check).
            pairs = [
                (b, i, row, int(ranked[b][position]), is_fresh)
                for b in active
                for i, (row, _, is_fresh) in enumerate(state[b])
            ]
            p_rows = np.array([p[2] for p in pairs])
            p_dims = np.array([p[3] for p in pairs])
            p_fresh = np.array([p[4] for p in pairs])
            rad = np.empty(len(pairs), dtype=centers.dtype)
            if p_fresh.any():
                rad[p_fresh] = radius[p_rows[p_fresh], p_dims[p_fresh]]
            stale = ~p_fresh
            if stale.any():
                cols = gens[p_rows[stale], :, p_dims[stale]]
                rad[stale] = (
                    np.abs(cols).sum(axis=1) + errs[p_rows[stale], p_dims[stale]]
                )
            c = centers[p_rows, p_dims]
            lows = c - rad
            highs = c + rad

            # Sequential budget bookkeeping per region; collect the splits.
            split_rows: list[int] = []
            split_dims: list[int] = []
            # Per region: the new disjunct list as ("old", state entry) or
            # ("pos"/"neg", split index, done set).
            plans: dict[int, list[tuple]] = {}
            cursor = 0
            for b in active:
                dim = int(ranked[b][position])
                current = state[b]
                plan: list[tuple] = []
                produced = 0  # entries already committed to the new list
                for i, (row, done, is_fresh) in enumerate(current):
                    lo = lows[cursor]
                    hi = highs[cursor]
                    cursor += 1
                    would_total = produced + (len(current) - i) + 1
                    if (
                        lo < 0.0 < hi
                        and dim not in done
                        and would_total <= budget
                    ):
                        split_index = len(split_rows)
                        split_rows.append(row)
                        split_dims.append(dim)
                        new_done = done | {dim}
                        plan.append(("pos", split_index, new_done))
                        plan.append(("neg", split_index, new_done))
                        produced += 2
                    else:
                        plan.append(("old", (row, done, is_fresh)))
                        produced += 1
                plans[b] = plan

            if not split_rows:
                continue
            pos_c, pos_g, pos_e, neg_c, neg_g, neg_e = _stacked_relu_split(
                centers, gens, errs, np.array(split_rows), np.array(split_dims)
            )
            # Rebuild the stack: regions keep their contiguous spans, rows
            # are gathered from (old stack | pos branches | neg branches).
            old_rows: list[int] = []
            sources: list[tuple[str, int]] = []  # per new row
            new_state: list[list[tuple[int, frozenset, bool]]] = []
            for b in range(self.batch_size):
                entries = plans.get(
                    b, [("old", s) for s in state[b]]
                )
                rebuilt = []
                for entry in entries:
                    new_row = len(sources)
                    if entry[0] == "old":
                        row, done, is_fresh = entry[1]
                        sources.append(("old", len(old_rows)))
                        old_rows.append(row)
                        rebuilt.append((new_row, done, is_fresh))
                    else:
                        kind, split_index, done = entry
                        sources.append((kind, split_index))
                        rebuilt.append((new_row, done, False))
                new_state.append(rebuilt)

            total = len(sources)
            n = centers.shape[1]
            k = gens.shape[1]
            dtype = centers.dtype
            new_centers = np.empty((total, n), dtype=dtype)
            new_gens = np.empty((total, k, n), dtype=dtype)
            new_errs = np.empty((total, n), dtype=dtype)
            new_radius = np.zeros((total, n), dtype=dtype)
            by_kind: dict[str, tuple[list[int], list[int]]] = {}
            for new_row, (kind, index) in enumerate(sources):
                dst, src = by_kind.setdefault(kind, ([], []))
                dst.append(new_row)
                src.append(index)
            kind_arrays = {
                "old": (centers, gens, errs),
                "pos": (pos_c, pos_g, pos_e),
                "neg": (neg_c, neg_g, neg_e),
            }
            for kind, (dst, src) in by_kind.items():
                src_c, src_g, src_e = kind_arrays[kind]
                if kind == "old":
                    src = [old_rows[i] for i in src]
                new_centers[dst] = src_c[src]
                new_gens[dst] = src_g[src]
                new_errs[dst] = src_e[src]
                if kind == "old":
                    new_radius[dst] = radius[src]
            centers, gens, errs, radius = (
                new_centers, new_gens, new_errs, new_radius,
            )
            state = new_state

        return self._final_relu(centers, gens, errs, state)

    def _final_relu(
        self,
        centers: np.ndarray,
        gens: np.ndarray,
        errs: np.ndarray,
        state: list[list[tuple[int, frozenset, bool]]],
    ) -> "PowersetBatch":
        """The residual base-domain ReLU pass, batched across *all*
        disjuncts of *all* regions.

        Mirrors ``PowersetElement._final_relu``: disjuncts whose
        un-skipped dims no longer cross reduce to the elementwise
        dead-dimension clamp; disjuncts with residual crossings go through
        :func:`_stacked_relu` — the formerly-serial split+join loop —
        together, in one round-based stacked pass.
        """
        total = centers.shape[0]
        flat_done: list[frozenset] = [frozenset()] * total
        for region in state:
            for row, done, _ in region:
                flat_done[row] = done
        radius = _stacked_radius(gens, errs)
        low = centers - radius
        high = centers + radius
        crossing = (low < 0.0) & (high > 0.0)
        for row, done in enumerate(flat_done):
            if done:
                crossing[row, list(done)] = False
        residual = crossing.any(axis=1)

        out_c = centers.copy()
        out_g = gens.copy()
        out_e = errs.copy()
        clamp = ~residual
        if clamp.any():
            dead = high[clamp] <= 0.0
            clamp_rows = np.flatnonzero(clamp)
            for local, row in enumerate(clamp_rows):
                if flat_done[row]:
                    dead[local, list(flat_done[row])] = False
            out_c[clamp_rows] = np.where(dead, 0.0, centers[clamp_rows])
            out_g[clamp_rows] = np.where(
                dead[:, None, :], 0.0, gens[clamp_rows]
            )
            out_e[clamp_rows] = np.where(dead, 0.0, errs[clamp_rows])
        if residual.any():
            res_rows = np.flatnonzero(residual)
            res_c, res_g, res_e = _stacked_relu(
                centers[res_rows],
                gens[res_rows],
                errs[res_rows],
                [flat_done[r] for r in res_rows],
                radius=radius[res_rows],
            )
            out_c[res_rows] = res_c
            out_g[res_rows] = res_g
            out_e[res_rows] = res_e

        counts = [len(region) for region in state]
        offsets = np.concatenate([[0], np.cumsum(counts)])
        return PowersetBatch(out_c, out_g, out_e, offsets, self.max_disjuncts)


def zonotope_margins_call(
    network,
    regions: list[Box],
    labels,
    disjuncts: int = 1,
    deadline=None,
) -> np.ndarray:
    """Module-level zonotope/powerset margin kernel (process-pool entry).

    Lifts the regions into :class:`ZonotopeBatch` (``disjuncts == 1``) or
    :class:`PowersetBatch`, propagates through the network, and returns
    the per-row margin lower bounds under each row's label.  Exactly the
    arithmetic of ``analyze_batch_multi`` with a zonotope-based domain —
    the lift, :func:`~repro.abstract.analyzer.propagate`, and
    :func:`~repro.abstract.analyzer.batch_margins` calls are the same
    functions — minus the per-row output views, which a process worker
    must not materialize (pickling a powerset's ``(T, k, n)`` output
    stack back to the parent would dwarf the kernel itself).  This is the
    hottest path the process pool exists for: the split+join contraction
    is Python-loop-heavy and serializes under threads.
    """
    from repro.abstract.analyzer import batch_margins, propagate

    if not regions:
        raise ValueError("zonotope_margins_call needs at least one region")
    if len(labels) != len(regions):
        raise ValueError(
            f"got {len(labels)} labels for {len(regions)} regions"
        )
    if disjuncts == 1:
        element = ZonotopeBatch.from_boxes(list(regions))
    else:
        element = PowersetBatch.from_boxes(list(regions), disjuncts)
    ops = network.ops_for(_active_backend().dtype)
    element = propagate(ops, element, deadline)
    return np.asarray(batch_margins(element, labels), dtype=np.float64)
