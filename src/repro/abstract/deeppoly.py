"""A DeepPoly-style back-substitution domain (§9: "a broader set of
abstract domains").

Each processed op stores *linear bounds of its output with respect to its
immediate input*:

    Al·v_prev + bl  <=  v  <=  Au·v_prev + bu.

Affine ops are exact (Al = Au = W).  Crossing ReLUs use the DeepPoly
relaxation: the chord as upper bound and the adaptive 0-or-identity lower
bound (identity when the positive side dominates).  Max pooling keeps the
window's best lower unit as the lower bound and degrades the upper bound to
a constant unless one unit dominates.

Concrete bounds of *any* linear expression over the current output are
computed by **back-substitution**: the expression is rewritten layer by
layer toward the input, choosing the lower or upper relation per
coefficient sign, and finally evaluated over the input box.  Composing the
relaxations symbolically — rather than concretizing at every layer like
plain symbolic intervals — is what makes DeepPoly-style analyses tight on
deep networks, and it directly yields relational margin bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import AffineOp, MaxPoolOp, Network, ReluOp
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


@dataclass(frozen=True)
class _LayerBounds:
    """Linear bounds of one op's output w.r.t. its input vector."""

    al: np.ndarray
    bl: np.ndarray
    au: np.ndarray
    bu: np.ndarray


def _split_signs(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return np.maximum(a, 0.0), np.minimum(a, 0.0)


class DeepPolyState:
    """Analysis state after a prefix of the op sequence.

    Immutable in spirit: every transformer returns a new state sharing the
    already-processed layer list.
    """

    def __init__(self, box: Box, layers: list[_LayerBounds] | None = None) -> None:
        self.box = box
        self.layers: list[_LayerBounds] = list(layers) if layers else []

    @staticmethod
    def identity(box: Box) -> "DeepPolyState":
        return DeepPolyState(box)

    @property
    def size(self) -> int:
        if self.layers:
            return self.layers[-1].bl.size
        return self.box.ndim

    # ------------------------------------------------------------------
    # Back-substitution
    # ------------------------------------------------------------------

    def _bound_expr(self, a: np.ndarray, b: np.ndarray, lower: bool) -> np.ndarray:
        """Concrete lower (or upper) bounds of ``a·v + b`` over the region,
        where ``v`` is the current output vector.  ``a``: ``(rows, size)``."""
        a = np.atleast_2d(a)
        b = np.atleast_1d(b).astype(np.float64)
        for layer in reversed(self.layers):
            pos, neg = _split_signs(a)
            if lower:
                b = pos @ layer.bl + neg @ layer.bu + b
                a = pos @ layer.al + neg @ layer.au
            else:
                b = pos @ layer.bu + neg @ layer.bl + b
                a = pos @ layer.au + neg @ layer.al
        pos, neg = _split_signs(a)
        if lower:
            return pos @ self.box.low + neg @ self.box.high + b
        return pos @ self.box.high + neg @ self.box.low + b

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Concrete per-unit bounds of the current output vector."""
        eye = np.eye(self.size)
        zero = np.zeros(self.size)
        return (
            self._bound_expr(eye, zero, lower=True),
            self._bound_expr(eye, zero, lower=False),
        )

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def _extended(self, layer: _LayerBounds) -> "DeepPolyState":
        return DeepPolyState(self.box, self.layers + [layer])

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "DeepPolyState":
        return self._extended(_LayerBounds(weight, bias, weight, bias))

    def relu(self) -> "DeepPolyState":
        low, high = self.bounds()
        n = self.size
        al = np.zeros((n, n))
        bl = np.zeros(n)
        au = np.zeros((n, n))
        bu = np.zeros(n)
        for i in range(n):
            l, u = low[i], high[i]
            if l >= 0.0:
                al[i, i] = 1.0
                au[i, i] = 1.0
            elif u <= 0.0:
                pass  # both bounds stay 0
            else:
                # Chord upper bound: u(z - l)/(u - l).
                slope = u / (u - l)
                au[i, i] = slope
                bu[i] = -slope * l
                # DeepPoly's adaptive lower bound: identity when the
                # positive side dominates (minimizes relaxation area).
                if u > -l:
                    al[i, i] = 1.0
        return self._extended(_LayerBounds(al, bl, au, bu))

    def maxpool(self, windows: np.ndarray) -> "DeepPolyState":
        low, high = self.bounds()
        out = windows.shape[0]
        n = self.size
        al = np.zeros((out, n))
        bl = np.zeros(out)
        au = np.zeros((out, n))
        bu = np.zeros(out)
        for o, window in enumerate(windows):
            lows = low[window]
            highs = high[window]
            winner = int(np.argmax(lows))
            # Lower bound: the max is at least the best single unit.
            al[o, window[winner]] = 1.0
            others = np.delete(np.arange(window.size), winner)
            if others.size == 0 or lows[winner] >= highs[others].max():
                au[o, window[winner]] = 1.0  # dominant unit: exact
            else:
                bu[o] = highs.max()  # constant fallback
        return self._extended(_LayerBounds(al, bl, au, bu))

    # ------------------------------------------------------------------
    # Margin checks
    # ------------------------------------------------------------------

    def lower_margin(self, label: int, other: int) -> float:
        """Relational bound on ``y_label - y_other`` via back-substitution."""
        a = np.zeros((1, self.size))
        a[0, label] = 1.0
        a[0, other] = -1.0
        return float(self._bound_expr(a, np.zeros(1), lower=True)[0])

    def min_margin(self, label: int) -> float:
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        return min(
            self.lower_margin(label, j) for j in range(self.size) if j != label
        )


def deeppoly_analyze(
    network: Network,
    region: Box,
    label: int,
    deadline: Deadline | None = None,
) -> tuple[bool, float]:
    """Verify ``(region, label)`` with the DeepPoly-style domain.

    Returns ``(verified, margin_lower_bound)``.  Supports affine, ReLU, and
    max-pooling ops (i.e. all architectures in the benchmark suite).
    """
    state = DeepPolyState.identity(region)
    for op in network.ops():
        if deadline is not None:
            deadline.check()
        if isinstance(op, AffineOp):
            state = state.affine(op.weight, op.bias)
        elif isinstance(op, ReluOp):
            state = state.relu()
        elif isinstance(op, MaxPoolOp):
            state = state.maxpool(op.windows)
        else:
            raise TypeError(f"unknown op type {type(op).__name__}")
    margin = state.min_margin(label)
    return margin > 0.0, margin
