"""A DeepPoly-style back-substitution domain (§9: "a broader set of
abstract domains").

Each processed op stores *linear bounds of its output with respect to its
immediate input*:

    Al·v_prev + bl  <=  v  <=  Au·v_prev + bu.

Affine ops are exact (Al = Au = W).  Crossing ReLUs use the DeepPoly
relaxation: the chord as upper bound and the adaptive 0-or-identity lower
bound (identity when the positive side dominates).  ReLU relations are
diagonal, so they are stored as coefficient *vectors* and applied
element-wise during back-substitution — never materialized as ``(n, n)``
matrices.  Max pooling keeps the window's best lower unit as the lower
bound and degrades the upper bound to a constant unless one unit dominates.

Concrete bounds of *any* linear expression over the current output are
computed by **back-substitution**: the expression is rewritten layer by
layer toward the input, choosing the lower or upper relation per
coefficient sign, and finally evaluated over the input box.  Composing the
relaxations symbolically — rather than concretizing at every layer like
plain symbolic intervals — is what makes DeepPoly-style analyses tight on
deep networks, and it directly yields relational margin bounds.

:class:`DeepPolyBatch` runs the same analysis for ``B`` regions at once:
affine relations are shared across the batch (one weight matrix), ReLU
relaxation vectors get a leading batch axis, and back-substitution becomes
a stack of GEMMs — the §6 "independent sub-region analyses" opportunity
realized as batching.  Per-region dense relations (maxpool) pre-stack
their sign-split operands at construction so every rewrite through them
runs as one fused ``(B, rows, 2n)`` GEMM (:class:`_DenseBounds`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstract.batched import BatchedElement
from repro.backend import active as _active_backend
from repro.backend import outward_cast as _outward_cast
from repro.backend import slack_for as _slack_for
from repro.nn.network import AffineOp, MaxPoolOp, Network, PadOp, ReluOp
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


@dataclass(frozen=True)
class _LayerBounds:
    """Dense linear bounds of one op's output w.r.t. its input vector."""

    al: np.ndarray
    bl: np.ndarray
    au: np.ndarray
    bu: np.ndarray


@dataclass(frozen=True)
class _DenseBounds(_LayerBounds):
    """A per-region dense relation with its sign-split operands
    pre-stacked for the fused batched rewrite.

    ``lower_rel = [al ; au]`` and ``upper_rel = [au ; al]`` along the
    relation axis (biases likewise), built **once** when the layer is
    created: every back-substitution rewrite through the layer then runs
    as a single ``(B, rows, 2n)`` batched GEMM against the stacked
    relation instead of two half-width GEMMs plus an add (the ROADMAP's
    sign-split fusion — the two GEMMs' flops are identical, so the win
    is the saved add pass and kernel launches, which is why the stacking
    must be amortized here rather than paid per rewrite).
    """

    lower_rel: np.ndarray = None
    lower_bias: np.ndarray = None
    upper_rel: np.ndarray = None
    upper_bias: np.ndarray = None

    @staticmethod
    def build(
        al: np.ndarray, bl: np.ndarray, au: np.ndarray, bu: np.ndarray
    ) -> "_DenseBounds":
        return _DenseBounds(
            al, bl, au, bu,
            lower_rel=np.concatenate([al, au], axis=1),
            lower_bias=np.concatenate([bl, bu], axis=1),
            upper_rel=np.concatenate([au, al], axis=1),
            upper_bias=np.concatenate([bu, bl], axis=1),
        )


@dataclass(frozen=True)
class _DiagBounds:
    """Diagonal (per-unit) bounds — the shape every ReLU relaxation has.

    The lower relation is ``diag(dl)·v + bl`` where ``bl`` is ``None``
    (identically zero) for DeepPoly's 0-or-identity ReLU lower bound and
    a negative radius vector for pad layers; the upper relation is
    ``diag(du)·v + bu``.  Coefficients may carry a leading batch axis.
    """

    dl: np.ndarray
    du: np.ndarray
    bu: np.ndarray
    bl: np.ndarray | None = None


def _split_signs(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return np.maximum(a, 0.0), np.minimum(a, 0.0)


def _relu_relaxation(
    low: np.ndarray, high: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """DeepPoly ReLU coefficients ``(dl, du, bu)`` from concrete bounds.

    Vectorized over any leading axes: stable units get the identity, dead
    units zero, and crossing units the chord upper bound
    ``u(z - l)/(u - l)`` with the adaptive 0-or-identity lower bound
    (identity when the positive side dominates, minimizing relaxation area).
    """
    # Typed scalars keep the coefficients in the input dtype: a bare
    # ``np.where(cond, 1.0, 0.0)`` is float64 and would silently promote
    # every later rewrite back to DGEMM on the float32 path.
    one = low.dtype.type(1.0)
    zero = low.dtype.type(0.0)
    stable = low >= 0.0
    crossing = (~stable) & (high > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(crossing, high / (high - low), zero)
    du = np.where(stable, one, slope)
    bu = np.where(crossing, -slope * low, zero)
    dl = np.where(stable | (crossing & (high > -low)), one, zero)
    return dl, du, bu


class DeepPolyState:
    """Analysis state after a prefix of the op sequence.

    Immutable in spirit: every transformer returns a new state sharing the
    already-processed layer list.
    """

    def __init__(
        self, box: Box, layers: list[_LayerBounds | _DiagBounds] | None = None
    ) -> None:
        self.box = box
        self.layers: list[_LayerBounds | _DiagBounds] = (
            list(layers) if layers else []
        )

    @staticmethod
    def identity(box: Box) -> "DeepPolyState":
        return DeepPolyState(box)

    @property
    def size(self) -> int:
        if self.layers:
            last = self.layers[-1]
            if isinstance(last, _DiagBounds):
                return last.dl.shape[-1]
            return last.bl.size
        return self.box.ndim

    # ------------------------------------------------------------------
    # Back-substitution
    # ------------------------------------------------------------------

    @property
    def _dtype(self) -> np.dtype:
        """The dtype the relations carry (the backend's choice at analysis
        time); float64 for an empty state."""
        for layer in self.layers:
            if isinstance(layer, _DiagBounds):
                return layer.dl.dtype
            return layer.al.dtype
        return np.dtype(np.float64)

    def _bound_expr(self, a: np.ndarray, b: np.ndarray, lower: bool) -> np.ndarray:
        """Concrete lower (or upper) bounds of ``a·v + b`` over the region,
        where ``v`` is the current output vector.  ``a``: ``(rows, size)``."""
        a = np.atleast_2d(a)
        b = np.atleast_1d(b).astype(a.dtype)
        for layer in reversed(self.layers):
            if isinstance(layer, _DiagBounds):
                pos, neg = _split_signs(a)
                if lower:
                    b = b + neg @ layer.bu
                    if layer.bl is not None:
                        b = b + pos @ layer.bl
                    a = pos * layer.dl + neg * layer.du
                else:
                    b = b + pos @ layer.bu
                    if layer.bl is not None:
                        b = b + neg @ layer.bl
                    a = pos * layer.du + neg * layer.dl
                continue
            if layer.al is layer.au:
                # Exact affine relation: no sign split needed.
                b = a @ layer.bl + b
                a = a @ layer.al
                continue
            pos, neg = _split_signs(a)
            if lower:
                b = pos @ layer.bl + neg @ layer.bu + b
                a = pos @ layer.al + neg @ layer.au
            else:
                b = pos @ layer.bu + neg @ layer.bl + b
                a = pos @ layer.au + neg @ layer.al
        pos, neg = _split_signs(a)
        # The box stays at reference precision; cast (no-op on the float64
        # path) so a float32 back-substitution never silently re-promotes.
        box_low = self.box.low.astype(a.dtype, copy=False)
        box_high = self.box.high.astype(a.dtype, copy=False)
        if lower:
            result = pos @ box_low + neg @ box_high + b
        else:
            result = pos @ box_high + neg @ box_low + b
        scale = _slack_for(
            a.dtype, (len(self.layers) + 1) * max(self.box.ndim, a.shape[-1])
        )
        if scale:
            # Outward rounding (float32 path): the rewrite chain's round-off
            # is bounded by the accumulated magnitude of the final expression.
            mag = np.maximum(np.abs(box_low), np.abs(box_high))
            slack = scale * (np.abs(a) @ mag + np.abs(b))
            result = result - slack if lower else result + slack
        return result

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Concrete per-unit bounds of the current output vector."""
        dtype = self._dtype
        eye = np.eye(self.size, dtype=dtype)
        zero = np.zeros(self.size, dtype=dtype)
        return (
            self._bound_expr(eye, zero, lower=True),
            self._bound_expr(eye, zero, lower=False),
        )

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def _extended(self, layer: _LayerBounds | _DiagBounds) -> "DeepPolyState":
        return DeepPolyState(self.box, self.layers + [layer])

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "DeepPolyState":
        return self._extended(_LayerBounds(weight, bias, weight, bias))

    def relu(self) -> "DeepPolyState":
        low, high = self.bounds()
        return self._extended(_DiagBounds(*_relu_relaxation(low, high)))

    def pad(self, radii: np.ndarray) -> "DeepPolyState":
        """Pad layer as a diagonal relation: ``v - r <= y <= v + r``.

        Deliberately *not* encoded as an exact-affine :class:`_LayerBounds`
        (whose ``al is au`` fast path carries a single bias): the lower and
        upper biases differ, and the per-unit independence of the pad is
        exactly what the diagonal rewrite preserves.
        """
        radii = np.asarray(radii)
        ones = np.ones(radii.shape[-1], dtype=radii.dtype)
        return self._extended(_DiagBounds(ones, ones, radii, bl=-radii))

    def maxpool(self, windows: np.ndarray) -> "DeepPolyState":
        low, high = self.bounds()
        al, au, bu = _maxpool_relaxation(low, high, windows, self.size)
        return self._extended(
            _LayerBounds(al, np.zeros(windows.shape[0], dtype=al.dtype), au, bu)
        )

    # ------------------------------------------------------------------
    # Margin checks
    # ------------------------------------------------------------------

    def lower_margin(self, label: int, other: int) -> float:
        """Relational bound on ``y_label - y_other`` via back-substitution."""
        dtype = self._dtype
        a = np.zeros((1, self.size), dtype=dtype)
        a[0, label] = 1.0
        a[0, other] = -1.0
        return float(self._bound_expr(a, np.zeros(1, dtype=dtype), lower=True)[0])

    def min_margin(self, label: int) -> float:
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        a = _margin_rows(label, self.size, self._dtype)
        margins = self._bound_expr(
            a, np.zeros(a.shape[0], dtype=a.dtype), lower=True
        )
        return float(margins.min())


def _margin_rows(label: int, size: int, dtype=np.float64) -> np.ndarray:
    """The ``size - 1`` expressions ``y_label - y_j`` as one coefficient
    matrix, so all margins back-substitute in a single pass."""
    if size < 2:
        raise ValueError("margin undefined for single-output networks")
    a = -np.eye(size, dtype=dtype)
    a[:, label] += 1.0
    return np.delete(a, label, axis=0)


def _maxpool_relaxation(
    low: np.ndarray, high: np.ndarray, windows: np.ndarray, size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense maxpool bounds ``(al, au, bu)`` for one region, vectorized.

    Lower bound: the unit with the best lower bound.  Upper bound: that
    same unit when it dominates every other unit's upper bound, else the
    constant ``max(highs)``.
    """
    out = windows.shape[0]
    rows = np.arange(out)
    lows = low[windows]
    highs = high[windows]
    winners = lows.argmax(axis=1)
    winner_src = windows[rows, winners]
    al = np.zeros((out, size), dtype=low.dtype)
    al[rows, winner_src] = 1.0
    rivals = highs.copy()
    rivals[rows, winners] = -np.inf
    dominant = lows[rows, winners] >= rivals.max(axis=1)
    au = np.zeros((out, size), dtype=low.dtype)
    au[rows[dominant], winner_src[dominant]] = 1.0
    bu = np.where(dominant, 0.0, highs.max(axis=1))
    return al, au, bu


class DeepPolyBatch(BatchedElement):
    """DeepPoly analysis of ``B`` input regions in lockstep.

    Affine relations are shared across the batch; ReLU relaxations carry a
    leading batch axis; maxpool relations are per-region dense.  During
    back-substitution the expression matrix stays shared ``(rows, n)`` until
    the first per-region relation, after which it is promoted to
    ``(B, rows, n)`` and every rewrite is a batched GEMM.  Row ``i`` matches
    what :class:`DeepPolyState` computes for region ``i`` alone up to BLAS
    kernel round-off (reduction order depends on operand shapes).
    """

    def __init__(
        self,
        low: np.ndarray,
        high: np.ndarray,
        layers: list[_LayerBounds | _DiagBounds] | None = None,
    ) -> None:
        low = np.asarray(low)
        high = np.asarray(high)
        if low.dtype.char not in "efd":
            low = low.astype(np.float64)
        high = high.astype(low.dtype, copy=False)
        if low.ndim != 2 or low.shape != high.shape:
            raise ValueError(
                f"batch bounds must be matching (B, n) arrays, got "
                f"{low.shape} vs {high.shape}"
            )
        self.box_low = low
        self.box_high = high
        self.layers: list[_LayerBounds | _DiagBounds] = (
            list(layers) if layers else []
        )

    @staticmethod
    def from_boxes(boxes: list[Box]) -> "DeepPolyBatch":
        if not boxes:
            raise ValueError("need at least one box")
        low, high = _outward_cast(
            np.stack([b.low for b in boxes]),
            np.stack([b.high for b in boxes]),
            _active_backend().dtype,
        )
        return DeepPolyBatch(low, high)

    @property
    def batch_size(self) -> int:
        return self.box_low.shape[0]

    @property
    def size(self) -> int:
        for layer in reversed(self.layers):
            if isinstance(layer, _DiagBounds):
                return layer.dl.shape[-1]
            return layer.bl.shape[-1]
        return self.box_low.shape[1]

    def row(self, i: int) -> DeepPolyState:
        """The ``i``-th region's analysis as a plain :class:`DeepPolyState`."""
        layers: list[_LayerBounds | _DiagBounds] = []
        for layer in self.layers:
            if isinstance(layer, _DiagBounds):
                layers.append(
                    _DiagBounds(
                        layer.dl[i],
                        layer.du[i],
                        layer.bu[i],
                        bl=None if layer.bl is None else layer.bl[i],
                    )
                )
            elif layer.al.ndim == 3:
                layers.append(
                    _LayerBounds(
                        layer.al[i], layer.bl[i], layer.au[i], layer.bu[i]
                    )
                )
            else:
                layers.append(layer)  # shared affine relation
        return DeepPolyState(Box(self.box_low[i], self.box_high[i]), layers)

    def rows(self, indices) -> "DeepPolyBatch":
        """The sub-batch holding the given rows.

        Shared affine relations are reused as-is; per-region relations are
        sliced.  Lets mixed-label callers bound output margins per label
        group without re-running the back-substitution for rows whose
        result would be discarded.
        """
        indices = np.asarray(indices, dtype=np.int64)
        layers: list[_LayerBounds | _DiagBounds] = []
        for layer in self.layers:
            if isinstance(layer, _DiagBounds):
                layers.append(
                    _DiagBounds(
                        layer.dl[indices],
                        layer.du[indices],
                        layer.bu[indices],
                        bl=None if layer.bl is None else layer.bl[indices],
                    )
                )
            elif layer.al.ndim == 3:
                # Rebuild the dense stack from the sliced relations: the
                # sub-batch keeps the fused rewrite.
                layers.append(
                    _DenseBounds.build(
                        layer.al[indices],
                        layer.bl[indices],
                        layer.au[indices],
                        layer.bu[indices],
                    )
                )
            else:
                layers.append(layer)  # shared affine relation
        return DeepPolyBatch(
            self.box_low[indices], self.box_high[indices], layers
        )

    # ------------------------------------------------------------------
    # Batched back-substitution
    # ------------------------------------------------------------------

    def _bound_expr(self, a: np.ndarray, lower: bool) -> np.ndarray:
        """Bounds of the shared expressions ``a·v`` per region: ``(B, rows)``.

        ``a``: shared coefficients ``(rows, size)`` over the current output.
        Rewrites through shared affine relations run as one
        ``(B·rows, n)``-shaped GEMM; per-region relations are elementwise
        (ReLU) or batched GEMMs (maxpool).
        """
        batch = self.batch_size
        a = np.atleast_2d(a)
        b: np.ndarray | float = 0.0

        def _promote(arr: np.ndarray) -> np.ndarray:
            if arr.ndim == 2:
                return np.broadcast_to(arr, (batch, *arr.shape))
            return arr

        def _dot_rows(arr: np.ndarray, vec: np.ndarray) -> np.ndarray:
            # (B, rows, n) · per-region (B, n) -> (B, rows)
            return (arr @ vec[:, :, None])[:, :, 0]

        for layer in reversed(self.layers):
            if isinstance(layer, _DiagBounds):
                a = _promote(a)
                pos, neg = _split_signs(a)
                b = b + _dot_rows(neg if lower else pos, layer.bu)
                if layer.bl is not None:
                    b = b + _dot_rows(pos if lower else neg, layer.bl)
                if lower:
                    a = pos * layer.dl[:, None, :] + neg * layer.du[:, None, :]
                else:
                    a = pos * layer.du[:, None, :] + neg * layer.dl[:, None, :]
            elif isinstance(layer, _DenseBounds):
                # Per-region dense relation (maxpool): the fused
                # sign-split rewrite — one (B, rows, 2n) batched GEMM
                # against the relation stack built at layer construction
                # (see _DenseBounds), instead of two half-width GEMMs
                # plus an add.
                mm = _active_backend().matmul
                a = _promote(a)
                cat = np.concatenate(_split_signs(a), axis=-1)
                if lower:
                    b = b + _dot_rows(cat, layer.lower_bias)
                    a = mm(cat, layer.lower_rel)
                else:
                    b = b + _dot_rows(cat, layer.upper_bias)
                    a = mm(cat, layer.upper_rel)
            # Dense relation without a stack: only reachable for layers
            # handed directly to the constructor (the transformers and
            # rows() always build _DenseBounds) — kept so externally
            # constructed batches stay valid.
            elif layer.al.ndim == 3:
                a = _promote(a)
                pos, neg = _split_signs(a)
                if lower:
                    b = b + _dot_rows(pos, layer.bl) + _dot_rows(neg, layer.bu)
                    a = pos @ layer.al + neg @ layer.au
                else:
                    b = b + _dot_rows(pos, layer.bu) + _dot_rows(neg, layer.bl)
                    a = pos @ layer.au + neg @ layer.al
            else:  # shared exact affine relation: no sign split needed
                mm = _active_backend().matmul
                b = b + mm(a, layer.bl) if a.ndim == 3 else b + a @ layer.bl
                if a.ndim == 3:
                    rows = a.shape[1]
                    a = mm(
                        a.reshape(batch * rows, -1), layer.al
                    ).reshape(batch, rows, -1)
                else:
                    a = mm(a, layer.al)
        a = _promote(a)
        pos, neg = _split_signs(a)
        if lower:
            result = _dot_rows(pos, self.box_low) + _dot_rows(neg, self.box_high) + b
        else:
            result = _dot_rows(pos, self.box_high) + _dot_rows(neg, self.box_low) + b
        scale = _slack_for(
            a.dtype,
            (len(self.layers) + 1)
            * max(self.box_low.shape[1], a.shape[-1]),
        )
        if scale:
            # Outward rounding (float32 path), mirroring DeepPolyState.
            mag = np.maximum(np.abs(self.box_low), np.abs(self.box_high))
            slack = scale * (_dot_rows(np.abs(a), mag) + np.abs(b))
            result = result - slack if lower else result + slack
        return result

    @property
    def _dtype(self) -> np.dtype:
        for layer in self.layers:
            if isinstance(layer, _DiagBounds):
                return layer.dl.dtype
            return layer.al.dtype
        return self.box_low.dtype

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Concrete per-unit bounds of the current output: ``(B, n)`` each."""
        eye = np.eye(self.size, dtype=self._dtype)
        return (
            self._bound_expr(eye, lower=True),
            self._bound_expr(eye, lower=False),
        )

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def _extended(self, layer: _LayerBounds | _DiagBounds) -> "DeepPolyBatch":
        return DeepPolyBatch(self.box_low, self.box_high, self.layers + [layer])

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "DeepPolyBatch":
        return self._extended(_LayerBounds(weight, bias, weight, bias))

    def relu(self) -> "DeepPolyBatch":
        low, high = self.bounds()
        return self._extended(_DiagBounds(*_relu_relaxation(low, high)))

    def pad(self, radii: np.ndarray) -> "DeepPolyBatch":
        """Batched pad relation (see :meth:`DeepPolyState.pad`): the
        shared radii broadcast to one per-region diagonal relation."""
        radii = np.asarray(radii)
        shape = (self.batch_size, radii.shape[-1])
        ones = np.ones(shape, dtype=radii.dtype)
        bu = np.broadcast_to(radii, shape)
        return self._extended(
            _DiagBounds(ones, ones, bu, bl=np.broadcast_to(-radii, shape))
        )

    def maxpool(self, windows: np.ndarray) -> "DeepPolyBatch":
        low, high = self.bounds()
        out = windows.shape[0]
        dtype = low.dtype
        al = np.empty((self.batch_size, out, self.size), dtype=dtype)
        au = np.empty((self.batch_size, out, self.size), dtype=dtype)
        bu = np.empty((self.batch_size, out), dtype=dtype)
        for i in range(self.batch_size):
            al[i], au[i], bu[i] = _maxpool_relaxation(
                low[i], high[i], windows, self.size
            )
        return self._extended(
            _DenseBounds.build(
                al, np.zeros((self.batch_size, out), dtype=dtype), au, bu
            )
        )

    # ------------------------------------------------------------------
    # Margin checks
    # ------------------------------------------------------------------

    def min_margin(self, label: int) -> np.ndarray:
        """Per-region relational bound on ``min_{j≠K} (y_K - y_j)``."""
        if not 0 <= label < self.size:
            raise ValueError(f"label {label} out of range for size {self.size}")
        margins = self._bound_expr(
            _margin_rows(label, self.size, self._dtype), lower=True
        )
        return margins.min(axis=1)


def deeppoly_analyze(
    network: Network,
    region: Box,
    label: int,
    deadline: Deadline | None = None,
) -> tuple[bool, float]:
    """Verify ``(region, label)`` with the DeepPoly-style domain.

    Returns ``(verified, margin_lower_bound)``.  Supports affine, ReLU, and
    max-pooling ops (i.e. all architectures in the benchmark suite).
    """
    state = DeepPolyState.identity(region)
    for op in network.ops_for(_active_backend().dtype):
        if deadline is not None:
            deadline.check()
        if isinstance(op, AffineOp):
            state = state.affine(op.weight, op.bias)
        elif isinstance(op, ReluOp):
            state = state.relu()
        elif isinstance(op, MaxPoolOp):
            state = state.maxpool(op.windows)
        elif isinstance(op, PadOp):
            state = state.pad(op.radii)
        else:
            raise TypeError(f"unknown op type {type(op).__name__}")
    margin = state.min_margin(label)
    return margin > 0.0, margin
