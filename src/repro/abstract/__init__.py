"""Abstract interpretation engine (the ELINA substitute).

Implements the numeric domains the paper's analyzer chooses among (§2.3):

- :mod:`repro.abstract.interval` — interval (box) domain.
- :mod:`repro.abstract.zonotope` — zonotope domain with the AI2-style
  case-split-then-join ReLU transformer.
- :mod:`repro.abstract.powerset` — bounded powerset of either base domain,
  which keeps ReLU case splits as disjuncts up to a budget.
- :mod:`repro.abstract.domains` — :class:`DomainSpec`, the ``(base, k)``
  pairs the domain policy selects from.
- :mod:`repro.abstract.analyzer` — pushes a region through a network's op
  sequence and checks the classification margin (the paper's ``Analyze``).
- :mod:`repro.abstract.symbolic_interval` — symbolic intervals in the style
  of ReluVal (used by the ReluVal baseline).
- :mod:`repro.abstract.batched` — the :class:`BatchedElement` protocol the
  batched kernels implement (``IntervalBatch``, ``DeepPolyBatch``,
  ``ZonotopeBatch``, ``PowersetBatch``).
- :mod:`repro.abstract.zonotope_batch` — stacked zonotope/powerset kernels
  with the round-based batched ReLU case-split loop (bitwise identical to
  the sequential elements, row by row).
"""

from repro.abstract.batched import BatchedElement
from repro.abstract.element import AbstractElement
from repro.abstract.interval import IntervalBatch, IntervalElement
from repro.abstract.zonotope import Zonotope
from repro.abstract.zonotope_batch import PowersetBatch, ZonotopeBatch
from repro.abstract.powerset import PowersetElement
from repro.abstract.domains import (
    DEEPPOLY,
    DomainSpec,
    INTERVAL,
    SYMBOLIC,
    ZONOTOPE,
)
from repro.abstract.analyzer import AnalysisResult, analyze, analyze_batch, propagate
from repro.abstract.deeppoly import DeepPolyBatch, DeepPolyState, deeppoly_analyze
from repro.abstract.symbolic_interval import SymbolicInterval, symbolic_analyze

__all__ = [
    "AbstractElement",
    "BatchedElement",
    "IntervalElement",
    "IntervalBatch",
    "Zonotope",
    "ZonotopeBatch",
    "PowersetElement",
    "PowersetBatch",
    "DomainSpec",
    "INTERVAL",
    "ZONOTOPE",
    "SYMBOLIC",
    "DEEPPOLY",
    "AnalysisResult",
    "analyze",
    "analyze_batch",
    "propagate",
    "DeepPolyState",
    "DeepPolyBatch",
    "deeppoly_analyze",
    "SymbolicInterval",
    "symbolic_analyze",
]
