"""The zonotope abstract domain with AI2-style case-split ReLU.

A zonotope is an affine form ``x = c + Gᵀη + diag(e)ξ`` with shared noise
symbols ``η ∈ [-1, 1]^k`` and per-dimension independent error symbols
``ξ ∈ [-1, 1]^n``.  The matrix ``G`` carries the relational information
(correlations between activations); the error vector ``e`` accumulates the
non-relational slack introduced by joins and max pooling.

The ReLU transformer follows the paper (Figure 4 and AI2): each crossing
dimension is case-split into the ``x_i >= 0`` and ``x_i <= 0`` half-spaces
(via sound noise-symbol contraction), the negative branch is projected to
zero, and — in the *plain* zonotope domain — the two branches are joined.
The bounded powerset domain instead keeps them as disjuncts
(:mod:`repro.abstract.powerset`).  This is deliberately the lossier
split-join transformer rather than the tighter min-area relaxation: it is
what makes the paper's Example 2.3 fail with one zonotope and succeed with
two, which our tests reproduce.

The join keeps shared generator structure (in the style of Goubault &
Putot's perturbed affine sets): per noise symbol it retains the common
sign-consistent part of both generators and pushes the residual into the
error vector, so joined elements stay relational where the branches agree.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.element import AbstractElement
from repro.abstract.fused import _COEF_TOL, gen_sum, stacked_relu
from repro.backend import active as _active_backend
from repro.backend import outward_center_radius as _outward_center_radius
from repro.backend import slack_for as _slack_for
from repro.utils.boxes import Box


def _coerce_term(a: np.ndarray, dtype=None) -> np.ndarray:
    """Sanitize an affine-form component, preserving float dtypes.

    Non-float input coerces to the float64 reference; float32/float64
    arrays pass through so transformer output keeps the dtype the lift
    boundary chose (``dtype`` forces agreement across the three parts).
    """
    arr = np.asarray(a)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if arr.dtype.char not in "efd":
        arr = arr.astype(np.float64)
    return arr


class Zonotope(AbstractElement):
    """Affine form ``c + Gᵀη + diag(err)ξ`` over ``η, ξ ∈ [-1, 1]``.

    Attributes:
        center: shape ``(n,)``.
        gens: shape ``(k, n)`` — row ``j`` is the effect of noise symbol j.
        err: shape ``(n,)``, non-negative independent error radii.
    """

    def __init__(self, center: np.ndarray, gens: np.ndarray, err: np.ndarray) -> None:
        center = _coerce_term(center).reshape(-1)
        gens = _coerce_term(gens, dtype=center.dtype)
        err = _coerce_term(err, dtype=center.dtype).reshape(-1)
        if gens.ndim != 2 or gens.shape[1] != center.size:
            raise ValueError(
                f"generator matrix shape {gens.shape} incompatible with "
                f"center of size {center.size}"
            )
        if err.size != center.size:
            raise ValueError(
                f"error vector size {err.size} != dimension {center.size}"
            )
        if np.any(err < 0):
            raise ValueError("error radii must be non-negative")
        self.center = center
        self.gens = gens
        self.err = err
        self._radius: np.ndarray | None = None

    @classmethod
    def _make(
        cls, center: np.ndarray, gens: np.ndarray, err: np.ndarray
    ) -> "Zonotope":
        """Internal constructor for already-validated float64 arrays.

        The transformers construct zonotopes in tight loops (one per ReLU
        case split); skipping re-validation of arrays we just computed is a
        measurable win on the powerset hot path.
        """
        obj = object.__new__(cls)
        obj.center = center
        obj.gens = gens
        obj.err = err
        obj._radius = None
        return obj

    @staticmethod
    def from_box(box: Box) -> "Zonotope":
        # The box radii start as error terms; the first affine op materializes
        # them into proper generator rows (see :meth:`affine`).
        n = box.ndim
        dtype = _active_backend().dtype
        center, radius = _outward_center_radius(box.center, box.radius, dtype)
        return Zonotope(center, np.zeros((0, n), dtype=dtype), radius)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.center.size

    @property
    def num_gens(self) -> int:
        return self.gens.shape[0]

    def radius(self) -> np.ndarray:
        # Cached: zonotopes are immutable by convention and the verifier's
        # case-split loops re-query bounds of the same element many times.
        if self._radius is None:
            self._radius = np.abs(self.gens).sum(axis=0) + self.err
        return self._radius

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        rad = self.radius()
        return self.center - rad, self.center + rad

    def dim_bounds(self, dim: int) -> tuple[float, float]:
        # O(num_gens) instead of materializing all-dimension bounds.
        if self._radius is not None:
            rad = self._radius[dim]
        else:
            rad = np.abs(self.gens[:, dim]).sum() + self.err[dim]
        c = self.center[dim]
        return float(c - rad), float(c + rad)

    def __repr__(self) -> str:
        return f"Zonotope(size={self.size}, gens={self.num_gens})"

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "Zonotope":
        """Exact affine image.

        Error symbols are *promoted to generator rows* here
        (``diag(err) @ Wᵀ``) rather than propagated as the interval
        ``|W| @ err``: an affine map correlates the outputs, and keeping
        that correlation is what lets the relational margin bound
        (:meth:`lower_margin`) stay sharp — without it, per-dimension error
        mass gets double-counted across the two outputs of the margin.
        The promotion always happens (even for all-zero error vectors) so
        that sibling disjuncts in a powerset keep identical generator
        shapes and remain joinable.

        The center product goes through ``einsum`` rather than ``@``:
        BLAS routes matrix-vector products through a GEMV kernel whose
        reduction order differs from the GEMM kernel's rows, while
        einsum's dot loop is identical at every batch height.  Using it
        here (and in the batched kernels) is what makes
        :class:`~repro.abstract.zonotope_batch.ZonotopeBatch` rows bitwise
        equal to this sequential transformer.
        """
        bk = _active_backend()
        center = bk.einsum("ij,j->i", weight, self.center) + bias
        promoted = self.err[:, None] * weight.T  # row i = err_i * W[:, i]
        gens = np.vstack([bk.matmul(self.gens, weight.T), promoted])
        scale = _slack_for(center.dtype, weight.shape[1])
        if not scale:
            return Zonotope._make(center, gens, np.zeros(center.size, dtype=center.dtype))
        # Outward rounding (float32 path): the GEMM/einsum round-off is
        # bounded by the accumulated magnitude; absorb it into the error
        # vector so the fast-path zonotope always contains the reference.
        mag = np.abs(self.center) + self.radius()
        err = scale * (np.abs(weight) @ mag + np.abs(bias))
        return Zonotope._make(center, gens, err.astype(center.dtype, copy=False))

    def relu(self, skip_dims: frozenset[int] = frozenset()) -> "Zonotope":
        """Case-split ReLU via the fused contraction kernel.

        This is the ``R == 1`` instantiation of
        :func:`repro.abstract.fused.stacked_relu` — the fused kernel's
        products and reductions are batch-height-stable, so delegating
        keeps this transformer bitwise equal to batched rows (and buys
        the sequential path the same scratch-arena reuse and generator
        compaction as the batch).
        """
        center, gens, err = stacked_relu(
            self.center[None, :], self.gens[None], self.err[None], [skip_dims]
        )
        return Zonotope._make(center[0], gens[0], err[0])

    def _clamp_nonpositive(self, skip_dims: frozenset[int] = frozenset()) -> "Zonotope":
        """Project every definitely-non-positive dimension to exactly 0."""
        low, high = self.bounds()
        dead = high <= 0.0
        if skip_dims:
            keep = np.ones(self.size, dtype=bool)
            keep[list(skip_dims)] = False
            dead &= keep
        if not dead.any():
            return self
        center = np.where(dead, 0.0, self.center)
        gens = np.where(dead[None, :], 0.0, self.gens)
        err = np.where(dead, 0.0, self.err)
        return Zonotope._make(center, gens, err)

    def _project_dim(self, dim: int) -> "Zonotope":
        """Set one dimension to exactly 0 (the dead ReLU branch)."""
        center = self.center.copy()
        gens = self.gens.copy()
        err = self.err.copy()
        center[dim] = 0.0
        gens[:, dim] = 0.0
        err[dim] = 0.0
        return Zonotope._make(center, gens, err)

    def maxpool(self, windows: np.ndarray) -> "Zonotope":
        low, high = self.bounds()
        out = windows.shape[0]
        rows = np.arange(out)
        lows = low[windows]  # (out, k)
        highs = high[windows]
        winners = lows.argmax(axis=1)
        winner_src = windows[rows, winners]
        # A window is exact when its best-lower unit dominates every rival's
        # upper bound: the max is that unit and relational info survives.
        rivals = highs.copy()
        rivals[rows, winners] = -np.inf
        dominant = lows[rows, winners] >= rivals.max(axis=1)
        # Interval-hull fallback for contested windows.
        hull_lo = lows.max(axis=1)
        hull_hi = highs.max(axis=1)
        center = np.where(
            dominant, self.center[winner_src], (hull_lo + hull_hi) / 2.0
        )
        gens = np.where(dominant[None, :], self.gens[:, winner_src], 0.0)
        err = np.where(dominant, self.err[winner_src], (hull_hi - hull_lo) / 2.0)
        scale = _slack_for(center.dtype, 8)
        if scale:
            err = err + scale * (np.abs(center) + err)
        return Zonotope._make(center, gens, err)

    def pad(self, radii: np.ndarray) -> "Zonotope":
        """Exact pad transformer: the error vector *is* the zonotope's
        independent-per-dimension noise slot, and :meth:`lower_margin`
        counts ``e_label`` and ``e_other`` separately — matching the pad
        op's independent-adversary semantics with no precision loss."""
        err = self.err + radii
        scale = _slack_for(err.dtype, 2)
        if scale:
            # Outward rounding (float32 path): cover the addition round-off.
            err = err + scale * err
        return Zonotope._make(self.center, self.gens, err)

    # ------------------------------------------------------------------
    # Case splits
    # ------------------------------------------------------------------

    def crossing_dims(self) -> np.ndarray:
        low, high = self.bounds()
        crossing = np.flatnonzero((low < 0.0) & (high > 0.0))
        widths = high[crossing] - low[crossing]
        return crossing[np.argsort(-widths, kind="stable")]

    def _contract_from(
        self,
        bound: np.ndarray,
        lower_side: np.ndarray,
        upper_side: np.ndarray,
    ) -> "Zonotope":
        """Apply precomputed per-symbol range cuts (see :meth:`_contract`)."""
        dtype = self.gens.dtype
        lo_sym = -np.ones(self.num_gens, dtype=dtype)
        hi_sym = np.ones(self.num_gens, dtype=dtype)
        lo_sym = np.where(lower_side, np.maximum(lo_sym, bound), lo_sym)
        hi_sym = np.where(upper_side, np.minimum(hi_sym, bound), hi_sym)
        lo_sym = np.minimum(lo_sym, hi_sym)  # guard against numeric inversion
        mid = (lo_sym + hi_sym) / 2.0
        half = (hi_sym - lo_sym) / 2.0
        center = self.center + self.gens.T @ mid
        err = self.err.copy()
        scale = _slack_for(dtype, self.num_gens + 4)
        if scale:
            err += scale * (np.abs(center) + self.radius())
        gens = self.gens * half[:, None]
        return Zonotope._make(center, gens, err)

    def _contract_cuts(
        self, dim: int, keep_nonneg: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-symbol range cuts under ``x_dim >= 0`` (or ``<= 0``).

        One round of per-symbol interval contraction: with every other
        symbol relaxed to its full range (``rest``), the constraint
        ``c + g_j*eta_j ∓ rest >= 0`` (or ``<= 0``) bounds ``eta_j`` below
        when the coefficient and constraint orientation agree, above
        otherwise.  The result always over-approximates the intersection.
        """
        coeffs = self.gens[:, dim]
        c = self.center[dim]
        abs_coeffs = np.abs(coeffs)
        total = abs_coeffs.sum() + self.err[dim]
        touched = abs_coeffs > _COEF_TOL
        rest = total - abs_coeffs
        with np.errstate(divide="ignore", invalid="ignore"):
            if keep_nonneg:
                bound = (-c - rest) / coeffs
            else:
                bound = (-c + rest) / coeffs
        lower_side = touched & ((coeffs > 0) == keep_nonneg)
        upper_side = touched & ~lower_side
        return bound, lower_side, upper_side

    def _contract(self, dim: int, keep_nonneg: bool) -> "Zonotope":
        """Soundly tighten noise symbols under ``x_dim >= 0`` (or ``<= 0``)."""
        return self._contract_from(*self._contract_cuts(dim, keep_nonneg))

    def relu_split(self, dim: int) -> tuple["Zonotope", "Zonotope"]:
        lo, hi = self.dim_bounds(dim)
        if not lo < 0.0 < hi:
            raise ValueError(f"dimension {dim} does not cross zero: [{lo}, {hi}]")
        coeffs = self.gens[:, dim]
        abs_coeffs = np.abs(coeffs)
        # gen_sum, not a pairwise 1-D sum: the contraction totals must be
        # invariant to zero generator rows so compaction stays exact, and
        # must match the batched split kernel at every height.
        total = gen_sum(abs_coeffs[None, :])[0] + self.err[dim]
        touched = abs_coeffs > _COEF_TOL
        rest = total - abs_coeffs
        c = self.center[dim]
        with np.errstate(divide="ignore", invalid="ignore"):
            pos_bound = (-c - rest) / coeffs
            neg_bound = (-c + rest) / coeffs
        pos_lower = touched & (coeffs > 0)
        pos_upper = touched & ~pos_lower
        # Both branches' symbol-range cuts in one (2, k) pass: the positive
        # branch cuts {x_dim >= 0}, the negative branch swaps the cut sides
        # with the constraint orientation.  Sharing the center/generator
        # rescale (one GEMM for both centers) halves the dominant cost of
        # the powerset domains' case-split loop.
        dtype = self.gens.dtype
        lo_sym = np.full((2, self.num_gens), -1.0, dtype=dtype)
        hi_sym = np.ones((2, self.num_gens), dtype=dtype)
        lo_sym[0] = np.where(pos_lower, np.maximum(lo_sym[0], pos_bound), lo_sym[0])
        hi_sym[0] = np.where(pos_upper, np.minimum(hi_sym[0], pos_bound), hi_sym[0])
        lo_sym[1] = np.where(pos_upper, np.maximum(lo_sym[1], neg_bound), lo_sym[1])
        hi_sym[1] = np.where(pos_lower, np.minimum(hi_sym[1], neg_bound), hi_sym[1])
        lo_sym = np.minimum(lo_sym, hi_sym)  # guard against numeric inversion
        mid = (lo_sym + hi_sym) / 2.0
        half = (hi_sym - lo_sym) / 2.0
        # einsum, not BLAS: the (2, k) @ (k, n) GEMM's reduction order is
        # not zero-row-invariant, while einsum's accumulation loop over k
        # is sequential (and identical at every stacked height).
        centers = self.center + np.einsum("jk,kn->jn", mid, self.gens)
        err = self.err
        scale = _slack_for(dtype, self.num_gens + 4)
        if scale:
            # Outward rounding (float32 path): cover the contraction's
            # rescale/einsum round-off so both branches stay sound.
            err = err + scale * (np.abs(self.center) + self.radius())
        # Positive branch: on {x_dim >= 0} the ReLU is the identity, and the
        # contracted zonotope over-approximates that meet, so it directly
        # over-approximates the branch image (any residual negative tail left
        # by the one-round contraction is imprecision, not unsoundness).
        pos = Zonotope._make(
            centers[0], self.gens * half[0][:, None], err.copy()
        )
        # Negative branch: ReLU projects the dimension to exactly 0.
        neg = Zonotope._make(
            centers[1], self.gens * half[1][:, None], err.copy()
        )._project_dim(dim)
        return pos, neg

    def relu_dim(self, dim: int) -> "Zonotope":
        lo, hi = self.dim_bounds(dim)
        if hi <= 0.0:
            return self._project_dim(dim)
        if lo >= 0.0:
            return self
        pos, neg = self.relu_split(dim)
        return pos.join(neg)

    def join(self, other: "AbstractElement") -> "Zonotope":
        if not isinstance(other, Zonotope):
            raise TypeError("cannot join zonotope with non-zonotope element")
        if other.num_gens != self.num_gens or other.size != self.size:
            raise ValueError("zonotope join requires matching shapes")
        lo1, hi1 = self.bounds()
        lo2, hi2 = other.bounds()
        center = (np.minimum(lo1, lo2) + np.maximum(hi1, hi2)) / 2.0
        same_sign = (np.sign(self.gens) == np.sign(other.gens)) & (
            np.abs(self.gens) > _COEF_TOL
        )
        gens = np.where(
            same_sign,
            np.sign(self.gens)
            * np.minimum(np.abs(self.gens), np.abs(other.gens)),
            0.0,
        )
        pad1 = (
            np.abs(self.center - center)
            + np.abs(self.gens - gens).sum(axis=0)
            + self.err
        )
        pad2 = (
            np.abs(other.center - center)
            + np.abs(other.gens - gens).sum(axis=0)
            + other.err
        )
        err = np.maximum(pad1, pad2)
        scale = _slack_for(center.dtype, self.num_gens + 4)
        if scale:
            err += scale * (np.abs(center) + np.abs(gens).sum(axis=0) + err)
        return Zonotope._make(center, gens, err)

    # ------------------------------------------------------------------
    # Margins
    # ------------------------------------------------------------------

    def lower_margin(self, label: int, other: int) -> float:
        """Relational bound: ``(c_K - c_j) - Σ|g_K - g_j| - (e_K + e_j)``.

        This uses the shared noise symbols, which is exactly why zonotopes
        out-verify intervals on margins even when their per-output bounds
        coincide.
        """
        diff = self.center[label] - self.center[other]
        gen_mass = np.abs(self.gens[:, label] - self.gens[:, other]).sum()
        return float(diff - gen_mass - self.err[label] - self.err[other])
