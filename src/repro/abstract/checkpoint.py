"""Prefix checkpoints: abstract states at layer boundaries, reusable
across networks that share a digest-chain prefix.

A fine-tune that touches only the last ``k`` layers leaves every abstract
state up to the first changed layer identical by construction — DeepPoly
relations, zonotope generator stacks, and interval bounds are pure
functions of (prefix ops, input regions).  This module is the seam that
makes that reuse concrete:

- :class:`PrefixBounds` is one checkpoint: the abstract element at layer
  boundary ``b``, addressed by (prefix digest, region-batch digest,
  domain, backend).  The prefix digest is link ``b-1`` of
  :func:`repro.nn.serialize.layer_digests`, so checkpoints captured while
  verifying the *old* network are found verbatim when probing with the
  *new* network's chain — no old-network handle needed at resume time.
- :func:`capture_element` / :func:`restore_element` are the codecs.  The
  bitwise-resume contract (pinned by ``tests/abstract/test_checkpoint``)
  is that resuming from a restored element and running the suffix ops
  reproduces the cold run's floats exactly.  Two codec details carry that
  contract: captured arrays are deep C-contiguous copies (the fused
  zonotope kernels reuse scratch arenas, and pad relations hold broadcast
  views), and DeepPoly's shared-affine relations are restored as
  *references to the op arrays* so the ``al is au`` exact-rewrite fast
  path — a different float sequence from the sign-split path — survives
  the round trip.
- Checkpoints are keyed on the digest of the **entire ordered region
  batch** (:func:`region_batch_digest`), not per region: the batched
  interval and DeepPoly kernels' BLAS round-off depends on the batch
  height, so only an identical batch resumes bitwise.  Labels are
  excluded — they play no role until the output margin check.

Only single-disjunct interval, zonotope, and DeepPoly states are
checkpointable (:func:`supports_checkpoint`); symbolic intervals and
powersets fall back to cold runs gracefully.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.abstract.deeppoly import (
    DeepPolyBatch,
    DeepPolyState,
    _DenseBounds,
    _DiagBounds,
    _LayerBounds,
)
from repro.abstract.interval import IntervalBatch, IntervalElement
from repro.abstract.zonotope import Zonotope
from repro.abstract.zonotope_batch import ZonotopeBatch
from repro.nn.layers import Flatten, ReLU
from repro.nn.network import AffineOp, Network
from repro.utils.boxes import Box

#: Base domains with a checkpoint codec.  Symbolic intervals keep their
#: relations entangled with the input box in a form no boundary state
#: captures cleanly, and powerset disjunct counts vary per region — both
#: degrade to cold runs.
CHECKPOINT_BASES = ("interval", "zonotope", "deeppoly")


def supports_checkpoint(domain) -> bool:
    """Whether ``domain`` states can be captured and resumed bitwise."""
    return domain.disjuncts == 1 and domain.base in CHECKPOINT_BASES


@dataclass(frozen=True)
class PrefixBounds:
    """The abstract state at a layer boundary, plus its cache address.

    ``boundary`` counts *layers* (digest-chain links) consumed;
    ``op_count`` counts lowered analyzer ops (Flatten layers lower to no
    op, so the two differ on conv nets).  ``meta`` is the codec's
    JSON-serializable structure description and ``arrays`` its named
    ndarray payload — exactly what :mod:`repro.sched.cache` persists as a
    ``PrefixRecord`` file.
    """

    boundary: int
    op_count: int
    prefix_digest: str
    regions_digest: str
    domain: tuple[str, int]
    backend: str
    kind: str
    meta: list | None
    arrays: dict


def checkpoint_boundaries(network: Network) -> list[int]:
    """Layer boundaries worth checkpointing: after each hidden ReLU.

    Post-activation states are where reuse pays — the following affine
    layer is the first place a fine-tune can diverge — and bounding the
    set to ReLUs keeps capture storage linear in depth, not in layers.
    The full-network boundary is excluded (that state is the result the
    ordinary result cache already stores).
    """
    return [
        b
        for b in range(1, len(network.layers))
        if isinstance(network.layers[b - 1], ReLU)
    ]


def ops_consumed(network: Network, boundary: int) -> int:
    """Lowered ops covered by the first ``boundary`` layers.

    Flatten layers disappear in the lowering (see ``Network.ops``); every
    other layer lowers to exactly one op, so the map is a simple count.
    """
    return sum(
        1
        for layer in network.layers[:boundary]
        if not isinstance(layer, Flatten)
    )


def region_batch_digest(regions) -> str:
    """Content address of an *ordered* region batch.

    Hashes the stacked float64 bounds (shape included): the batched
    kernels' BLAS round-off depends on batch height and row order, so a
    checkpoint is only bitwise-resumable by the identical batch.
    """
    lows = np.ascontiguousarray(
        np.stack([np.asarray(r.low) for r in regions]), dtype=np.float64
    )
    highs = np.ascontiguousarray(
        np.stack([np.asarray(r.high) for r in regions]), dtype=np.float64
    )
    return region_arrays_digest(lows, highs)


def region_arrays_digest(lows: np.ndarray, highs: np.ndarray) -> str:
    """:func:`region_batch_digest` on pre-stacked ``(R, n)`` arrays."""
    lows = np.ascontiguousarray(lows, dtype=np.float64)
    highs = np.ascontiguousarray(highs, dtype=np.float64)
    digest = hashlib.sha256(str(lows.shape).encode())
    digest.update(lows.tobytes())
    digest.update(highs.tobytes())
    return digest.hexdigest()


def _snap(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous deep copy: checkpoint arrays must not alias the
    element (fused kernels reuse scratch arenas in place) and must not be
    broadcast views (pad relations broadcast shared radii)."""
    return np.array(arr, order="C", copy=True)


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------


def _capture_deeppoly_relations(relations, ops) -> tuple[list, dict]:
    """Relation list -> (meta, arrays).  Relation ``j`` pairs with
    ``ops[j]`` (every op appends exactly one relation)."""
    meta: list = []
    arrays: dict[str, np.ndarray] = {}
    for j, rel in enumerate(relations):
        if isinstance(rel, _DiagBounds):
            meta.append({"t": "diag", "bl": rel.bl is not None})
            arrays[f"r{j}_dl"] = _snap(rel.dl)
            arrays[f"r{j}_du"] = _snap(rel.du)
            arrays[f"r{j}_bu"] = _snap(rel.bu)
            if rel.bl is not None:
                arrays[f"r{j}_bl"] = _snap(rel.bl)
        elif isinstance(rel, _DenseBounds):
            # rows() and the batched maxpool build these; the stacked
            # operands are a pure function of (al, bl, au, bu), so
            # _DenseBounds.build reproduces them bitwise on restore.
            meta.append({"t": "dense"})
            arrays[f"r{j}_al"] = _snap(rel.al)
            arrays[f"r{j}_bl"] = _snap(rel.bl)
            arrays[f"r{j}_au"] = _snap(rel.au)
            arrays[f"r{j}_bu"] = _snap(rel.bu)
        elif rel.al is rel.au:
            op = ops[j] if j < len(ops) else None
            if (
                isinstance(op, AffineOp)
                and rel.al is op.weight
                and rel.bl is op.bias
            ):
                # Shared exact-affine relation holding the op's own
                # arrays: store a marker, restore from ops_for(dtype) —
                # the prefix digest guarantees identical op arrays, and
                # the reference keeps the `al is au` exact-rewrite path.
                meta.append({"t": "affine"})
            else:
                meta.append({"t": "affine_arrays"})
                arrays[f"r{j}_al"] = _snap(rel.al)
                arrays[f"r{j}_bl"] = _snap(rel.bl)
        else:
            meta.append({"t": "layer"})
            arrays[f"r{j}_al"] = _snap(rel.al)
            arrays[f"r{j}_bl"] = _snap(rel.bl)
            arrays[f"r{j}_au"] = _snap(rel.au)
            arrays[f"r{j}_bu"] = _snap(rel.bu)
    return meta, arrays


def _restore_deeppoly_relations(meta, arrays, ops) -> list:
    relations: list = []
    for j, spec in enumerate(meta):
        t = spec["t"]
        if t == "diag":
            relations.append(
                _DiagBounds(
                    arrays[f"r{j}_dl"],
                    arrays[f"r{j}_du"],
                    arrays[f"r{j}_bu"],
                    bl=arrays[f"r{j}_bl"] if spec["bl"] else None,
                )
            )
        elif t == "dense":
            relations.append(
                _DenseBounds.build(
                    arrays[f"r{j}_al"],
                    arrays[f"r{j}_bl"],
                    arrays[f"r{j}_au"],
                    arrays[f"r{j}_bu"],
                )
            )
        elif t == "affine":
            op = ops[j]
            if not isinstance(op, AffineOp):
                raise ValueError(
                    f"checkpoint relation {j} expects an affine op, got "
                    f"{type(op).__name__}"
                )
            relations.append(
                _LayerBounds(op.weight, op.bias, op.weight, op.bias)
            )
        elif t == "affine_arrays":
            al = arrays[f"r{j}_al"]
            bl = arrays[f"r{j}_bl"]
            relations.append(_LayerBounds(al, bl, al, bl))
        elif t == "layer":
            relations.append(
                _LayerBounds(
                    arrays[f"r{j}_al"],
                    arrays[f"r{j}_bl"],
                    arrays[f"r{j}_au"],
                    arrays[f"r{j}_bu"],
                )
            )
        else:
            raise ValueError(f"unknown checkpoint relation kind {t!r}")
    return relations


def capture_element(element, ops) -> tuple[str, list | None, dict]:
    """Encode an abstract element as ``(kind, meta, arrays)``.

    ``ops`` is the lowered op sequence the element was propagated
    through (used to recognize DeepPoly relations that alias op arrays).
    """
    if isinstance(element, IntervalBatch):
        return (
            "interval_batch",
            None,
            {"low": _snap(element.low), "high": _snap(element.high)},
        )
    if isinstance(element, IntervalElement):
        return (
            "interval",
            None,
            {"low": _snap(element.low), "high": _snap(element.high)},
        )
    if isinstance(element, ZonotopeBatch):
        return (
            "zonotope_batch",
            None,
            {
                "centers": _snap(element.centers),
                "gens": _snap(element.gens),
                "errs": _snap(element.errs),
            },
        )
    if isinstance(element, Zonotope):
        return (
            "zonotope",
            None,
            {
                "center": _snap(element.center),
                "gens": _snap(element.gens),
                "err": _snap(element.err),
            },
        )
    if isinstance(element, DeepPolyBatch):
        meta, arrays = _capture_deeppoly_relations(element.layers, ops)
        arrays["box_low"] = _snap(element.box_low)
        arrays["box_high"] = _snap(element.box_high)
        return "deeppoly_batch", meta, arrays
    if isinstance(element, DeepPolyState):
        meta, arrays = _capture_deeppoly_relations(element.layers, ops)
        arrays["box_low"] = _snap(element.box.low)
        arrays["box_high"] = _snap(element.box.high)
        return "deeppoly", meta, arrays
    raise TypeError(
        f"no checkpoint codec for element type {type(element).__name__}"
    )


def restore_element(record: PrefixBounds, ops):
    """Decode a :class:`PrefixBounds` back into a live abstract element.

    The constructors used here are bitwise-idempotent on checkpoint
    data: ``IntervalElement``/``IntervalBatch`` re-apply
    ``np.maximum(high, low)`` (a fixpoint on stored bounds), the zonotope
    constructors only validate, and the DeepPoly states take their
    relation lists verbatim.
    """
    kind, arrays = record.kind, record.arrays
    if kind == "interval_batch":
        return IntervalBatch(arrays["low"], arrays["high"])
    if kind == "interval":
        return IntervalElement(arrays["low"], arrays["high"])
    if kind == "zonotope_batch":
        return ZonotopeBatch(arrays["centers"], arrays["gens"], arrays["errs"])
    if kind == "zonotope":
        return Zonotope(arrays["center"], arrays["gens"], arrays["err"])
    if kind == "deeppoly_batch":
        relations = _restore_deeppoly_relations(record.meta, arrays, ops)
        return DeepPolyBatch(arrays["box_low"], arrays["box_high"], relations)
    if kind == "deeppoly":
        relations = _restore_deeppoly_relations(record.meta, arrays, ops)
        return DeepPolyState(
            Box(arrays["box_low"], arrays["box_high"]), relations
        )
    raise ValueError(f"unknown checkpoint kind {kind!r}")
