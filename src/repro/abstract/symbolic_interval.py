"""Symbolic interval analysis in the style of ReluVal/Neurify.

Activations are bounded by *affine functions of the network input* rather
than constants: ``Al·x + bl <= h(x) <= Au·x + bu`` for all ``x`` in the
input box.  Affine layers transform the bounds exactly; crossing ReLUs
relax them with the standard chord (upper) and scaled-line (lower)
relaxations.  Because lower and upper equations share the input variables,
the output margin check stays relational — the property that lets ReluVal
beat plain interval propagation.

Used by the ReluVal baseline (:mod:`repro.baselines.reluval`).  Max pooling
is unsupported, matching the original tool (the paper excludes the conv
network from the ReluVal/Reluplex comparison for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import AffineOp, MaxPoolOp, Network, PadOp, ReluOp
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


def _affine_bounds_over_box(
    a: np.ndarray, b: np.ndarray, box: Box
) -> tuple[np.ndarray, np.ndarray]:
    """Concrete range of ``A x + b`` for ``x`` in ``box``."""
    pos = np.maximum(a, 0.0)
    neg = np.minimum(a, 0.0)
    low = pos @ box.low + neg @ box.high + b
    high = pos @ box.high + neg @ box.low + b
    return low, high


@dataclass
class SymbolicInterval:
    """Affine lower/upper bounds of a layer's activations over ``box``.

    Attributes:
        al, bl: the lower equations ``Al x + bl``.
        au, bu: the upper equations ``Au x + bu``.
        box: the input region both bounds quantify over.
    """

    al: np.ndarray
    bl: np.ndarray
    au: np.ndarray
    bu: np.ndarray
    box: Box

    @staticmethod
    def identity(box: Box) -> "SymbolicInterval":
        n = box.ndim
        eye = np.eye(n)
        zero = np.zeros(n)
        return SymbolicInterval(eye.copy(), zero.copy(), eye.copy(), zero.copy(), box)

    @property
    def size(self) -> int:
        return self.bl.size

    # ------------------------------------------------------------------
    # Concretization
    # ------------------------------------------------------------------

    def concrete_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-unit concrete bounds implied by the equations."""
        low, _ = _affine_bounds_over_box(self.al, self.bl, self.box)
        _, high = _affine_bounds_over_box(self.au, self.bu, self.box)
        return low, high

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "SymbolicInterval":
        pos = np.maximum(weight, 0.0)
        neg = np.minimum(weight, 0.0)
        al = pos @ self.al + neg @ self.au
        bl = pos @ self.bl + neg @ self.bu + bias
        au = pos @ self.au + neg @ self.al
        bu = pos @ self.bu + neg @ self.bl + bias
        return SymbolicInterval(al, bl, au, bu, self.box)

    def relu(self) -> "SymbolicInterval":
        lower_lo, lower_hi = _affine_bounds_over_box(self.al, self.bl, self.box)
        upper_lo, upper_hi = _affine_bounds_over_box(self.au, self.bu, self.box)
        al, bl = self.al.copy(), self.bl.copy()
        au, bu = self.au.copy(), self.bu.copy()
        for i in range(self.size):
            if lower_lo[i] >= 0.0:
                continue  # provably active: identity
            if upper_hi[i] <= 0.0:
                al[i], bl[i] = 0.0, 0.0  # provably inactive: zero
                au[i], bu[i] = 0.0, 0.0
                continue
            # Upper equation: chord over its own range when it crosses.
            if upper_lo[i] < 0.0:
                span = upper_hi[i] - upper_lo[i]
                lam = upper_hi[i] / span if span > 0 else 0.0
                au[i] *= lam
                bu[i] = lam * (bu[i] - upper_lo[i])
            # Lower equation: zero if it can only be negative, else scale.
            if lower_hi[i] <= 0.0:
                al[i], bl[i] = 0.0, 0.0
            else:
                span = lower_hi[i] - lower_lo[i]
                lam = lower_hi[i] / span if span > 0 else 0.0
                al[i] *= lam
                bl[i] *= lam
        return SymbolicInterval(al, bl, au, bu, self.box)

    def maxpool(self, windows: np.ndarray) -> "SymbolicInterval":
        raise TypeError(
            "symbolic intervals do not support max pooling "
            "(ReluVal excludes convolutional networks)"
        )

    def pad(self, radii: np.ndarray) -> "SymbolicInterval":
        """Shift the bound equations' constant terms outward: both bounds
        stay affine in the input, so relational margins survive the pad."""
        return SymbolicInterval(
            self.al, self.bl - radii, self.au, self.bu + radii, self.box
        )

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`concrete_bounds` (analyzer-facing name)."""
        return self.concrete_bounds()

    # ------------------------------------------------------------------
    # Margin check
    # ------------------------------------------------------------------

    def lower_margin(self, label: int, other: int) -> float:
        """Relational lower bound on ``y_label - y_other`` over the box:
        the minimum of the affine form ``lower_label(x) - upper_other(x)``."""
        a = self.al[label] - self.au[other]
        b = self.bl[label] - self.bu[other]
        low, _ = _affine_bounds_over_box(a[None, :], np.array([b]), self.box)
        return float(low[0])

    def min_margin(self, label: int) -> float:
        return min(
            self.lower_margin(label, j) for j in range(self.size) if j != label
        )


def symbolic_analyze(
    network: Network,
    region: Box,
    label: int,
    deadline: Deadline | None = None,
) -> tuple[bool, float]:
    """Symbolic-interval verification attempt.

    Returns ``(verified, margin_lower_bound)``.  Raises ``TypeError`` on
    networks with max pooling (unsupported, as in the original ReluVal).
    """
    element = SymbolicInterval.identity(region)
    for op in network.ops():
        if deadline is not None:
            deadline.check()
        if isinstance(op, AffineOp):
            element = element.affine(op.weight, op.bias)
        elif isinstance(op, ReluOp):
            element = element.relu()
        elif isinstance(op, MaxPoolOp):
            raise TypeError(
                "symbolic intervals do not support max pooling "
                "(ReluVal excludes convolutional networks)"
            )
        elif isinstance(op, PadOp):
            element = element.pad(op.radii)
        else:
            raise TypeError(f"unknown op type {type(op).__name__}")
    margin = element.min_margin(label)
    return margin > 0.0, margin
