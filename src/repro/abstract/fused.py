"""Fused zonotope split+join contraction kernels.

The ReLU case-split loop of the zonotope family is memory-bandwidth
bound: one contraction round of the PR-5 kernels
(``_stacked_relu_split`` followed by ``_stacked_join``) materializes a
dozen-plus ``(R, k, n)`` temporaries — both branch generator tensors,
their absolute values and signs, the sign-agreement mask, and the pad
differences — before throwing every one of them away.  This module fuses
the split, the negative-branch projection, and the join into a single
pass over preallocated scratch buffers (:class:`ScratchArena`), chained
through ``np.multiply(..., out=)`` / ``np.add(..., out=)`` so the steady
state allocates nothing per round.

**Bitwise contract.**  :func:`fused_split_join` computes exactly the
float sequence of the unfused composition ``_stacked_join(*
_stacked_relu_split(...))`` — same operations, same operand order, with
``out=`` variants of the same ufuncs — so its results are bitwise equal
to the reference path (pinned by ``benchmarks/bench_zonotope_batch.py``).
Every reduction and product is batch-height-stable, which keeps the
sequential ``Zonotope.relu`` (the ``R == 1`` instantiation of
:func:`stacked_relu`) bitwise equal to batched rows at any height.

**Generator compaction.**  Splits and joins zero out noise symbols: a
join keeps a generator row only where the two branches' signs agree, so
rows decay to exactly zero as the contraction loop progresses (and error
promotion of an exactly-zero error term creates zero rows at birth).
:func:`stacked_relu` drops rows that are zero across the whole stack
before the round loop and re-checks after every join round, shrinking
``k`` for all later rounds.  Compaction is *internal*: the output is
scattered back to the caller's full ``k`` with zero rows restored, so
representation shapes never change across the transformer boundary.

Dropping zero rows is value-preserving only because every reduction over
the generator axis here is *strictly sequential in k*:

- radius/pad sums reduce ``(R, k, n)`` over ``axis=1`` — a strided axis,
  which numpy accumulates sequentially (adding an exact-zero term is the
  identity, up to the sign of a zero);
- the contraction ``total`` and stale-radius column sums go through
  :func:`gen_sum`, which lays the ``(R, k)`` operand out ``(k, R)``
  C-contiguous so the reduced axis is strided (numpy's pairwise
  summation only triggers on the contiguous inner axis, and pairwise
  order is *not* invariant to dropping zero entries);
- the branch-center product runs as ``einsum("rjk,rkn->rjn")``, whose
  accumulation loop over ``k`` is sequential (and height-stable, unlike
  BLAS GEMV-vs-GEMM routing).

Results under compaction are therefore ``==``-equal to the uncompacted
path everywhere (signed zeros may differ in bit pattern; ``-0.0 == 0.0``
is what every equality pin in the test suite compares).  The
``--no-compaction`` CLI flag (or ``REPRO_NO_COMPACTION=1``, which spawn
workers inherit) selects the reference path; it toggles only the row
dropping, never the reduction forms, so both settings stay comparable.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.backend import slack_for as _slack_for
from repro.obs.metrics import registry as _metrics_registry

#: Coefficients at or below this magnitude are treated as untouched by
#: symbol contraction and sign-agreement tests (canonical home; re-used
#: by :mod:`repro.abstract.zonotope` and the batched kernels).
_COEF_TOL = 1e-12

_TRUTHY = ("1", "true", "yes", "on")

_compaction_on = os.environ.get("REPRO_NO_COMPACTION", "").lower() not in _TRUTHY

#: Structural counters for the bench-side regression guards.  ``calls``
#: counts fused split+join invocations; ``arena_allocs`` counts scratch
#: block (re)allocations and must stay flat once shapes stabilize;
#: ``arena_reuses`` counts requests served without allocating;
#: ``compacted_rows`` accumulates generator rows dropped by compaction.
#:
#: The dict lives in the :mod:`repro.obs.metrics` registry as the
#: ``fused`` counter group; this module-level alias is the same object
#: (snapshots see ``fused.calls`` etc., worker deltas merge back into
#: it), and the hot-path increment idiom is unchanged.
FUSED_COUNTERS = _metrics_registry().group(
    "fused", ("calls", "arena_allocs", "arena_reuses", "compacted_rows")
)


def compaction_enabled() -> bool:
    return _compaction_on


def set_compaction(enabled: bool) -> bool:
    """Set the compaction switch; returns the previous value.

    The switch is process-global: the CLI exports ``REPRO_NO_COMPACTION``
    *before* building a process executor so spawn workers inherit the
    same setting and stay bitwise comparable to the parent.
    """
    global _compaction_on
    previous = _compaction_on
    _compaction_on = bool(enabled)
    return previous


def reset_counters() -> dict:
    """Zero the structural counters, returning the pre-reset snapshot."""
    snapshot = dict(FUSED_COUNTERS)
    for key in FUSED_COUNTERS:
        FUSED_COUNTERS[key] = 0
    return snapshot


def gen_sum(stack: np.ndarray) -> np.ndarray:
    """Sum ``(R, k)`` over the generator axis, strictly sequentially.

    Equivalent in exact arithmetic to ``stack.sum(axis=1)``, but the
    operand is transposed into a ``(k, width)`` C-contiguous buffer so
    the reduction runs down a strided axis: numpy accumulates those
    left-to-right instead of pairwise, which makes the result invariant
    (up to zero signs) under inserting or dropping exact-zero entries —
    the property generator compaction relies on.  A zero pad column
    keeps the inner width >= 2 (numpy collapses width-1 reductions back
    to the pairwise 1-D path), so the association is identical at every
    ``R``, including the sequential transformer's ``R == 1``.
    """
    rows, k = stack.shape
    buf = np.zeros((k, max(rows, 2)), dtype=stack.dtype)
    buf[:, :rows] = stack.T
    return np.add.reduce(buf, axis=0)[:rows]


class ScratchArena:
    """Per-thread scratch blocks for the fused kernel, keyed on dtype and
    trailing shape with grow-only row capacity.

    A request for ``nbuf`` buffers of shape ``(r, k, n)`` is served from
    one ``(nbuf, capacity, k, n)`` block by slicing the leading rows —
    views stay C-contiguous, so ``out=`` ufunc chains and ``einsum``
    treat them as ordinary arrays.  Buffers are only valid until the next
    request with the same key (the round loop copies results out before
    its next iteration).  Arenas are thread-local
    (:func:`_thread_arena`): pooled executors run kernel calls on
    several threads at once and must not share scratch.
    """

    def __init__(self) -> None:
        self._blocks: dict[tuple, np.ndarray] = {}

    def request(
        self, nbuf: int, r: int, k: int, n: int, dtype=np.float64, tag: str = ""
    ) -> list[np.ndarray]:
        # The tag keeps same-shape requests from one kernel invocation on
        # distinct blocks (e.g. (R, k, n) tensors vs (R, 2, k) symbol
        # ranges when k == n == 2 would otherwise alias).
        key = (tag, np.dtype(dtype).char, k, n)
        block = self._blocks.get(key)
        if block is None or block.shape[0] < nbuf or block.shape[1] < r:
            capacity = r if block is None else max(r, block.shape[1])
            count = nbuf if block is None else max(nbuf, block.shape[0])
            block = np.empty((count, capacity, k, n), dtype=dtype)
            self._blocks[key] = block
            FUSED_COUNTERS["arena_allocs"] += 1
        else:
            FUSED_COUNTERS["arena_reuses"] += 1
        return [block[i, :r] for i in range(nbuf)]


_TLS = threading.local()


def _thread_arena() -> ScratchArena:
    arena = getattr(_TLS, "arena", None)
    if arena is None:
        arena = _TLS.arena = ScratchArena()
    return arena


def fused_split_join(
    centers: np.ndarray,
    gens: np.ndarray,
    errs: np.ndarray,
    rows: np.ndarray,
    dims: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split + project + join for many ``(row, dim)`` pairs in one pass.

    Returns ``(center, gens, err)`` of the joined branches, shapes
    ``(R, n) / (R, k, n) / (R, n)``.  Bitwise equal to
    ``_stacked_join(*_stacked_relu_split(...))`` on the same inputs.
    The generator output is a scratch-arena view valid only until this
    thread's next fused call — callers copy it out immediately (the
    round loop's ``gens[s_rows] = ...`` write-back does exactly that).
    """
    count = rows.size
    k, n = gens.shape[1], gens.shape[2]
    arena = _thread_arena()
    FUSED_COUNTERS["calls"] += 1
    # Five (R, k, n) float buffers and three bool masks, reused across
    # rounds: sub(-> joined gens), both branch tensors, two abs/sign
    # scratch tensors.  No other (R, k, n) arrays are created.
    dtype = gens.dtype
    sub, g_pos, g_neg, t1, t2 = arena.request(5, count, k, n, dtype=dtype)
    m1, m2, m3 = arena.request(3, count, k, n, dtype=bool)
    lo_sym, hi_sym, half = arena.request(3, count, 2, k, dtype=dtype, tag="sym")

    # mode="clip" writes straight into sub; the default mode="raise"
    # bounce-buffers the gather through a fresh (R, k, n) temporary
    # (rows come from flatnonzero/argsort and are always in bounds).
    np.take(gens, rows, axis=0, out=sub, mode="clip")
    coeffs = gens[rows, :, dims]  # (R, k) contiguous gather
    abs_coeffs = np.abs(coeffs)
    total = gen_sum(abs_coeffs) + errs[rows, dims]
    touched = abs_coeffs > _COEF_TOL
    rest = total[:, None] - abs_coeffs
    c = centers[rows, dims][:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        pos_bound = (-c - rest) / coeffs
        neg_bound = (-c + rest) / coeffs
    pos_lower = touched & (coeffs > 0)
    pos_upper = touched & ~pos_lower
    lo_sym.fill(-1.0)
    hi_sym.fill(1.0)
    np.copyto(lo_sym[:, 0], np.maximum(lo_sym[:, 0], pos_bound), where=pos_lower)
    np.copyto(hi_sym[:, 0], np.minimum(hi_sym[:, 0], pos_bound), where=pos_upper)
    np.copyto(lo_sym[:, 1], np.maximum(lo_sym[:, 1], neg_bound), where=pos_upper)
    np.copyto(hi_sym[:, 1], np.minimum(hi_sym[:, 1], neg_bound), where=pos_lower)
    np.minimum(lo_sym, hi_sym, out=lo_sym)  # guard against numeric inversion
    np.subtract(hi_sym, lo_sym, out=half)
    half /= 2.0
    mid = lo_sym  # (lo + hi) / 2 overwrites lo_sym, which is dead after
    np.add(lo_sym, hi_sym, out=mid)
    mid /= 2.0
    branch_centers = np.einsum("rjk,rkn->rjn", mid, sub)
    branch_centers += centers[rows][:, None, :]
    pos_c = branch_centers[:, 0]
    neg_c = branch_centers[:, 1]
    np.multiply(sub, half[:, 0][:, :, None], out=g_pos)
    np.multiply(sub, half[:, 1][:, :, None], out=g_neg)
    pos_e = errs[rows]
    neg_e = errs[rows]
    span = np.arange(count)
    neg_c[span, dims] = 0.0
    g_neg[span, :, dims] = 0.0
    neg_e[span, dims] = 0.0

    # ---- join, in place over the scratch tensors ---------------------
    np.abs(g_pos, out=t1)  # |g1|
    np.abs(g_neg, out=t2)  # |g2|
    rad1 = t1.sum(axis=1) + pos_e
    rad2 = t2.sum(axis=1) + neg_e
    lo = np.minimum(pos_c - rad1, neg_c - rad2)
    hi = np.maximum(pos_c + rad1, neg_c + rad2)
    center = (lo + hi) / 2.0
    # same_sign = (sign(g1) == sign(g2)) & (|g1| > tol), decomposed into
    # strict-sign clauses so the sign tensors never materialize: where
    # |g1| > tol the sign of g1 is +-1, and a zero g2 fails both clauses
    # exactly as sign(0) fails the equality.
    np.greater(g_pos, _COEF_TOL, out=m1)
    np.greater(g_neg, 0.0, out=m2)
    np.logical_and(m1, m2, out=m1)
    np.less(g_pos, -_COEF_TOL, out=m2)
    np.less(g_neg, 0.0, out=m3)
    np.logical_and(m2, m3, out=m2)
    np.logical_or(m1, m2, out=m1)  # same_sign
    # sign(g1) * min(|g1|, |g2|) == copysign(min(|g1|, |g2|), g1) under
    # same_sign (where g1 is strictly signed).
    np.minimum(t1, t2, out=t1)
    np.copysign(t1, g_pos, out=t1)
    joined = sub  # the gather is dead; reuse it for the joined gens
    joined.fill(0.0)
    np.copyto(joined, t1, where=m1)
    np.subtract(g_pos, joined, out=g_pos)
    np.abs(g_pos, out=g_pos)
    pad1 = g_pos.sum(axis=1)
    pad1 += np.abs(pos_c - center)
    pad1 += pos_e
    np.subtract(g_neg, joined, out=g_neg)
    np.abs(g_neg, out=g_neg)
    pad2 = g_neg.sum(axis=1)
    pad2 += np.abs(neg_c - center)
    pad2 += neg_e
    return center, joined, np.maximum(pad1, pad2)


def _compact(
    work_gens: np.ndarray, live: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop generator rows that are exactly zero across the whole stack.

    Returns the (possibly new) work tensor and the surviving original
    row indices.  No-ops (no copy) when every row carries mass.
    """
    alive = np.flatnonzero((work_gens != 0.0).any(axis=(0, 2)))
    if alive.size == work_gens.shape[1]:
        return work_gens, live
    FUSED_COUNTERS["compacted_rows"] += work_gens.shape[1] - alive.size
    return work_gens[:, alive, :], live[alive]


def stacked_relu(
    centers: np.ndarray,
    gens: np.ndarray,
    errs: np.ndarray,
    skips: list[frozenset],
    radius: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``Zonotope.relu(skip_dims)`` for every row, batched and fused.

    The no-crossing clamp runs in one elementwise pass; the residual
    data-dependent case-split loop runs in *rounds*: round ``t``
    processes the ``t``-th entry of every row's private widest-first
    crossing order, so the split+join contraction vectorizes across rows
    while each row still sees its dims in exactly the sequential order.
    The sequential transformer is the ``R == 1`` instantiation (every
    product and reduction is height-stable), which is what keeps batched
    rows bitwise equal to :class:`~repro.abstract.zonotope.Zonotope`.

    ``radius`` optionally passes the caller's already-computed pre-clamp
    radii (the batched analogue of the sequential radius cache).

    Inputs are never mutated; with compaction enabled the round loop
    runs at the live-row ``k`` and the output generators are scattered
    back to the input ``k`` with zero rows restored (see the module
    docstring for why that is value-preserving).
    """
    rows = centers.shape[0]
    # --- one-pass no-crossing clamp ----------------------------------
    if radius is None:
        radius = np.abs(gens).sum(axis=1) + errs
    dead = centers + radius <= 0.0
    for r, skip in enumerate(skips):
        if skip:
            dead[r, list(skip)] = False
    centers = np.where(dead, 0.0, centers)
    work_gens = np.where(dead[:, None, :], 0.0, gens)
    errs = np.where(dead, 0.0, errs)
    # Sequential elements re-derive their radius cache on the clamped
    # arrays (zeroed columns sum to exactly 0, untouched columns are
    # unchanged, so this equals patching the cache) — only clamped rows
    # can have changed.
    clamped = dead.any(axis=1)
    if clamped.any():
        radius = radius.copy()
        radius[clamped] = (
            np.abs(work_gens[clamped]).sum(axis=1) + errs[clamped]
        )
    low = centers - radius
    high = centers + radius
    orders = [_crossing_order(low[r], high[r]) for r in range(rows)]
    # --- generator compaction ----------------------------------------
    full_k = gens.shape[1]
    live = None
    if _compaction_on and full_k:
        work_gens, live = _compact(work_gens, np.arange(full_k))
    # ``fresh`` mirrors the sequential radius cache: a row keeps using its
    # post-clamp radii until its first projection or split invalidates
    # them, after which per-dim bounds come from fresh column sums.
    fresh = np.ones(rows, dtype=bool)
    for position in range(max((len(o) for o in orders), default=0)):
        todo = [
            (r, int(orders[r][position]))
            for r in range(rows)
            if position < len(orders[r])
            and int(orders[r][position]) not in skips[r]
        ]
        if not todo:
            continue
        t_rows = np.array([r for r, _ in todo])
        t_dims = np.array([d for _, d in todo])
        rad = np.empty(len(todo), dtype=centers.dtype)
        cached = fresh[t_rows]
        if cached.any():
            rad[cached] = radius[t_rows[cached], t_dims[cached]]
        stale = ~cached
        if stale.any():
            cols = work_gens[t_rows[stale], :, t_dims[stale]]  # (S, k)
            rad[stale] = (
                gen_sum(np.abs(cols)) + errs[t_rows[stale], t_dims[stale]]
            )
        c = centers[t_rows, t_dims]
        project = c + rad <= 0.0
        split = ~project & (c - rad < 0.0)
        p_rows, p_dims = t_rows[project], t_dims[project]
        if p_rows.size:
            centers[p_rows, p_dims] = 0.0
            work_gens[p_rows, :, p_dims] = 0.0
            errs[p_rows, p_dims] = 0.0
            fresh[p_rows] = False
        s_rows, s_dims = t_rows[split], t_dims[split]
        if s_rows.size:
            joined = fused_split_join(
                centers, work_gens, errs, s_rows, s_dims
            )
            centers[s_rows] = joined[0]
            work_gens[s_rows] = joined[1]
            errs[s_rows] = joined[2]
            fresh[s_rows] = False
            # Joins are the row-zeroing operation: re-check liveness so
            # later rounds run at the shrunken k.
            if live is not None and work_gens.shape[1]:
                work_gens, live = _compact(work_gens, live)
    scale = _slack_for(centers.dtype, gens.shape[1] + 4)
    if scale:
        # Outward rounding (float32 path): cover the round loop's fused
        # contraction round-off so the stacked result always contains the
        # reference-precision one (validated by the containment fuzz).
        errs = errs + scale * (
            np.abs(centers) + np.abs(work_gens).sum(axis=1) + errs
        )
    if live is not None and live.size < full_k:
        out_gens = np.zeros((rows, full_k, centers.shape[1]), dtype=centers.dtype)
        out_gens[:, live, :] = work_gens
        return centers, out_gens, errs
    return centers, work_gens, errs


def _crossing_order(low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """One row's crossing dims, widest first (``Zonotope.crossing_dims``)."""
    crossing = np.flatnonzero((low < 0.0) & (high > 0.0))
    widths = high[crossing] - low[crossing]
    return crossing[np.argsort(-widths, kind="stable")]
