"""Bounded powerset domains: up to ``k`` disjuncts of a base domain.

This is the paper's ``(d, k)`` domain family (§4.1): the domain policy picks
a base domain and a disjunct budget, and ReLU case splits populate the
disjuncts.  With ``k = 1`` the powerset degenerates to the base domain; with
larger ``k`` it retains the case splits that the plain domains would have
joined away (Figure 4's bottom row).

Splitting strategy: crossing dimensions are ranked by their maximum width
across disjuncts (widest first — the widest crossing loses the most
precision when joined) and split while the budget allows; all remaining
ReLU behaviour is delegated to the base domain's transformer.

Disjuncts of a zonotope powerset always share one generator shape (the
affine transformer promotes error terms unconditionally to guarantee it),
so the per-disjunct transformer loops vectorize: ``affine`` stacks all
disjuncts into ``(D, k, n)`` tensors and runs fused GEMMs, and the final
ReLU pass batches the dead-dimension clamp for every disjunct whose
remaining dimensions no longer cross zero — the common case once the case
splits above have consumed the crossings.  Disjuncts that still need
data-dependent case handling fall back to the per-element transformer with
identical results.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.element import AbstractElement
from repro.abstract.zonotope import Zonotope


class PowersetElement(AbstractElement):
    """A finite union of base-domain elements, capped at ``max_disjuncts``."""

    def __init__(self, elements: list[AbstractElement], max_disjuncts: int) -> None:
        if max_disjuncts < 1:
            raise ValueError(f"max_disjuncts must be >= 1, got {max_disjuncts}")
        if not elements:
            raise ValueError("a powerset element needs at least one disjunct")
        sizes = {e.size for e in elements}
        if len(sizes) != 1:
            raise ValueError(f"disjuncts disagree on dimension: {sizes}")
        if len(elements) > max_disjuncts:
            raise ValueError(
                f"{len(elements)} disjuncts exceed the budget of {max_disjuncts}"
            )
        self.elements = list(elements)
        self.max_disjuncts = max_disjuncts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.elements[0].size

    @property
    def num_disjuncts(self) -> int:
        return len(self.elements)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        lows, highs = zip(*(e.bounds() for e in self.elements))
        return np.minimum.reduce(lows), np.maximum.reduce(highs)

    def __repr__(self) -> str:
        return (
            f"PowersetElement(size={self.size}, "
            f"disjuncts={self.num_disjuncts}/{self.max_disjuncts})"
        )

    # ------------------------------------------------------------------
    # Transformers
    # ------------------------------------------------------------------

    def _wrap(self, elements: list[AbstractElement]) -> "PowersetElement":
        return PowersetElement(elements, self.max_disjuncts)

    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "PowersetElement":
        stacked = self._stacked_zonotopes(self.elements)
        if stacked is None:
            return self._wrap([e.affine(weight, bias) for e in self.elements])
        # One fused GEMM pair over all disjuncts instead of D small ones;
        # row d reproduces Zonotope.affine on disjunct d exactly (the error
        # promotion included — see that method's docstring).
        centers, gens, errs = stacked
        disjuncts, num_gens, n = gens.shape
        out = weight.shape[0]
        # einsum keeps the center rows bitwise equal to Zonotope.affine
        # at every disjunct count (see that method's docstring).
        new_centers = np.einsum("ij,dj->di", weight, centers) + bias
        rotated = (gens.reshape(disjuncts * num_gens, n) @ weight.T).reshape(
            disjuncts, num_gens, out
        )
        promoted = errs[:, :, None] * weight.T[None, :, :]
        new_gens = np.concatenate([rotated, promoted], axis=1)
        return self._wrap(
            [
                Zonotope._make(new_centers[d], new_gens[d], np.zeros(out))
                for d in range(disjuncts)
            ]
        )

    @staticmethod
    def _stacked_zonotopes(
        elements: list[AbstractElement],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """``(centers, gens, errs)`` stacked over disjuncts, or ``None``
        when the disjuncts are not same-shape plain zonotopes."""
        if not all(type(e) is Zonotope for e in elements):
            return None
        shape = elements[0].gens.shape
        if any(e.gens.shape != shape for e in elements[1:]):
            return None
        return (
            np.stack([e.center for e in elements]),
            np.stack([e.gens for e in elements]),
            np.stack([e.err for e in elements]),
        )

    def maxpool(self, windows: np.ndarray) -> "PowersetElement":
        return self._wrap([e.maxpool(windows) for e in self.elements])

    def pad(self, radii: np.ndarray) -> "PowersetElement":
        # Applies identically to every disjunct (generator shapes are
        # untouched, so siblings stay joinable).
        return self._wrap([e.pad(radii) for e in self.elements])

    def relu(self, skip_dims: frozenset[int] = frozenset()) -> "PowersetElement":
        # Each disjunct tracks the dims it was split on: a split branch
        # already over-approximates the ReLU image on that dim, so the final
        # base-domain pass must not re-process it (it would re-join the
        # residual tail and throw away the precision the split bought).
        current: list[tuple[AbstractElement, frozenset[int]]] = [
            (e, skip_dims) for e in self.elements
        ]
        budget = self.max_disjuncts
        for dim in self._ranked_crossing_dims(self.elements):
            if len(current) >= budget:
                break
            nxt: list[tuple[AbstractElement, frozenset[int]]] = []
            for i, (element, done) in enumerate(current):
                lo, hi = element.dim_bounds(dim)
                would_total = len(nxt) + (len(current) - i) + 1
                if lo < 0.0 < hi and dim not in done and would_total <= budget:
                    pos, neg = element.relu_split(dim)
                    nxt.append((pos, done | {dim}))
                    nxt.append((neg, done | {dim}))
                else:
                    nxt.append((element, done))
            current = nxt
        # Whatever crossing behaviour remains (budget exhausted, residual
        # tails after contraction) is handled by the base transformer —
        # batched across disjuncts for the common no-crossing case.
        return self._wrap(self._final_relu(current))

    @staticmethod
    def _final_relu(
        current: list[tuple[AbstractElement, frozenset[int]]],
    ) -> list[AbstractElement]:
        """The per-disjunct base ReLU pass, vectorized where data allows.

        A zonotope disjunct whose un-skipped dimensions never cross zero
        reduces to the dead-dimension clamp, an elementwise operation that
        batches across disjuncts (per generator shape) with bit-identical
        results.  Disjuncts with residual crossings — data-dependent case
        splits — keep the per-element transformer.
        """
        out: list[AbstractElement | None] = [None] * len(current)
        clampable: dict[tuple, list[tuple[int, Zonotope, frozenset, np.ndarray]]] = {}
        for i, (element, done) in enumerate(current):
            if type(element) is not Zonotope:
                out[i] = element.relu(skip_dims=done)
                continue
            low, high = element.bounds()
            crossing = (low < 0.0) & (high > 0.0)
            if done and crossing.any():
                crossing = crossing.copy()
                crossing[list(done)] = False
            if crossing.any():
                out[i] = element.relu(skip_dims=done)
            else:
                clampable.setdefault(element.gens.shape, []).append(
                    (i, element, done, high)
                )
        for entries in clampable.values():
            dead = np.stack([high <= 0.0 for _, _, _, high in entries])
            for row, (_, _, done, _) in enumerate(entries):
                if done:
                    dead[row, list(done)] = False
            rows_dead = dead.any(axis=1)
            if rows_dead.any():
                centers = np.stack([e.center for _, e, _, _ in entries])
                gens = np.stack([e.gens for _, e, _, _ in entries])
                errs = np.stack([e.err for _, e, _, _ in entries])
                centers = np.where(dead, 0.0, centers)
                gens = np.where(dead[:, None, :], 0.0, gens)
                errs = np.where(dead, 0.0, errs)
            for row, (i, element, _, _) in enumerate(entries):
                if rows_dead[row]:
                    out[i] = Zonotope._make(
                        centers[row], gens[row], errs[row]
                    )
                else:
                    # No dead dims either: the ReLU is the identity here
                    # (matches ``_clamp_nonpositive`` returning ``self``).
                    out[i] = element
        return out

    @staticmethod
    def _ranked_crossing_dims(elements: list[AbstractElement]) -> list[int]:
        """Union of crossing dims, ordered by maximum width across disjuncts."""
        width_by_dim: dict[int, float] = {}
        for element in elements:
            low, high = element.bounds()
            for dim in np.flatnonzero((low < 0.0) & (high > 0.0)):
                width = float(high[dim] - low[dim])
                dim = int(dim)
                if width > width_by_dim.get(dim, 0.0):
                    width_by_dim[dim] = width
        return sorted(width_by_dim, key=lambda d: -width_by_dim[d])

    # ------------------------------------------------------------------
    # Case-split hooks
    # ------------------------------------------------------------------

    def crossing_dims(self) -> np.ndarray:
        return np.asarray(self._ranked_crossing_dims(self.elements), dtype=np.int64)

    def relu_split(self, dim: int) -> tuple["AbstractElement", "AbstractElement"]:
        raise TypeError("powerset domains cannot be nested inside a powerset")

    def relu_dim(self, dim: int) -> "PowersetElement":
        return self._wrap([e.relu_dim(dim) for e in self.elements])

    def join(self, other: "AbstractElement") -> "PowersetElement":
        if not isinstance(other, PowersetElement):
            raise TypeError("cannot join powerset with non-powerset element")
        budget = max(self.max_disjuncts, other.max_disjuncts)
        merged = self.elements + other.elements
        while len(merged) > budget:
            # Fold the two disjuncts whose centers are closest — they lose
            # the least volume when joined.
            centers = [np.add(*e.bounds()) / 2.0 for e in merged]
            best, best_dist = (0, 1), np.inf
            for i in range(len(merged)):
                for j in range(i + 1, len(merged)):
                    dist = float(np.linalg.norm(centers[i] - centers[j]))
                    if dist < best_dist:
                        best, best_dist = (i, j), dist
            i, j = best
            joined = merged[i].join(merged[j])
            merged = [e for k, e in enumerate(merged) if k not in (i, j)]
            merged.append(joined)
        return PowersetElement(merged, budget)

    # ------------------------------------------------------------------
    # Margins
    # ------------------------------------------------------------------

    def lower_margin(self, label: int, other: int) -> float:
        """Union semantics: the bound must hold for every disjunct."""
        return min(e.lower_margin(label, other) for e in self.elements)

    def min_margin(self, label: int) -> float:
        return min(e.min_margin(label) for e in self.elements)
