"""The batched-element interface every batched domain kernel implements.

A :class:`BatchedElement` over-approximates ``B`` independent sets of
activation vectors at one point in the network — one row per input region —
and advances all of them through each transformer with stacked array
kernels instead of a per-region Python loop.  This is the §6 "independent
sub-region analyses" opportunity realized as batching; the protocol was
extracted from ``IntervalBatch`` / ``DeepPolyBatch`` (PR 1) so the
zonotope and powerset kernels plug into the same dispatch
(:meth:`repro.abstract.domains.DomainSpec.lift_batch`) without the
analyzer special-casing any domain.

**Row contract.**  Row ``i`` of a batched element must mean exactly what
the corresponding sequential element means for region ``i`` alone.  How
tight that "exactly" is depends on the domain's arithmetic:

- The zonotope-family kernels (``ZonotopeBatch`` / ``PowersetBatch``) are
  *batch-height-stable by construction*: every reduction and product is
  phrased so a row's float sequence is independent of how many rows share
  the kernel call (fixed-shape per-slice GEMMs, per-row contiguous
  reductions, einsum mat-vecs).  Batch-vs-single results are bitwise
  identical, which is what lets the scheduler fuse zonotope sweeps across
  jobs without perturbing any job's outcome.
- The interval and DeepPoly kernels run GEMMs whose operand shapes include
  the batch height, so rows agree with the sequential elements up to BLAS
  kernel round-off (bounded at 1e-12 / 1e-9 by the equivalence tests).

``row``/``rows`` recover per-region views: ``row(i)`` yields the
sequential element type for region ``i`` (used for result reporting),
``rows(indices)`` the sub-batch (used for per-label margin checks over
mixed-label batches).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class BatchedElement(ABC):
    """Sound over-approximations of ``B`` regions, one row per region."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def batch_size(self) -> int:
        """Number of regions in the batch."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Dimension of each region's concretization."""

    @abstractmethod
    def row(self, i: int):
        """Region ``i``'s state as the matching sequential element."""

    @abstractmethod
    def rows(self, indices) -> "BatchedElement":
        """The sub-batch holding the given rows."""

    # ------------------------------------------------------------------
    # Transformers (mirror the lowered op sequence)
    # ------------------------------------------------------------------

    @abstractmethod
    def affine(self, weight: np.ndarray, bias: np.ndarray) -> "BatchedElement":
        """Image of every row under ``x -> W x + b``."""

    @abstractmethod
    def relu(self) -> "BatchedElement":
        """Image of every row under element-wise ``max(x, 0)``."""

    @abstractmethod
    def maxpool(self, windows: np.ndarray) -> "BatchedElement":
        """Image of every row under per-window max."""

    def pad(self, radii: np.ndarray) -> "BatchedElement":
        """Image of every row under independent per-dimension error
        ``y_j = x_j + e_j, |e_j| <= radii_j`` (see
        :meth:`repro.abstract.element.AbstractElement.pad`)."""
        raise TypeError(
            f"{type(self).__name__} does not implement the pad transformer"
        )

    # ------------------------------------------------------------------
    # Property checking
    # ------------------------------------------------------------------

    @abstractmethod
    def min_margin(self, label: int) -> np.ndarray:
        """Per-region sound lower bound on ``min_{j≠K} (y_K - y_j)``,
        shape ``(B,)`` — the analyzer's verification condition is
        ``min_margin(K) > 0`` row-wise."""
