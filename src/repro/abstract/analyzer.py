"""The ``Analyze`` procedure: abstract interpretation of a whole network.

Pushes an abstract element through the network's lowered op sequence and
checks the robustness condition ``∀j≠K. y_K > y_j`` on the output element
(using each domain's sharpest available margin bound — relational for
zonotopes).  This is the role ELINA plays inside the original Charon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abstract.domains import DomainSpec
from repro.abstract.element import AbstractElement
from repro.nn.network import AffineOp, MaxPoolOp, Network, ReluOp
from repro.utils.boxes import Box
from repro.utils.timing import Deadline


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one abstract-interpretation run.

    Attributes:
        verified: True when the output abstraction proves the property.
        margin_lower_bound: sound lower bound on
            ``min_{j≠K} (y_K - y_j)`` over the region; positive iff verified.
        output: the abstract element at the network output (for debugging
            and for tests that check containment of concrete runs).
    """

    verified: bool
    margin_lower_bound: float
    output: AbstractElement


def propagate(
    ops: list,
    element: AbstractElement,
    deadline: Deadline | None = None,
) -> AbstractElement:
    """Run an abstract element through a lowered op sequence."""
    for op in ops:
        if deadline is not None:
            deadline.check()
        if isinstance(op, AffineOp):
            element = element.affine(op.weight, op.bias)
        elif isinstance(op, ReluOp):
            element = element.relu()
        elif isinstance(op, MaxPoolOp):
            element = element.maxpool(op.windows)
        else:
            raise TypeError(f"unknown op type {type(op).__name__}")
    return element


def analyze(
    network: Network,
    region: Box,
    label: int,
    domain: DomainSpec,
    deadline: Deadline | None = None,
) -> AnalysisResult:
    """Attempt to verify ``(region, label)`` on ``network`` with ``domain``.

    Sound: ``verified=True`` implies every point of ``region`` is classified
    as ``label``.  Incomplete: ``verified=False`` only means this abstraction
    could not prove it.
    """
    if region.ndim != network.input_size:
        raise ValueError(
            f"region has {region.ndim} dims, network expects {network.input_size}"
        )
    if not 0 <= label < network.output_size:
        raise ValueError(
            f"label {label} out of range for {network.output_size} outputs"
        )
    element = domain.lift(region)
    output = propagate(network.ops(), element, deadline)
    margin = output.min_margin(label)
    return AnalysisResult(
        verified=margin > 0.0, margin_lower_bound=margin, output=output
    )
