"""The ``Analyze`` procedure: abstract interpretation of a whole network.

Pushes an abstract element through the network's lowered op sequence and
checks the robustness condition ``∀j≠K. y_K > y_j`` on the output element
(using each domain's sharpest available margin bound — relational for
zonotopes).  This is the role ELINA plays inside the original Charon.

:func:`analyze_batch` exploits the paper's §6 observation that sub-region
analyses are independent: every domain with a batched kernel
(:meth:`~repro.abstract.domains.DomainSpec.lift_batch` — interval,
DeepPoly, zonotope, and powerset-of-zonotope) propagates all ``B``
regions simultaneously, turning every affine transformer into a single
GEMM over the batch; the remaining domains (symbolic intervals, interval
powersets) fall back to a per-region loop with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.abstract.domains import DomainSpec
from repro.abstract.element import AbstractElement
from repro.backend import active as _active_backend
from repro.nn.network import AffineOp, MaxPoolOp, Network, PadOp, ReluOp
from repro.obs.metrics import registry as _metrics_registry
from repro.utils.boxes import Box
from repro.utils.timing import Deadline

#: Shared with :mod:`repro.attack.pgd` (same registry group): batched
#: Analyze invocations and the rows they carried.  Incremented once per
#: fused call on both the in-process path (:func:`analyze_batch_multi`)
#: and the process-worker zonotope fast path (:func:`analyze_multi_entry`
#: bypasses :func:`analyze_batch_multi`), so Serial and Process runs
#: count the same work exactly once.
_KERNEL_COUNTERS = _metrics_registry().group(
    "kernel", ("pgd_batches", "pgd_rows", "analyze_batches", "analyze_rows")
)


def _count_backend_work(batches: int, rows: int) -> None:
    """Per-backend kernel-work counters, ``kernel.by_backend.<name>.*``.

    Scalar (non-group) counters so new backend names need no
    registration; worker-side deltas still merge into the parent through
    :meth:`~repro.obs.metrics.MetricsRegistry.merge_counters`.
    """
    name = _active_backend().name
    reg = _metrics_registry()
    reg.inc(f"kernel.by_backend.{name}.analyze_batches", batches)
    reg.inc(f"kernel.by_backend.{name}.analyze_rows", rows)


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one abstract-interpretation run.

    Attributes:
        verified: True when the output abstraction proves the property.
        margin_lower_bound: sound lower bound on
            ``min_{j≠K} (y_K - y_j)`` over the region; positive iff verified.
        output: the abstract element at the network output (for debugging
            and for tests that check containment of concrete runs).
            ``None`` for results that crossed a process boundary — see
            :func:`analyze_multi_entry`.
    """

    verified: bool
    margin_lower_bound: float
    output: AbstractElement | None


def _apply_op(element: AbstractElement, op) -> AbstractElement:
    """One op of :func:`propagate` (shared with the checkpointed walk)."""
    if isinstance(op, AffineOp):
        return element.affine(op.weight, op.bias)
    if isinstance(op, ReluOp):
        return element.relu()
    if isinstance(op, MaxPoolOp):
        return element.maxpool(op.windows)
    if isinstance(op, PadOp):
        return element.pad(op.radii)
    raise TypeError(f"unknown op type {type(op).__name__}")


def propagate(
    ops: list,
    element: AbstractElement,
    deadline: Deadline | None = None,
) -> AbstractElement:
    """Run an abstract element through a lowered op sequence."""
    for op in ops:
        if deadline is not None:
            deadline.check()
        element = _apply_op(element, op)
    return element


def analyze(
    network: Network,
    region: Box,
    label: int,
    domain: DomainSpec,
    deadline: Deadline | None = None,
) -> AnalysisResult:
    """Attempt to verify ``(region, label)`` on ``network`` with ``domain``.

    Sound: ``verified=True`` implies every point of ``region`` is classified
    as ``label``.  Incomplete: ``verified=False`` only means this abstraction
    could not prove it.
    """
    if region.ndim != network.input_size:
        raise ValueError(
            f"region has {region.ndim} dims, network expects {network.input_size}"
        )
    if not 0 <= label < network.output_size:
        raise ValueError(
            f"label {label} out of range for {network.output_size} outputs"
        )
    element = domain.lift(region)
    output = propagate(
        network.ops_for(_active_backend().dtype), element, deadline
    )
    margin = output.min_margin(label)
    return AnalysisResult(
        verified=margin > 0.0, margin_lower_bound=margin, output=output
    )


def analyze_batch(
    network: Network,
    regions: Sequence[Box],
    label: int,
    domain: DomainSpec,
    deadline: Deadline | None = None,
) -> list[AnalysisResult]:
    """Attempt to verify every ``(region, label)`` at once.

    Semantics are per-region :func:`analyze`; the batched interval and
    DeepPoly paths differ from the sequential results only by BLAS kernel
    round-off (reduction order depends on operand shapes), while the
    zonotope and powerset-of-zonotope kernels are bitwise identical to
    the sequential elements (their round-based case-split kernels are
    batch-height-stable by construction — see
    :mod:`repro.abstract.zonotope_batch`).  Domains without a batched
    kernel fall back to the per-region loop.
    """
    return analyze_batch_multi(
        network, regions, [label] * len(regions), domain, deadline
    )


def batch_margins(element, labels: Sequence[int]) -> np.ndarray:
    """Per-row margin lower bounds of a batched element, by label group.

    Margin back-substitution scales with rows × batch, so each label
    group is bounded only on its own row subset instead of paying the
    full batch once per distinct label.  Shared by the batched analyzer
    and the zonotope process-pool entry point so their arithmetic can
    never drift.
    """
    label_arr = np.asarray(labels, dtype=np.int64)
    distinct = sorted(set(int(lab) for lab in label_arr))
    if len(distinct) == 1:
        return np.asarray(element.min_margin(distinct[0]))
    margins = np.empty(label_arr.size)
    for lab in distinct:
        rows = np.flatnonzero(label_arr == lab)
        margins[rows] = element.rows(rows).min_margin(lab)
    return margins


def analyze_multi_entry(payload: dict) -> list[AnalysisResult]:
    """Process-worker entry point for a marshalled fused Analyze call.

    Rebuilds the regions and domain from plain payload operands, runs the
    same batched propagation as :func:`analyze_batch_multi`, and returns
    per-row results with ``output=None`` — no engine consumes the output
    elements, and pickling a powerset's ``(T, k, n)`` stack back to the
    parent would dwarf the kernel itself.  Zonotope-based domains route
    through the dedicated
    :func:`repro.abstract.zonotope_batch.zonotope_margins_call` kernel
    (same lift/propagate/margin code, no per-row output views at all).
    """
    from repro.abstract.zonotope_batch import zonotope_margins_call
    from repro.exec.calls import resolve_network

    network = resolve_network(payload["network"])
    base, disjuncts = payload["domain"]
    domain = DomainSpec(base, disjuncts)
    regions = [
        Box(low, high) for low, high in zip(payload["lows"], payload["highs"])
    ]
    labels = [int(lab) for lab in payload["labels"]]
    deadline = payload["deadline"]
    if domain.base == "zonotope":
        _KERNEL_COUNTERS["analyze_batches"] += 1
        _KERNEL_COUNTERS["analyze_rows"] += len(regions)
        _count_backend_work(1, len(regions))
        margins = zonotope_margins_call(
            network, regions, labels, domain.disjuncts, deadline
        )
        return [
            AnalysisResult(
                verified=bool(margin > 0.0),
                margin_lower_bound=float(margin),
                output=None,
            )
            for margin in margins
        ]
    results = analyze_batch_multi(network, regions, labels, domain, deadline)
    return [
        AnalysisResult(result.verified, result.margin_lower_bound, None)
        for result in results
    ]


def analyze_batch_multi(
    network: Network,
    regions: Sequence[Box],
    labels: Sequence[int],
    domain: DomainSpec,
    deadline: Deadline | None = None,
) -> list[AnalysisResult]:
    """:func:`analyze_batch` with one target label per region.

    This is the sweep kernel of the multi-property scheduler: sub-regions
    of different properties of the same network share one batched
    propagation (the label plays no role until the output margin check),
    then the margin bound is evaluated per label group on the matching
    row subset.  Region ``i``'s result is identical to
    ``analyze(network, regions[i], labels[i], ...)`` up to the usual BLAS
    kernel round-off of the batched domains.
    """
    if len(labels) != len(regions):
        raise ValueError(
            f"got {len(labels)} labels for {len(regions)} regions"
        )
    if not regions:
        raise ValueError("analyze_batch needs at least one region")
    for region in regions:
        if region.ndim != network.input_size:
            raise ValueError(
                f"region has {region.ndim} dims, network expects "
                f"{network.input_size}"
            )
    for lab in labels:
        if not 0 <= lab < network.output_size:
            raise ValueError(
                f"label {lab} out of range for {network.output_size} outputs"
            )
    _KERNEL_COUNTERS["analyze_batches"] += 1
    _KERNEL_COUNTERS["analyze_rows"] += len(regions)
    _count_backend_work(1, len(regions))
    ops = network.ops_for(_active_backend().dtype)
    element = domain.lift_batch(list(regions))
    if element is None:
        return [
            analyze(network, region, lab, domain, deadline)
            for region, lab in zip(regions, labels)
        ]
    element = propagate(ops, element, deadline)
    margins = batch_margins(element, labels)
    return [
        AnalysisResult(
            verified=bool(margins[i] > 0.0),
            margin_lower_bound=float(margins[i]),
            output=element.row(i),
        )
        for i in range(len(regions))
    ]


# ----------------------------------------------------------------------
# Prefix-checkpointed analysis (see repro.abstract.checkpoint)
# ----------------------------------------------------------------------


def _checkpointed_walk(
    network: Network,
    element,
    regions_digest: str,
    domain: DomainSpec,
    deadline: Deadline | None,
    resume,
    capture_boundaries,
):
    """Propagate from ``resume`` (or cold) while capturing checkpoints.

    Returns ``(output_element, captured)``.  Resuming restores the
    boundary state bitwise, so the suffix ops see exactly the arrays a
    cold run would have produced there — that, plus identical op
    sequences past the boundary, is the whole bitwise-resume argument.
    """
    from repro.abstract.checkpoint import (
        PrefixBounds,
        capture_element,
        ops_consumed,
        restore_element,
    )
    from repro.nn.serialize import layer_digests

    backend = _active_backend().name
    ops = network.ops_for(_active_backend().dtype)
    start = 0
    if resume is not None:
        if resume.backend != backend:
            raise ValueError(
                f"checkpoint backend {resume.backend!r} does not match "
                f"active backend {backend!r}"
            )
        if tuple(resume.domain) != (domain.base, domain.disjuncts):
            raise ValueError(
                f"checkpoint domain {resume.domain} does not match "
                f"({domain.base}, {domain.disjuncts})"
            )
        if resume.regions_digest != regions_digest:
            raise ValueError("checkpoint was captured for a different batch")
        element = restore_element(resume, ops)
        start = resume.op_count
    chain: list[str] | None = None
    targets: dict[int, int] = {}
    for boundary in sorted(set(capture_boundaries)):
        op_count = ops_consumed(network, boundary)
        if start < op_count <= len(ops):
            targets[op_count] = boundary
    if targets:
        chain = layer_digests(network)
    captured: list = []
    for idx in range(start, len(ops)):
        if deadline is not None:
            deadline.check()
        element = _apply_op(element, ops[idx])
        boundary = targets.get(idx + 1)
        if boundary is not None:
            kind, meta, arrays = capture_element(element, ops)
            captured.append(
                PrefixBounds(
                    boundary=boundary,
                    op_count=idx + 1,
                    prefix_digest=chain[boundary - 1],
                    regions_digest=regions_digest,
                    domain=(domain.base, domain.disjuncts),
                    backend=backend,
                    kind=kind,
                    meta=meta,
                    arrays=arrays,
                )
            )
    return element, captured


def analyze_batch_checkpointed(
    network: Network,
    regions: Sequence[Box],
    labels: Sequence[int],
    domain: DomainSpec,
    deadline: Deadline | None = None,
    resume=None,
    capture_boundaries: Sequence[int] = (),
):
    """:func:`analyze_batch_multi` with prefix-checkpoint emit/resume.

    Returns ``(results, captured)``: the per-row results (identical to
    the plain batched analyzer — a cold call with no capture boundaries
    runs the exact same float sequence) plus any
    :class:`~repro.abstract.checkpoint.PrefixBounds` captured at the
    requested layer boundaries.  ``resume`` must have been captured for
    this exact ordered region batch, domain, and backend; the suffix run
    is then bitwise-identical to the cold run from the boundary on.
    """
    from repro.abstract.checkpoint import (
        region_batch_digest,
        supports_checkpoint,
    )

    if len(labels) != len(regions):
        raise ValueError(
            f"got {len(labels)} labels for {len(regions)} regions"
        )
    if not regions:
        raise ValueError("analyze_batch needs at least one region")
    if not supports_checkpoint(domain):
        raise ValueError(
            f"domain {domain} does not support prefix checkpoints"
        )
    for region in regions:
        if region.ndim != network.input_size:
            raise ValueError(
                f"region has {region.ndim} dims, network expects "
                f"{network.input_size}"
            )
    for lab in labels:
        if not 0 <= lab < network.output_size:
            raise ValueError(
                f"label {lab} out of range for {network.output_size} outputs"
            )
    _KERNEL_COUNTERS["analyze_batches"] += 1
    _KERNEL_COUNTERS["analyze_rows"] += len(regions)
    _count_backend_work(1, len(regions))
    regions_digest = (
        resume.regions_digest
        if resume is not None
        else region_batch_digest(regions)
    )
    element = None
    if resume is None:
        element = domain.lift_batch(list(regions))
        if element is None:  # pragma: no cover - all supported bases batch
            raise ValueError(f"domain {domain} has no batched kernel")
    element, captured = _checkpointed_walk(
        network, element, regions_digest, domain, deadline, resume,
        capture_boundaries,
    )
    margins = batch_margins(element, labels)
    results = [
        AnalysisResult(
            verified=bool(margins[i] > 0.0),
            margin_lower_bound=float(margins[i]),
            output=element.row(i),
        )
        for i in range(len(regions))
    ]
    return results, captured


def analyze_checkpointed(
    network: Network,
    region: Box,
    label: int,
    domain: DomainSpec,
    deadline: Deadline | None = None,
    resume=None,
    capture_boundaries: Sequence[int] = (),
):
    """:func:`analyze` with prefix-checkpoint emit/resume.

    Sequential elements are *not* interchangeable with height-1 batches
    (GEMV vs GEMM round-off), so sequential checkpoints live under a
    ``seq-``-prefixed region digest — the two families can never collide
    in the cache.
    """
    from repro.abstract.checkpoint import (
        region_batch_digest,
        supports_checkpoint,
    )

    if region.ndim != network.input_size:
        raise ValueError(
            f"region has {region.ndim} dims, network expects "
            f"{network.input_size}"
        )
    if not 0 <= label < network.output_size:
        raise ValueError(
            f"label {label} out of range for {network.output_size} outputs"
        )
    if not supports_checkpoint(domain):
        raise ValueError(
            f"domain {domain} does not support prefix checkpoints"
        )
    regions_digest = (
        resume.regions_digest
        if resume is not None
        else "seq-" + region_batch_digest([region])
    )
    element = domain.lift(region) if resume is None else None
    element, captured = _checkpointed_walk(
        network, element, regions_digest, domain, deadline, resume,
        capture_boundaries,
    )
    margin = float(np.asarray(element.min_margin(label)).reshape(-1)[0])
    result = AnalysisResult(
        verified=margin > 0.0, margin_lower_bound=margin, output=element
    )
    return result, captured


def analyze_checkpointed_entry(payload: dict):
    """Process-worker entry point for a marshalled checkpointed call.

    The resume record crosses the process boundary flattened: its arrays
    ride as top-level ``prefix_state_<name>`` payload values (which is
    what lets them use the executor's shared-memory transport — handles
    are only resolved at top level) and the small descriptor fields as
    ``resume_meta``.  Results return with ``output=None`` exactly like
    :func:`analyze_multi_entry`; captured checkpoints return whole.
    """
    from repro.abstract.checkpoint import PrefixBounds
    from repro.exec.calls import resolve_network

    network = resolve_network(payload["network"])
    base, disjuncts = payload["domain"]
    domain = DomainSpec(base, disjuncts)
    regions = [
        Box(low, high) for low, high in zip(payload["lows"], payload["highs"])
    ]
    labels = [int(lab) for lab in payload["labels"]]
    resume = None
    meta = payload.get("resume_meta")
    if meta is not None:
        prefix = "prefix_state_"
        arrays = {
            key[len(prefix):]: value
            for key, value in payload.items()
            if key.startswith(prefix)
        }
        resume = PrefixBounds(arrays=arrays, **meta)
    results, captured = analyze_batch_checkpointed(
        network,
        regions,
        labels,
        domain,
        payload["deadline"],
        resume,
        tuple(payload["capture_boundaries"]),
    )
    results = [
        AnalysisResult(result.verified, result.margin_lower_bound, None)
        for result in results
    ]
    return results, captured
