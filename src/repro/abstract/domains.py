"""Domain specifications: the ``(d, k)`` pairs the domain policy selects.

The paper's selection function φ_α maps policy outputs to a tuple ``(d, k)``
where ``d`` is the base domain (intervals or zonotopes) and ``k`` the
disjunct budget of the bounded powerset (§4.1).  :class:`DomainSpec` is that
tuple, with the machinery to lift an input box into the chosen domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abstract.element import AbstractElement
from repro.abstract.interval import IntervalElement
from repro.abstract.powerset import PowersetElement
from repro.abstract.zonotope import Zonotope
from repro.utils.boxes import Box

#: "interval" and "zonotope" are the paper's §6 menu.  "symbolic"
#: (ReluVal-style symbolic intervals) and "deeppoly" (back-substitution
#: bounds) implement the §9 future-work idea of exposing more precise,
#: solver-like analyses as domains the policy can learn to select
#: (see ``repro.ext``).
BASE_DOMAINS = ("interval", "zonotope", "symbolic", "deeppoly")

_LETTERS = {"interval": "I", "zonotope": "Z", "symbolic": "S", "deeppoly": "D"}


@dataclass(frozen=True)
class DomainSpec:
    """An abstract domain choice: base domain plus disjunct budget.

    ``DomainSpec("zonotope", 2)`` is the paper's ``(Z, 2)`` — powerset of
    zonotopes with at most two disjuncts; ``DomainSpec("interval", 1)`` is
    the plain interval domain ``(I, 1)``.  The "symbolic" base supports no
    disjunctions (its ReLU relaxation subsumes the case split).
    """

    base: str
    disjuncts: int = 1

    def __post_init__(self) -> None:
        if self.base not in BASE_DOMAINS:
            raise ValueError(
                f"unknown base domain {self.base!r}; choose from {BASE_DOMAINS}"
            )
        if self.disjuncts < 1:
            raise ValueError(f"disjuncts must be >= 1, got {self.disjuncts}")
        if self.base in ("symbolic", "deeppoly") and self.disjuncts != 1:
            raise ValueError(
                f"the {self.base} domain does not support disjunctions"
            )

    def lift(self, box: Box):
        """Embed an input box into this domain."""
        if self.base == "symbolic":
            # Imported here to avoid a cycle (symbolic_interval -> nn).
            from repro.abstract.symbolic_interval import SymbolicInterval

            return SymbolicInterval.identity(box)
        if self.base == "deeppoly":
            from repro.abstract.deeppoly import DeepPolyState

            return DeepPolyState.identity(box)
        if self.base == "interval":
            element: AbstractElement = IntervalElement.from_box(box)
        else:
            element = Zonotope.from_box(box)
        if self.disjuncts == 1:
            return element
        return PowersetElement([element], max_disjuncts=self.disjuncts)

    def lift_batch(self, boxes: list[Box]):
        """Embed a list of input boxes into this domain's batched kernel.

        Returns a :class:`~repro.abstract.batched.BatchedElement` whose
        row ``i`` tracks ``boxes[i]``, or ``None`` when no batched kernel
        exists for this domain (symbolic intervals, interval powersets) —
        the analyzer then falls back to a per-region loop with identical
        results.
        """
        if self.base == "interval" and self.disjuncts == 1:
            from repro.abstract.interval import IntervalBatch

            return IntervalBatch.from_boxes(boxes)
        if self.base == "deeppoly":
            from repro.abstract.deeppoly import DeepPolyBatch

            return DeepPolyBatch.from_boxes(boxes)
        if self.base == "zonotope":
            from repro.abstract.zonotope_batch import (
                PowersetBatch,
                ZonotopeBatch,
            )

            if self.disjuncts == 1:
                return ZonotopeBatch.from_boxes(boxes)
            return PowersetBatch.from_boxes(boxes, self.disjuncts)
        return None

    @property
    def short_name(self) -> str:
        letter = _LETTERS[self.base]
        return letter if self.disjuncts == 1 else f"{letter}x{self.disjuncts}"

    def __str__(self) -> str:
        return f"({_LETTERS[self.base]}, {self.disjuncts})"


INTERVAL = DomainSpec("interval", 1)
ZONOTOPE = DomainSpec("zonotope", 1)
SYMBOLIC = DomainSpec("symbolic", 1)
DEEPPOLY = DomainSpec("deeppoly", 1)


def bounded_intervals(k: int) -> DomainSpec:
    """Powerset of intervals with at most ``k`` disjuncts."""
    return DomainSpec("interval", k)


def bounded_zonotopes(k: int) -> DomainSpec:
    """Powerset of zonotopes with at most ``k`` disjuncts."""
    return DomainSpec("zonotope", k)
