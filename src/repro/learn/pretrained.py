"""The shipped verification policy (the paper's deployment-phase artifact).

The paper trains its policy once, on 12 ACAS Xu properties, then deploys it
unchanged on MNIST/CIFAR benchmarks (§6).  This module plays the role of
that shipped artifact: ``PRETRAINED_THETA`` was produced by running::

    net = acas_network(hidden=(24, 24, 24, 24), epochs=25, rng=7)
    props = acas_training_properties(net, count=12, radii=(0.03, 0.08, 0.15), rng=11)
    train_policy([TrainingProblem(net, p) for p in props],
                 iterations=40, time_limit=1.5, penalty=2.0, rng=0)

(see ``examples/policy_training.py`` for the runnable version).  Benchmarks
use :func:`pretrained_policy` so that "Charon" always means "Algorithm 1
with the learned policy", exactly as in the paper's evaluation.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.policy import LinearPolicy

#: θ learned by Bayesian optimization on the ACAS-style training suite
#: (40 iterations, suite cost 9.44s -> 9.06s over the 12 properties).
PRETRAINED_THETA = [
    -0.4650839743693158, -0.5894770829901388, -0.07368511957297708,
    -0.5226777134066198, 1.831405317392845,
    0.5845557171577656, 0.8806230320189212, 0.49361362559653177,
    -0.34659969952186076, -1.267182905398394,
    -0.30435963215245687, -0.24335976962541173, 0.030889390777643744,
    -0.4550357583868494, 0.27449656938098155,
    -1.3315495439122942, -1.3490949798132608, 0.7646775501571894,
    -0.002409444074796152, -0.7950623128044891,
    0.7963542775641019, -0.6727233111029638, 1.894490679288436,
    -0.5401595489791662, 0.7357595423098697,
]


def load_policy(path: str | Path) -> LinearPolicy:
    """A policy from a θ artifact written by
    :meth:`~repro.learn.trainer.TrainedPolicy.save` (``repro train``'s
    output).

    Accepts any JSON object carrying a ``"theta"`` vector, so artifacts
    stay hand-editable; a malformed file raises ``ValueError`` with the
    offending path.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        theta = np.asarray(payload["theta"], dtype=np.float64)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ValueError(f"cannot load policy artifact {path}: {exc}") from exc
    return LinearPolicy.from_vector(theta)


def pretrained_policy(path: str | Path | None = None) -> LinearPolicy:
    """The deployment-phase policy.

    With no argument, the shipped :data:`PRETRAINED_THETA`; with a path,
    the θ artifact a ``repro train`` run produced — so "the learned
    policy" can mean *your* learned policy everywhere one is accepted.
    """
    if path is not None:
        return load_policy(path)
    return LinearPolicy.from_vector(np.array(PRETRAINED_THETA))
