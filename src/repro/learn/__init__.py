"""Policy learning: Bayesian optimization of the verification policy (§4.2)."""

from repro.learn.objective import PolicyCostObjective, TrainingProblem
from repro.learn.trainer import PolicyTrainer, TrainedPolicy, train_policy
from repro.learn.pretrained import PRETRAINED_THETA, pretrained_policy

__all__ = [
    "PolicyCostObjective",
    "TrainingProblem",
    "PolicyTrainer",
    "TrainedPolicy",
    "train_policy",
    "PRETRAINED_THETA",
    "pretrained_policy",
]
