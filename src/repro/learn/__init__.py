"""Policy learning: Bayesian optimization of the verification policy (§4.2),
rebuilt on the multi-property scheduler — candidate θs evaluate as job
manifests through fused, cache-aware, worker-pooled scheduler runs."""

from repro.learn.objective import (
    COST_MODELS,
    PolicyCostObjective,
    TrainingProblem,
)
from repro.learn.trainer import PolicyTrainer, TrainedPolicy, train_policy
from repro.learn.pretrained import (
    PRETRAINED_THETA,
    load_policy,
    pretrained_policy,
)

__all__ = [
    "COST_MODELS",
    "PolicyCostObjective",
    "TrainingProblem",
    "PolicyTrainer",
    "TrainedPolicy",
    "train_policy",
    "PRETRAINED_THETA",
    "load_policy",
    "pretrained_policy",
]
