"""The training phase: learn θ on a suite of problems (Figure 2, top).

The paper trains on 12 ACAS Xu properties with MPI-parallel evaluation; the
sequential trainer here follows the same structure with laptop-scale
budgets.  The hand-initialized default policy is always evaluated first so
learning can only improve on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer, OptimizationHistory
from repro.core.config import VerifierConfig
from repro.core.policy import LinearPolicy
from repro.learn.objective import PolicyCostObjective, TrainingProblem
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class TrainedPolicy:
    """The outcome of a training run.

    Attributes:
        policy: the best policy found.
        best_score: its objective value (negative total cost).
        history: the full Bayesian-optimization trace.
    """

    policy: LinearPolicy
    best_score: float
    history: OptimizationHistory


class PolicyTrainer:
    """Configurable wrapper around the Bayesian-optimization loop."""

    def __init__(
        self,
        problems: list[TrainingProblem],
        time_limit: float = 2.0,
        penalty: float = 2.0,
        theta_scale: float = 2.0,
        n_initial: int = 5,
        base_config: VerifierConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.objective = PolicyCostObjective(
            problems, time_limit=time_limit, penalty=penalty, base_config=base_config
        )
        self.bounds = LinearPolicy.parameter_box(theta_scale)
        self._rng = as_generator(rng)
        self.n_initial = n_initial

    def train(self, iterations: int = 20, verbose: bool = False) -> TrainedPolicy:
        """Run Bayesian optimization for ``iterations`` evaluations."""
        optimizer = BayesianOptimizer(
            self.bounds, n_initial=self.n_initial, rng=self._rng
        )
        # Seed with the hand-initialized default so the learned policy is
        # never worse than the prior.
        default_vec = LinearPolicy.default().to_vector()
        optimizer.observe(default_vec, self.objective(default_vec))

        def report(i: int, obs) -> None:
            if verbose:
                print(
                    f"  BO iter {i + 1}/{iterations}: score={obs.y:.3f} "
                    f"(best={optimizer.best().y:.3f})"
                )

        best = optimizer.maximize(self.objective, iterations, callback=report)
        return TrainedPolicy(
            policy=LinearPolicy.from_vector(best.x),
            best_score=best.y,
            history=optimizer.history,
        )


def train_policy(
    problems: list[TrainingProblem],
    iterations: int = 20,
    time_limit: float = 2.0,
    penalty: float = 2.0,
    rng: int | np.random.Generator | None = None,
    verbose: bool = False,
) -> TrainedPolicy:
    """Convenience one-call training (the paper's full training phase)."""
    trainer = PolicyTrainer(
        problems, time_limit=time_limit, penalty=penalty, rng=rng
    )
    return trainer.train(iterations, verbose=verbose)
