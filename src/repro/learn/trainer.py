"""The training phase: learn θ on a suite of problems (Figure 2, top).

The paper trains on 12 ACAS Xu properties with MPI-parallel evaluation
across the suite.  This trainer reproduces that structure on the scheduler
stack: candidate θs are proposed in batches (constant-liar q-EI,
:meth:`~repro.bayesopt.optimizer.BayesianOptimizer.suggest_batch`), every
candidate's training suite becomes one job manifest, and the whole batch
evaluates through a single cache-aware scheduler run whose independent
kernel groups ride the executor's worker pool
(:class:`~repro.learn.objective.PolicyCostObjective`).  With
``candidates=1`` the loop degenerates to the classic sequential
suggest/evaluate/observe trainer — same suggestions, same trace.

The hand-initialized default policy is always evaluated first so learning
can only improve on it.  A :class:`TrainedPolicy` can be saved as a JSON
θ artifact that :func:`repro.learn.pretrained.pretrained_policy` loads
back — the deployment-phase handoff of the paper's Figure 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer, OptimizationHistory
from repro.core.config import VerifierConfig
from repro.core.policy import LinearPolicy
from repro.exec import KernelExecutor
from repro.learn.objective import PolicyCostObjective, TrainingProblem
from repro.sched import ResultCache
from repro.utils.rng import as_generator

#: Artifact format tag (bumped on incompatible schema changes).
ARTIFACT_FORMAT = "repro-policy/1"


@dataclass(frozen=True)
class TrainedPolicy:
    """The outcome of a training run.

    Attributes:
        policy: the best policy found.
        best_score: its objective value (negative total cost).
        history: the full Bayesian-optimization trace.
    """

    policy: LinearPolicy
    best_score: float
    history: OptimizationHistory

    def save(self, path: str | Path) -> Path:
        """Write the reusable θ artifact (JSON).

        Carries the learned vector, the score, and the full observation
        trace — enough to deploy the policy
        (:func:`~repro.learn.pretrained.pretrained_policy`), audit the
        run, or warm-start a later one.
        """
        path = Path(path)
        payload = {
            "format": ARTIFACT_FORMAT,
            "theta": [float(v) for v in self.policy.to_vector()],
            "best_score": float(self.best_score),
            "observations": [
                {"x": [float(v) for v in obs.x], "y": float(obs.y)}
                for obs in self.history.observations
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path


class PolicyTrainer:
    """Configurable wrapper around the Bayesian-optimization loop.

    Args:
        problems: the training suite.
        time_limit: per-problem budget in seconds (``"time"`` cost model).
        penalty: unsolved-problem multiplier ``p``.
        theta_scale: half-width of the θ search box.
        n_initial: random BO samples before the GP takes over.
        base_config: verifier knobs for every evaluation; under the
            ``"work"`` model its ``max_depth`` is the per-problem budget.
        rng: BO randomness (suite evaluation is seeded separately, per
            job, from ``rng_seed`` — keep them independent so reproducing
            a trace never depends on evaluation order).
        candidates: BO batch width ``q`` — how many θs each round
            proposes (constant-liar q-EI) and evaluates in one scheduler
            run.  ``1`` is the sequential trainer.
        workers: cores for each evaluation's scheduler run.
        cost_model: ``"time"`` (the paper's wall-clock cost, default) or
            ``"work"`` (deterministic kernel-call cost — reproducible
            traces, cacheable evaluations).
        cache: optional persistent result cache (``"work"`` model only):
            a re-run of the same training command spawns no kernel work.
        executor: ready executor to reuse across evaluation rounds.
        executor_kind: ``"serial"`` / ``"pooled"`` / ``"process"`` for
            each evaluation's scheduler run (``--executor`` on the CLI).
        rng_seed: the seed every verification job runs under.
    """

    def __init__(
        self,
        problems: list[TrainingProblem],
        time_limit: float = 2.0,
        penalty: float = 2.0,
        theta_scale: float = 2.0,
        n_initial: int = 5,
        base_config: VerifierConfig | None = None,
        rng: int | np.random.Generator | None = None,
        candidates: int = 1,
        workers: int = 1,
        cost_model: str = "time",
        cache: ResultCache | None = None,
        executor: KernelExecutor | None = None,
        executor_kind: str | None = None,
        rng_seed: int = 0,
    ) -> None:
        if candidates < 1:
            raise ValueError(f"candidates must be >= 1, got {candidates}")
        self.objective = PolicyCostObjective(
            problems,
            time_limit=time_limit,
            penalty=penalty,
            base_config=base_config,
            rng_seed=rng_seed,
            cost_model=cost_model,
            workers=workers,
            cache=cache,
            executor=executor,
            executor_kind=executor_kind,
        )
        self.bounds = LinearPolicy.parameter_box(theta_scale)
        self._rng = as_generator(rng)
        self.n_initial = n_initial
        self.candidates = candidates

    def close(self) -> None:
        """Release the evaluation executor built from ``executor_kind``.

        Idempotent, and a later :meth:`train` call builds a fresh pool;
        call it when a process-pool training session is done (the CLI
        does) so worker processes do not linger until interpreter exit.
        """
        self.objective.close()

    def train(self, iterations: int = 20, verbose: bool = False) -> TrainedPolicy:
        """Run Bayesian optimization for ``iterations`` evaluations.

        Evaluations happen in rounds of up to ``candidates`` θs; the
        iteration budget counts evaluations, not rounds, so ``iterations``
        is comparable across batch widths (a q=4 run spends its budget in
        one quarter the rounds).
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        optimizer = BayesianOptimizer(
            self.bounds, n_initial=self.n_initial, rng=self._rng
        )
        try:
            # Seed with the hand-initialized default so the learned policy
            # is never worse than the prior.
            default_vec = LinearPolicy.default().to_vector()
            optimizer.observe(
                default_vec, self.objective.evaluate_many([default_vec])[0]
            )

            done = 0
            while done < iterations:
                batch = optimizer.suggest_batch(
                    min(self.candidates, iterations - done)
                )
                scores = self.objective.evaluate_many(batch)
                for x, y in zip(batch, scores):
                    optimizer.observe(x, y)
                    done += 1
                    if verbose:
                        print(
                            f"  BO iter {done}/{iterations}: score={y:.3f} "
                            f"(best={optimizer.best().y:.3f})"
                        )
        finally:
            # An executor_kind-built pool is reused across every round
            # above, but must not outlive the training run: leaked worker
            # processes and the exported BLAS pins would follow the
            # parent around.  (Caller-provided executors are untouched,
            # and a later train() call builds a fresh pool.)
            self.objective.close()
        best = optimizer.best()
        return TrainedPolicy(
            policy=LinearPolicy.from_vector(best.x),
            best_score=best.y,
            history=optimizer.history,
        )


def train_policy(
    problems: list[TrainingProblem],
    iterations: int = 20,
    time_limit: float = 2.0,
    penalty: float = 2.0,
    rng: int | np.random.Generator | None = None,
    verbose: bool = False,
    **kwargs,
) -> TrainedPolicy:
    """Convenience one-call training (the paper's full training phase).

    Keyword arguments pass through to :class:`PolicyTrainer`
    (``candidates``, ``workers``, ``cost_model``, ``cache``, ...).
    """
    trainer = PolicyTrainer(
        problems, time_limit=time_limit, penalty=penalty, rng=rng, **kwargs
    )
    return trainer.train(iterations, verbose=verbose)
