"""The policy-training objective ``F(θ) = -Σ_s cost_θ(s)`` from §4.2.

``cost_θ(s)`` is the price of running policy θ on benchmark ``s``.  The
paper's cost is verification *time* when ``s`` is solved within the
per-benchmark limit ``t`` and ``p · t`` otherwise (``p = 2``,
``t = 700 s``); our scaled-down default keeps the same penalty ratio with
second-scale limits.

Candidate evaluation is built on the multi-property scheduler
(:mod:`repro.sched`): each candidate θ's training suite becomes a job
manifest — one :class:`~repro.sched.VerificationJob` per (problem, θ) with
the candidate's :class:`~repro.core.policy.LinearPolicy` attached — and
:meth:`PolicyCostObjective.evaluate_many` drives *all* candidates' jobs
through one scheduler run.  Same-network jobs of different candidates fuse
into shared PGD/Analyze sweeps, independent kernel groups ride the
executor's worker pool, and a persistent
:class:`~repro.sched.ResultCache` makes re-evaluations (re-runs of a
training command, or BO revisiting a θ) spawn zero fresh kernel work.

Two cost models:

- ``"work"`` (the scheduled default): per-problem budget is the refinement
  depth cap, the cost of a decided problem is its kernel-call count
  (PGD + Analyze — the quantity fused scheduling actually conserves), and
  an undecided problem pays ``penalty ×`` the work it burned.  Fully
  deterministic — a candidate's score is a pure function of (θ, suite,
  seed) regardless of workers, co-scheduled candidates, or cache state —
  which is what makes training traces reproducible and cacheable.
- ``"time"`` — the paper's wall-clock cost.  Jobs run solo
  (``engine="sequential"``) so each problem's clock is its own; scores are
  measurements, not pure functions, so the result cache and concurrent
  workers are both refused (a cached job reports zero seconds; pooled jobs
  contend for the cores whose time is being measured).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import VerifierConfig
from repro.core.policy import LinearPolicy
from repro.core.property import RobustnessProperty
from repro.exec import KernelExecutor, validate_executor_spec
from repro.nn.network import Network
from repro.sched import ResultCache, Scheduler, VerificationJob

#: ``--cost-model`` menu of the ``train`` command.
COST_MODELS = ("work", "time")


@dataclass(frozen=True)
class TrainingProblem:
    """One benchmark of the training suite: a network plus a property."""

    network: Network
    prop: RobustnessProperty


class PolicyCostObjective:
    """Callable ``θ-vector -> score`` for Bayesian optimization.

    Higher is better (the optimizer maximizes).  Scores are negative total
    cost over the training suite, exactly the paper's ``F``.

    Args:
        problems: the training suite.
        time_limit: per-problem budget in seconds (``"time"`` model only).
        penalty: unsolved-problem multiplier ``p`` (both models).
        base_config: verifier knobs shared by every evaluation; the
            per-problem budget comes from the objective, not from here.
        rng_seed: every job's seed (the solo engine's ``rng``).
        cost_model: ``"work"`` or ``"time"`` — see the module docstring.
        workers: cores for each evaluation's scheduler run.
        cache: optional persistent result cache; ``"work"`` model only.
        executor: ready :class:`~repro.exec.KernelExecutor` to reuse
            across evaluations instead of building one per run.
        executor_kind: ``"serial"`` / ``"pooled"`` / ``"process"`` —
            the objective builds ONE executor of this kind and reuses it
            across every evaluation round (a per-round process pool
            would pay worker spawn, numpy import, and network shipping
            on every round); release it with :meth:`close`.  Processes
            pay off on powerset-heavy policies whose split loops the GIL
            serializes under threads.
    """

    def __init__(
        self,
        problems: list[TrainingProblem],
        time_limit: float = 2.0,
        penalty: float = 2.0,
        base_config: VerifierConfig | None = None,
        rng_seed: int = 0,
        cost_model: str = "time",
        workers: int = 1,
        cache: ResultCache | None = None,
        executor: KernelExecutor | None = None,
        executor_kind: str | None = None,
    ) -> None:
        if not problems:
            raise ValueError("the training suite must be non-empty")
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        if penalty < 1.0:
            raise ValueError(
                "penalty must be >= 1 (unsolved must cost at least the limit)"
            )
        if cost_model not in COST_MODELS:
            raise ValueError(
                f"unknown cost_model {cost_model!r}; choose from {COST_MODELS}"
            )
        if cache is not None and cost_model == "time":
            raise ValueError(
                "the result cache only composes with the 'work' cost model "
                "(a cached job reports zero seconds, which would corrupt "
                "time-based scores)"
            )
        pooled = workers > 1 or (
            executor is not None and executor.workers > 1
        )
        if pooled and cost_model == "time":
            raise ValueError(
                "concurrent workers only compose with the 'work' cost model "
                "(pooled jobs contend for the cores whose time the 'time' "
                "model is measuring, which would corrupt the scores)"
            )
        self.problems = list(problems)
        self.time_limit = time_limit
        self.penalty = penalty
        self.cost_model = cost_model
        self.workers = workers
        self.cache = cache
        self.executor = executor
        self.executor_kind = executor_kind
        self._pool: KernelExecutor | None = None  # built from executor_kind
        if executor_kind is not None:
            # Fail on a bad (executor, workers, kind) combination now,
            # not rounds into training.
            validate_executor_spec(executor, workers, kind=executor_kind)
        base = base_config or VerifierConfig()
        # Per-problem budget comes from the objective, not the base config:
        # the wall clock for the time model, the depth cap (deterministic)
        # for the work model.
        self._config = VerifierConfig(
            delta=base.delta,
            timeout=time_limit if cost_model == "time" else None,
            max_depth=base.max_depth,
            min_split_fraction=base.min_split_fraction,
            batch_size=base.batch_size,
            pgd=base.pgd,
        )
        self.rng_seed = rng_seed
        self.evaluations = 0
        self.fresh_calls = 0
        self.cache_hits = 0

    @property
    def config(self) -> VerifierConfig:
        """The verifier config every evaluation job runs under."""
        return self._config

    def _run_executor(self) -> KernelExecutor | None:
        """The executor evaluations run on.

        A caller-provided executor wins; otherwise ``executor_kind``
        builds one pool lazily and keeps it for every later round —
        training is exactly the workload where per-round pool setup
        (process spawn, per-worker numpy import, network shipping) would
        dominate, so the pool's lifetime is the objective's.
        """
        if self.executor is not None:
            return self.executor
        if self.executor_kind is None:
            return None
        if self._pool is None:
            from repro.exec import make_executor

            self._pool, _ = make_executor(
                None, self.workers, kind=self.executor_kind
            )
        return self._pool

    def close(self) -> None:
        """Shut down the executor this objective built (if any).

        Idempotent; a later evaluation builds a fresh pool.  Only pools
        created from ``executor_kind`` are owned here — a caller-provided
        ``executor`` keeps its caller's lifecycle.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(cancel_pending=True)

    def _jobs(self, theta_vecs: list[np.ndarray]) -> list[VerificationJob]:
        jobs = []
        for cand, theta_vec in enumerate(theta_vecs):
            policy = LinearPolicy.from_vector(theta_vec)
            for prob, problem in enumerate(self.problems):
                jobs.append(
                    VerificationJob(
                        problem.network,
                        problem.prop,
                        config=self._config,
                        policy=policy,
                        seed=self.rng_seed,
                        name=f"cand{cand}/prob{prob}",
                    )
                )
        return jobs

    def _problem_cost(self, outcome) -> float:
        if self.cost_model == "time":
            if outcome.kind == "timeout":
                return self.penalty * self.time_limit
            return min(outcome.stats.time_seconds, self.time_limit)
        work = float(outcome.stats.pgd_calls + outcome.stats.analyze_calls)
        if outcome.kind == "timeout":
            return self.penalty * work
        return work

    def evaluate_many(self, theta_vecs: list[np.ndarray]) -> list[float]:
        """Scores for a whole candidate batch through one scheduler run.

        The scheduler's reproducibility contract keeps each job's outcome
        a pure function of (θ, problem, seed) — co-scheduled candidates,
        frontier interleaving, and worker count change only wall clock —
        so batch evaluation returns exactly the scores ``q`` separate
        :meth:`__call__` evaluations would.
        """
        if not theta_vecs:
            return []
        # The work model fuses every candidate's sub-regions into shared
        # sweeps; the time model needs each problem's clock to itself.
        engine = "batched" if self.cost_model == "work" else "sequential"
        report = Scheduler(
            self._jobs(theta_vecs),
            cache=self.cache,
            engine=engine,
            workers=self.workers,
            executor=self._run_executor(),
        ).run()
        self.evaluations += len(theta_vecs)
        self.fresh_calls += report.fresh_calls()
        # The registry delta rather than the scheduler's own tally: the
        # merged ``cache.hits`` counter also covers probes made outside
        # the run loop (and is the quantity the obs layer pins equal
        # across executors), so the trainer's summary can never drift
        # from a trace dump of the same run.
        self.cache_hits += int(report.metrics.get("cache.hits", 0))
        count = len(self.problems)
        scores = []
        for cand in range(len(theta_vecs)):
            span = report.results[cand * count : (cand + 1) * count]
            scores.append(-sum(self._problem_cost(r.outcome) for r in span))
        return scores

    def cost(self, theta_vec: np.ndarray) -> float:
        """Total cost of running the policy over the suite (lower is better)."""
        return -self.evaluate_many([theta_vec])[0]

    def __call__(self, theta_vec: np.ndarray) -> float:
        return self.evaluate_many([theta_vec])[0]
