"""The policy-training objective ``F(θ) = -Σ_s cost_θ(s)`` from §4.2.

``cost_θ(s)`` is the verification time when benchmark ``s`` is solved within
the per-benchmark limit ``t``, and ``p · t`` otherwise.  The paper uses
``p = 2`` and ``t = 700 s``; our scaled-down default keeps the same penalty
ratio with second-scale limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import VerifierConfig
from repro.core.policy import LinearPolicy
from repro.core.property import RobustnessProperty
from repro.core.verifier import Verifier
from repro.nn.network import Network


@dataclass(frozen=True)
class TrainingProblem:
    """One benchmark of the training suite: a network plus a property."""

    network: Network
    prop: RobustnessProperty


class PolicyCostObjective:
    """Callable ``θ-vector -> score`` for Bayesian optimization.

    Higher is better (the optimizer maximizes).  Scores are negative total
    cost over the training suite, exactly the paper's ``F``.
    """

    def __init__(
        self,
        problems: list[TrainingProblem],
        time_limit: float = 2.0,
        penalty: float = 2.0,
        base_config: VerifierConfig | None = None,
        rng_seed: int = 0,
    ) -> None:
        if not problems:
            raise ValueError("the training suite must be non-empty")
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        if penalty < 1.0:
            raise ValueError(
                "penalty must be >= 1 (unsolved must cost at least the limit)"
            )
        self.problems = list(problems)
        self.time_limit = time_limit
        self.penalty = penalty
        base = base_config or VerifierConfig()
        # Per-problem budget comes from the objective, not the base config.
        self._config = VerifierConfig(
            delta=base.delta,
            timeout=time_limit,
            max_depth=base.max_depth,
            min_split_fraction=base.min_split_fraction,
            pgd=base.pgd,
        )
        self.rng_seed = rng_seed
        self.evaluations = 0

    def cost(self, theta_vec: np.ndarray) -> float:
        """Total cost of running the policy over the suite (lower is better)."""
        policy = LinearPolicy.from_vector(theta_vec)
        total = 0.0
        for problem in self.problems:
            verifier = Verifier(
                problem.network, policy, self._config, rng=self.rng_seed
            )
            outcome = verifier.verify(problem.prop)
            if outcome.kind == "timeout":
                total += self.penalty * self.time_limit
            else:
                total += min(outcome.stats.time_seconds, self.time_limit)
        self.evaluations += 1
        return total

    def __call__(self, theta_vec: np.ndarray) -> float:
        return -self.cost(theta_vec)
