"""Robustness properties ``(I, K)`` and the paper's attack-region builders.

A property asserts that every input in region ``I`` is classified as ``K``
(§2.2).  The evaluation (§7.1) uses *brightening attacks*: for every pixel
above a threshold τ the region lets the pixel vary up to 1; all other pixels
stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.boxes import Box


@dataclass(frozen=True)
class RobustnessProperty:
    """The robustness specification ``(I, K)``.

    Attributes:
        region: the input box ``I``.
        label: the class ``K`` every point in ``I`` should receive.
        name: optional identifier used in benchmark reports.
    """

    region: Box
    label: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.label < 0:
            raise ValueError(f"label must be non-negative, got {self.label}")

    def with_region(self, region: Box) -> "RobustnessProperty":
        """The same property restricted to a sub-region (used when splitting)."""
        return RobustnessProperty(region, self.label, self.name)

    def holds_at(self, network, x: np.ndarray) -> bool:
        """Concretely check the property at a single point."""
        return network.classify(x) == self.label

    def violated_by(self, network, x: np.ndarray, atol: float = 1e-9) -> bool:
        """True when ``x`` lies in ``I`` and is *not* classified as ``K``.

        This is the certificate check for counterexamples: a returned
        counterexample must be inside the region and misclassified (or
        δ-close to misclassified — see :meth:`margin_at`).
        """
        if not self.region.contains(x, atol=atol):
            return False
        return not self.holds_at(network, x)

    def margin_at(self, network, x: np.ndarray) -> float:
        """The paper's objective ``F(x) = N(x)_K - max_{j≠K} N(x)_j`` (Eq. 2)."""
        scores = network.logits(x)
        if self.label >= scores.size:
            raise ValueError(
                f"property label {self.label} out of range for "
                f"{scores.size}-class network"
            )
        others = np.delete(scores, self.label)
        return float(scores[self.label] - others.max())


def linf_property(
    network,
    x: np.ndarray,
    epsilon: float,
    clip_low: float | None = 0.0,
    clip_high: float | None = 1.0,
    name: str = "",
) -> RobustnessProperty:
    """Property for the L∞ ball around ``x``, labelled by the network itself."""
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    region = Box.linf_ball(x, epsilon, clip_low=clip_low, clip_high=clip_high)
    return RobustnessProperty(region, network.classify(x), name=name)


def brightening_property(
    network,
    x: np.ndarray,
    tau: float,
    strength: float = 1.0,
    name: str = "",
) -> RobustnessProperty:
    """The paper's brightening attack (§7.1).

    For every pixel with value at least ``tau`` the region allows the pixel
    to move from its value toward 1; all other pixels are fixed.  The
    optional ``strength`` in ``(0, 1]`` scales how far bright pixels may
    travel (1.0 reproduces the paper's region exactly); smaller values grade
    benchmark difficulty.

    Raises ``ValueError`` when no pixel reaches the threshold — such a
    region would be a single point and not a meaningful benchmark.
    """
    if not 0.0 < strength <= 1.0:
        raise ValueError(f"strength must lie in (0, 1], got {strength}")
    flat = np.asarray(x, dtype=np.float64).reshape(-1)
    bright = flat >= tau
    if not bright.any():
        raise ValueError(f"no pixel reaches brightening threshold {tau}")
    high = np.where(bright, flat + strength * (1.0 - flat), flat)
    region = Box(flat, high)
    return RobustnessProperty(region, network.classify(flat), name=name)
