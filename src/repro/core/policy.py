"""Verification policies: π_θ = (π_α, π_I) from §4 of the paper.

A policy makes the two decisions Algorithm 1 cannot make on its own:

- **domain policy** π_α: which abstract domain ``(d, k)`` to try;
- **partition policy** π_I: which axis-aligned hyperplane ``x_d = c`` to
  split the region with.

:class:`LinearPolicy` is the paper's parameterization
``φ(θ · ρ(N, I, K, x*))``: a parameter matrix θ (learned by Bayesian
optimization) applied to the feature vector ρ, followed by the selection
functions φ_α and φ_I described in §6:

- φ_α clips and discretizes two outputs into a base domain (intervals vs
  zonotopes) and a disjunct count;
- φ_I uses two outputs as scores choosing between the *longest* dimension
  and the *most influential* dimension (gradient × width, after [54]), and
  a third output as the split offset: 0 bisects the region, 1 puts the
  plane through ``x*``.

:class:`BisectionPolicy` is the hand-crafted static baseline (fixed domain,
bisect the longest dimension) used to measure the value of learning (RQ3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.abstract.domains import DomainSpec, ZONOTOPE
from repro.attack.objective import MarginObjective
from repro.core.features import NUM_FEATURES, featurize
from repro.core.property import RobustnessProperty
from repro.nn.network import Network
from repro.utils.boxes import Box

#: Disjunct budgets φ_α can select (the paper's implementation discretizes
#: its second output into a small fixed menu).  The top entry matches
#: AI2-Bounded64, the strongest domain in the paper's comparison.
DISJUNCT_CHOICES = (1, 2, 4, 8, 16, 64)

#: Outputs of θ·ρ: two for the domain policy, three for the partition policy.
NUM_OUTPUTS = 5

DomainChoice = DomainSpec


@dataclass(frozen=True)
class SplitChoice:
    """An axis-aligned splitting plane ``x_dim = value``."""

    dim: int
    value: float


class VerificationPolicy(ABC):
    """The decision interface Algorithm 1 consults."""

    @abstractmethod
    def choose_domain(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> DomainSpec:
        """π_α: pick the abstract domain for this sub-problem."""

    @abstractmethod
    def choose_split(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> SplitChoice:
        """π_I: pick the splitting plane for this sub-problem."""

    def describe(self) -> str:
        return type(self).__name__


def _influence_dim(
    network: Network, prop: RobustnessProperty, x_star: np.ndarray
) -> int:
    """Dimension with the largest |∂N(x*)_K/∂x_d| · width_d.

    This is ReluVal's smear-style influence heuristic referenced in §6: a
    wide dimension the target score is sensitive to is where refinement
    buys the most precision.
    """
    grad = MarginObjective(network, prop.label).target_gradient(x_star)
    influence = np.abs(grad) * prop.region.widths
    return int(np.argmax(influence))


def _usable_dim(region: Box, dim: int) -> int:
    """Fall back to the widest dimension when ``dim`` is degenerate."""
    if region.widths[dim] > 0.0:
        return dim
    fallback = region.longest_dim()
    if region.widths[fallback] <= 0.0:
        raise ValueError("cannot split a degenerate (point) region")
    return fallback


class LinearPolicy(VerificationPolicy):
    """The learnable policy ``φ(θ · ρ̂(ι))``.

    ``ρ̂`` is the §6 feature vector, squashed to ``[0, 1]``-comparable scales
    and extended with a constant bias entry (so constant strategies are
    expressible).  θ has shape ``(5, NUM_FEATURES + 1)`` — 25 parameters,
    comfortably inside Bayesian optimization's budget.
    """

    num_params = NUM_OUTPUTS * (NUM_FEATURES + 1)

    def __init__(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=np.float64)
        expected = (NUM_OUTPUTS, NUM_FEATURES + 1)
        if theta.shape != expected:
            raise ValueError(f"theta must have shape {expected}, got {theta.shape}")
        self.theta = theta

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def default() -> "LinearPolicy":
        """A hand-initialized policy: zonotopes with 2 disjuncts, split the
        longest dimension at its midpoint.  This is the pre-training prior;
        learning (``repro.learn``) replaces it."""
        theta = np.zeros((NUM_OUTPUTS, NUM_FEATURES + 1))
        theta[0, -1] = 1.0  # base domain score -> zonotope
        theta[1, -1] = 0.3  # disjunct score -> second menu entry (2)
        theta[2, -1] = 1.0  # prefer the longest dimension
        theta[3, -1] = 0.0
        theta[4, -1] = 0.0  # offset 0 -> bisect
        return LinearPolicy(theta)

    @staticmethod
    def from_vector(vec: np.ndarray) -> "LinearPolicy":
        vec = np.asarray(vec, dtype=np.float64).reshape(-1)
        if vec.size != LinearPolicy.num_params:
            raise ValueError(
                f"expected {LinearPolicy.num_params} parameters, got {vec.size}"
            )
        return LinearPolicy(vec.reshape(NUM_OUTPUTS, NUM_FEATURES + 1))

    def to_vector(self) -> np.ndarray:
        return self.theta.reshape(-1).copy()

    @staticmethod
    def parameter_box(scale: float = 2.0) -> Box:
        """The search box Bayesian optimization explores θ in."""
        n = LinearPolicy.num_params
        return Box(-scale * np.ones(n), scale * np.ones(n))

    # ------------------------------------------------------------------
    # φ(θ · ρ̂)
    # ------------------------------------------------------------------

    def _outputs(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> np.ndarray:
        raw = featurize(network, prop, x_star, f_star)
        # Squash each feature to a bounded, scale-free range so a single θ
        # generalizes across networks and region sizes (the paper trains on
        # ACAS and deploys on MNIST/CIFAR).
        half_diameter = prop.region.diameter() / 2.0
        squashed = np.array(
            [
                raw[0] / (half_diameter + 1e-12),
                raw[1] / (1.0 + abs(raw[1])),
                raw[2] / (1.0 + raw[2]),
                raw[3] / (1.0 + raw[3]),
                1.0,  # bias
            ]
        )
        return self.theta @ squashed

    def choose_domain(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> DomainSpec:
        out = self._outputs(network, prop, x_star, f_star)
        base = "interval" if float(np.clip(out[0], 0.0, 1.0)) < 0.5 else "zonotope"
        frac = float(np.clip(out[1], 0.0, 1.0))
        idx = min(int(frac * len(DISJUNCT_CHOICES)), len(DISJUNCT_CHOICES) - 1)
        return DomainSpec(base, DISJUNCT_CHOICES[idx])

    def choose_split(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> SplitChoice:
        out = self._outputs(network, prop, x_star, f_star)
        if out[2] >= out[3]:
            dim = prop.region.longest_dim()
        else:
            dim = _influence_dim(network, prop, x_star)
        dim = _usable_dim(prop.region, dim)
        ratio = float(np.clip(out[4], 0.0, 1.0))
        center = prop.region.center[dim]
        value = center + ratio * (float(x_star[dim]) - center)
        return SplitChoice(dim=dim, value=value)

    def describe(self) -> str:
        return f"LinearPolicy(theta_norm={np.linalg.norm(self.theta):.3f})"


class BisectionPolicy(VerificationPolicy):
    """Static hand-crafted strategy: fixed domain, bisect a dimension.

    With ``split="longest"`` this mirrors ReluVal-style refinement without
    learning; with ``split="influence"`` it uses the gradient×width
    heuristic.  Used by the RQ3 ablation (Figure 15) as the no-learning
    comparison point.
    """

    def __init__(self, domain: DomainSpec = ZONOTOPE, split: str = "longest") -> None:
        if split not in ("longest", "influence"):
            raise ValueError(f"split must be 'longest' or 'influence', got {split!r}")
        self.domain = domain
        self.split = split

    def choose_domain(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> DomainSpec:
        return self.domain

    def choose_split(
        self,
        network: Network,
        prop: RobustnessProperty,
        x_star: np.ndarray,
        f_star: float,
    ) -> SplitChoice:
        if self.split == "longest":
            dim = prop.region.longest_dim()
        else:
            dim = _usable_dim(
                prop.region, _influence_dim(network, prop, x_star)
            )
        center = prop.region.center[dim]
        return SplitChoice(dim=dim, value=float(center))

    def describe(self) -> str:
        return f"BisectionPolicy(domain={self.domain}, split={self.split})"


def default_policy() -> LinearPolicy:
    """The policy used when no learned policy is supplied."""
    return LinearPolicy.default()
