"""Configuration for the Charon verifier."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.pgd import PGDConfig


@dataclass(frozen=True)
class VerifierConfig:
    """Knobs for Algorithm 1.

    Attributes:
        delta: the δ of the δ-complete variant (Eq. 4).  Must be positive
            for the termination guarantee (Theorem 5.2); values near zero
            make the analysis as precise as desired (§5).
        timeout: wall-clock budget in seconds (``None`` = unlimited).  The
            paper uses 1000 s per benchmark; scaled-down benchmarks use a
            few seconds.
        max_depth: cap on the split recursion depth.  The paper's algorithm
            needs no cap in theory; in practice a cap turns pathological
            cases into explicit ``Timeout`` results instead of unbounded
            memory growth.
        min_split_fraction: splits keep at least this fraction of the width
            on each side (enforces Assumption 1 / the paper's §6 boundary
            offset).
        pgd: counterexample-search settings used at every node.
        batch_size: how many frontier sub-regions the batched engines
            (:class:`~repro.core.verifier.BatchedVerifier`,
            :class:`~repro.core.parallel.ParallelVerifier`) minimize and
            analyze per sweep.  The sequential :class:`Verifier` ignores it.
    """

    delta: float = 1e-6
    timeout: float | None = None
    max_depth: int = 200
    min_split_fraction: float = 0.02
    pgd: PGDConfig = field(default_factory=PGDConfig)
    batch_size: int = 16

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError(
                "delta must be positive (Theorem 5.2 needs a strictly "
                "positive slack to terminate)"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < self.min_split_fraction < 0.5:
            raise ValueError("min_split_fraction must lie in (0, 0.5)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
