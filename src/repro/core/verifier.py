"""Algorithm 1: the sound and δ-complete decision procedure.

Work items are (region, depth, seed) triples on an explicit stack
(equivalent to the paper's recursion, but immune to Python's recursion
limit).  Per item:

1. **Minimize** — PGD searches the region for a counterexample; if
   ``F(x*) <= δ`` the property is falsified with witness ``x*`` (Eq. 4,
   which buys termination, Theorem 5.2).
2. **Analyze** — the domain policy picks an abstract domain; if abstract
   interpretation proves the margin positive, the region is verified.
3. **Refine** — otherwise the partition policy picks a splitting plane and
   both halves are pushed.  Splits are forced strictly interior
   (Assumption 1) via :meth:`Box.split_interior`.

The property is verified when the stack drains.  δ-completeness: if the
outcome is not Verified (and budgets have not run out), the returned point
satisfies ``F(x*) <= δ`` — Theorem 5.4's guarantee, checked by our tests.

Randomness is attached to the *work item*, not the verifier: every item
carries a :class:`numpy.random.SeedSequence` and spawns child sequences for
its PGD call and its two split halves.  A sub-region's random stream is
therefore a pure function of its path from the root, which is what lets the
frontier-based :class:`BatchedVerifier` (and the thread pool in
:mod:`repro.core.parallel`) process items in any order — or many at once —
and still reproduce the sequential engine's per-region results.

:class:`BatchedVerifier` is the GEMM-shaped engine: it restructures the
stack into a frontier that pops up to ``config.batch_size`` items per
sweep, runs one batched Minimize and one batched Analyze over all of them
(§6's "independent sub-region analyses"), and pushes every resulting split.
Every domain the policy menu commonly selects — intervals, DeepPoly,
zonotopes, and bounded zonotope powersets — has a batched kernel behind
:meth:`~repro.abstract.domains.DomainSpec.lift_batch`, so the Analyze step
stays GEMM-shaped regardless of the domain policy's choices.
Soundness, δ-completeness, budgets, and statistics semantics are identical
to :class:`Verifier`; differences are traversal order and BLAS round-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstract.analyzer import analyze, analyze_batch
from repro.abstract.domains import INTERVAL, DomainSpec
from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize, pgd_minimize_batch
from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy, default_policy
from repro.core.property import RobustnessProperty
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.nn.network import Network
from repro.utils.boxes import Box
from repro.utils.rng import as_generator
from repro.utils.timing import Deadline, Stopwatch


@dataclass(frozen=True)
class WorkItem:
    """One sub-problem of the refinement recursion.

    The seed sequence is spawned exactly once (see :meth:`derive_seeds`)
    into the PGD stream and the two child sequences, making every
    sub-region's randomness a pure function of its path from the root.
    """

    region: Box
    depth: int
    seed: np.random.SeedSequence

    def derive_seeds(
        self,
    ) -> tuple[np.random.Generator, np.random.SeedSequence, np.random.SeedSequence]:
        """``(pgd_rng, left_seed, right_seed)`` for this item."""
        pgd_seq, left_seq, right_seq = self.seed.spawn(3)
        return np.random.default_rng(pgd_seq), left_seq, right_seq


def root_item(
    region: Box, rng: np.random.Generator
) -> WorkItem:
    """The root work item, seeded deterministically from ``rng``."""
    entropy = int(rng.integers(0, 2**63 - 1))
    return WorkItem(region, 0, np.random.SeedSequence(entropy))


def first_falsified(f_stars, delta: float) -> int | None:
    """Index of the first item whose PGD minimum is a δ-counterexample.

    "First" is frontier order — ``items[0]`` is what the sequential engine
    would pop next — which is what makes the batched engines' witness
    deterministic for a fixed chunking.
    """
    for idx, f_star in enumerate(f_stars):
        if f_star <= delta:
            return idx
    return None


def choose_domains(
    network: Network,
    policy: VerificationPolicy,
    prop: RobustnessProperty,
    items: list[WorkItem],
    x_stars: np.ndarray,
    f_stars: np.ndarray,
    stats: VerificationStats,
) -> list[DomainSpec]:
    """The policy half of step 2: one domain choice per frontier item.

    Counts every choice in ``stats`` (analyze calls + domain histogram);
    the caller runs the actual abstract interpretation, grouping items
    however its batching shape prefers.
    """
    domains: list[DomainSpec] = []
    for idx, item in enumerate(items):
        domain = policy.choose_domain(
            network, prop.with_region(item.region), x_stars[idx], float(f_stars[idx])
        )
        if item.region.is_degenerate():
            # A point region: the interval domain is exact on it, so this
            # branch always resolves (F(x*) > δ implies the margin at the
            # point is positive).
            domain = INTERVAL
        domains.append(domain)
        stats.analyze_calls += 1
        stats.record_domain(domain.short_name)
    return domains


def refine_unverified(
    network: Network,
    policy: VerificationPolicy,
    config: VerifierConfig,
    prop: RobustnessProperty,
    items: list[WorkItem],
    seeds: list,
    x_stars: np.ndarray,
    f_stars: np.ndarray,
    results: list,
    stats: VerificationStats,
) -> tuple["tuple | None", list[tuple[WorkItem, WorkItem]]]:
    """Step 3 of a sweep: split every unverified item into child work items.

    Returns ``(terminal, child_pairs)``; a non-``None`` terminal is a
    ``("timeout", reason)`` tuple raised by the depth cap or a region too
    narrow to split.  Children inherit the seeds spawned for their parent,
    keeping sub-region randomness a pure function of the refinement path.
    """
    pairs: list[tuple[WorkItem, WorkItem]] = []
    for idx, item in enumerate(items):
        if results[idx].verified:
            continue
        if item.depth >= config.max_depth:
            return ("timeout", "split depth"), []
        choice = policy.choose_split(
            network, prop.with_region(item.region), x_stars[idx], float(f_stars[idx])
        )
        try:
            left, right = item.region.split_interior(
                choice.dim, choice.value, config.min_split_fraction
            )
        except ValueError:
            # Region width below float resolution yet analysis still
            # fails: no further refinement is possible.
            return ("timeout", "degenerate region"), []
        stats.splits += 1
        _, left_seq, right_seq = seeds[idx]
        pairs.append(
            (
                WorkItem(left, item.depth + 1, left_seq),
                WorkItem(right, item.depth + 1, right_seq),
            )
        )
    return None, pairs


def batched_sweep(
    network: Network,
    policy: VerificationPolicy,
    config: VerifierConfig,
    objective: MarginObjective,
    pgd_config: PGDConfig,
    prop: RobustnessProperty,
    items: list[WorkItem],
    deadline: Deadline | None,
) -> tuple["tuple | None", list[tuple[WorkItem, WorkItem]], VerificationStats]:
    """One Algorithm-1 sweep over a frontier batch (items[0] = DFS-first).

    Runs one batched Minimize over all items, one batched Analyze per
    chosen-domain group, and refines every unverified item.  Returns
    ``(terminal, child_pairs, sweep_stats)`` — the shared kernel of
    :class:`BatchedVerifier` and the parallel engine's worker chunks, so
    the two can never drift apart semantically.  May raise
    :class:`TimeoutError` from the analyzer's deadline checks.

    The three steps are exposed as standalone hooks (:func:`first_falsified`,
    :func:`choose_domains`, :func:`refine_unverified`) so the multi-property
    scheduler (:mod:`repro.sched`) can interleave many properties' frontier
    chunks through shared kernel calls without re-implementing — or silently
    diverging from — the per-chunk semantics.
    """
    sweep = VerificationStats()
    count = len(items)
    seeds = [item.derive_seeds() for item in items]

    # --- 1. Batched Minimize ---------------------------------------------
    x_stars, f_stars = pgd_minimize_batch(
        objective,
        [item.region for item in items],
        pgd_config,
        [pgd_rng for pgd_rng, _, _ in seeds],
        deadline,
    )
    sweep.pgd_calls = count
    sweep.max_depth_reached = max(item.depth for item in items)
    idx = first_falsified(f_stars, config.delta)
    if idx is not None:
        return ("falsified", x_stars[idx], float(f_stars[idx])), [], sweep

    # --- 2. Batched Analyze, grouped by chosen domain --------------------
    domains = choose_domains(
        network, policy, prop, items, x_stars, f_stars, sweep
    )
    groups: dict[DomainSpec, list[int]] = {}
    for idx, domain in enumerate(domains):
        groups.setdefault(domain, []).append(idx)
    results: list = [None] * count
    for domain, idxs in groups.items():
        analyses = analyze_batch(
            network,
            [items[i].region for i in idxs],
            prop.label,
            domain,
            deadline,
        )
        for i, analysis in zip(idxs, analyses):
            results[i] = analysis

    # --- 3. Refine every unverified item ---------------------------------
    terminal, pairs = refine_unverified(
        network, policy, config, prop, items, seeds, x_stars, f_stars,
        results, sweep,
    )
    return terminal, pairs, sweep


def minimize_pgd_config(config: VerifierConfig) -> PGDConfig:
    """The PGD settings every engine's Minimize step must share.

    PGD exits early once it drops to δ: anything at or below δ is already
    a δ-counterexample.  Centralized so the sequential, parallel, and
    scheduler engines can never drift on the early-exit threshold (the
    solo/fused equivalence contract depends on identical PGD configs).
    """
    pgd = config.pgd
    return PGDConfig(
        steps=pgd.steps,
        restarts=pgd.restarts,
        step_fraction=pgd.step_fraction,
        stop_below=config.delta,
    )


class Verifier:
    """A reusable Charon instance bound to a network and a policy."""

    def __init__(
        self,
        network: Network,
        policy: VerificationPolicy | None = None,
        config: VerifierConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.network = network
        self.policy = policy or default_policy()
        self.config = config or VerifierConfig()
        self._rng = as_generator(rng)

    def _pgd_config(self) -> PGDConfig:
        return minimize_pgd_config(self.config)

    def verify(self, prop: RobustnessProperty):
        """Decide the robustness property; see the module docstring."""
        config = self.config
        stats = VerificationStats()
        deadline = Deadline(config.timeout)
        watch = Stopwatch().start()
        objective = MarginObjective(self.network, prop.label)
        pgd_config = self._pgd_config()

        stack: list[WorkItem] = [root_item(prop.region, self._rng)]
        try:
            while stack:
                if deadline.expired():
                    stats.time_seconds = watch.stop()
                    return Timeout("wall clock", stats)
                item = stack.pop()
                region, depth = item.region, item.depth
                stats.max_depth_reached = max(stats.max_depth_reached, depth)
                sub_prop = prop.with_region(region)
                pgd_rng, left_seq, right_seq = item.derive_seeds()

                # --- 1. Minimize -----------------------------------------
                x_star, f_star = pgd_minimize(
                    objective, region, pgd_config, pgd_rng, deadline
                )
                stats.pgd_calls += 1
                if f_star <= config.delta:
                    stats.time_seconds = watch.stop()
                    return Falsified(x_star, f_star, stats)

                # --- 2. Analyze ------------------------------------------
                domain = self.policy.choose_domain(
                    self.network, sub_prop, x_star, f_star
                )
                if region.is_degenerate():
                    # A point region: the interval domain is exact on it, so
                    # this branch always resolves (F(x*) > δ implies the
                    # margin at the point is positive).
                    domain = INTERVAL
                stats.analyze_calls += 1
                stats.record_domain(domain.short_name)
                result = analyze(
                    self.network, region, prop.label, domain, deadline
                )
                if result.verified:
                    continue

                # --- 3. Refine -------------------------------------------
                if depth >= config.max_depth:
                    stats.time_seconds = watch.stop()
                    return Timeout("split depth", stats)
                choice = self.policy.choose_split(
                    self.network, sub_prop, x_star, f_star
                )
                try:
                    left, right = region.split_interior(
                        choice.dim, choice.value, config.min_split_fraction
                    )
                except ValueError:
                    # Region width is below float resolution yet analysis
                    # still fails: no further refinement is possible.
                    stats.time_seconds = watch.stop()
                    return Timeout("degenerate region", stats)
                stats.splits += 1
                stack.append(WorkItem(right, depth + 1, right_seq))
                stack.append(WorkItem(left, depth + 1, left_seq))
        except TimeoutError:
            stats.time_seconds = watch.stop()
            return Timeout("wall clock", stats)

        stats.time_seconds = watch.stop()
        return Verified(stats)


class BatchedVerifier(Verifier):
    """Algorithm 1 over a frontier of sub-regions, batched per sweep.

    Pops up to ``config.batch_size`` items from the refinement frontier,
    runs **one** batched PGD minimization and **one** batched abstract
    interpretation per domain group over all of them, then pushes every
    resulting split.  Children are pushed so the frontier preserves the
    sequential engine's depth-first orientation (the first popped item's
    left child ends on top), making the traversal a DFS with a
    ``batch_size``-wide lookahead.

    Because work-item randomness is path-keyed (see :class:`WorkItem`),
    each sub-region's PGD search matches the sequential engine's per-region
    arithmetic; outcomes and witnesses agree up to BLAS kernel round-off.
    Terminal sweeps may have minimized a few frontier companions the
    sequential engine would never have reached — order-only, speculative
    work that the statistics count honestly.
    """

    def verify(self, prop: RobustnessProperty):
        config = self.config
        stats = VerificationStats()
        deadline = Deadline(config.timeout)
        watch = Stopwatch().start()
        objective = MarginObjective(self.network, prop.label)
        pgd_config = self._pgd_config()

        def finish(outcome_cls, *args):
            stats.time_seconds = watch.stop()
            return outcome_cls(*args, stats)

        frontier: list[WorkItem] = [root_item(prop.region, self._rng)]
        try:
            while frontier:
                if deadline.expired():
                    return finish(Timeout, "wall clock")
                count = min(config.batch_size, len(frontier))
                # items[0] is the stack top: the item the sequential
                # engine would pop next.
                items = [frontier.pop() for _ in range(count)]
                terminal, pairs, sweep = batched_sweep(
                    self.network, self.policy, config, objective,
                    pgd_config, prop, items, deadline,
                )
                stats.merge(sweep)
                if terminal is not None:
                    if terminal[0] == "falsified":
                        return finish(Falsified, terminal[1], terminal[2])
                    return finish(Timeout, terminal[1])
                # Reverse push order keeps the DFS orientation: the first
                # popped item's left child ends on top of the frontier.
                for left_item, right_item in reversed(pairs):
                    frontier.append(right_item)
                    frontier.append(left_item)
        except TimeoutError:
            return finish(Timeout, "wall clock")

        stats.time_seconds = watch.stop()
        return Verified(stats)


def verify(
    network: Network,
    prop: RobustnessProperty,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    rng: int | np.random.Generator | None = None,
):
    """One-shot convenience wrapper around :class:`Verifier`."""
    return Verifier(network, policy, config, rng).verify(prop)


def verify_batched(
    network: Network,
    prop: RobustnessProperty,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    rng: int | np.random.Generator | None = None,
):
    """One-shot convenience wrapper around :class:`BatchedVerifier`."""
    return BatchedVerifier(network, policy, config, rng).verify(prop)
