"""Algorithm 1: the sound and δ-complete decision procedure.

Work items are (region, depth) pairs on an explicit stack (equivalent to the
paper's recursion, but immune to Python's recursion limit).  Per item:

1. **Minimize** — PGD searches the region for a counterexample; if
   ``F(x*) <= δ`` the property is falsified with witness ``x*`` (Eq. 4,
   which buys termination, Theorem 5.2).
2. **Analyze** — the domain policy picks an abstract domain; if abstract
   interpretation proves the margin positive, the region is verified.
3. **Refine** — otherwise the partition policy picks a splitting plane and
   both halves are pushed.  Splits are forced strictly interior
   (Assumption 1) via :meth:`Box.split_interior`.

The property is verified when the stack drains.  δ-completeness: if the
outcome is not Verified (and budgets have not run out), the returned point
satisfies ``F(x*) <= δ`` — Theorem 5.4's guarantee, checked by our tests.
"""

from __future__ import annotations

import numpy as np

from repro.abstract.analyzer import analyze
from repro.abstract.domains import INTERVAL
from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize
from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy, default_policy
from repro.core.property import RobustnessProperty
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.nn.network import Network
from repro.utils.boxes import Box
from repro.utils.rng import as_generator
from repro.utils.timing import Deadline, Stopwatch


class Verifier:
    """A reusable Charon instance bound to a network and a policy."""

    def __init__(
        self,
        network: Network,
        policy: VerificationPolicy | None = None,
        config: VerifierConfig | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.network = network
        self.policy = policy or default_policy()
        self.config = config or VerifierConfig()
        self._rng = as_generator(rng)

    def verify(self, prop: RobustnessProperty):
        """Decide the robustness property; see the module docstring."""
        config = self.config
        stats = VerificationStats()
        deadline = Deadline(config.timeout)
        watch = Stopwatch().start()
        objective = MarginObjective(self.network, prop.label)
        # PGD exits early once it drops to δ: anything at or below δ is
        # already a δ-counterexample.
        pgd_config = PGDConfig(
            steps=config.pgd.steps,
            restarts=config.pgd.restarts,
            step_fraction=config.pgd.step_fraction,
            stop_below=config.delta,
        )

        stack: list[tuple[Box, int]] = [(prop.region, 0)]
        try:
            while stack:
                if deadline.expired():
                    stats.time_seconds = watch.stop()
                    return Timeout("wall clock", stats)
                region, depth = stack.pop()
                stats.max_depth_reached = max(stats.max_depth_reached, depth)
                sub_prop = prop.with_region(region)

                # --- 1. Minimize -----------------------------------------
                x_star, f_star = pgd_minimize(
                    objective, region, pgd_config, self._rng, deadline
                )
                stats.pgd_calls += 1
                if f_star <= config.delta:
                    stats.time_seconds = watch.stop()
                    return Falsified(x_star, f_star, stats)

                # --- 2. Analyze ------------------------------------------
                domain = self.policy.choose_domain(
                    self.network, sub_prop, x_star, f_star
                )
                if region.is_degenerate():
                    # A point region: the interval domain is exact on it, so
                    # this branch always resolves (F(x*) > δ implies the
                    # margin at the point is positive).
                    domain = INTERVAL
                stats.analyze_calls += 1
                stats.record_domain(domain.short_name)
                result = analyze(
                    self.network, region, prop.label, domain, deadline
                )
                if result.verified:
                    continue

                # --- 3. Refine -------------------------------------------
                if depth >= config.max_depth:
                    stats.time_seconds = watch.stop()
                    return Timeout("split depth", stats)
                choice = self.policy.choose_split(
                    self.network, sub_prop, x_star, f_star
                )
                try:
                    left, right = region.split_interior(
                        choice.dim, choice.value, config.min_split_fraction
                    )
                except ValueError:
                    # Region width is below float resolution yet analysis
                    # still fails: no further refinement is possible.
                    stats.time_seconds = watch.stop()
                    return Timeout("degenerate region", stats)
                stats.splits += 1
                stack.append((right, depth + 1))
                stack.append((left, depth + 1))
        except TimeoutError:
            stats.time_seconds = watch.stop()
            return Timeout("wall clock", stats)

        stats.time_seconds = watch.stop()
        return Verified(stats)


def verify(
    network: Network,
    prop: RobustnessProperty,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    rng: int | np.random.Generator | None = None,
):
    """One-shot convenience wrapper around :class:`Verifier`."""
    return Verifier(network, policy, config, rng).verify(prop)
