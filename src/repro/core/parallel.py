"""Parallel verification (§6: "different calls to the abstract interpreter
can be run on different threads").

The recursion of Algorithm 1 is embarrassingly parallel across sub-regions:
each work item is independent, the property is verified when *all* items
verify, and any single δ-counterexample settles the whole query.  The
original Charon exploits this with ELINA calls on parallel threads; this
module does the same with a thread pool (numpy releases the GIL inside the
dense kernels where the analyzer spends its time).

Semantics match the sequential :class:`~repro.core.verifier.Verifier`:
sound, δ-complete, same budgets.  Work-item *order* differs, so when a
region contains several counterexamples the witness may differ from the
sequential run — both are valid by Theorem 5.4.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

import numpy as np

from repro.abstract.analyzer import analyze
from repro.abstract.domains import INTERVAL
from repro.attack.objective import MarginObjective
from repro.attack.pgd import PGDConfig, pgd_minimize
from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy, default_policy
from repro.core.property import RobustnessProperty
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.nn.network import Network
from repro.utils.boxes import Box
from repro.utils.rng import as_generator, spawn
from repro.utils.timing import Deadline, Stopwatch


class ParallelVerifier:
    """Algorithm 1 with a worker pool over sub-regions."""

    def __init__(
        self,
        network: Network,
        policy: VerificationPolicy | None = None,
        config: VerifierConfig | None = None,
        workers: int = 4,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.network = network
        self.policy = policy or default_policy()
        self.config = config or VerifierConfig()
        self.workers = workers
        self._rng = as_generator(rng)

    def verify(self, prop: RobustnessProperty):
        config = self.config
        stats = VerificationStats()
        stats_lock = threading.Lock()
        deadline = Deadline(config.timeout)
        watch = Stopwatch().start()
        objective = MarginObjective(self.network, prop.label)
        pgd_config = PGDConfig(
            steps=config.pgd.steps,
            restarts=config.pgd.restarts,
            step_fraction=config.pgd.step_fraction,
            stop_below=config.delta,
        )
        # Pre-spawned per-worker RNG streams keep runs reproducible
        # regardless of thread scheduling.
        worker_rngs = spawn(self._rng, self.workers)
        rng_pool: list[np.random.Generator] = list(worker_rngs)
        rng_lock = threading.Lock()

        failure: dict = {}
        failure_lock = threading.Lock()
        stop_event = threading.Event()

        def process(item: tuple[Box, int]) -> list[tuple[Box, int]]:
            """One Algorithm-1 step; returns child work items."""
            region, depth = item
            if stop_event.is_set():
                return []
            if deadline.expired():
                _record_failure(Timeout("wall clock", stats))
                return []
            with rng_lock:
                gen = rng_pool.pop() if rng_pool else np.random.default_rng(0)
            try:
                sub_prop = prop.with_region(region)
                x_star, f_star = pgd_minimize(
                    objective, region, pgd_config, gen, deadline
                )
                with stats_lock:
                    stats.pgd_calls += 1
                    stats.max_depth_reached = max(stats.max_depth_reached, depth)
                if f_star <= config.delta:
                    _record_failure(Falsified(x_star, f_star, stats))
                    return []
                domain = self.policy.choose_domain(
                    self.network, sub_prop, x_star, f_star
                )
                if region.is_degenerate():
                    domain = INTERVAL
                with stats_lock:
                    stats.analyze_calls += 1
                    stats.record_domain(domain.short_name)
                try:
                    result = analyze(
                        self.network, region, prop.label, domain, deadline
                    )
                except TimeoutError:
                    _record_failure(Timeout("wall clock", stats))
                    return []
                if result.verified:
                    return []
                if depth >= config.max_depth:
                    _record_failure(Timeout("split depth", stats))
                    return []
                choice = self.policy.choose_split(
                    self.network, sub_prop, x_star, f_star
                )
                try:
                    left, right = region.split_interior(
                        choice.dim, choice.value, config.min_split_fraction
                    )
                except ValueError:
                    _record_failure(Timeout("degenerate region", stats))
                    return []
                with stats_lock:
                    stats.splits += 1
                return [(left, depth + 1), (right, depth + 1)]
            finally:
                with rng_lock:
                    rng_pool.append(gen)

        def _record_failure(outcome) -> None:
            with failure_lock:
                if "outcome" not in failure:
                    failure["outcome"] = outcome
            stop_event.set()

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            pending = {pool.submit(process, (prop.region, 0))}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for child in future.result():
                        if not stop_event.is_set():
                            pending.add(pool.submit(process, child))
                if stop_event.is_set() and not pending:
                    break

        stats.time_seconds = watch.stop()
        if "outcome" in failure:
            return failure["outcome"]
        return Verified(stats)


def verify_parallel(
    network: Network,
    prop: RobustnessProperty,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    workers: int = 4,
    rng: int | np.random.Generator | None = None,
):
    """One-shot convenience wrapper around :class:`ParallelVerifier`."""
    return ParallelVerifier(network, policy, config, workers, rng).verify(prop)
