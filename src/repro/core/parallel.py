"""Parallel verification (§6: "different calls to the abstract interpreter
can be run on different threads").

The recursion of Algorithm 1 is embarrassingly parallel across sub-regions:
each work item is independent, the property is verified when *all* items
verify, and any single δ-counterexample settles the whole query.  The
original Charon exploits this with ELINA calls on parallel threads; this
module does the same one level up the stack: the verifier is a thin
frontier loop over a :class:`~repro.exec.KernelExecutor`, and each
submitted task processes a *chunk* of up to ``config.batch_size`` frontier
items through the batched Minimize/Analyze kernels — batching within a
task, the executor's workers across the frontier (numpy releases the GIL
inside the dense kernels where the analyzer spends its time).  Chunks are
*pure functions* (:func:`sweep_chunk`): operands in, ``(terminal, pairs,
stats)`` out, every side effect applied by the coordinating thread — so
the same loop runs unchanged over a thread pool or a
:class:`~repro.exec.ProcessExecutor` (whose workers receive chunks as
picklable descriptors and dodge the GIL on the Python-heavy
zonotope/powerset paths).

The pool/failure plumbing lives in :mod:`repro.exec`, shared with the
multi-property scheduler: terminal outcomes race through
:class:`~repro.exec.FirstOutcome` (first writer wins), and once one lands
the backlog of not-yet-started chunks is *cancelled* via
:meth:`~repro.exec.KernelExecutor.cancel_pending` rather than letting
every pending chunk run to completion — falsification latency is one
in-flight round, not the whole queue.

Randomness is path-keyed per work item (see
:class:`~repro.core.verifier.WorkItem`), so a sub-region's PGD stream never
depends on which thread processes it or on pool scheduling.  This replaces
the earlier per-worker generator pool, whose overflow fallback could hand
several workers the same seed-0 stream — a silent reproducibility hole that
is now structurally impossible.

Semantics match the sequential :class:`~repro.core.verifier.Verifier`:
sound, δ-complete, same budgets.  Work-item *order* differs, so when a
region contains several counterexamples the witness may differ from the
sequential run — both are valid by Theorem 5.4.
"""

from __future__ import annotations

import math
from concurrent.futures import CancelledError

import numpy as np

from repro.attack.objective import MarginObjective
from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy, default_policy
from repro.core.property import RobustnessProperty
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.core.verifier import (
    WorkItem,
    batched_sweep,
    minimize_pgd_config,
    root_item,
)
from repro.exec import (
    FirstOutcome,
    KernelExecutor,
    PooledExecutor,
)
from repro.nn.network import Network
from repro.utils.rng import as_generator
from repro.utils.timing import Deadline, Stopwatch


def sweep_chunk(
    network: Network,
    policy: VerificationPolicy,
    config: VerifierConfig,
    prop: RobustnessProperty,
    chunk: list[WorkItem],
    deadline: Deadline | None,
    stop=None,
):
    """One batched Algorithm-1 sweep over a frontier chunk (pure function).

    Returns ``(terminal, child_pairs, sweep_stats)`` exactly as
    :func:`~repro.core.verifier.batched_sweep` does; raises
    :class:`TimeoutError` when the wall-clock deadline has passed.  All
    side effects (stats merging, outcome racing) stay with the caller:
    the function shares no state, which is what lets the verifier submit
    chunks to thread *and process* executors alike — a process submission
    crosses as a picklable descriptor (:mod:`repro.exec.calls`) that
    ships the network once per worker.

    ``stop`` is an *advisory* early-exit flag (anything with
    ``is_set()``): a chunk that a pool thread dequeues in the window
    between a terminal outcome landing and the coordinator's
    ``cancel_pending`` call returns empty instead of burning a full
    sweep.  Pure latency optimization, never semantics — a skipped chunk
    reads exactly like a cancelled one.  It holds thread-shared state,
    so the process-boundary marshaller does not transport it (a worker
    that cannot see the flag just runs the sweep, which was always
    possible anyway).
    """
    if stop is not None and stop.is_set():
        return None, [], VerificationStats()
    if deadline is not None:
        deadline.check()
    objective = MarginObjective(network, prop.label)
    pgd_config = minimize_pgd_config(config)
    return batched_sweep(
        network, policy, config, objective, pgd_config, prop, chunk, deadline
    )


def sweep_chunk_entry(payload: dict):
    """Process-worker entry point for a marshalled sweep chunk."""
    from repro.exec.calls import resolve_network

    return sweep_chunk(
        resolve_network(payload["network"]),
        payload["policy"],
        payload["config"],
        payload["prop"],
        payload["chunk"],
        payload["deadline"],
    )


class ParallelVerifier:
    """Algorithm 1 as a frontier loop over a pooled kernel executor."""

    def __init__(
        self,
        network: Network,
        policy: VerificationPolicy | None = None,
        config: VerifierConfig | None = None,
        workers: int = 4,
        rng: int | np.random.Generator | None = None,
        executor: KernelExecutor | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.network = network
        self.policy = policy or default_policy()
        self.config = config or VerifierConfig()
        self.workers = workers
        self.executor = executor
        self._rng = as_generator(rng)

    def _chunk(self, items: list[WorkItem]) -> list[list[WorkItem]]:
        """Split child items into worker chunks.

        Chunks are capped at ``config.batch_size`` (the batched kernels'
        sweep width) but shrink when work is scarce so every worker stays
        busy while the frontier is still fanning out.
        """
        if not items:
            return []
        size = max(
            1, min(self.config.batch_size, math.ceil(len(items) / self.workers))
        )
        return [items[i : i + size] for i in range(0, len(items), size)]

    def verify(self, prop: RobustnessProperty):
        config = self.config
        stats = VerificationStats()
        deadline = Deadline(config.timeout)
        watch = Stopwatch().start()
        first = FirstOutcome()

        def consume(future) -> list[WorkItem]:
            """Fold one finished chunk into stats/outcome; returns children.

            Chunks are pure functions (:func:`sweep_chunk`), so every
            side effect happens here on the coordinating thread — the
            same code path whether the chunk ran inline, on a pool
            thread, or in another process.
            """
            try:
                terminal, pairs, sweep = future.result()
            except CancelledError:
                return []  # never ran; contributes nothing
            except TimeoutError:
                first.record(Timeout("wall clock", stats))
                return []
            stats.merge(sweep)
            if terminal is not None:
                if terminal[0] == "falsified":
                    first.record(Falsified(terminal[1], terminal[2], stats))
                else:
                    first.record(Timeout(terminal[1], stats))
                return []
            return [child for pair in pairs for child in pair]

        executor = self.executor
        owned = executor is None
        if owned:
            executor = PooledExecutor(self.workers)
        try:
            pending = {
                executor.submit(
                    sweep_chunk, self.network, self.policy, config, prop,
                    [root_item(prop.region, self._rng)], deadline, first,
                )
            }
            while pending:
                done, pending = executor.wait_any(pending)
                children: list[WorkItem] = []
                for future in done:
                    children.extend(consume(future))
                if first.is_set():
                    # Terminal outcome landed: drop every chunk that has
                    # not started and only drain the ones already running.
                    pending = executor.cancel_pending(pending)
                    continue
                for chunk in self._chunk(children):
                    pending.add(
                        executor.submit(
                            sweep_chunk, self.network, self.policy, config,
                            prop, chunk, deadline, first,
                        )
                    )
        finally:
            if owned:
                executor.shutdown(cancel_pending=True)

        stats.time_seconds = watch.stop()
        outcome = first.get()
        if outcome is not None:
            return outcome
        return Verified(stats)


def verify_parallel(
    network: Network,
    prop: RobustnessProperty,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    workers: int = 4,
    rng: int | np.random.Generator | None = None,
):
    """One-shot convenience wrapper around :class:`ParallelVerifier`."""
    return ParallelVerifier(network, policy, config, workers, rng).verify(prop)
