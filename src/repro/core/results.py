"""Verification outcomes and run statistics.

Charon is δ-complete, so a run either proves the property
(:class:`Verified`), produces a δ-counterexample (:class:`Falsified`), or
exhausts its resource budget (:class:`Timeout` — the practical analogue of
the paper's 1000-second limit).  There is deliberately no "unknown" outcome
(Figure 6 shows Charon with zero unknowns).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np


@dataclass
class VerificationStats:
    """Counters accumulated across one :func:`repro.core.verifier.verify` run."""

    pgd_calls: int = 0
    analyze_calls: int = 0
    splits: int = 0
    max_depth_reached: int = 0
    domains_used: Counter = field(default_factory=Counter)
    time_seconds: float = 0.0

    def record_domain(self, name: str) -> None:
        self.domains_used[name] += 1

    def merge(self, other: "VerificationStats") -> None:
        """Fold another stats bag into this one (used per frontier sweep)."""
        self.pgd_calls += other.pgd_calls
        self.analyze_calls += other.analyze_calls
        self.splits += other.splits
        self.max_depth_reached = max(
            self.max_depth_reached, other.max_depth_reached
        )
        self.domains_used.update(other.domains_used)


@dataclass(frozen=True)
class Verified:
    """Every point of the region provably classifies as the target label."""

    stats: VerificationStats

    @property
    def kind(self) -> str:
        return "verified"

    def __bool__(self) -> bool:
        return True


@dataclass(frozen=True)
class Falsified:
    """A δ-counterexample was found (Definition 5.3).

    Attributes:
        counterexample: the witness point (inside the region).
        margin: ``F(x*)``; ``<= 0`` means a *true* counterexample,
            ``in (0, δ]`` means a δ-close near-violation.
    """

    counterexample: np.ndarray
    margin: float
    stats: VerificationStats

    @property
    def kind(self) -> str:
        return "falsified"

    @property
    def is_true_counterexample(self) -> bool:
        return self.margin <= 0.0

    def __bool__(self) -> bool:
        return False


@dataclass(frozen=True)
class Timeout:
    """The resource budget (wall clock or split depth) ran out."""

    reason: str
    stats: VerificationStats

    @property
    def kind(self) -> str:
        return "timeout"

    def __bool__(self) -> bool:
        return False


VerificationOutcome = "Verified | Falsified | Timeout"
