"""Featurization ρ of a verification sub-problem (§4.1, §6).

The paper deliberately uses a *small* feature vector — Bayesian optimization
only scales to tens of dimensions, and few features regularize the learned
policy.  We implement exactly the four features listed in §6:

1. distance between the center of the input region ``I`` and the PGD
   solution ``x*``;
2. the value of the objective ``F`` at ``x*``;
3. the magnitude of the network's gradient at ``x*``;
4. the average side length of the input region.
"""

from __future__ import annotations

import numpy as np

from repro.attack.objective import MarginObjective
from repro.core.property import RobustnessProperty
from repro.nn.network import Network

FEATURE_NAMES = (
    "center_to_xstar_distance",
    "objective_at_xstar",
    "gradient_magnitude_at_xstar",
    "mean_region_width",
)

NUM_FEATURES = len(FEATURE_NAMES)


def featurize(
    network: Network,
    prop: RobustnessProperty,
    x_star: np.ndarray,
    f_star: float,
) -> np.ndarray:
    """The feature vector ``ρ(N, I, K, x*)``: shape ``(4,)``.

    Feature 1 captures how far the hardest-found point sits from the region
    center (informing where to split); feature 2 how close the problem is to
    falsification (informing how precise a domain is needed); feature 3 the
    local steepness of the network; feature 4 the scale of the region.
    """
    x_star = np.asarray(x_star, dtype=np.float64).reshape(-1)
    if x_star.size != prop.region.ndim:
        raise ValueError(
            f"x* has {x_star.size} dims, region has {prop.region.ndim}"
        )
    objective = MarginObjective(network, prop.label)
    grad = objective.gradient(x_star)
    return np.array(
        [
            float(np.linalg.norm(x_star - prop.region.center)),
            float(f_star),
            float(np.linalg.norm(grad)),
            prop.region.mean_width(),
        ]
    )
