"""Charon's core: robustness properties, verification policies, Algorithm 1.

Public surface:

- :class:`repro.core.property.RobustnessProperty` — the pair ``(I, K)``.
- :class:`repro.core.config.VerifierConfig` — δ, budgets, PGD settings.
- :class:`repro.core.policy.LinearPolicy` — the learned policy
  ``φ(θ · ρ(N, I, K, x*))`` with its domain/partition selection functions.
- :func:`repro.core.verifier.verify` — the sound, δ-complete decision
  procedure (Algorithm 1).
"""

from repro.core.property import RobustnessProperty, brightening_property, linf_property
from repro.core.config import VerifierConfig
from repro.core.results import Falsified, Timeout, Verified, VerificationStats
from repro.core.features import featurize, FEATURE_NAMES
from repro.core.policy import (
    BisectionPolicy,
    DomainChoice,
    LinearPolicy,
    SplitChoice,
    VerificationPolicy,
    default_policy,
)
from repro.core.verifier import (
    BatchedVerifier,
    Verifier,
    WorkItem,
    verify,
    verify_batched,
)
from repro.core.parallel import ParallelVerifier, verify_parallel
from repro.core.radius import RadiusResult, certified_accuracy, certified_radius

__all__ = [
    "ParallelVerifier",
    "verify_parallel",
    "RadiusResult",
    "certified_radius",
    "certified_accuracy",
    "RobustnessProperty",
    "linf_property",
    "brightening_property",
    "VerifierConfig",
    "Verified",
    "Falsified",
    "Timeout",
    "VerificationStats",
    "featurize",
    "FEATURE_NAMES",
    "DomainChoice",
    "SplitChoice",
    "VerificationPolicy",
    "LinearPolicy",
    "BisectionPolicy",
    "default_policy",
    "Verifier",
    "verify",
    "BatchedVerifier",
    "verify_batched",
    "WorkItem",
]
