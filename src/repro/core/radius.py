"""Certified-radius search: the downstream query robustness tools serve.

Given a point, find the largest L∞ radius ε such that the network is
provably robust on ``B_∞(x, ε)`` — and, symmetrically, the smallest radius
at which a concrete counterexample exists.  This is the standard way
robustness verifiers are consumed (e.g. for certified-accuracy curves);
the paper's decision procedure answers one ``(I, K)`` query, and this
module drives it through a bracketed binary search.

The search maintains the invariant ``certified <= frontier <= falsified``:
every probe either extends the certified radius (Verified), shrinks the
falsified radius (Falsified), or — on Timeout — shrinks the *upper search
limit* without claiming a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import VerifierConfig
from repro.core.policy import VerificationPolicy
from repro.core.property import linf_property
from repro.core.verifier import Verifier
from repro.nn.network import Network


@dataclass(frozen=True)
class RadiusResult:
    """Outcome of a certified-radius search.

    Attributes:
        certified: largest probed ε with a robustness proof (0.0 when even
            the smallest probe failed).
        falsified: smallest probed ε with a counterexample
            (``inf`` when none was found up to ``max_radius``).
        counterexample: the witness at the falsified radius, if any.
        probes: number of verifier calls spent.
    """

    certified: float
    falsified: float
    counterexample: np.ndarray | None
    probes: int

    @property
    def gap(self) -> float:
        """Width of the undecided band between proof and attack."""
        return self.falsified - self.certified


def certified_radius(
    network: Network,
    x: np.ndarray,
    max_radius: float = 0.5,
    tolerance: float = 1e-3,
    clip_low: float | None = 0.0,
    clip_high: float | None = 1.0,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    rng: int | np.random.Generator | None = 0,
    max_probes: int = 30,
    known_certified: float = 0.0,
    known_falsified: float = float("inf"),
) -> RadiusResult:
    """Binary-search the robustness frontier around ``x``.

    Stops when the bracket is narrower than ``tolerance`` (relative to
    ``max_radius``) or ``max_probes`` verifier calls have been spent.

    ``known_certified`` / ``known_falsified`` seed the bracket with
    already-decided radii (e.g. from
    :meth:`repro.sched.ResultCache.radius_bounds`): the search starts
    inside the undecided band, so cached verification work shrinks — or
    entirely eliminates — the probe budget this search spends.
    """
    if max_radius <= 0:
        raise ValueError("max_radius must be positive")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if max_probes < 1:
        raise ValueError("max_probes must be >= 1")
    if known_certified < 0.0:
        raise ValueError("known_certified must be non-negative")
    if known_falsified <= known_certified:
        raise ValueError(
            f"known bracket is inverted: certified {known_certified} >= "
            f"falsified {known_falsified}"
        )
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    base_config = config or VerifierConfig(timeout=2.0)
    verifier = Verifier(network, policy, base_config, rng=rng)

    certified = known_certified
    falsified = known_falsified
    witness: np.ndarray | None = None
    lo = min(known_certified, max_radius)
    hi = min(max_radius, known_falsified)
    probes = 0
    while probes < max_probes and hi - lo > tolerance:
        eps = (lo + hi) / 2.0
        prop = linf_property(network, x, eps, clip_low=clip_low, clip_high=clip_high)
        outcome = verifier.verify(prop)
        probes += 1
        if outcome.kind == "verified":
            certified = max(certified, eps)
            lo = eps
        elif outcome.kind == "falsified":
            falsified = min(falsified, eps)
            witness = outcome.counterexample
            hi = eps
        else:
            # Timeout: undecided at this radius — narrow the search from
            # above without claiming anything.
            hi = eps
    return RadiusResult(
        certified=certified,
        falsified=falsified,
        counterexample=witness,
        probes=probes,
    )


def certified_accuracy(
    network: Network,
    inputs: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
    policy: VerificationPolicy | None = None,
    config: VerifierConfig | None = None,
    rng: int | np.random.Generator | None = 0,
) -> tuple[float, float]:
    """Fraction of samples (correctly classified AND certified at ε,
    correctly classified) — the pair certified-accuracy tables report."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    inputs = np.asarray(inputs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    if inputs.shape[0] != labels.shape[0]:
        raise ValueError("inputs/labels length mismatch")
    base_config = config or VerifierConfig(timeout=2.0)
    verifier = Verifier(network, policy, base_config, rng=rng)
    total = inputs.shape[0]
    correct = 0
    certified = 0
    for i in range(total):
        flat = inputs[i].reshape(-1)
        if network.classify(flat) != labels[i]:
            continue
        correct += 1
        prop = linf_property(network, flat, epsilon)
        if verifier.verify(prop).kind == "verified":
            certified += 1
    return certified / total, correct / total
